/// \file ablation_cycle_filters.cc
/// \brief E11 — ablation of the cycle expander's structural filters.
///
/// Sweeps the design choices DESIGN.md calls out: the category-ratio
/// window (the paper's "around 30%" finding), the extra-edge density
/// threshold (Fig 9), the length-2 boost (Fig 5), and the cycle-length
/// budget (Table 4), measuring track-level retrieval quality for each
/// variant.  Every variant is one `api::ExpanderOverrides` set served
/// through the engine's "cycle" registry entry — no compile-time wiring.

#include "api/evaluation.h"
#include "bench/bench_common.h"
#include "common/macros.h"

using namespace wqe;

namespace {

void Evaluate(const api::Engine& engine,
              const std::vector<api::EvalTopic>& topics,
              const std::string& label,
              const api::ExpanderOverrides& overrides, TablePrinter* table) {
  auto eval = api::EvaluateSystem(engine, "cycle", topics, overrides);
  WQE_CHECK_OK(eval.status());
  bench::AddEvaluationRow(*eval, label, table);
}

}  // namespace

int main() {
  const api::Testbed& bed = bench::GetBenchTestbed();
  const api::Engine& engine = bed.engine();
  const std::vector<api::EvalTopic> topics = bed.EvalTopics();

  TablePrinter table("E11 — cycle-expander filter ablation");
  table.SetHeader({"variant", "P@1", "P@5", "P@10", "P@15", "O (Eq. 1)",
                   "avg features"});

  Evaluate(engine, topics, "defaults", {}, &table);

  {
    api::ExpanderOverrides o;
    o.min_category_ratio = 0.0;
    o.max_category_ratio = 1.0;
    Evaluate(engine, topics, "no category-ratio filter", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.min_density = 0.0;
    Evaluate(engine, topics, "no density filter", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.min_density = 0.0;
    o.min_category_ratio = 0.0;
    o.max_category_ratio = 1.0;
    Evaluate(engine, topics, "no structural filters", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.two_cycle_weight = 1.0;
    Evaluate(engine, topics, "no length-2 boost", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.max_cycle_length = 3;
    Evaluate(engine, topics, "lengths 2-3 only", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.min_cycle_length = 4;
    Evaluate(engine, topics, "lengths 4-5 only", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.length_decay = 1.0;
    o.sqrt_count_damping = false;
    Evaluate(engine, topics, "raw cycle counts (no damping)", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.max_features = 4;
    Evaluate(engine, topics, "max 4 features", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.max_features = 16;
    Evaluate(engine, topics, "max 16 features", o, &table);
  }
  {
    api::ExpanderOverrides o;
    o.include_redirect_aliases = true;
    Evaluate(engine, topics, "with redirect aliases (par. 4)", o, &table);
  }
  table.Print();
  return 0;
}
