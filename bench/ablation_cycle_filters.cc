/// \file ablation_cycle_filters.cc
/// \brief E11 — ablation of the cycle expander's structural filters.
///
/// Sweeps the design choices DESIGN.md calls out: the category-ratio
/// window (the paper's "around 30%" finding), the extra-edge density
/// threshold (Fig 9), the length-2 boost (Fig 5), and the cycle-length
/// budget (Table 4), measuring track-level retrieval quality for each
/// variant.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "expansion/cycle_expander.h"
#include "expansion/evaluation.h"

using namespace wqe;

namespace {

void Evaluate(const groundtruth::Pipeline& p, const std::string& label,
              const expansion::CycleExpanderOptions& options,
              TablePrinter* table) {
  expansion::CycleExpander system(&p.kb(), &p.linker(), options);
  auto eval = expansion::EvaluateExpander(system, p);
  WQE_CHECK_OK(eval.status());
  table->AddRow({label, FormatDouble(eval->mean_precision[0], 3),
                 FormatDouble(eval->mean_precision[1], 3),
                 FormatDouble(eval->mean_precision[2], 3),
                 FormatDouble(eval->mean_precision[3], 3),
                 FormatDouble(eval->mean_o, 3),
                 FormatDouble(eval->mean_features, 1)});
}

}  // namespace

int main() {
  const groundtruth::Pipeline& p = *bench::GetBenchContext().pipeline;

  TablePrinter table("E11 — cycle-expander filter ablation");
  table.SetHeader({"variant", "P@1", "P@5", "P@10", "P@15", "O (Eq. 1)",
                   "avg features"});

  expansion::CycleExpanderOptions defaults;
  Evaluate(p, "defaults", defaults, &table);

  {
    auto o = defaults;
    o.min_category_ratio = 0.0;
    o.max_category_ratio = 1.0;
    Evaluate(p, "no category-ratio filter", o, &table);
  }
  {
    auto o = defaults;
    o.min_density = 0.0;
    Evaluate(p, "no density filter", o, &table);
  }
  {
    auto o = defaults;
    o.min_density = 0.0;
    o.min_category_ratio = 0.0;
    o.max_category_ratio = 1.0;
    Evaluate(p, "no structural filters", o, &table);
  }
  {
    auto o = defaults;
    o.two_cycle_weight = 1.0;
    Evaluate(p, "no length-2 boost", o, &table);
  }
  {
    auto o = defaults;
    o.max_cycle_length = 3;
    Evaluate(p, "lengths 2-3 only", o, &table);
  }
  {
    auto o = defaults;
    o.min_cycle_length = 4;
    Evaluate(p, "lengths 4-5 only", o, &table);
  }
  {
    auto o = defaults;
    o.length_decay = 1.0;
    o.sqrt_count_damping = false;
    Evaluate(p, "raw cycle counts (no damping)", o, &table);
  }
  {
    auto o = defaults;
    o.max_features = 4;
    Evaluate(p, "max 4 features", o, &table);
  }
  {
    auto o = defaults;
    o.max_features = 16;
    Evaluate(p, "max 16 features", o, &table);
  }
  {
    auto o = defaults;
    o.include_redirect_aliases = true;
    Evaluate(p, "with redirect aliases (par. 4)", o, &table);
  }
  table.Print();
  return 0;
}
