/// \file ablation_expansion_systems.cc
/// \brief E10 — compares the cycle-based expansion system (§4's proposal)
/// against the baselines the paper cites: no expansion, per-link expansion
/// (refs [1–3]) and triangle/community expansion (ref [4]).
///
/// The paper's claim to verify in shape: structure-aware expansion from
/// dense, category-bearing cycles beats both the unexpanded query and
/// flat link-based expansion.  All systems are served by name through the
/// `api::Engine` registry.

#include <cstdio>

#include "api/evaluation.h"
#include "bench/bench_common.h"
#include "common/macros.h"

using namespace wqe;

namespace {

void AddSystemRow(const api::Engine& engine,
                  const std::vector<api::EvalTopic>& topics,
                  const std::string& name,
                  const api::ExpanderOverrides& overrides,
                  const std::string& label, TablePrinter* table) {
  auto eval = api::EvaluateSystem(engine, name, topics, overrides);
  WQE_CHECK_OK(eval.status());
  bench::AddEvaluationRow(*eval, label, table);
}

}  // namespace

int main() {
  const api::Testbed& bed = bench::GetBenchTestbed();
  const api::Engine& engine = bed.engine();
  const std::vector<api::EvalTopic> topics = bed.EvalTopics();

  TablePrinter table("E10 — expansion systems on the full track");
  table.SetHeader({"system", "P@1", "P@5", "P@10", "P@15", "O (Eq. 1)",
                   "avg features"});
  for (const std::string& name : engine.registry().Names()) {
    AddSystemRow(engine, topics, name, {}, "", &table);
  }
  api::ExpanderOverrides mutual;
  mutual.prioritize_mutual = true;
  AddSystemRow(engine, topics, "direct-link", mutual, "direct-link+mutual",
               &table);
  table.Print();

  // Oracle reference: the ground truth's X(q).
  const bench::BenchContext& ctx = bench::GetBenchContext();
  double oracle = 0;
  for (const auto& e : ctx.gt.entries) oracle += e.xq.quality;
  std::printf("\noracle O (ground-truth X(q)): %.3f\n",
              oracle / static_cast<double>(ctx.gt.entries.size()));
  return 0;
}
