/// \file ablation_expansion_systems.cc
/// \brief E10 — compares the cycle-based expansion system (§4's proposal)
/// against the baselines the paper cites: no expansion, per-link expansion
/// (refs [1–3]) and triangle/community expansion (ref [4]).
///
/// The paper's claim to verify in shape: structure-aware expansion from
/// dense, category-bearing cycles beats both the unexpanded query and
/// flat link-based expansion.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"
#include "expansion/evaluation.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  const groundtruth::Pipeline& p = *ctx.pipeline;

  expansion::NoExpansion none(&p.kb(), &p.linker());
  expansion::DirectLinkExpansion direct(&p.kb(), &p.linker());
  expansion::DirectLinkOptions mutual_options;
  mutual_options.prioritize_mutual = true;
  expansion::DirectLinkExpansion direct_mutual(&p.kb(), &p.linker(),
                                               mutual_options);
  expansion::CommunityExpansion community(&p.kb(), &p.linker());
  expansion::CycleExpander cycle(&p.kb(), &p.linker());

  TablePrinter table("E10 — expansion systems on the full track");
  table.SetHeader({"system", "P@1", "P@5", "P@10", "P@15", "O (Eq. 1)",
                   "avg features"});
  for (const expansion::Expander* system :
       std::initializer_list<const expansion::Expander*>{
           &none, &direct, &direct_mutual, &community, &cycle}) {
    auto eval = expansion::EvaluateExpander(*system, p);
    WQE_CHECK_OK(eval.status());
    table.AddRow({eval->name, FormatDouble(eval->mean_precision[0], 3),
                  FormatDouble(eval->mean_precision[1], 3),
                  FormatDouble(eval->mean_precision[2], 3),
                  FormatDouble(eval->mean_precision[3], 3),
                  FormatDouble(eval->mean_o, 3),
                  FormatDouble(eval->mean_features, 1)});
  }
  table.Print();

  // Oracle reference: the ground truth's X(q).
  double oracle = 0;
  for (const auto& e : ctx.gt.entries) oracle += e.xq.quality;
  std::printf("\noracle O (ground-truth X(q)): %.3f\n",
              oracle / static_cast<double>(ctx.gt.entries.size()));
  return 0;
}
