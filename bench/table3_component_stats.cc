/// \file table3_component_stats.cc
/// \brief E2 — regenerates Table 3: statistics of the largest connected
/// component of the query graphs.
///
/// Paper reference:
///   %size            0.164 0.477 0.587 0.688 1
///   %query nodes     0 1 1 1 1
///   %articles        0.025 0.148 0.217 0.269 0.5
///   %categories      0.5 0.731 0.783 0.852 0.975
///   expansion ratio  0 2.125 4.5 23.750 176

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

namespace {
std::vector<std::string> Row(const std::string& label,
                             const FiveNumberSummary& s,
                             const std::string& paper) {
  return {label,
          FormatDouble(s.min, 3),
          FormatDouble(s.q1, 3),
          FormatDouble(s.median, 3),
          FormatDouble(s.q3, 3),
          FormatDouble(s.max, 3),
          paper};
}
}  // namespace

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::Table3Report report = analysis::ComputeTable3(ctx.analyses);

  TablePrinter table(
      "Table 3 — largest connected component of the query graphs");
  table.SetHeader({"metric", "min", "q1", "median", "q3", "max",
                   "paper (min q1 med q3 max)"});
  table.AddRow(Row("%size", report.relative_size,
                   "0.164 0.477 0.587 0.688 1"));
  table.AddRow(Row("%query nodes", report.query_node_ratio, "0 1 1 1 1"));
  table.AddRow(Row("%articles", report.article_ratio,
                   "0.025 0.148 0.217 0.269 0.5"));
  table.AddRow(Row("%categories", report.category_ratio,
                   "0.5 0.731 0.783 0.852 0.975"));
  table.AddRow(Row("expansion ratio", report.expansion_ratio,
                   "0 2.125 4.5 23.750 176"));
  table.Print();
  return 0;
}
