/// \file fig6_cycle_counts.cc
/// \brief E5 — regenerates Figure 6: average number of cycles vs length.
///
/// Paper reference: 2 → 1.56, 3 → 9.1, 4 → 35.22, 5 → 136.84
/// (roughly geometric growth with length).

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::LengthSeries series = analysis::ComputeFig6(ctx.analyses);

  static const char* kPaper[] = {"1.56", "9.1", "35.22", "136.84"};
  TablePrinter table("Figure 6 — average number of cycles vs cycle length");
  table.SetHeader({"cycle length", "avg cycles per query", "paper"});
  for (size_t i = 0; i < series.lengths.size(); ++i) {
    table.AddRow({std::to_string(series.lengths[i]),
                  FormatDouble(series.values[i], 2), kPaper[i]});
  }
  table.Print();
  return 0;
}
