/// \file fig7b_extra_edge_density.cc
/// \brief E7 — regenerates Figure 7b: average density of extra edges vs
/// cycle length.
///
/// Paper reference: 3 → 0.289, 4 → 0.38, 5 → 0.333 (length 4 densest,
/// length 3 least dense).

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::LengthSeries series = analysis::ComputeFig7b(ctx.analyses);

  static const char* kPaper[] = {"0.289", "0.38", "0.333"};
  TablePrinter table(
      "Figure 7b — average density of extra edges vs cycle length");
  table.SetHeader({"cycle length", "avg extra-edge density", "paper"});
  for (size_t i = 0; i < series.lengths.size(); ++i) {
    table.AddRow({std::to_string(series.lengths[i]),
                  FormatDouble(series.values[i], 3), kPaper[i]});
  }
  table.Print();
  return 0;
}
