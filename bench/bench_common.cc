#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace wqe::bench {

namespace {

uint32_t EnvOr(const char* name, uint32_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  long parsed = std::atol(value);
  return parsed > 0 ? static_cast<uint32_t>(parsed) : fallback;
}

}  // namespace

groundtruth::PipelineOptions BenchPipelineOptions() {
  groundtruth::PipelineOptions options;
  options.wiki.num_domains = EnvOr("WQE_BENCH_DOMAINS", 50);
  options.wiki.seed = EnvOr("WQE_BENCH_SEED", 42);
  options.track.num_topics = EnvOr("WQE_BENCH_TOPICS", 50);
  options.track.seed = options.wiki.seed + 7;
  // Analysis parallelism (topic fan-out + in-ball enumeration); results
  // are bit-identical at any setting, so this only moves wall-clock.
  options.num_threads = EnvOr("WQE_BENCH_THREADS", 1);
  return options;
}

api::TestbedOptions BenchTestbedOptions() {
  return api::TestbedOptions::FromPipelineOptions(BenchPipelineOptions());
}

void AddEvaluationRow(const api::SystemEvaluation& eval,
                      const std::string& label, TablePrinter* table) {
  table->AddRow({label.empty() ? eval.name : label,
                 FormatDouble(eval.mean_precision[0], 3),
                 FormatDouble(eval.mean_precision[1], 3),
                 FormatDouble(eval.mean_precision[2], 3),
                 FormatDouble(eval.mean_precision[3], 3),
                 FormatDouble(eval.mean_o, 3),
                 FormatDouble(eval.mean_features, 1)});
}

void BenchJsonWriter::Add(const std::string& name, const std::string& metric,
                          double value, const std::string& config) {
  WQE_CHECK(std::isfinite(value));
  records_.push_back(Record{name, metric, value, config});
}

void BenchJsonWriter::Write() const {
  const std::string path = "BENCH_" + bench_ + ".json";
  std::ostringstream out;
  out << "{\"bench\": \"" << bench_ << "\", \"results\": [";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) out << ",";
    char value[64];
    std::snprintf(value, sizeof(value), "%.17g", r.value);
    out << "\n  {\"name\": \"" << r.name << "\", \"metric\": \"" << r.metric
        << "\", \"value\": " << value << ", \"config\": \"" << r.config
        << "\"}";
  }
  out << "\n]}\n";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  WQE_CHECK(file.good());
  file << out.str();
  WQE_CHECK(file.good());
  WQE_LOG(Info) << "bench results written to " << path;
}

std::vector<uint32_t> ZipfianRequestMix(size_t count, uint32_t num_distinct,
                                        double s, uint64_t seed) {
  WQE_CHECK(num_distinct > 0);
  // Explicit rank weights 1/(r+1)^s drawn by weighted choice: exact for
  // the small alphabets load mixes use (topics, not articles), and keeps
  // a long tail — rank 0 of a 50-topic s=1 mix gets ~22%, not ~99%.
  std::vector<double> weights(num_distinct);
  for (uint32_t r = 0; r < num_distinct; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
  }
  Rng rng(seed);
  std::vector<uint32_t> mix;
  mix.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    mix.push_back(static_cast<uint32_t>(rng.WeightedChoice(weights)));
  }
  return mix;
}

const api::Testbed& GetBenchTestbed() {
  static const api::Testbed* kTestbed = [] {
    Stopwatch watch;
    auto bed = api::Testbed::Build(BenchTestbedOptions());
    WQE_CHECK_OK(bed.status());
    WQE_LOG(Info) << "bench testbed: engine built in "
                  << watch.ElapsedSeconds() << "s";
    return bed->release();
  }();
  return *kTestbed;
}

const BenchContext& GetBenchContext() {
  static const BenchContext* kContext = [] {
    auto* ctx = new BenchContext();
    Stopwatch watch;
    groundtruth::PipelineOptions options = BenchPipelineOptions();

    auto pipeline = groundtruth::Pipeline::Build(options);
    WQE_CHECK_OK(pipeline.status());
    ctx->pipeline = std::move(*pipeline);
    WQE_LOG(Info) << "bench context: pipeline built in "
                  << watch.ElapsedSeconds() << "s";

    watch.Reset();
    groundtruth::XqOptimizerOptions xq;
    xq.restarts = 1;
    xq.enable_swap = false;  // ADD/REMOVE climbs well; SWAP is O(|A'|·|C|)
    groundtruth::GroundTruthBuilder builder(ctx->pipeline.get(), xq);
    auto gt = builder.Build();
    WQE_CHECK_OK(gt.status());
    ctx->gt = std::move(*gt);
    WQE_LOG(Info) << "bench context: ground truth built in "
                  << watch.ElapsedSeconds() << "s";

    watch.Reset();
    analysis::QueryGraphAnalyzer analyzer(ctx->pipeline.get(), &ctx->gt);
    auto analyses = analyzer.AnalyzeAll();
    WQE_CHECK_OK(analyses.status());
    ctx->analyses = std::move(*analyses);
    WQE_LOG(Info) << "bench context: query graphs analyzed in "
                  << watch.ElapsedSeconds() << "s";
    return ctx;
  }();
  return *kContext;
}

}  // namespace wqe::bench
