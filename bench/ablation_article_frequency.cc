/// \file ablation_article_frequency.cc
/// \brief E12 — the paper's §4 open problem: is the frequency of an
/// article in the cycles correlated with the goodness of its title as an
/// expansion feature?
///
/// The paper leaves this unmeasured ("Such correlation, if existing,
/// could be exploited"). We measure it: for every non-query article of
/// every query graph, cycle frequency vs the O-gain of adding that
/// article alone.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  auto report = analysis::ComputeArticleFrequencyCorrelation(
      *ctx.pipeline, ctx.gt, ctx.analyses);
  WQE_CHECK_OK(report.status());

  TablePrinter table("E12 — article cycle-frequency vs expansion goodness");
  table.SetHeader({"metric", "value"});
  table.AddRow({"articles measured", std::to_string(report->num_articles)});
  table.AddRow({"Pearson correlation", FormatDouble(report->pearson, 3)});
  table.AddRow({"trend slope (pp per cycle)",
                FormatDouble(report->trend.slope, 3)});
  table.AddRow({"mean gain, frequent half (pp)",
                FormatDouble(report->mean_gain_frequent, 2)});
  table.AddRow({"mean gain, rare half (pp)",
                FormatDouble(report->mean_gain_rare, 2)});
  table.Print();
  std::printf(
      "\npaper: unmeasured open problem (§4); a positive correlation means "
      "cycle frequency is an exploitable ranking signal.\n");
  return 0;
}
