/// \file perf_batched_query.cc
/// \brief E12 — batched serving through the `api::Engine` facade.
///
/// Serves the full 50-topic track twice: once as 50 sequential `Query`
/// calls and once as a single `QueryBatch`.  Verifies (hard asserts, not
/// just reporting) that
///
///   1. the rankings are identical document-for-document, and
///   2. the batch constructs the expansion strategy once, while the
///      sequential path pays that setup per call (the engine's
///      `expanders_constructed` counter).
///
/// Then reports the wall-clock for both paths.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

using namespace wqe;

namespace {

std::vector<api::QueryRequest> TrackRequests(const api::Testbed& bed) {
  std::vector<api::QueryRequest> requests;
  requests.reserve(bed.num_topics());
  for (size_t t = 0; t < bed.num_topics(); ++t) {
    api::QueryRequest request;
    request.keywords = bed.topic(t).keywords;
    request.expander = "cycle";
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main() {
  const api::Testbed& bed = bench::GetBenchTestbed();
  const api::Engine& engine = bed.engine();
  const std::vector<api::QueryRequest> requests = TrackRequests(bed);

  // Sequential: one Query per topic.
  size_t constructed_before = engine.stats().expanders_constructed;
  Stopwatch watch;
  std::vector<api::QueryResponse> sequential;
  sequential.reserve(requests.size());
  for (const api::QueryRequest& request : requests) {
    auto response = engine.Query(request);
    WQE_CHECK_OK(response.status());
    sequential.push_back(std::move(*response));
  }
  double sequential_ms = watch.ElapsedMillis();
  size_t sequential_constructed =
      engine.stats().expanders_constructed - constructed_before;

  // Batched: one QueryBatch over the whole track.
  constructed_before = engine.stats().expanders_constructed;
  watch.Reset();
  auto batch = engine.QueryBatch(requests);
  WQE_CHECK_OK(batch.status());
  double batch_ms = watch.ElapsedMillis();
  size_t batch_constructed =
      engine.stats().expanders_constructed - constructed_before;

  // Hard correctness checks: identical rankings, amortized setup.
  WQE_CHECK(batch->size() == sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    WQE_CHECK((*batch)[i].docs == sequential[i].docs);
    WQE_CHECK((*batch)[i].expansion.titles == sequential[i].expansion.titles);
  }
  WQE_CHECK(sequential_constructed == requests.size());
  WQE_CHECK(batch_constructed == 1);

  TablePrinter table("E12 — batched vs sequential query serving");
  table.SetHeader({"path", "queries", "expanders built", "total ms",
                   "ms/query"});
  table.AddRow({"sequential Query", std::to_string(requests.size()),
                std::to_string(sequential_constructed),
                FormatDouble(sequential_ms, 1),
                FormatDouble(sequential_ms /
                                 static_cast<double>(requests.size()),
                             2)});
  table.AddRow({"QueryBatch", std::to_string(requests.size()),
                std::to_string(batch_constructed), FormatDouble(batch_ms, 1),
                FormatDouble(batch_ms / static_cast<double>(requests.size()),
                             2)});
  table.Print();
  std::printf("\nrankings identical across %zu topics; batch amortizes "
              "strategy setup %zux\n",
              sequential.size(), sequential_constructed);

  const std::string config = "topics=" + std::to_string(requests.size());
  bench::BenchJsonWriter json("perf_batched_query");
  json.Add("sequential_query", "total_ms", sequential_ms, config);
  json.Add("sequential_query", "expanders_constructed",
           static_cast<double>(sequential_constructed), config);
  json.Add("query_batch", "total_ms", batch_ms, config);
  json.Add("query_batch", "expanders_constructed",
           static_cast<double>(batch_constructed), config);
  json.Add("query_batch", "speedup_vs_sequential", sequential_ms / batch_ms,
           config);
  json.Write();
  return 0;
}
