/// \file perf_cycle_enumeration.cc
/// \brief E9 (part 2) — cycle-enumeration cost (google-benchmark).
///
/// The paper reports that enumerating undirected cycles of length ≤ 5 on
/// query graphs of ~208 nodes took ~6 minutes per query on a graph
/// database, and argues this is the open performance challenge.  These
/// benchmarks measure our in-memory enumerator on (a) generated query
/// graphs and (b) growing knowledge-base balls, sweeping the maximum cycle
/// length to expose the exponential growth.

#include <benchmark/benchmark.h>

#include "common/macros.h"
#include "graph/cycles.h"
#include "graph/undirected_view.h"
#include "wiki/synthetic.h"

namespace {

using namespace wqe;

const wiki::SyntheticWikipedia& SharedWiki() {
  static const wiki::SyntheticWikipedia* kWiki = [] {
    wiki::SyntheticWikipediaOptions options;
    options.num_domains = 50;
    auto result = wiki::GenerateSyntheticWikipedia(options);
    WQE_CHECK_OK(result.status());
    return new wiki::SyntheticWikipedia(std::move(result).ValueOrDie());
  }();
  return *kWiki;
}

/// Enumerate cycles (≤ max_length) in a radius-2 ball around a domain hub.
void BM_CycleEnumerationBall(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  uint32_t max_length = static_cast<uint32_t>(state.range(0));
  size_t ball_cap = static_cast<size_t>(state.range(1));

  std::vector<graph::NodeId> seeds = {wiki.domain_articles[0][0],
                                      wiki.domain_articles[0][1]};
  std::vector<graph::NodeId> ball =
      wiki.kb.Neighborhood(seeds, 2, ball_cap);
  graph::UndirectedView view(wiki.kb.graph(), ball);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions options;
  options.max_length = max_length;
  options.seeds = seeds;

  size_t cycles = 0;
  for (auto _ : state) {
    cycles = enumerator.Visit(
        options, [](const std::vector<uint32_t>&) { return true; });
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["nodes"] = static_cast<double>(view.num_nodes());
  state.counters["cycles"] = static_cast<double>(cycles);
}

BENCHMARK(BM_CycleEnumerationBall)
    ->ArgsProduct({{3, 4, 5}, {100, 200, 400}})
    ->Unit(benchmark::kMillisecond);

/// Triangle counting on the same balls, for comparison.
void BM_TriangleBaseline(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  size_t ball_cap = static_cast<size_t>(state.range(0));
  std::vector<graph::NodeId> seeds = {wiki.domain_articles[0][0]};
  std::vector<graph::NodeId> ball = wiki.kb.Neighborhood(seeds, 2, ball_cap);
  graph::UndirectedView view(wiki.kb.graph(), ball);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions options;
  options.min_length = 3;
  options.max_length = 3;

  for (auto _ : state) {
    size_t n = enumerator.Visit(
        options, [](const std::vector<uint32_t>&) { return true; });
    benchmark::DoNotOptimize(n);
  }
}

BENCHMARK(BM_TriangleBaseline)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// View construction cost (the per-query preprocessing).
void BM_UndirectedViewBuild(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  std::vector<graph::NodeId> seeds = {wiki.domain_articles[0][0]};
  std::vector<graph::NodeId> ball =
      wiki.kb.Neighborhood(seeds, 2, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    graph::UndirectedView view(wiki.kb.graph(), ball);
    benchmark::DoNotOptimize(view.num_nodes());
  }
}

BENCHMARK(BM_UndirectedViewBuild)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
