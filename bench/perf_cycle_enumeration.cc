/// \file perf_cycle_enumeration.cc
/// \brief E9 (part 2) — cycle-enumeration cost (google-benchmark).
///
/// The paper reports that enumerating undirected cycles of length ≤ 5 on
/// query graphs of ~208 nodes took ~6 minutes per query on a graph
/// database, and argues this is the open performance challenge.  These
/// benchmarks measure the enumerator over the frozen `graph::CsrGraph`
/// snapshot on growing knowledge-base balls, sweeping the maximum cycle
/// length to expose the exponential growth — and run the *same* workload
/// on a faithful replica of the seed representation (per-node
/// `std::vector` adjacency built through hash maps, linear neighbor
/// scans, hash-map multiplicity lookups) so the CSR speedup is measured
/// in-binary on identical input.
///
/// The parallel variants sweep the enumeration across 1/2/4/8 threads on
/// a shared `serve::ThreadPool` (the E9 lever: canonical start ranges are
/// independent), hard-asserting before timing that every thread count
/// produces the bit-identical canonical cycle sequence the sequential
/// enumerator does.
///
/// Alongside the console table the binary writes
/// `BENCH_perf_cycle_enumeration.json` (see bench_common.h) with one
/// record per run plus derived `speedup_vs_legacy` and
/// `speedup_vs_sequential` records.  On a host with >= 4 hardware
/// threads, the 4-thread sweep must reach a 1.5x best-config speedup
/// (hard WQE_CHECK; single-core CI containers skip the gate —
/// enumeration still runs and the identity asserts still bite).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/undirected_view.h"
#include "serve/thread_pool.h"
#include "wiki/synthetic.h"

namespace {

using namespace wqe;

const wiki::SyntheticWikipedia& SharedWiki() {
  static const wiki::SyntheticWikipedia* kWiki = [] {
    wiki::SyntheticWikipediaOptions options;
    options.num_domains = 50;
    auto result = wiki::GenerateSyntheticWikipedia(options);
    WQE_CHECK_OK(result.status());
    auto* wiki = new wiki::SyntheticWikipedia(std::move(result).ValueOrDie());
    wiki->kb.Freeze();  // one snapshot shared by every benchmark
    return wiki;
  }();
  return *kWiki;
}

/// One workload definition shared by the CSR and legacy variants — the
/// speedup_vs_legacy records are only meaningful on identical input.
struct BallWorkload {
  std::vector<graph::NodeId> seeds;
  std::vector<graph::NodeId> ball;
};

BallWorkload SharedBall(size_t ball_cap) {
  const auto& wiki = SharedWiki();
  BallWorkload w;
  w.seeds = {wiki.domain_articles[0][0], wiki.domain_articles[0][1]};
  w.ball = wiki.kb.Neighborhood(w.seeds, 2, ball_cap);
  return w;
}

// ---------------------------------------------------------------- legacy
// Faithful replica of the seed-era structures: `UndirectedView` built by
// hashing every directed edge into a pair-multiplicity map, and the DFS
// that scans the full neighbor list at every depth.  Kept here purely as
// the measurement baseline for the CSR refactor.

struct LegacyView {
  const graph::PropertyGraph* graph;
  std::vector<graph::NodeId> global;
  std::unordered_map<graph::NodeId, uint32_t> local;
  std::vector<std::vector<uint32_t>> adj;
  std::unordered_map<uint64_t, uint32_t> multiplicity;

  static uint64_t PairKey(uint32_t u, uint32_t v) {
    uint32_t lo = std::min(u, v);
    uint32_t hi = std::max(u, v);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  LegacyView(const graph::PropertyGraph& g,
             const std::vector<graph::NodeId>& nodes)
      : graph(&g) {
    global.reserve(nodes.size());
    for (graph::NodeId n : nodes) {
      if (local.emplace(n, static_cast<uint32_t>(global.size())).second) {
        global.push_back(n);
      }
    }
    adj.assign(global.size(), {});
    for (uint32_t lu = 0; lu < global.size(); ++lu) {
      for (const graph::Edge& e : g.OutEdges(global[lu])) {
        if (e.kind == graph::EdgeKind::kRedirect) continue;
        auto it = local.find(e.dst);
        if (it == local.end() || it->second == lu) continue;
        ++multiplicity[PairKey(lu, it->second)];
      }
    }
    for (const auto& [key, count] : multiplicity) {
      (void)count;
      uint32_t lo = static_cast<uint32_t>(key >> 32);
      uint32_t hi = static_cast<uint32_t>(key & 0xFFFFFFFFu);
      adj[lo].push_back(hi);
      adj[hi].push_back(lo);
    }
    for (auto& neigh : adj) std::sort(neigh.begin(), neigh.end());
  }

  uint32_t Multiplicity(uint32_t u, uint32_t v) const {
    auto it = multiplicity.find(PairKey(u, v));
    return it == multiplicity.end() ? 0 : it->second;
  }
};

struct LegacyDfs {
  const LegacyView* view;
  uint32_t max_length;
  std::vector<bool> is_seed;
  std::vector<bool> on_path;
  std::vector<uint32_t> path;
  size_t emitted = 0;

  void Emit() {
    for (uint32_t v : path) {
      if (is_seed[v]) {
        ++emitted;
        return;
      }
    }
  }

  void Extend(uint32_t start, uint32_t u) {
    for (uint32_t v : view->adj[u]) {  // full-row scan, as in the seed
      if (v <= start) {
        if (v == start && path.size() >= 3 && path[1] < path.back()) Emit();
        continue;
      }
      if (on_path[v]) continue;
      if (path.size() >= max_length) continue;
      path.push_back(v);
      on_path[v] = true;
      Extend(start, v);
      on_path[v] = false;
      path.pop_back();
    }
  }

  size_t Run(const std::vector<graph::NodeId>& seeds) {
    const uint32_t n = static_cast<uint32_t>(view->global.size());
    is_seed.assign(n, false);
    for (graph::NodeId g : seeds) {
      auto it = view->local.find(g);
      if (it != view->local.end()) is_seed[it->second] = true;
    }
    on_path.assign(n, false);
    emitted = 0;
    for (uint32_t u = 0; u < n; ++u) {  // length-2: parallel pairs
      for (uint32_t v : view->adj[u]) {
        if (v <= u) continue;
        if (view->Multiplicity(u, v) >= 2) {
          path = {u, v};
          Emit();
        }
      }
    }
    path.clear();
    for (uint32_t s = 0; s < n; ++s) {
      path.assign(1, s);
      on_path[s] = true;
      Extend(s, s);
      on_path[s] = false;
    }
    return emitted;
  }
};

// ------------------------------------------------------------ benchmarks

/// Enumerate cycles (≤ max_length) in a radius-2 ball around a domain hub,
/// over the frozen CSR snapshot.
void BM_CycleEnumerationBall(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  uint32_t max_length = static_cast<uint32_t>(state.range(0));
  BallWorkload workload = SharedBall(static_cast<size_t>(state.range(1)));
  graph::UndirectedView view(wiki.kb.csr(), workload.ball);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions options;
  options.max_length = max_length;
  options.seeds = workload.seeds;

  size_t cycles = 0;
  for (auto _ : state) {
    cycles = enumerator.Visit(
        options, [](const std::vector<uint32_t>&) { return true; });
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["nodes"] = static_cast<double>(view.num_nodes());
  state.counters["cycles"] = static_cast<double>(cycles);
}

BENCHMARK(BM_CycleEnumerationBall)
    ->ArgsProduct({{3, 4, 5}, {100, 200, 400}})
    ->Unit(benchmark::kMillisecond);

/// The identical workload on the seed-era representation.
void BM_CycleEnumerationBallLegacy(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  uint32_t max_length = static_cast<uint32_t>(state.range(0));
  BallWorkload workload = SharedBall(static_cast<size_t>(state.range(1)));
  LegacyView view(wiki.kb.graph(), workload.ball);
  LegacyDfs dfs;
  dfs.view = &view;
  dfs.max_length = max_length;

  size_t cycles = 0;
  for (auto _ : state) {
    cycles = dfs.Run(workload.seeds);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["nodes"] = static_cast<double>(view.global.size());
  state.counters["cycles"] = static_cast<double>(cycles);
}

BENCHMARK(BM_CycleEnumerationBallLegacy)
    ->ArgsProduct({{3, 4, 5}, {100, 200, 400}})
    ->Unit(benchmark::kMillisecond);

/// Thread-scaling sweep: the same ball workload with the enumeration
/// sharded across a shared pool.  Before timing, the parallel output is
/// hard-asserted bit-identical (cycles AND order) to the sequential
/// enumerator at this thread count — the bench refuses to measure a
/// wrong kernel.
void BM_CycleEnumerationBallParallel(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  uint32_t max_length = static_cast<uint32_t>(state.range(1));
  BallWorkload workload = SharedBall(static_cast<size_t>(state.range(2)));
  graph::UndirectedView view(wiki.kb.csr(), workload.ball);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions options;
  options.max_length = max_length;
  options.seeds = workload.seeds;
  options.num_threads = threads;
  // One long-lived pool, as a serving deployment would run: caller +
  // (threads - 1) workers enumerate.
  std::unique_ptr<serve::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<serve::ThreadPool>(threads - 1);
    options.pool = pool.get();
  }

  {
    graph::CycleEnumerationOptions sequential = options;
    sequential.num_threads = 1;
    sequential.pool = nullptr;
    std::vector<graph::Cycle> want = enumerator.Enumerate(sequential);
    std::vector<graph::Cycle> got = enumerator.Enumerate(options);
    WQE_CHECK(want.size() == got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      WQE_CHECK(want[i].nodes == got[i].nodes);
    }
  }

  size_t cycles = 0;
  for (auto _ : state) {
    cycles = enumerator.Visit(
        options, [](const std::vector<uint32_t>&) { return true; });
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["nodes"] = static_cast<double>(view.num_nodes());
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["threads"] = static_cast<double>(threads);
}

BENCHMARK(BM_CycleEnumerationBallParallel)
    ->ArgsProduct({{1, 2, 4, 8}, {3, 5}, {100, 400}})
    ->Unit(benchmark::kMillisecond);

/// Triangle counting on the same balls, for comparison.
void BM_TriangleBaseline(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  BallWorkload workload = SharedBall(static_cast<size_t>(state.range(0)));
  graph::UndirectedView view(wiki.kb.csr(), workload.ball);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions options;
  options.min_length = 3;
  options.max_length = 3;

  for (auto _ : state) {
    size_t n = enumerator.Visit(
        options, [](const std::vector<uint32_t>&) { return true; });
    benchmark::DoNotOptimize(n);
  }
}

BENCHMARK(BM_TriangleBaseline)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// View construction cost (the per-query preprocessing): CSR slicing vs
/// the seed's hash-map rebuild.
void BM_UndirectedViewBuild(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  BallWorkload workload = SharedBall(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    graph::UndirectedView view(wiki.kb.csr(), workload.ball);
    benchmark::DoNotOptimize(view.num_nodes());
  }
}

BENCHMARK(BM_UndirectedViewBuild)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void BM_UndirectedViewBuildLegacy(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  BallWorkload workload = SharedBall(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    LegacyView view(wiki.kb.graph(), workload.ball);
    benchmark::DoNotOptimize(view.global.size());
  }
}

BENCHMARK(BM_UndirectedViewBuildLegacy)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

/// One-off snapshot compilation cost (paid once per KB build).
void BM_CsrFreeze(benchmark::State& state) {
  const auto& wiki = SharedWiki();
  for (auto _ : state) {
    graph::CsrGraph csr = graph::CsrGraph::Freeze(wiki.kb.graph());
    benchmark::DoNotOptimize(csr.num_edges());
  }
  state.counters["nodes"] =
      static_cast<double>(wiki.kb.graph().num_nodes());
  state.counters["edges"] =
      static_cast<double>(wiki.kb.graph().num_edges());
}

BENCHMARK(BM_CsrFreeze)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- reporter

/// Console output plus record collection for BENCH_<name>.json.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::string full = run.benchmark_name();
      std::string name = full;
      std::string config;
      if (size_t slash = full.find('/'); slash != std::string::npos) {
        name = full.substr(0, slash);
        config = full.substr(slash + 1);
      }
      std::string unit = benchmark::GetTimeUnitString(run.time_unit);
      records_.emplace_back(name, "real_time_" + unit,
                            run.GetAdjustedRealTime(), config);
      for (const auto& [counter, value] : run.counters) {
        records_.emplace_back(name, counter, value.value, config);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

  /// Writes BENCH_perf_cycle_enumeration.json, deriving CSR-vs-legacy
  /// speedups for every config both variants ran and parallel-vs-
  /// sequential speedups for every thread-sweep config whose sequential
  /// twin ran.  On a >= 4-core host the 4-thread sweep is gated: its
  /// best-config speedup must reach 1.5x or the bench aborts.
  void WriteJson() const {
    bench::BenchJsonWriter json("perf_cycle_enumeration");
    std::map<std::string, double> csr_ms;
    std::map<std::string, double> legacy_ms;
    std::map<std::string, double> parallel_ms;  // "threads/len/ball"
    for (const auto& [name, metric, value, config] : records_) {
      json.Add(name, metric, value, config);
      if (metric.rfind("real_time_", 0) == 0) {
        if (name == "BM_CycleEnumerationBall") csr_ms[config] = value;
        if (name == "BM_CycleEnumerationBallLegacy") legacy_ms[config] = value;
        if (name == "BM_CycleEnumerationBallParallel") {
          parallel_ms[config] = value;
        }
      }
    }
    for (const auto& [config, legacy] : legacy_ms) {
      auto it = csr_ms.find(config);
      if (it == csr_ms.end() || it->second <= 0.0) continue;
      json.Add("BM_CycleEnumerationBall", "speedup_vs_legacy",
               legacy / it->second, config);
    }
    double best_at_4 = 0.0;
    for (const auto& [config, par] : parallel_ms) {
      // "threads/len/ball" -> the sequential twin is "len/ball".
      size_t slash = config.find('/');
      if (slash == std::string::npos || par <= 0.0) continue;
      auto it = csr_ms.find(config.substr(slash + 1));
      if (it == csr_ms.end()) continue;
      double speedup = it->second / par;
      json.Add("BM_CycleEnumerationBallParallel", "speedup_vs_sequential",
               speedup, config);
      if (config.substr(0, slash) == "4") {
        best_at_4 = std::max(best_at_4, speedup);
      }
    }
    json.Write();
    // The E9 acceptance gate.  Gated on real cores: a 1-vCPU CI container
    // time-slices the "threads", which measures scheduling, not scaling.
    if (std::thread::hardware_concurrency() >= 4 && best_at_4 > 0.0) {
      std::cerr << "parallel enumeration speedup at 4 threads (best config): "
                << best_at_4 << "x" << std::endl;
      WQE_CHECK(best_at_4 >= 1.5);
    }
  }

 private:
  struct Record {
    std::string name;
    std::string metric;
    double value;
    std::string config;

    Record(std::string n, std::string m, double v, std::string c)
        : name(std::move(n)), metric(std::move(m)), value(v),
          config(std::move(c)) {}
  };
  std::vector<Record> records_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.WriteJson();
  benchmark::Shutdown();
  return 0;
}
