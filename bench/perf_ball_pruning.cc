/// \file perf_ball_pruning.cc
/// \brief E14 — semijoin-guided ball pruning vs raw enumeration.
///
/// Measures `CycleEnumerationOptions::prune_ball` on three hub-heavy ball
/// shapes where most nodes cannot sit on a qualifying cycle:
///
///   1. `hub_pendants` — a dense core behind a hub that also carries
///      hundreds of peelable pendant chains (every DFS step through the
///      hub re-scans them all without pruning);
///   2. `two_hop_shell` — a seed ringed by spokes at distance 1 and a
///      dense cycle-rich shell at distance 2: at L = 3 the distance
///      filter (radius ⌊L/2⌋ = 1) removes the entire shell, whose
///      triangles the unpruned DFS enumerates only to discard at the
///      seed check;
///   3. `zipf_pendants` — a hub-skewed random schema graph decorated
///      with pendant chains, pruned by peeling alone (no seeds).
///
/// Hard correctness gates (aborts, not just reporting):
///   - pruned and unpruned enumeration produce identical cycle vectors
///     (set AND order) on every config before anything is timed;
///   - at least one config reaches the >= 1.3x `speedup_vs_unpruned`
///     acceptance bar (the win is from skipped work, not parallelism, so
///     it holds on any machine).
///
/// The survivor slice is materialized with `graph::InduceCsr` to report
/// how many *edges* pruning removed, alongside the node-level
/// `survivor_fraction` the obs registry exports.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "graph/ball_prune.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/subgraph.h"
#include "graph/undirected_view.h"

using namespace wqe;
using graph::EdgeKind;
using graph::NodeId;
using graph::NodeKind;
using graph::PropertyGraph;

namespace {

struct BallConfig {
  std::string name;
  PropertyGraph g;
  std::vector<NodeId> seeds;
  uint32_t max_length = 5;
};

NodeId AddArticle(PropertyGraph* g, const std::string& label) {
  return g->AddNode(NodeKind::kArticle, label);
}

/// Dense K_core behind a hub that also carries `chains` pendant chains of
/// three articles each: pure peeling overhead for every DFS through the
/// hub's row.
BallConfig HubPendants(uint32_t core, uint32_t chains) {
  BallConfig cfg;
  cfg.name = "hub_pendants";
  cfg.max_length = 4;
  for (uint32_t i = 0; i < core; ++i) {
    AddArticle(&cfg.g, "core" + std::to_string(i));
  }
  for (uint32_t i = 0; i < core; ++i) {
    for (uint32_t j = i + 1; j < core; ++j) {
      WQE_CHECK_OK(cfg.g.AddEdge(i, j, EdgeKind::kLink));
    }
  }
  const NodeId hub = AddArticle(&cfg.g, "hub");
  for (uint32_t i = 0; i < core; ++i) {
    WQE_CHECK_OK(cfg.g.AddEdge(i, hub, EdgeKind::kLink));
  }
  for (uint32_t c = 0; c < chains; ++c) {
    NodeId prev = hub;
    for (int hop = 0; hop < 3; ++hop) {
      NodeId leaf = AddArticle(
          &cfg.g, "p" + std::to_string(c) + "_" + std::to_string(hop));
      WQE_CHECK_OK(cfg.g.AddEdge(prev, leaf, EdgeKind::kLink));
      prev = leaf;
    }
  }
  cfg.seeds = {0, 1};
  return cfg;
}

/// Seed + spoke ring at distance 1, dense K_shell at distance 2.  With
/// L = 3 the BFS radius is 1: the whole shell — where almost all of the
/// graph's triangles live — is pruned.
BallConfig TwoHopShell(uint32_t spokes, uint32_t shell) {
  BallConfig cfg;
  cfg.name = "two_hop_shell";
  cfg.max_length = 3;
  const NodeId s = AddArticle(&cfg.g, "seed");
  for (uint32_t i = 0; i < spokes; ++i) {
    NodeId a = AddArticle(&cfg.g, "spoke" + std::to_string(i));
    WQE_CHECK_OK(cfg.g.AddEdge(s, a, EdgeKind::kLink));
    if (i > 0) WQE_CHECK_OK(cfg.g.AddEdge(a - 1, a, EdgeKind::kLink));
  }
  const NodeId shell_base = AddArticle(&cfg.g, "shell0");
  for (uint32_t i = 1; i < shell; ++i) {
    AddArticle(&cfg.g, "shell" + std::to_string(i));
  }
  for (uint32_t i = 0; i < shell; ++i) {
    for (uint32_t j = i + 1; j < shell; ++j) {
      WQE_CHECK_OK(
          cfg.g.AddEdge(shell_base + i, shell_base + j, EdgeKind::kLink));
    }
  }
  // Every spoke reaches into the shell, so the shell really is part of
  // the radius-2 ball around the seed.
  for (uint32_t i = 1; i <= spokes; ++i) {
    WQE_CHECK_OK(
        cfg.g.AddEdge(s + i, shell_base + (i % shell), EdgeKind::kLink));
  }
  cfg.seeds = {s};
  return cfg;
}

/// Hub-skewed random article/category graph (quadratic endpoint bias, as
/// in the cycle tests) decorated with pendant chains off every other
/// node; no seeds, so peeling alone carries the pruning.
BallConfig ZipfPendants(uint64_t seed, uint32_t articles, uint32_t categories,
                        uint32_t edges) {
  BallConfig cfg;
  cfg.name = "zipf_pendants";
  cfg.max_length = 5;
  Rng rng(seed);
  for (uint32_t i = 0; i < articles; ++i) {
    AddArticle(&cfg.g, "a" + std::to_string(i));
  }
  for (uint32_t i = 0; i < categories; ++i) {
    cfg.g.AddNode(NodeKind::kCategory, "c" + std::to_string(i));
  }
  const uint32_t n = articles + categories;
  for (uint32_t e = 0; e < edges; ++e) {
    uint64_t x = rng.Uniform(n);
    uint32_t u = static_cast<uint32_t>(x * x / n);
    uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u == v) continue;
    if (cfg.g.IsArticle(u) && cfg.g.IsArticle(v)) {
      (void)cfg.g.AddEdge(u, v, EdgeKind::kLink);
    } else if (cfg.g.IsArticle(u) && cfg.g.IsCategory(v)) {
      (void)cfg.g.AddEdge(u, v, EdgeKind::kBelongs);
    } else if (cfg.g.IsCategory(u) && cfg.g.IsCategory(v)) {
      (void)cfg.g.AddEdge(u, v, EdgeKind::kInside);
    }
  }
  for (uint32_t anchor = 0; anchor < n; anchor += 2) {
    NodeId prev = anchor;
    for (int hop = 0; hop < 3; ++hop) {
      NodeId leaf = AddArticle(&cfg.g, "p" + std::to_string(anchor) + "_" +
                                           std::to_string(hop));
      if (cfg.g.IsArticle(prev)) {
        WQE_CHECK_OK(cfg.g.AddEdge(prev, leaf, EdgeKind::kLink));
      } else {
        WQE_CHECK_OK(cfg.g.AddEdge(leaf, prev, EdgeKind::kBelongs));
      }
      prev = leaf;
    }
  }
  return cfg;
}

std::vector<std::vector<NodeId>> CycleNodes(
    const std::vector<graph::Cycle>& cycles) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(cycles.size());
  for (const graph::Cycle& c : cycles) out.push_back(c.nodes);
  return out;
}

}  // namespace

int main() {
  std::vector<BallConfig> configs;
  configs.push_back(HubPendants(/*core=*/10, /*chains=*/400));
  configs.push_back(TwoHopShell(/*spokes=*/24, /*shell=*/48));
  configs.push_back(ZipfPendants(/*seed=*/42, /*articles=*/40,
                                 /*categories=*/12, /*edges=*/420));

  TablePrinter table("E14 — ball pruning vs raw enumeration");
  table.SetHeader({"config", "nodes", "alive", "edges", "alive edges",
                   "cycles", "unpruned ms", "pruned ms", "speedup"});
  bench::BenchJsonWriter json("perf_ball_pruning");

  double best_speedup = 0.0;
  for (BallConfig& cfg : configs) {
    graph::CsrGraph csr = graph::CsrGraph::Freeze(cfg.g);
    graph::UndirectedView view(csr);
    graph::CycleEnumerator enumerator(view);

    graph::CycleEnumerationOptions unpruned;
    unpruned.max_length = cfg.max_length;
    unpruned.seeds = cfg.seeds;
    unpruned.prune_ball = false;
    graph::CycleEnumerationOptions pruned = unpruned;
    pruned.prune_ball = true;

    // Hard identity gate before any timing: same cycles, same order.
    std::vector<std::vector<NodeId>> want =
        CycleNodes(enumerator.Enumerate(unpruned));
    std::vector<std::vector<NodeId>> got =
        CycleNodes(enumerator.Enumerate(pruned));
    WQE_CHECK(want == got);

    // Survivor slice (the CSR-native subgraph): how many edges the
    // bitset actually removed from the DFS's reach.
    std::vector<uint64_t> alive_bits;
    graph::BallPruneStats stats =
        PruneBall(view, cfg.seeds, cfg.max_length, &alive_bits);
    std::vector<NodeId> survivors;
    for (uint32_t i = 0; i < view.num_nodes(); ++i) {
      if (graph::BallPruneAlive(alive_bits.data(), i)) {
        survivors.push_back(view.ToGlobal(i));
      }
    }
    graph::CsrSubgraph slice = graph::InduceCsr(csr, survivors);

    // Min-of-reps timing, arms alternated so drift hits both equally.
    constexpr int kReps = 7;
    double unpruned_ms = 1e300;
    double pruned_ms = 1e300;
    Stopwatch watch;
    for (int rep = 0; rep < kReps; ++rep) {
      watch.Reset();
      size_t u = enumerator.Visit(unpruned, [](const auto&) { return true; });
      unpruned_ms = std::min(unpruned_ms, watch.ElapsedMillis());
      watch.Reset();
      size_t p = enumerator.Visit(pruned, [](const auto&) { return true; });
      pruned_ms = std::min(pruned_ms, watch.ElapsedMillis());
      WQE_CHECK(u == p && u == want.size());
    }
    const double speedup = unpruned_ms / pruned_ms;
    best_speedup = std::max(best_speedup, speedup);

    table.AddRow({cfg.name, std::to_string(view.num_nodes()),
                  std::to_string(stats.num_alive),
                  std::to_string(csr.num_edges()),
                  std::to_string(slice.num_edges()),
                  std::to_string(want.size()), FormatDouble(unpruned_ms, 2),
                  FormatDouble(pruned_ms, 2), FormatDouble(speedup, 2)});

    const std::string config =
        "nodes=" + std::to_string(view.num_nodes()) +
        ";L=" + std::to_string(cfg.max_length) +
        ";seeds=" + std::to_string(cfg.seeds.size());
    json.Add(cfg.name + "_unpruned", "total_ms", unpruned_ms, config);
    json.Add(cfg.name + "_pruned", "total_ms", pruned_ms, config);
    json.Add(cfg.name, "speedup_vs_unpruned", speedup, config);
    json.Add(cfg.name, "survivor_fraction", stats.survivor_fraction(), config);
    json.Add(cfg.name, "cycles", static_cast<double>(want.size()), config);
  }
  table.Print();

  std::printf("\ncycle sets identical pruned-vs-unpruned on all %zu configs "
              "(checked before timing)\nbest speedup_vs_unpruned: %.2fx\n",
              configs.size(), best_speedup);
  // The ISSUE-8 acceptance bar.  The win comes from skipped DFS work in a
  // sequential enumeration, so it is machine-independent.
  WQE_CHECK(best_speedup >= 1.3);

  json.Write();
  return 0;
}
