/// \file fig5_contribution.cc
/// \brief E4 — regenerates Figure 5: average contribution vs cycle length.
///
/// Paper reference: 2 → 50.53%, 3 → 24.38%, 4 → 32.74%, 5 → 32.31%
/// (length 2 clearly strongest; lengths 3–5 clustered below).

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::LengthSeries series = analysis::ComputeFig5(ctx.analyses);

  static const char* kPaper[] = {"50.53", "24.38", "32.74", "32.31"};
  TablePrinter table("Figure 5 — average contribution (%) vs cycle length");
  table.SetHeader({"cycle length", "avg contribution", "paper"});
  for (size_t i = 0; i < series.lengths.size(); ++i) {
    table.AddRow({std::to_string(series.lengths[i]),
                  FormatDouble(series.values[i], 2), kPaper[i]});
  }
  table.Print();
  return 0;
}
