/// \file table4_cycle_precision.cc
/// \brief E3 — regenerates Table 4: average precision of expansion with
/// the articles found in cycles of each length configuration.
///
/// Paper reference:
///   2         0.826 0.539 0.539 0.552
///   3         0.833 0.578 0.519 0.513
///   4         0.703 0.589 0.541 0.494
///   5         0.788 0.624 0.588 0.547
///   2&3       0.944 0.656 0.583 0.621
///   2&3&4     0.944 0.667 0.594 0.629
///   2&3&4&5   0.944 0.667 0.622 0.658

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  auto rows = analysis::ComputeTable4(*ctx.pipeline, ctx.gt, ctx.analyses);
  WQE_CHECK_OK(rows.status());

  static const char* kPaper[] = {
      "0.826 0.539 0.539 0.552", "0.833 0.578 0.519 0.513",
      "0.703 0.589 0.541 0.494", "0.788 0.624 0.588 0.547",
      "0.944 0.656 0.583 0.621", "0.944 0.667 0.594 0.629",
      "0.944 0.667 0.622 0.658"};

  TablePrinter table(
      "Table 4 — precision by cycle-length configuration of the expansion "
      "features");
  table.SetHeader({"cycle sizes", "top-1", "top-5", "top-10", "top-15",
                   "paper (t1 t5 t10 t15)"});
  for (size_t i = 0; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    std::string label;
    for (size_t k = 0; k < row.lengths.size(); ++k) {
      if (k > 0) label += " & ";
      label += std::to_string(row.lengths[k]);
    }
    table.AddRow({label, FormatDouble(row.precision[0], 3),
                  FormatDouble(row.precision[1], 3),
                  FormatDouble(row.precision[2], 3),
                  FormatDouble(row.precision[3], 3), kPaper[i]});
  }
  table.Print();
  return 0;
}
