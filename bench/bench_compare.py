#!/usr/bin/env python3
"""Diff two BENCH_<name>.json files and flag performance regressions.

Closes the bench-trajectory loop: perf benches emit machine-readable
records (see bench/bench_common.h); this tool compares a baseline file
against a current one and exits non-zero when any matched record
regressed by more than the threshold (default 10%).

    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
    bench_compare.py --write-baseline DIR CURRENT.json [CURRENT2.json ...]

The second form validates each BENCH_*.json and installs it into DIR as
the committed baseline (DIR/BENCH_<bench>.json, pretty-printed so diffs
review cleanly).  See bench/baselines/README.md for the capture
procedure — baselines must come from a quiet multi-core host, not CI.

Records are matched by (name, metric, config).  Direction is inferred
from the metric:

  - time metrics (real_time_*, *_ms/_us/_ns) .... lower is better
  - speedup metrics (speedup_*) ................. higher is better
  - everything else (counters like `cycles`) .... informational only;
    reported when it drifts, never a failure (workload sizes are config
    constants — a drift usually means the bench itself changed).

Records present in only one file are reported but do not fail the run
(benches gain and retire cases across PRs).  CI wires this into the
bench-smoke job whenever a baseline file is present, plus a self-compare
(current vs current) so the comparator itself cannot silently rot.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if "bench" not in data or "results" not in data:
        sys.exit(f"{path}: not a BENCH_<name>.json file")
    records = {}
    for r in data["results"]:
        records[(r["name"], r["metric"], r["config"])] = float(r["value"])
    return data["bench"], records


def direction(metric):
    """-1: lower is better, +1: higher is better, 0: informational."""
    if metric.startswith("latency_p"):
        # Percentile SLO records (latency_p50_ms / latency_p99_ms) are
        # informational until a latency baseline is committed: single-run
        # tail percentiles on a shared machine are too noisy to gate on.
        return 0
    if metric in ("shed_rate", "hit_ratio"):
        # Rate/ratio policy outcomes (admission shedding, cache hits) are
        # informational: they describe behavior under a synthetic load,
        # not a performance axis a baseline delta should gate on.
        return 0
    if metric.startswith("real_time_") or metric.endswith(("_ms", "_us", "_ns")):
        return -1
    if metric.startswith("speedup"):
        return +1
    return 0


def write_baseline(directory, paths):
    """Validate each BENCH_*.json and install it as DIR/BENCH_<bench>.json."""
    os.makedirs(directory, exist_ok=True)
    for path in paths:
        bench, records = load(path)
        if not records:
            sys.exit(f"{path}: refusing to install an empty baseline")
        with open(path) as f:
            data = json.load(f)
        dest = os.path.join(directory, f"BENCH_{bench}.json")
        with open(dest, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
        gated = sum(1 for (_, m, _) in records if direction(m) != 0)
        print(f"bench_compare: wrote {dest} "
              f"({len(records)} records, {gated} gated)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+",
                        help="BASELINE.json CURRENT.json, or with "
                             "--write-baseline one or more CURRENT.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression tolerance (default 0.10)")
    parser.add_argument("--write-baseline", metavar="DIR",
                        help="install the given BENCH_*.json file(s) into DIR "
                             "as committed baselines instead of comparing")
    args = parser.parse_args()

    if args.write_baseline:
        write_baseline(args.write_baseline, args.files)
        return
    if len(args.files) != 2:
        parser.error("compare mode takes exactly BASELINE.json CURRENT.json")

    base_bench, base = load(args.files[0])
    cur_bench, cur = load(args.files[1])
    if base_bench != cur_bench:
        sys.exit(f"bench mismatch: baseline is '{base_bench}', "
                 f"current is '{cur_bench}'")

    regressions, notes = [], []
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        sign = direction(key[1])
        if sign == 0:
            if b != c:
                notes.append(f"  info  {'/'.join(key)}: {b:g} -> {c:g}")
            continue
        if b <= 0:
            continue  # no meaningful ratio
        # Relative change in the "worse" direction.
        worse = (c - b) / b if sign < 0 else (b - c) / b
        line = (f"{'/'.join(key)}: {b:.4g} -> {c:.4g} "
                f"({(c - b) / b:+.1%})")
        if worse > args.threshold:
            regressions.append("  REGRESSION  " + line)
        elif abs(c - b) / b > args.threshold:
            notes.append("  improved    " + line)

    only_base = sorted(base.keys() - cur.keys())
    only_cur = sorted(cur.keys() - base.keys())
    for key in only_base:
        notes.append(f"  removed     {'/'.join(key)}")
    for key in only_cur:
        notes.append(f"  added       {'/'.join(key)}")

    matched = len(base.keys() & cur.keys())
    print(f"bench_compare: '{cur_bench}', {matched} matched records, "
          f"threshold {args.threshold:.0%}")
    for line in notes:
        print(line)
    if regressions:
        print(f"{len(regressions)} regression(s):")
        for line in regressions:
            print(line)
        sys.exit(1)
    print("no regressions")


if __name__ == "__main__":
    main()
