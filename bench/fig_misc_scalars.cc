/// \file fig_misc_scalars.cc
/// \brief E9 (part 1) — the §3 scalar measurements.
///
/// Paper reference: average TPR of the largest connected components ≈ 0.3;
/// 11.47% of connected article pairs form a length-2 cycle; average query
/// graph size 208.22 nodes.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::MiscScalars scalars =
      analysis::ComputeMiscScalars(*ctx.pipeline, ctx.analyses);

  TablePrinter table("Section 3 scalars");
  table.SetHeader({"metric", "measured", "paper"});
  table.AddRow({"avg TPR of largest CC",
                FormatDouble(scalars.mean_largest_cc_tpr, 3), "~0.3"});
  table.AddRow({"reciprocal link-pair rate",
                FormatDouble(scalars.reciprocal_link_rate, 4), "0.1147"});
  table.AddRow({"avg query graph size (nodes)",
                FormatDouble(scalars.mean_graph_size, 2), "208.22"});
  table.Print();

  std::printf(
      "\nknowledge base: %zu articles, %zu categories, %zu redirects, %zu "
      "edges\n",
      ctx.pipeline->kb().num_articles(), ctx.pipeline->kb().num_categories(),
      ctx.pipeline->kb().num_redirects(),
      ctx.pipeline->kb().graph().num_edges());
  return 0;
}
