/// \file table2_groundtruth_precision.cc
/// \brief E1 — regenerates Table 2: min/quartiles/max of the ground
/// truth's top-r precision over all topics.
///
/// Paper reference (ImageCLEF 2011, 50 queries):
///   top-1:  0 1 1 1 1        top-5:  0 1 1 1 1
///   top-10: 0.2 0.6 0.9 1 1  top-15: 0.2 0.65 0.8 0.85 1

#include <cstdio>

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  auto rows = analysis::ComputeTable2(ctx.gt);

  static const char* kPaper[] = {"0 1 1 1 1", "0 1 1 1 1",
                                 "0.2 0.6 0.9 1 1", "0.2 0.65 0.8 0.85 1"};
  TablePrinter table("Table 2 — precision statistics of the ground truth");
  table.SetHeader({"cutoff", "min", "q1", "median", "q3", "max",
                   "paper (min q1 med q3 max)"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& s = rows[i].summary;
    table.AddRow({"top-" + std::to_string(rows[i].cutoff),
                  FormatDouble(s.min, 3), FormatDouble(s.q1, 3),
                  FormatDouble(s.median, 3), FormatDouble(s.q3, 3),
                  FormatDouble(s.max, 3), kPaper[i]});
  }
  table.Print();

  // Mean optimizer statistics, for context.
  double mean_selected = 0, mean_baseline = 0, mean_quality = 0;
  for (const auto& e : ctx.gt.entries) {
    mean_selected += static_cast<double>(e.xq.selected.size());
    mean_baseline += e.xq.baseline_quality;
    mean_quality += e.xq.quality;
  }
  double n = static_cast<double>(ctx.gt.entries.size());
  std::printf(
      "\nmean |A'| = %.2f, mean O(L(q.k)) = %.3f, mean O(X(q)) = %.3f over "
      "%zu topics\n",
      mean_selected / n, mean_baseline / n, mean_quality / n,
      ctx.gt.entries.size());
  return 0;
}
