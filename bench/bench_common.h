#pragma once

/// \file bench_common.h
/// \brief Shared experiment context for the paper-reproduction benches.
///
/// Every table/figure bench builds the same full-size pipeline (50 topics,
/// as in ImageCLEF 2011), constructs the §2 ground truth, and runs the §3
/// analysis once; the context is cached across benches within a binary.
///
/// Environment overrides (useful for quick runs):
///   WQE_BENCH_TOPICS   — number of topics (default 50)
///   WQE_BENCH_DOMAINS  — number of KB domains (default 50)
///   WQE_BENCH_SEED     — generator seed (default 42)
///   WQE_BENCH_THREADS  — analysis threads: §3 topic fan-out + parallel
///                        cycle enumeration (default 1; output identical
///                        at any setting)

#include <memory>
#include <string>
#include <vector>

#include "analysis/paper_report.h"
#include "analysis/query_graph_analysis.h"
#include "api/testbed.h"
#include "common/table_printer.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"

namespace wqe::bench {

/// \brief Materialized experiment state shared by the benches.
struct BenchContext {
  std::unique_ptr<groundtruth::Pipeline> pipeline;
  groundtruth::GroundTruth gt;
  std::vector<analysis::TopicAnalysis> analyses;
};

/// \brief Builds (once) and returns the shared context. Aborts on failure —
/// benches have no meaningful degraded mode.
const BenchContext& GetBenchContext();

/// \brief The pipeline options the context was built with (after env
/// overrides); exposed so perf benches can build scaled variants.
groundtruth::PipelineOptions BenchPipelineOptions();

/// \brief The same experiment as an `api::Testbed` (engine + evaluation
/// topics), built lazily with the same seeds/sizes as `GetBenchContext` —
/// the generators are deterministic, so the two views hold identical
/// content.  Expansion-system benches serve through this facade.
const api::Testbed& GetBenchTestbed();

/// \brief The testbed options matching `BenchPipelineOptions()`.
api::TestbedOptions BenchTestbedOptions();

/// \brief Appends a system/variant row in the shared E10/E11 table format
/// (P@1/5/10/15, O, avg features).  Empty `label` uses the evaluation's
/// system name.
void AddEvaluationRow(const api::SystemEvaluation& eval,
                      const std::string& label, TablePrinter* table);

/// \brief Machine-readable perf-bench output: collects (name, metric,
/// value, config) records and writes them as `BENCH_<bench>.json` in the
/// current directory, alongside whatever table the bench prints.  The CI
/// bench-smoke job (and any cross-PR perf tracking) parses these files —
/// one JSON object with a `results` array:
///
///   {"bench": "perf_x", "results": [
///     {"name": "...", "metric": "total_ms", "value": 12.5, "config": "..."}]}
///
/// Strings must be ASCII without quotes/backslashes (names are code
/// constants); values are finite doubles.
class BenchJsonWriter {
 public:
  /// \brief `bench` names the output file `BENCH_<bench>.json`.
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}

  void Add(const std::string& name, const std::string& metric, double value,
           const std::string& config);

  /// \brief Writes the file; aborts on IO failure (benches have no
  /// degraded mode).  Call once, at the end of main.
  void Write() const;

 private:
  struct Record {
    std::string name;
    std::string metric;
    double value;
    std::string config;
  };
  std::string bench_;
  std::vector<Record> records_;
};

/// \brief A deterministic Zipfian request mix: `count` draws from
/// `[0, num_distinct)` with rank-frequency exponent `s` (rank 0 most
/// popular), seeded via `common/rng` so load tests replay bit-identically.
/// The serving bench (`perf_parallel_serving`) uses this as its query
/// stream; the skew is what makes an expansion cache pay off.
std::vector<uint32_t> ZipfianRequestMix(size_t count, uint32_t num_distinct,
                                        double s, uint64_t seed);

}  // namespace wqe::bench
