#pragma once

/// \file bench_common.h
/// \brief Shared experiment context for the paper-reproduction benches.
///
/// Every table/figure bench builds the same full-size pipeline (50 topics,
/// as in ImageCLEF 2011), constructs the §2 ground truth, and runs the §3
/// analysis once; the context is cached across benches within a binary.
///
/// Environment overrides (useful for quick runs):
///   WQE_BENCH_TOPICS   — number of topics (default 50)
///   WQE_BENCH_DOMAINS  — number of KB domains (default 50)
///   WQE_BENCH_SEED     — generator seed (default 42)

#include <memory>

#include "analysis/paper_report.h"
#include "analysis/query_graph_analysis.h"
#include "api/testbed.h"
#include "common/table_printer.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"

namespace wqe::bench {

/// \brief Materialized experiment state shared by the benches.
struct BenchContext {
  std::unique_ptr<groundtruth::Pipeline> pipeline;
  groundtruth::GroundTruth gt;
  std::vector<analysis::TopicAnalysis> analyses;
};

/// \brief Builds (once) and returns the shared context. Aborts on failure —
/// benches have no meaningful degraded mode.
const BenchContext& GetBenchContext();

/// \brief The pipeline options the context was built with (after env
/// overrides); exposed so perf benches can build scaled variants.
groundtruth::PipelineOptions BenchPipelineOptions();

/// \brief The same experiment as an `api::Testbed` (engine + evaluation
/// topics), built lazily with the same seeds/sizes as `GetBenchContext` —
/// the generators are deterministic, so the two views hold identical
/// content.  Expansion-system benches serve through this facade.
const api::Testbed& GetBenchTestbed();

/// \brief The testbed options matching `BenchPipelineOptions()`.
api::TestbedOptions BenchTestbedOptions();

/// \brief Appends a system/variant row in the shared E10/E11 table format
/// (P@1/5/10/15, O, avg features).  Empty `label` uses the evaluation's
/// system name.
void AddEvaluationRow(const api::SystemEvaluation& eval,
                      const std::string& label, TablePrinter* table);

/// \brief A deterministic Zipfian request mix: `count` draws from
/// `[0, num_distinct)` with rank-frequency exponent `s` (rank 0 most
/// popular), seeded via `common/rng` so load tests replay bit-identically.
/// The serving bench (`perf_parallel_serving`) uses this as its query
/// stream; the skew is what makes an expansion cache pay off.
std::vector<uint32_t> ZipfianRequestMix(size_t count, uint32_t num_distinct,
                                        double s, uint64_t seed);

}  // namespace wqe::bench
