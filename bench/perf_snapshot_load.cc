/// \file perf_snapshot_load.cc
/// \brief E15 — snapshot load vs rebuild-from-XML.
///
/// The snapshot format exists so a server can come up (or hot-republish)
/// without re-running the ingestion pipeline.  This bench puts a number
/// on that: one synthetic knowledge base is serialized both ways — as a
/// MediaWiki XML dump (the real ingestion input, see wiki/dump.h) and as
/// a versioned binary snapshot (snapshot/format.h) — and the two startup
/// paths race:
///
///   rebuild  — `wiki::ParseDump(xml)` + `Freeze()`: parse, node/edge
///              inserts, CSR construction;
///   mmap     — `snapshot::LoadSnapshot(kMmap)`: map, validate
///              (checksums on, the production default), bind spans;
///   copy     — `snapshot::LoadSnapshot(kCopy)`: same, via one read().
///
/// Hard correctness gates (aborts, not just reporting):
///   - both load modes return a graph whose every CSR section is
///     byte-identical to the original's, with equal titles and counts,
///     before anything is timed;
///   - `speedup_vs_rebuild` (rebuild_ms / mmap_ms) reaches the >= 10x
///     acceptance bar — the win is skipped parsing and graph building,
///     not parallelism, so it holds on any machine.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "graph/csr.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "wiki/dump.h"
#include "wiki/knowledge_base.h"
#include "wiki/synthetic.h"

using namespace wqe;

namespace {

template <typename T>
bool SpanEq(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size_bytes()) == 0);
}

bool SectionsBitIdentical(const graph::CsrSections& a,
                          const graph::CsrSections& b) {
  return SpanEq(a.kinds, b.kinds) &&
         SpanEq(a.redirect_target, b.redirect_target) &&
         SpanEq(a.out_offsets, b.out_offsets) &&
         SpanEq(a.out_targets, b.out_targets) &&
         SpanEq(a.out_kinds, b.out_kinds) &&
         SpanEq(a.in_offsets, b.in_offsets) &&
         SpanEq(a.in_sources, b.in_sources) &&
         SpanEq(a.in_kinds, b.in_kinds) &&
         SpanEq(a.und_offsets, b.und_offsets) &&
         SpanEq(a.und_neighbors, b.und_neighbors) &&
         SpanEq(a.und_mult, b.und_mult) &&
         a.edge_kind_counts == b.edge_kind_counts &&
         a.node_kind_counts == b.node_kind_counts;
}

wiki::KnowledgeBase RebuildFromXml(const std::string& xml) {
  auto kb = wiki::ParseDump(xml);
  WQE_CHECK_OK(kb.status());
  kb->Freeze();
  return std::move(*kb);
}

}  // namespace

int main() {
  // Same scale knob as the shared bench context (WQE_BENCH_DOMAINS);
  // the KB itself is built directly so this binary does not pay for
  // topics/ground truth it never touches.
  wiki::SyntheticWikipediaOptions options;
  options.num_domains = bench::BenchPipelineOptions().wiki.num_domains;
  auto wiki = wiki::GenerateSyntheticWikipedia(options);
  WQE_CHECK_OK(wiki.status());
  wiki::KnowledgeBase& kb = wiki->kb;
  kb.Freeze();

  const std::string xml = wiki::WriteDump(kb);
  const std::string path = "snapshot_bench.bin";  // cwd = build dir
  WQE_CHECK_OK(snapshot::WriteSnapshot(kb, path));
  auto reader = snapshot::Reader::Open(path);
  WQE_CHECK_OK(reader.status());
  const uint64_t snapshot_bytes = reader->info().file_size;

  // Hard identity gates before any timing: every startup path must
  // produce the same graph, byte for byte.
  {
    wiki::KnowledgeBase rebuilt = RebuildFromXml(xml);
    WQE_CHECK(
        SectionsBitIdentical(kb.csr().Sections(), rebuilt.csr().Sections()));
    for (snapshot::LoadMode mode :
         {snapshot::LoadMode::kMmap, snapshot::LoadMode::kCopy}) {
      snapshot::ReadOptions read_options;
      read_options.mode = mode;
      read_options.verify_invariants = true;
      auto loaded = snapshot::LoadSnapshot(path, read_options);
      WQE_CHECK_OK(loaded.status());
      WQE_CHECK(SectionsBitIdentical(kb.csr().Sections(),
                                     loaded->csr().Sections()));
      WQE_CHECK(loaded->num_articles() == kb.num_articles());
      for (graph::NodeId u = 0; u < kb.csr().num_nodes(); ++u) {
        WQE_CHECK(loaded->title(u) == kb.title(u));
        WQE_CHECK(loaded->display_title(u) == kb.display_title(u));
      }
    }
  }

  // Min-of-reps timing, arms alternated so drift hits all three equally.
  constexpr int kReps = 5;
  double rebuild_ms = 1e300;
  double mmap_ms = 1e300;
  double copy_ms = 1e300;
  Stopwatch watch;
  for (int rep = 0; rep < kReps; ++rep) {
    watch.Reset();
    wiki::KnowledgeBase rebuilt = RebuildFromXml(xml);
    rebuild_ms = std::min(rebuild_ms, watch.ElapsedMillis());
    WQE_CHECK(rebuilt.csr().num_nodes() == kb.csr().num_nodes());

    snapshot::ReadOptions mmap_options;  // checksums on: the default
    watch.Reset();
    auto mapped = snapshot::LoadSnapshot(path, mmap_options);
    mmap_ms = std::min(mmap_ms, watch.ElapsedMillis());
    WQE_CHECK_OK(mapped.status());
    WQE_CHECK(mapped->csr().num_nodes() == kb.csr().num_nodes());

    snapshot::ReadOptions copy_options;
    copy_options.mode = snapshot::LoadMode::kCopy;
    watch.Reset();
    auto copied = snapshot::LoadSnapshot(path, copy_options);
    copy_ms = std::min(copy_ms, watch.ElapsedMillis());
    WQE_CHECK_OK(copied.status());
    WQE_CHECK(copied->csr().num_nodes() == kb.csr().num_nodes());
  }
  const double speedup = rebuild_ms / mmap_ms;

  TablePrinter table("E15 — snapshot load vs rebuild-from-XML");
  table.SetHeader({"path", "input bytes", "ms", "vs rebuild"});
  table.AddRow({"rebuild (parse+freeze)", std::to_string(xml.size()),
                FormatDouble(rebuild_ms, 2), "1.00"});
  table.AddRow({"snapshot mmap", std::to_string(snapshot_bytes),
                FormatDouble(mmap_ms, 2), FormatDouble(speedup, 2)});
  table.AddRow({"snapshot copy", std::to_string(snapshot_bytes),
                FormatDouble(copy_ms, 2),
                FormatDouble(rebuild_ms / copy_ms, 2)});
  table.Print();

  std::printf("\ngraphs bit-identical across all three startup paths "
              "(checked before timing)\nspeedup_vs_rebuild: %.1fx\n",
              speedup);

  const std::string config =
      "nodes=" + std::to_string(kb.csr().num_nodes()) +
      ";edges=" + std::to_string(kb.csr().num_edges()) +
      ";domains=" + std::to_string(options.num_domains);
  bench::BenchJsonWriter json("perf_snapshot_load");
  json.Add("rebuild_xml", "total_ms", rebuild_ms, config);
  json.Add("snapshot_mmap", "total_ms", mmap_ms, config);
  json.Add("snapshot_copy", "total_ms", copy_ms, config);
  json.Add("snapshot_mmap", "speedup_vs_rebuild", speedup, config);
  json.Add("snapshot_file", "bytes", static_cast<double>(snapshot_bytes),
           config);
  json.Add("xml_dump", "bytes", static_cast<double>(xml.size()), config);
  json.Write();

  // The ISSUE-10 acceptance bar: startup from a snapshot must beat
  // re-ingesting the XML by an order of magnitude.
  WQE_CHECK(speedup >= 10.0);
  return 0;
}
