/// \file fig7a_category_ratio.cc
/// \brief E6 — regenerates Figure 7a: average category ratio vs length.
///
/// Paper reference: 3 → 0.366, 4 → 0.375, 5 → 0.382 (flat, slope ≈ 0:
/// roughly one category per three nodes regardless of length).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::LengthSeries series = analysis::ComputeFig7a(ctx.analyses);

  static const char* kPaper[] = {"0.366", "0.375", "0.382"};
  TablePrinter table("Figure 7a — average category ratio vs cycle length");
  table.SetHeader({"cycle length", "avg category ratio", "paper"});
  for (size_t i = 0; i < series.lengths.size(); ++i) {
    table.AddRow({std::to_string(series.lengths[i]),
                  FormatDouble(series.values[i], 3), kPaper[i]});
  }
  table.Print();

  std::vector<double> x(series.lengths.begin(), series.lengths.end());
  LinearFit fit = FitLine(x, series.values);
  std::printf("\ntrend slope = %.4f (paper: almost 0)\n", fit.slope);
  return 0;
}
