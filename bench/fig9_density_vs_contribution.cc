/// \file fig9_density_vs_contribution.cc
/// \brief E8 — regenerates Figure 9: density of extra edges vs average
/// contribution.
///
/// Paper reference: a positive trend line — "the denser the cycle, the
/// better its contribution" — over cycles with density in [0, 1] and
/// contributions up to ≈ 40%.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace wqe;

int main() {
  const bench::BenchContext& ctx = bench::GetBenchContext();
  analysis::Fig9Report report = analysis::ComputeFig9(ctx.analyses, 10);

  TablePrinter table(
      "Figure 9 — density of extra edges vs average contribution");
  table.SetHeader({"density bin", "avg contribution", "cycles"});
  for (size_t i = 0; i < report.bin_centers.size(); ++i) {
    table.AddRow({FormatDouble(report.bin_centers[i], 2),
                  FormatDouble(report.mean_contribution[i], 2),
                  std::to_string(report.bin_counts[i])});
  }
  table.Print();
  std::printf(
      "\ntrend: contribution = %.2f * density + %.2f over %zu cycles "
      "(paper: positive slope)\n",
      report.trend.slope, report.trend.intercept, report.num_cycles);
  return 0;
}
