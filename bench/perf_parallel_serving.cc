/// \file perf_parallel_serving.cc
/// \brief E13 — concurrent serving through `serve::Server`.
///
/// Replays a Zipfian query mix (the heavy-tailed shape real query logs
/// have) over the Testbed track three ways:
///
///   1. sequential `Engine::QueryBatch` — the PR-1 baseline;
///   2. parallel `serve::Server::QueryBatch` at 1/2/4 worker threads with
///      the expansion cache disabled — pure thread-pool scaling;
///   3. two passes through a cache-enabled server — the second pass must
///      serve (almost) every expansion from the sharded LRU.
///
/// Hard correctness checks (aborts, not just reporting):
///   - every parallel ranking is document-identical to the sequential one;
///   - cache hits are counter-verified against `EngineStats` and the
///     cache's own counters, with a > 0.9 hit ratio on the warm pass;
///   - with ≥ 4 hardware threads, 4 workers must reach ≥ 2× the 1-worker
///     QueryBatch throughput (reported either way on smaller machines);
///   - the observability instrumentation costs ≤ 2% on the warm-cache
///     path (min-of-5 alternating reps with the runtime kill switch).
///
/// SLO records: each server runs against its own `obs::MetricsRegistry`,
/// and the per-request latency histogram's p50/p99 land in the BENCH
/// JSON per configuration (`latency_p50_ms` / `latency_p99_ms`; the warm
/// cached pass via a snapshot delta).  bench_compare.py treats them as
/// informational until a latency baseline is committed.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "serve/server.h"

using namespace wqe;

namespace {

std::vector<api::QueryRequest> ZipfianRequests(const api::Testbed& bed,
                                               size_t count) {
  std::vector<uint32_t> mix = bench::ZipfianRequestMix(
      count, static_cast<uint32_t>(bed.num_topics()), /*s=*/1.0,
      /*seed=*/0xbeef);
  std::vector<api::QueryRequest> requests;
  requests.reserve(mix.size());
  for (uint32_t topic : mix) {
    api::QueryRequest request;
    request.keywords = bed.topic(topic).keywords;
    request.expander = "cycle";
    requests.push_back(std::move(request));
  }
  return requests;
}

void CheckIdenticalRankings(const std::vector<api::QueryResponse>& got,
                            const std::vector<api::QueryResponse>& want) {
  WQE_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    WQE_CHECK(got[i].docs == want[i].docs);
    WQE_CHECK(got[i].expansion.titles == want[i].expansion.titles);
  }
}

}  // namespace

int main() {
  const api::Testbed& bed = bench::GetBenchTestbed();
  const api::Engine& engine = bed.engine();
  const std::vector<api::QueryRequest> requests =
      ZipfianRequests(bed, 4 * bed.num_topics());
  const size_t n = requests.size();

  // Sequential baseline and reference rankings.
  Stopwatch watch;
  auto sequential = engine.QueryBatch(requests);
  WQE_CHECK_OK(sequential.status());
  double sequential_ms = watch.ElapsedMillis();

  TablePrinter table("E13 — parallel serving throughput (Zipfian mix, s=1)");
  table.SetHeader(
      {"path", "threads", "requests", "total ms", "req/s", "speedup"});
  auto add_row = [&](const char* path, size_t threads, double ms) {
    table.AddRow({path, std::to_string(threads), std::to_string(n),
                  FormatDouble(ms, 1),
                  FormatDouble(1000.0 * static_cast<double>(n) / ms, 1),
                  FormatDouble(sequential_ms / ms, 2)});
  };
  add_row("Engine::QueryBatch (seq)", 1, sequential_ms);

  const std::string config = "requests=" + std::to_string(n);
  bench::BenchJsonWriter json("perf_parallel_serving");
  json.Add("engine_query_batch", "total_ms", sequential_ms, config);

  // Thread-pool scaling, cache off: same work, more workers.
  double one_thread_ms = 0.0;
  double four_thread_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u}) {
    // Per-configuration registry (declared before the server, which
    // borrows it): clean percentiles, no cross-config bleed.
    obs::MetricsRegistry registry;
    serve::ServerOptions options;
    options.num_threads = threads;
    options.enable_cache = false;
    options.registry = &registry;
    serve::Server server(engine, options);
    watch.Reset();
    auto parallel = server.QueryBatch(requests);
    double ms = watch.ElapsedMillis();
    WQE_CHECK_OK(parallel.status());
    CheckIdenticalRankings(*parallel, *sequential);
    add_row("serve::Server::QueryBatch", threads, ms);
    const std::string name = "server_query_batch_t" + std::to_string(threads);
    json.Add(name, "total_ms", ms, config);
    const obs::HistogramSnapshot latency =
        server.StatsSnapshot().request_latency_ms;
    json.Add(name, "latency_p50_ms", latency.Percentile(0.5), config);
    json.Add(name, "latency_p99_ms", latency.Percentile(0.99), config);
    if (threads == 1) one_thread_ms = ms;
    if (threads == 4) four_thread_ms = ms;
  }

  // Cache effectiveness: cold pass then warm pass, counter-verified.
  obs::MetricsRegistry cached_registry;
  serve::ServerOptions cached;
  cached.num_threads = 4;
  cached.cache.capacity = 4096;
  cached.registry = &cached_registry;
  serve::Server server(engine, cached);
  size_t engine_hits_before = engine.stats().cache_hits;

  watch.Reset();
  auto cold = server.QueryBatch(requests);
  double cold_ms = watch.ElapsedMillis();
  WQE_CHECK_OK(cold.status());
  size_t cold_hits = engine.stats().cache_hits - engine_hits_before;
  const obs::HistogramSnapshot cold_latency =
      server.StatsSnapshot().request_latency_ms;

  watch.Reset();
  auto warm = server.QueryBatch(requests);
  double warm_ms = watch.ElapsedMillis();
  WQE_CHECK_OK(warm.status());
  size_t warm_hits = engine.stats().cache_hits - engine_hits_before - cold_hits;
  // The histogram accumulates; the warm pass's distribution is the
  // difference of the two snapshots.
  const obs::HistogramSnapshot warm_latency =
      server.StatsSnapshot().request_latency_ms.DeltaSince(cold_latency);

  CheckIdenticalRankings(*cold, *sequential);
  CheckIdenticalRankings(*warm, *sequential);
  // The warm pass must hit on every request, and the engine-side counters
  // must agree with the cache's own.  (cold_hits itself is scheduling-
  // dependent — two in-flight requests for one key can both miss — so it
  // is consistency-checked but never printed; see the verify skill's
  // deterministic-output contract.)
  WQE_CHECK(warm_hits == n);
  serve::ExpansionCacheStats cache_stats = server.cache()->stats();
  WQE_CHECK(cache_stats.hits == cold_hits + warm_hits);
  WQE_CHECK(cache_stats.hits + cache_stats.misses == 2 * n);
  double warm_ratio =
      static_cast<double>(warm_hits) / static_cast<double>(n);
  WQE_CHECK(warm_ratio > 0.9);

  add_row("cached Server (cold)", 4, cold_ms);
  add_row("cached Server (warm)", 4, warm_ms);
  table.Print();

  std::set<std::string> distinct_keys;
  for (const api::QueryRequest& request : requests) {
    distinct_keys.insert(request.keywords);
  }
  std::printf(
      "\nrankings identical across all paths (%zu requests, %zu distinct, "
      "%zu topics)\n"
      "warm-pass cache hit ratio: %.3f (%zu/%zu, counter-verified)\n",
      n, distinct_keys.size(), bed.num_topics(), warm_ratio, warm_hits, n);

  unsigned hw = std::thread::hardware_concurrency();
  double speedup = one_thread_ms / four_thread_ms;
  std::printf("4-thread speedup over 1 thread: %.2fx on %u hardware "
              "thread(s)\n", speedup, hw);
  if (hw >= 4) {
    WQE_CHECK(speedup >= 2.0);  // the ISSUE-2 acceptance bar
  } else {
    std::printf("(< 4 hardware threads: the >= 2x acceptance check is "
                "skipped on this machine)\n");
  }

  json.Add("cached_server_cold", "total_ms", cold_ms, config);
  json.Add("cached_server_cold", "latency_p50_ms", cold_latency.Percentile(0.5),
           config);
  json.Add("cached_server_cold", "latency_p99_ms",
           cold_latency.Percentile(0.99), config);
  json.Add("cached_server_warm", "total_ms", warm_ms, config);
  json.Add("cached_server_warm", "latency_p50_ms", warm_latency.Percentile(0.5),
           config);
  json.Add("cached_server_warm", "latency_p99_ms",
           warm_latency.Percentile(0.99), config);
  json.Add("cached_server_warm", "hit_ratio", warm_ratio, config);
  json.Add("server_query_batch_t4", "speedup_vs_t1", speedup, config);

  // Instrumentation overhead: alternate the runtime kill switch over
  // repeated warm-cache batches (every expansion hits, so the serve path
  // itself — spans, histogram records, counters — dominates what the
  // switch toggles).  Paired design for a noisy 1-vCPU container: each
  // rep times both arms back-to-back (three batches per timed region so
  // ~20 ms dwarfs scheduler jitter; arm order flips per rep so warm-up
  // drift cancels), a shared slow phase cancels in the per-rep
  // difference, and the median over reps discards outlier pairs that a
  // min-vs-min comparison would let a single fast window distort.
  constexpr int kReps = 15;
  double diff_ms[kReps];
  double off_ms[kReps];
  for (int rep = 0; rep < kReps; ++rep) {
    const bool first_on = rep % 2 == 0;
    double arm_ms[2] = {0.0, 0.0};  // [0] = on, [1] = off
    for (bool enabled : {first_on, !first_on}) {
      obs::SetEnabled(enabled);
      watch.Reset();
      for (int pass = 0; pass < 3; ++pass) {
        WQE_CHECK_OK(server.QueryBatch(requests).status());
      }
      arm_ms[enabled ? 0 : 1] = watch.ElapsedMillis();
    }
    diff_ms[rep] = arm_ms[0] - arm_ms[1];
    off_ms[rep] = arm_ms[1];
  }
  obs::SetEnabled(true);
  std::sort(diff_ms, diff_ms + kReps);
  std::sort(off_ms, off_ms + kReps);
  const double median_off = off_ms[kReps / 2];
  const double overhead_pct =
      std::max(0.0, diff_ms[kReps / 2] / median_off * 100.0);
  // Measurement-quality gate, same spirit as the >= 2x speedup check
  // above: the inter-quartile spread of the paired diffs is the noise
  // floor of this box right now; the 2% bar is only decidable when the
  // spread can resolve half of it.  (A quiet multi-core host easily
  // does; a busy 1-vCPU container often cannot.)
  const double iqr_ms = diff_ms[(3 * kReps) / 4] - diff_ms[kReps / 4];
  const bool measurable = iqr_ms <= 0.01 * median_off;
  std::printf("observability overhead on warm-cache batches: %.2f%% "
              "(median paired on-off diff %.2f ms over %d triple-batch "
              "reps, median off %.1f ms, diff IQR %.2f ms)\n",
              overhead_pct, diff_ms[kReps / 2], kReps, median_off, iqr_ms);
  json.Add("obs_overhead", "overhead_pct", overhead_pct, config);
  if (measurable) {
    WQE_CHECK(overhead_pct <= 2.0);  // the ISSUE-7 acceptance bar
  } else {
    std::printf("(diff IQR above 1%% of the baseline: machine too noisy "
                "to resolve the <= 2%% overhead bar; check skipped)\n");
  }

  // --- Traffic-replay scenarios (ROADMAP item 5's second half). ---
  // Three workload shapes real frontends produce that the uniform-Zipfian
  // batch above does not: multi-tenant skew mixes, cache-hostile key
  // churn, and bursty arrivals.  Each runs against its own registry and
  // emits its own SLO records; rankings stay counter- and
  // content-verified against the sequential reference.

  auto requests_for_topics = [&](const std::vector<uint32_t>& topics) {
    std::vector<api::QueryRequest> out;
    out.reserve(topics.size());
    for (uint32_t t : topics) {
      api::QueryRequest request;
      request.keywords = bed.topic(t).keywords;
      request.expander = "cycle";
      out.push_back(std::move(request));
    }
    return out;
  };

  // Scenario 1: mixed Zipfian tenants.  Three tenants own disjoint topic
  // slices with different skew exponents; a fair frontend drains their
  // queues round-robin, so the server sees their streams interleaved —
  // the cache must hold three hot sets at once.
  {
    const uint32_t num_topics = static_cast<uint32_t>(bed.num_topics());
    const uint32_t slice = std::max(1u, num_topics / 3);
    const double skews[3] = {0.8, 1.1, 1.4};
    std::vector<std::vector<uint32_t>> tenants;
    for (uint32_t t = 0; t < 3; ++t) {
      std::vector<uint32_t> mix = bench::ZipfianRequestMix(
          num_topics, slice, skews[t], /*seed=*/0x5eed0 + t);
      for (uint32_t& topic : mix) {
        topic = std::min(num_topics - 1, topic + t * slice);
      }
      tenants.push_back(std::move(mix));
    }
    std::vector<uint32_t> interleaved;
    for (size_t i = 0; i < num_topics; ++i) {
      for (uint32_t t = 0; t < 3; ++t) interleaved.push_back(tenants[t][i]);
    }
    const std::vector<api::QueryRequest> tenant_requests =
        requests_for_topics(interleaved);
    auto reference = engine.QueryBatch(tenant_requests);
    WQE_CHECK_OK(reference.status());

    obs::MetricsRegistry tenant_registry;
    serve::ServerOptions tenant_options;
    tenant_options.num_threads = 4;
    tenant_options.registry = &tenant_registry;
    serve::Server tenant_server(engine, tenant_options);
    watch.Reset();
    auto got = tenant_server.QueryBatch(tenant_requests);
    const double tenant_ms = watch.ElapsedMillis();
    WQE_CHECK_OK(got.status());
    CheckIdenticalRankings(*got, *reference);
    const obs::HistogramSnapshot tenant_latency =
        tenant_server.StatsSnapshot().request_latency_ms;
    const std::string tenant_config =
        "requests=" + std::to_string(tenant_requests.size()) + ";tenants=3";
    json.Add("tenant_mix", "total_ms", tenant_ms, tenant_config);
    json.Add("tenant_mix", "latency_p50_ms", tenant_latency.Percentile(0.5),
             tenant_config);
    json.Add("tenant_mix", "latency_p99_ms", tenant_latency.Percentile(0.99),
             tenant_config);
    std::printf("\ntenant mix: %zu requests, 3 tenants, rankings identical, "
                "p50 %.2f ms / p99 %.2f ms\n",
                tenant_requests.size(), tenant_latency.Percentile(0.5),
                tenant_latency.Percentile(0.99));
  }

  // Scenario 2: adversarial key churn.  A strict-LRU cache far smaller
  // than the key space, swept sequentially — the classic scan pattern
  // where every access evicts the entry that will be needed next sweep.
  // The cache degrades to pure overhead (hit ratio ~0) but results stay
  // correct; the p99 here is the SLO of a cache-defeated server.
  {
    std::vector<uint32_t> sweep;
    for (int pass = 0; pass < 3; ++pass) {
      for (uint32_t t = 0; t < bed.num_topics(); ++t) sweep.push_back(t);
    }
    const std::vector<api::QueryRequest> churn_requests =
        requests_for_topics(sweep);
    auto reference = engine.QueryBatch(churn_requests);
    WQE_CHECK_OK(reference.status());

    obs::MetricsRegistry churn_registry;
    serve::ServerOptions churn_options;
    churn_options.num_threads = 4;
    churn_options.cache.capacity = 8;  // << distinct keys: every sweep misses
    churn_options.cache.num_shards = 1;
    churn_options.registry = &churn_registry;
    serve::Server churn_server(engine, churn_options);
    watch.Reset();
    auto got = churn_server.QueryBatch(churn_requests);
    const double churn_ms = watch.ElapsedMillis();
    WQE_CHECK_OK(got.status());
    CheckIdenticalRankings(*got, *reference);
    serve::ExpansionCacheStats churn_stats = churn_server.cache()->stats();
    const double churn_ratio =
        churn_stats.hits + churn_stats.misses == 0
            ? 0.0
            : static_cast<double>(churn_stats.hits) /
                  static_cast<double>(churn_stats.hits + churn_stats.misses);
    // Concurrent in-flight requests for one key can dedupe-hit, so the
    // floor is not exactly 0; the stream must still defeat the cache.
    WQE_CHECK(churn_ratio < 0.5);
    WQE_CHECK(churn_stats.evictions > 0);
    const obs::HistogramSnapshot churn_latency =
        churn_server.StatsSnapshot().request_latency_ms;
    const std::string churn_config =
        "requests=" + std::to_string(churn_requests.size()) +
        ";cache_capacity=8";
    json.Add("adversarial_churn", "total_ms", churn_ms, churn_config);
    json.Add("adversarial_churn", "latency_p50_ms",
             churn_latency.Percentile(0.5), churn_config);
    json.Add("adversarial_churn", "latency_p99_ms",
             churn_latency.Percentile(0.99), churn_config);
    json.Add("adversarial_churn", "hit_ratio", churn_ratio, churn_config);
    std::printf("adversarial churn: %zu requests, hit ratio %.3f "
                "(%zu evictions), p50 %.2f ms / p99 %.2f ms\n",
                churn_requests.size(), churn_ratio, churn_stats.evictions,
                churn_latency.Percentile(0.5),
                churn_latency.Percentile(0.99));
  }

  // Scenario 3: bursty arrivals.  Requests land in bursts of 32 through
  // `Submit` with a full drain between bursts — queue-wait spikes at the
  // head of each burst are exactly what the p99 should surface relative
  // to the smooth-batch runs above.
  {
    auto reference = engine.QueryBatch(requests);
    WQE_CHECK_OK(reference.status());
    obs::MetricsRegistry burst_registry;
    serve::ServerOptions burst_options;
    burst_options.num_threads = 4;
    burst_options.enable_cache = false;
    burst_options.registry = &burst_registry;
    serve::Server burst_server(engine, burst_options);

    constexpr size_t kBurst = 32;
    std::vector<api::QueryResponse> responses;
    responses.reserve(n);
    watch.Reset();
    for (size_t begin = 0; begin < n; begin += kBurst) {
      const size_t end = std::min(n, begin + kBurst);
      std::vector<std::future<Result<api::QueryResponse>>> inflight;
      inflight.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        inflight.push_back(burst_server.Submit(requests[i]));
      }
      for (auto& f : inflight) {
        auto r = f.get();
        WQE_CHECK_OK(r.status());
        responses.push_back(std::move(*r));
      }
    }
    const double burst_ms = watch.ElapsedMillis();
    CheckIdenticalRankings(responses, *reference);
    const obs::HistogramSnapshot burst_latency =
        burst_server.StatsSnapshot().request_latency_ms;
    const std::string burst_config =
        "requests=" + std::to_string(n) + ";burst=32";
    json.Add("bursty_arrivals", "total_ms", burst_ms, burst_config);
    json.Add("bursty_arrivals", "latency_p50_ms",
             burst_latency.Percentile(0.5), burst_config);
    json.Add("bursty_arrivals", "latency_p99_ms",
             burst_latency.Percentile(0.99), burst_config);
    std::printf("bursty arrivals: %zu requests in bursts of %zu, rankings "
                "identical, p50 %.2f ms / p99 %.2f ms\n",
                n, kBurst, burst_latency.Percentile(0.5),
                burst_latency.Percentile(0.99));
  }

  // Scenario 4: deadline-bounded overload.  A small server (2 workers, a
  // short queue, a default per-request deadline) is flooded with three
  // copies of the mix submitted all at once — far more than the budget
  // can serve.  Admission control must shed the overflow and the
  // deadline must fail what slips past it; what matters for the SLO is
  // that every survivor is still reference-identical and the post-shed
  // p99 stays bounded near the deadline instead of growing with the
  // backlog.  `shed_rate` and the post-shed `latency_p99_ms` land in the
  // BENCH JSON (informational in bench_compare.py: the rate is a policy
  // outcome, not a regression axis).
  {
    serve::ServerOptions overload_options;
    overload_options.num_threads = 2;
    overload_options.enable_cache = false;
    overload_options.max_queue_depth = 8;
    overload_options.default_deadline_ms = 50.0;
    obs::MetricsRegistry overload_registry;
    overload_options.registry = &overload_registry;
    serve::Server overload_server(engine, overload_options);

    std::vector<std::future<Result<api::QueryResponse>>> inflight;
    std::vector<size_t> origin;  // request index behind each future
    inflight.reserve(3 * n);
    origin.reserve(3 * n);
    watch.Reset();
    for (int copy = 0; copy < 3; ++copy) {
      for (size_t i = 0; i < n; ++i) {
        inflight.push_back(overload_server.Submit(requests[i]));
        origin.push_back(i);
      }
    }
    size_t served = 0, shed = 0, late = 0;
    for (size_t f = 0; f < inflight.size(); ++f) {
      Result<api::QueryResponse> result = inflight[f].get();
      if (result.ok()) {
        ++served;
        WQE_CHECK(result->docs == (*sequential)[origin[f]].docs);
        WQE_CHECK(result->expansion.titles ==
                  (*sequential)[origin[f]].expansion.titles);
      } else if (result.status().IsResourceExhausted()) {
        ++shed;
      } else if (result.status().IsDeadlineExceeded()) {
        ++late;
      } else {
        WQE_CHECK(false);  // only shed/deadline outcomes are acceptable
      }
    }
    const double overload_ms = watch.ElapsedMillis();
    WQE_CHECK(served + shed + late == inflight.size());
    WQE_CHECK(shed > 0);  // a 3x flood against depth 8 must trip admission
    serve::ServerStats overload_stats = overload_server.stats();
    WQE_CHECK(overload_stats.shed == shed);
    WQE_CHECK(overload_stats.deadline_exceeded == late);

    // Recovery trickle: once the flood drains, requests carrying a
    // generous per-request deadline override must get through — shedding
    // is load-proportional, not sticky.  (On a 1-vCPU box the 50 ms
    // default can legitimately shed or expire the whole flood; the
    // override path is what guarantees survivors to diff.)
    for (size_t i = 0; i < 8; ++i) {
      api::QueryRequest request = requests[i % n];
      request.deadline_ms = 10'000.0;
      auto result = overload_server.Submit(std::move(request)).get();
      WQE_CHECK_OK(result.status());
      WQE_CHECK(result->docs == (*sequential)[i % n].docs);
      ++served;
    }
    const double shed_rate =
        static_cast<double>(shed + late) / static_cast<double>(inflight.size());
    const obs::HistogramSnapshot overload_latency =
        overload_server.StatsSnapshot().request_latency_ms;
    const std::string overload_config =
        "requests=" + std::to_string(inflight.size()) +
        ";queue_depth=8;deadline_ms=50";
    json.Add("deadline_overload", "total_ms", overload_ms, overload_config);
    json.Add("deadline_overload", "shed_rate", shed_rate, overload_config);
    json.Add("deadline_overload", "latency_p99_ms",
             overload_latency.Percentile(0.99), overload_config);
    std::printf("deadline overload: %zu flooded + 8 recovery, %zu served / "
                "%zu shed / %zu past deadline (flood shed rate %.3f), "
                "post-shed p99 %.2f ms\n",
                inflight.size(), served, shed, late, shed_rate,
                overload_latency.Percentile(0.99));
  }

  json.Write();
  return 0;
}
