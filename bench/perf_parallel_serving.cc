/// \file perf_parallel_serving.cc
/// \brief E13 — concurrent serving through `serve::Server`.
///
/// Replays a Zipfian query mix (the heavy-tailed shape real query logs
/// have) over the Testbed track three ways:
///
///   1. sequential `Engine::QueryBatch` — the PR-1 baseline;
///   2. parallel `serve::Server::QueryBatch` at 1/2/4 worker threads with
///      the expansion cache disabled — pure thread-pool scaling;
///   3. two passes through a cache-enabled server — the second pass must
///      serve (almost) every expansion from the sharded LRU.
///
/// Hard correctness checks (aborts, not just reporting):
///   - every parallel ranking is document-identical to the sequential one;
///   - cache hits are counter-verified against `EngineStats` and the
///     cache's own counters, with a > 0.9 hit ratio on the warm pass;
///   - with ≥ 4 hardware threads, 4 workers must reach ≥ 2× the 1-worker
///     QueryBatch throughput (reported either way on smaller machines).

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "serve/server.h"

using namespace wqe;

namespace {

std::vector<api::QueryRequest> ZipfianRequests(const api::Testbed& bed,
                                               size_t count) {
  std::vector<uint32_t> mix = bench::ZipfianRequestMix(
      count, static_cast<uint32_t>(bed.num_topics()), /*s=*/1.0,
      /*seed=*/0xbeef);
  std::vector<api::QueryRequest> requests;
  requests.reserve(mix.size());
  for (uint32_t topic : mix) {
    api::QueryRequest request;
    request.keywords = bed.topic(topic).keywords;
    request.expander = "cycle";
    requests.push_back(std::move(request));
  }
  return requests;
}

void CheckIdenticalRankings(const std::vector<api::QueryResponse>& got,
                            const std::vector<api::QueryResponse>& want) {
  WQE_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    WQE_CHECK(got[i].docs == want[i].docs);
    WQE_CHECK(got[i].expansion.titles == want[i].expansion.titles);
  }
}

}  // namespace

int main() {
  const api::Testbed& bed = bench::GetBenchTestbed();
  const api::Engine& engine = bed.engine();
  const std::vector<api::QueryRequest> requests =
      ZipfianRequests(bed, 4 * bed.num_topics());
  const size_t n = requests.size();

  // Sequential baseline and reference rankings.
  Stopwatch watch;
  auto sequential = engine.QueryBatch(requests);
  WQE_CHECK_OK(sequential.status());
  double sequential_ms = watch.ElapsedMillis();

  TablePrinter table("E13 — parallel serving throughput (Zipfian mix, s=1)");
  table.SetHeader(
      {"path", "threads", "requests", "total ms", "req/s", "speedup"});
  auto add_row = [&](const char* path, size_t threads, double ms) {
    table.AddRow({path, std::to_string(threads), std::to_string(n),
                  FormatDouble(ms, 1),
                  FormatDouble(1000.0 * static_cast<double>(n) / ms, 1),
                  FormatDouble(sequential_ms / ms, 2)});
  };
  add_row("Engine::QueryBatch (seq)", 1, sequential_ms);

  const std::string config = "requests=" + std::to_string(n);
  bench::BenchJsonWriter json("perf_parallel_serving");
  json.Add("engine_query_batch", "total_ms", sequential_ms, config);

  // Thread-pool scaling, cache off: same work, more workers.
  double one_thread_ms = 0.0;
  double four_thread_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u}) {
    serve::ServerOptions options;
    options.num_threads = threads;
    options.enable_cache = false;
    serve::Server server(engine, options);
    watch.Reset();
    auto parallel = server.QueryBatch(requests);
    double ms = watch.ElapsedMillis();
    WQE_CHECK_OK(parallel.status());
    CheckIdenticalRankings(*parallel, *sequential);
    add_row("serve::Server::QueryBatch", threads, ms);
    json.Add("server_query_batch_t" + std::to_string(threads), "total_ms", ms,
             config);
    if (threads == 1) one_thread_ms = ms;
    if (threads == 4) four_thread_ms = ms;
  }

  // Cache effectiveness: cold pass then warm pass, counter-verified.
  serve::ServerOptions cached;
  cached.num_threads = 4;
  cached.cache.capacity = 4096;
  serve::Server server(engine, cached);
  size_t engine_hits_before = engine.stats().cache_hits;

  watch.Reset();
  auto cold = server.QueryBatch(requests);
  double cold_ms = watch.ElapsedMillis();
  WQE_CHECK_OK(cold.status());
  size_t cold_hits = engine.stats().cache_hits - engine_hits_before;

  watch.Reset();
  auto warm = server.QueryBatch(requests);
  double warm_ms = watch.ElapsedMillis();
  WQE_CHECK_OK(warm.status());
  size_t warm_hits = engine.stats().cache_hits - engine_hits_before - cold_hits;

  CheckIdenticalRankings(*cold, *sequential);
  CheckIdenticalRankings(*warm, *sequential);
  // The warm pass must hit on every request, and the engine-side counters
  // must agree with the cache's own.  (cold_hits itself is scheduling-
  // dependent — two in-flight requests for one key can both miss — so it
  // is consistency-checked but never printed; see the verify skill's
  // deterministic-output contract.)
  WQE_CHECK(warm_hits == n);
  serve::ExpansionCacheStats cache_stats = server.cache()->stats();
  WQE_CHECK(cache_stats.hits == cold_hits + warm_hits);
  WQE_CHECK(cache_stats.hits + cache_stats.misses == 2 * n);
  double warm_ratio =
      static_cast<double>(warm_hits) / static_cast<double>(n);
  WQE_CHECK(warm_ratio > 0.9);

  add_row("cached Server (cold)", 4, cold_ms);
  add_row("cached Server (warm)", 4, warm_ms);
  table.Print();

  std::set<std::string> distinct_keys;
  for (const api::QueryRequest& request : requests) {
    distinct_keys.insert(request.keywords);
  }
  std::printf(
      "\nrankings identical across all paths (%zu requests, %zu distinct, "
      "%zu topics)\n"
      "warm-pass cache hit ratio: %.3f (%zu/%zu, counter-verified)\n",
      n, distinct_keys.size(), bed.num_topics(), warm_ratio, warm_hits, n);

  unsigned hw = std::thread::hardware_concurrency();
  double speedup = one_thread_ms / four_thread_ms;
  std::printf("4-thread speedup over 1 thread: %.2fx on %u hardware "
              "thread(s)\n", speedup, hw);
  if (hw >= 4) {
    WQE_CHECK(speedup >= 2.0);  // the ISSUE-2 acceptance bar
  } else {
    std::printf("(< 4 hardware threads: the >= 2x acceptance check is "
                "skipped on this machine)\n");
  }

  json.Add("cached_server_cold", "total_ms", cold_ms, config);
  json.Add("cached_server_warm", "total_ms", warm_ms, config);
  json.Add("cached_server_warm", "hit_ratio", warm_ratio, config);
  json.Add("server_query_batch_t4", "speedup_vs_t1", speedup, config);
  json.Write();
  return 0;
}
