/// \file cycles_test.cc
/// \brief Tests for cycle enumeration and cycle metrics — the paper's core
/// structural machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <future>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "graph/ball_prune.h"
#include "graph/cycle_metrics.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/graph.h"
#include "graph/undirected_view.h"
#include "serve/thread_pool.h"
#include "wiki/knowledge_base.h"

namespace wqe::graph {
namespace {

/// Articles 0..n-1 with a single directed link per unordered pair
/// (i -> j for i < j): the undirected view is the complete graph K_n.
PropertyGraph CompleteArticleGraph(uint32_t n) {
  PropertyGraph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      EXPECT_TRUE(g.AddEdge(i, j, EdgeKind::kLink).ok());
    }
  }
  return g;
}

size_t CountCyclesOfLength(const std::vector<Cycle>& cycles, uint32_t len) {
  size_t n = 0;
  for (const Cycle& c : cycles) {
    if (c.length() == len) ++n;
  }
  return n;
}

TEST(CycleEnumeratorTest, TriangleFoundOnce) {
  PropertyGraph g = CompleteArticleGraph(3);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  std::vector<Cycle> cycles = e.Enumerate(options);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].length(), 3u);
  // Canonical form starts at the smallest node.
  EXPECT_EQ(cycles[0].nodes[0], 0u);
  EXPECT_LT(cycles[0].nodes[1], cycles[0].nodes[2]);
}

TEST(CycleEnumeratorTest, TwoCycleNeedsParallelEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  {
    CsrGraph csr = CsrGraph::Freeze(g);
    UndirectedView view(csr);
    CycleEnumerator e(view);
    EXPECT_TRUE(e.Enumerate({}).empty());  // single link: no 2-cycle
  }
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kLink).ok());
  {
    CsrGraph csr = CsrGraph::Freeze(g);
    UndirectedView view(csr);
    CycleEnumerator e(view);
    std::vector<Cycle> cycles = e.Enumerate({});
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0].length(), 2u);
  }
}

TEST(CycleEnumeratorTest, RedirectNeverClosesCycle) {
  // Redirect r -> a plus link a -> r would be a parallel pair, but the
  // redirect edge is excluded from the cycle view (paper §4).
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId r = g.AddNode(NodeKind::kArticle, "r");
  ASSERT_TRUE(g.AddEdge(r, a, EdgeKind::kRedirect).ok());
  ASSERT_TRUE(g.AddEdge(a, r, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  EXPECT_TRUE(e.Enumerate({}).empty());
}

/// Number of distinct cycles of length k in K_n: C(n,k) * (k-1)! / 2.
size_t ExpectedCyclesInComplete(uint32_t n, uint32_t k) {
  auto choose = [](uint32_t a, uint32_t b) -> size_t {
    size_t r = 1;
    for (uint32_t i = 0; i < b; ++i) r = r * (a - i) / (i + 1);
    return r;
  };
  size_t fact = 1;
  for (uint32_t i = 2; i < k; ++i) fact *= i;
  return choose(n, k) * fact / 2;
}

class CompleteGraphCycleTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(CompleteGraphCycleTest, CountMatchesClosedForm) {
  auto [n, k] = GetParam();
  PropertyGraph g = CompleteArticleGraph(n);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.min_length = k;
  options.max_length = k;
  std::vector<Cycle> cycles = e.Enumerate(options);
  EXPECT_EQ(cycles.size(), ExpectedCyclesInComplete(n, k))
      << "K_" << n << ", length " << k;
  // Each enumerated cycle must be a set of k distinct nodes.
  for (const Cycle& c : cycles) {
    std::set<NodeId> unique(c.nodes.begin(), c.nodes.end());
    EXPECT_EQ(unique.size(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KnCounts, CompleteGraphCycleTest,
    ::testing::Values(std::make_tuple(4u, 3u), std::make_tuple(4u, 4u),
                      std::make_tuple(5u, 3u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 5u), std::make_tuple(6u, 3u),
                      std::make_tuple(6u, 4u), std::make_tuple(6u, 5u),
                      std::make_tuple(7u, 5u)));

TEST(CycleEnumeratorTest, SeedFilterKeepsOnlyTouchingCycles) {
  // Two disjoint triangles; seed in the first.
  PropertyGraph g;
  for (int i = 0; i < 6; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {0, 2},
                      {3, 4}, {4, 5}, {3, 5}}) {
    ASSERT_TRUE(g.AddEdge(u, v, EdgeKind::kLink).ok());
  }
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.seeds = {0};
  std::vector<Cycle> cycles = e.Enumerate(options);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes[0], 0u);
}

TEST(CycleEnumeratorTest, MaxCyclesCapsEnumeration) {
  PropertyGraph g = CompleteArticleGraph(7);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.max_cycles = 5;
  EXPECT_EQ(e.Enumerate(options).size(), 5u);
}

TEST(CycleEnumeratorTest, VisitorCanAbort) {
  PropertyGraph g = CompleteArticleGraph(6);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  size_t seen = 0;
  e.Visit({}, [&](const std::vector<uint32_t>&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(CycleEnumeratorTest, LengthBoundsRespected) {
  PropertyGraph g = CompleteArticleGraph(6);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.min_length = 4;
  options.max_length = 5;
  std::vector<Cycle> cycles = e.Enumerate(options);
  EXPECT_EQ(CountCyclesOfLength(cycles, 3), 0u);
  EXPECT_EQ(CountCyclesOfLength(cycles, 4),
            ExpectedCyclesInComplete(6, 4));
  EXPECT_EQ(CountCyclesOfLength(cycles, 5),
            ExpectedCyclesInComplete(6, 5));
}

TEST(CycleEnumeratorTest, MixedArticleCategoryCycle) {
  // The paper's Figure 4(b) shape: venice - grand canal - palazzo bembo
  // via links and a shared category forms length-3 cycles.
  PropertyGraph g;
  NodeId q = g.AddNode(NodeKind::kArticle, "venice");
  NodeId x = g.AddNode(NodeKind::kArticle, "grand canal");
  NodeId c = g.AddNode(NodeKind::kCategory, "canals");
  ASSERT_TRUE(g.AddEdge(q, x, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(q, c, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c, EdgeKind::kBelongs).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  std::vector<Cycle> cycles = e.Enumerate({});
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].length(), 3u);
}

// ------------------------------------------------------------ CycleMetrics

TEST(CycleMetricsTest, MaxEdgesFormula) {
  EXPECT_EQ(MaxCycleEdges(2, 0), 2u);
  EXPECT_EQ(MaxCycleEdges(2, 1), 4u);
  EXPECT_EQ(MaxCycleEdges(2, 2), 7u);
  EXPECT_EQ(MaxCycleEdges(3, 0), 6u);
  EXPECT_EQ(MaxCycleEdges(3, 2), 13u);
  EXPECT_EQ(MaxCycleEdges(0, 0), 0u);
  EXPECT_EQ(MaxCycleEdges(0, 3), 3u);
}

TEST(CycleMetricsTest, DenseTriangleWithCategory) {
  // a <-> b mutual links; both belong to c: E=4, M=4, density 1.
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  NodeId c = g.AddNode(NodeKind::kCategory, "c");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(a, c, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(b, c, EdgeKind::kBelongs).ok());
  Cycle cycle;
  cycle.nodes = {a, b, c};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.length, 3u);
  EXPECT_EQ(m.num_articles, 2u);
  EXPECT_EQ(m.num_categories, 1u);
  EXPECT_EQ(m.num_edges, 4u);
  EXPECT_EQ(m.max_edges, 4u);
  EXPECT_NEAR(m.category_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.extra_edge_density, 1.0);
}

TEST(CycleMetricsTest, PlainCategoryBridgedFourCycleHasZeroDensity) {
  // q - c1 - x - c2 - q with no chords: E = |C| = 4 → density 0.
  PropertyGraph g;
  NodeId q = g.AddNode(NodeKind::kArticle, "q");
  NodeId x = g.AddNode(NodeKind::kArticle, "x");
  NodeId c1 = g.AddNode(NodeKind::kCategory, "c1");
  NodeId c2 = g.AddNode(NodeKind::kCategory, "c2");
  ASSERT_TRUE(g.AddEdge(q, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(q, c2, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c2, EdgeKind::kBelongs).ok());
  Cycle cycle;
  cycle.nodes = {q, c1, x, c2};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.num_edges, 4u);
  EXPECT_EQ(m.max_edges, 7u);
  EXPECT_DOUBLE_EQ(m.extra_edge_density, 0.0);
  EXPECT_DOUBLE_EQ(m.category_ratio, 0.5);
}

TEST(CycleMetricsTest, ChordRaisesDensity) {
  // Same 4-cycle plus c1 inside c2: one extra edge → density 1/3.
  PropertyGraph g;
  NodeId q = g.AddNode(NodeKind::kArticle, "q");
  NodeId x = g.AddNode(NodeKind::kArticle, "x");
  NodeId c1 = g.AddNode(NodeKind::kCategory, "c1");
  NodeId c2 = g.AddNode(NodeKind::kCategory, "c2");
  ASSERT_TRUE(g.AddEdge(q, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(q, c2, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c2, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(c1, c2, EdgeKind::kInside).ok());
  Cycle cycle;
  cycle.nodes = {q, c1, x, c2};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.num_edges, 5u);
  EXPECT_NEAR(m.extra_edge_density, 1.0 / 3.0, 1e-12);
}

TEST(CycleMetricsTest, TwoCycleDensityGuard) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kLink).ok());
  Cycle cycle;
  cycle.nodes = {a, b};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.num_edges, 2u);
  EXPECT_EQ(m.max_edges, 2u);  // M == |C|: density undefined → 0
  EXPECT_DOUBLE_EQ(m.extra_edge_density, 0.0);
}

TEST(CycleMetricsTest, RedirectEdgesExcludedFromInducedCount) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kRedirect).ok());
  EXPECT_EQ(CountInducedEdges(CsrGraph::Freeze(g), {a, b}), 1u);
}

TEST(ReciprocalLinkRateTest, CountsMutualFraction) {
  PropertyGraph g;
  for (int i = 0; i < 4; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  // Pairs: (0,1) mutual, (0,2) single, (1,3) single → rate 1/3.
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, EdgeKind::kLink).ok());
  EXPECT_NEAR(ReciprocalLinkRate(CsrGraph::Freeze(g)), 1.0 / 3.0, 1e-12);
}

TEST(ReciprocalLinkRateTest, EmptyGraphIsZero) {
  PropertyGraph g;
  EXPECT_DOUBLE_EQ(ReciprocalLinkRate(CsrGraph::Freeze(g)), 0.0);
}

// ------------------------------------------- parallel determinism suite
//
// The contract under test: the parallel enumerator's output — cycle set,
// cycle *order*, max_cycles truncation point, visitor-abort prefix — is
// bit-identical to the sequential enumerator at every worker count, even
// with adversarial chunk sizes of 1 (maximum interleaving of the merge).

/// Hub-skewed random article/category graph: quadratically biased
/// endpoints give the few hub nodes most of the degree mass, the
/// worst case for naive uniform chunking.
PropertyGraph SkewedSchemaGraph(uint64_t seed, uint32_t num_articles,
                                uint32_t num_categories, uint32_t num_edges) {
  Rng rng(seed);
  PropertyGraph g;
  for (uint32_t i = 0; i < num_articles; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (uint32_t i = 0; i < num_categories; ++i) {
    g.AddNode(NodeKind::kCategory, "c" + std::to_string(i));
  }
  const uint32_t n = num_articles + num_categories;
  auto skewed = [&] {
    uint64_t x = rng.Uniform(n);
    return static_cast<uint32_t>(x * x / n);  // quadratic bias toward hubs
  };
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t u = skewed();
    uint32_t v = rng.Uniform(n);
    if (u == v) continue;
    if (g.IsArticle(u) && g.IsArticle(v)) {
      (void)g.AddEdge(u, v, EdgeKind::kLink);
    } else if (g.IsArticle(u) && g.IsCategory(v)) {
      (void)g.AddEdge(u, v, EdgeKind::kBelongs);
    } else if (g.IsCategory(u) && g.IsCategory(v)) {
      (void)g.AddEdge(u, v, EdgeKind::kInside);
    }
  }
  return g;
}

std::vector<std::vector<NodeId>> CycleNodes(const std::vector<Cycle>& cycles) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(cycles.size());
  for (const Cycle& c : cycles) out.push_back(c.nodes);
  return out;
}

class ParallelDeterminismProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ParallelDeterminismProperty, BitIdenticalAcrossWorkersAndChunks) {
  PropertyGraph g = SkewedSchemaGraph(GetParam(), 26, 9, 260);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);

  std::vector<CycleEnumerationOptions> configs;
  {
    CycleEnumerationOptions base;  // lengths 2..5, no filters
    configs.push_back(base);
    CycleEnumerationOptions window = base;
    window.min_length = 3;
    window.max_length = 4;
    configs.push_back(window);
    CycleEnumerationOptions chordless = base;
    chordless.min_length = 4;
    chordless.chordless_only = true;
    configs.push_back(chordless);
    CycleEnumerationOptions seeded = base;
    seeded.seeds = {0, 5, 11};
    configs.push_back(seeded);
    for (size_t cap : {size_t{1}, size_t{5}, size_t{17}}) {
      CycleEnumerationOptions truncated = base;
      truncated.max_cycles = cap;
      configs.push_back(truncated);
      CycleEnumerationOptions seeded_truncated = seeded;
      seeded_truncated.max_cycles = cap;
      configs.push_back(seeded_truncated);
      // DFS-only stream (no length-2 phase): the prefix budget counts
      // the DFS stream here — the other early-stop code path.
      CycleEnumerationOptions dfs_truncated = window;
      dfs_truncated.max_cycles = cap;
      configs.push_back(dfs_truncated);
    }
  }

  for (const CycleEnumerationOptions& sequential : configs) {
    std::vector<std::vector<NodeId>> want =
        CycleNodes(e.Enumerate(sequential));
    for (uint32_t workers : {2u, 4u, 8u}) {
      for (uint32_t chunk : {0u, 1u}) {  // auto and adversarial size-1
        CycleEnumerationOptions parallel = sequential;
        parallel.num_threads = workers;
        parallel.parallel_chunk_starts = chunk;
        EXPECT_EQ(want, CycleNodes(e.Enumerate(parallel)))
            << "workers=" << workers << " chunk=" << chunk
            << " max_cycles=" << sequential.max_cycles
            << " chordless=" << sequential.chordless_only;
      }
    }
  }
}

TEST_P(ParallelDeterminismProperty, InducedSubsetViewsMatchToo) {
  PropertyGraph g = SkewedSchemaGraph(GetParam(), 30, 10, 300);
  CsrGraph csr = CsrGraph::Freeze(g);
  std::vector<NodeId> members;
  for (NodeId n = 0; n < g.num_nodes(); n += 2) members.push_back(n);
  UndirectedView view(csr, members);
  CycleEnumerator e(view);

  CycleEnumerationOptions sequential;
  std::vector<std::vector<NodeId>> want = CycleNodes(e.Enumerate(sequential));
  CycleEnumerationOptions parallel = sequential;
  parallel.num_threads = 4;
  parallel.parallel_chunk_starts = 1;
  EXPECT_EQ(want, CycleNodes(e.Enumerate(parallel)));

  // The induced-enumeration convenience wrapper takes the same knobs.
  EXPECT_EQ(CycleNodes(EnumerateCycles(csr, members, sequential)),
            CycleNodes(EnumerateCycles(csr, members, parallel)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismProperty,
                         ::testing::Values(7, 19, 42, 1234, 90210));

// ---- Ball pruning: pruned enumeration must be bit-identical to unpruned
// (cycle set, order, truncation, visitor-abort prefix) — see
// graph/ball_prune.h for why the surviving subgraph is a cycle superset.

/// SkewedSchemaGraph decorated with peelable pendant chains off every
/// fourth node: structure the pruning pass genuinely removes, so these
/// properties don't vacuously pass on an all-alive graph.
PropertyGraph SkewedGraphWithPendants(uint64_t seed, uint32_t num_articles,
                                      uint32_t num_categories,
                                      uint32_t num_edges) {
  PropertyGraph g = SkewedSchemaGraph(seed, num_articles, num_categories,
                                      num_edges);
  const uint32_t core = g.num_nodes();
  for (uint32_t anchor = 0; anchor < core; anchor += 4) {
    NodeId prev = anchor;
    for (int hop = 0; hop < 3; ++hop) {
      NodeId leaf = g.AddNode(NodeKind::kArticle,
                              "p" + std::to_string(anchor) + "_" +
                                  std::to_string(hop));
      if (g.IsArticle(prev)) {
        EXPECT_TRUE(g.AddEdge(prev, leaf, EdgeKind::kLink).ok());
      } else {
        EXPECT_TRUE(g.AddEdge(leaf, prev, EdgeKind::kBelongs).ok());
      }
      prev = leaf;
    }
  }
  return g;
}

class PrunedIdentityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrunedIdentityProperty, PrunedMatchesUnprunedEverywhere) {
  PropertyGraph g = SkewedGraphWithPendants(GetParam(), 26, 9, 260);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);

  // The decoration must actually be prunable — otherwise the identity
  // below proves nothing.
  std::vector<uint64_t> alive;
  ASSERT_TRUE(PruneBall(view, {}, 5, &alive).pruned_any());

  std::vector<CycleEnumerationOptions> configs;
  for (uint32_t min_len : {2u, 3u, 4u}) {
    for (uint32_t max_len : {2u, 3u, 5u}) {
      if (max_len < min_len) continue;
      for (bool chordless : {false, true}) {
        for (size_t cap : {size_t{0}, size_t{1}, size_t{5}, size_t{17}}) {
          CycleEnumerationOptions c;
          c.min_length = min_len;
          c.max_length = max_len;
          c.chordless_only = chordless;
          c.max_cycles = cap;
          configs.push_back(c);
          CycleEnumerationOptions seeded = c;
          seeded.seeds = {0, 5, 11};
          configs.push_back(seeded);
        }
      }
    }
  }

  for (const CycleEnumerationOptions& config : configs) {
    CycleEnumerationOptions unpruned = config;
    unpruned.prune_ball = false;
    std::vector<std::vector<NodeId>> want = CycleNodes(e.Enumerate(unpruned));

    CycleEnumerationOptions pruned = config;
    pruned.prune_ball = true;
    EXPECT_EQ(want, CycleNodes(e.Enumerate(pruned)))
        << "sequential lengths=" << config.min_length << ".."
        << config.max_length << " chordless=" << config.chordless_only
        << " cap=" << config.max_cycles << " seeds=" << config.seeds.size();

    // 4-thread parallel with adversarial size-1 chunks, pruned, against
    // the unpruned sequential reference: covers the alive-bitset fast
    // path through the worker loops and the deterministic merge at once.
    CycleEnumerationOptions parallel = pruned;
    parallel.num_threads = 4;
    parallel.parallel_chunk_starts = 1;
    EXPECT_EQ(want, CycleNodes(e.Enumerate(parallel)))
        << "parallel lengths=" << config.min_length << ".."
        << config.max_length << " chordless=" << config.chordless_only
        << " cap=" << config.max_cycles << " seeds=" << config.seeds.size();
  }
}

TEST_P(PrunedIdentityProperty, AbortPrefixMatchesUnpruned) {
  PropertyGraph g = SkewedGraphWithPendants(GetParam(), 24, 8, 240);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);

  // An aborting visitor must see the exact same prefix with pruning on,
  // sequential and parallel.
  auto prefix_of = [&](bool prune, uint32_t threads, size_t abort_after) {
    CycleEnumerationOptions options;
    options.prune_ball = prune;
    options.num_threads = threads;
    options.parallel_chunk_starts = threads > 1 ? 1 : 0;
    std::vector<std::vector<uint32_t>> seen;
    e.Visit(options, [&](const std::vector<uint32_t>& cycle) {
      seen.push_back(cycle);
      return seen.size() < abort_after;
    });
    return seen;
  };
  for (size_t abort_after : {size_t{1}, size_t{4}, size_t{9}}) {
    std::vector<std::vector<uint32_t>> want =
        prefix_of(false, 1, abort_after);
    EXPECT_EQ(want, prefix_of(true, 1, abort_after));
    EXPECT_EQ(want, prefix_of(true, 4, abort_after));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedIdentityProperty,
                         ::testing::Values(7, 19, 42, 1234, 90210));

TEST(ParallelCycleTest, VisitorAbortPrefixMatchesSequential) {
  PropertyGraph g = CompleteArticleGraph(7);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);

  // Sequential: record the prefix seen before the visitor aborts.
  auto run = [&](CycleEnumerationOptions options, size_t abort_after) {
    std::vector<std::vector<uint32_t>> seen;
    size_t visited = e.Visit(options, [&](const std::vector<uint32_t>& c) {
      seen.push_back(c);
      return seen.size() < abort_after;
    });
    return std::pair(visited, seen);
  };
  for (size_t abort_after : {size_t{1}, size_t{4}, size_t{23}}) {
    CycleEnumerationOptions sequential;
    auto [want_count, want_seen] = run(sequential, abort_after);
    CycleEnumerationOptions parallel;
    parallel.num_threads = 4;
    parallel.parallel_chunk_starts = 1;
    auto [got_count, got_seen] = run(parallel, abort_after);
    EXPECT_EQ(want_count, got_count) << "abort_after=" << abort_after;
    EXPECT_EQ(want_seen, got_seen) << "abort_after=" << abort_after;
  }
}

// -------------------------------- deadlines / cooperative cancellation
//
// The contract: an enumeration interrupted by an expired deadline or a
// cancel request emits a *prefix* of the sequential emission order —
// never a reordered or gap-ridden subset — at every thread count (the
// same abort-prefix identity the visitor-abort path guarantees).

bool IsPrefixOf(const std::vector<std::vector<NodeId>>& prefix,
                const std::vector<std::vector<NodeId>>& full) {
  return prefix.size() <= full.size() &&
         std::equal(prefix.begin(), prefix.end(), full.begin());
}

TEST(DeadlineCycleTest, ExpiredDeadlineEmitsNothingAtEveryThreadCount) {
  PropertyGraph g = SkewedSchemaGraph(7, 26, 9, 260);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  ASSERT_FALSE(e.Enumerate({}).empty());  // the graph does have cycles

  common::ExecContext ctx;
  ctx.deadline = common::Deadline::AfterMillis(0.0);
  common::ScopedExecContext scope(ctx);
  for (uint32_t workers : {1u, 2u, 4u}) {
    CycleEnumerationOptions options;
    options.num_threads = workers;
    options.parallel_chunk_starts = 1;
    size_t visited = e.Visit(options, [](const std::vector<uint32_t>&) {
      ADD_FAILURE() << "emitted a cycle under an already-expired deadline";
      return true;
    });
    EXPECT_EQ(visited, 0u) << "workers=" << workers;
  }
  EXPECT_TRUE(common::ExecStatus().IsDeadlineExceeded());
}

TEST(DeadlineCycleTest, DeadlineBetweenChunksKeepsCompletedPrefix) {
  // Deterministic between-chunk firing: the injector delays every chunk
  // claim by more than the whole budget, so the cooperative check right
  // after the *first* claim (per worker) already sees the deadline
  // expired — every chunk is marked incomplete and the merge replays the
  // empty prefix.  Parallel-only: the chunk-claim fault site does not
  // exist on the sequential path.
  PropertyGraph g = SkewedSchemaGraph(19, 26, 9, 260);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  ASSERT_FALSE(e.Enumerate({}).empty());

  common::FaultSpec delay;
  delay.delay_probability = 1.0;
  delay.delay_ms = 8.0;
  common::FaultInjector::Global().Configure(
      /*seed=*/5, {{"graph.enumeration_chunk", delay}});
  for (uint32_t workers : {2u, 4u}) {
    common::ExecContext ctx;
    ctx.deadline = common::Deadline::AfterMillis(2.0);
    common::ScopedExecContext scope(ctx);
    CycleEnumerationOptions options;
    options.num_threads = workers;
    options.parallel_chunk_starts = 1;
    std::vector<std::vector<uint32_t>> seen;
    size_t visited = e.Visit(options, [&](const std::vector<uint32_t>& c) {
      seen.push_back(c);
      return true;
    });
    // The budget can only expire *before* any chunk's work begins (the
    // injected delay eats the whole budget), so nothing is emitted; what
    // matters is that the run terminates promptly and reports the
    // interruption.
    EXPECT_EQ(visited, seen.size());
    EXPECT_EQ(visited, 0u) << "workers=" << workers;
    EXPECT_TRUE(common::ExecStatus().IsDeadlineExceeded())
        << "workers=" << workers;
  }
  common::FaultInjector::Global().Disable();
}

TEST(DeadlineCycleTest, CancelMidRunPreservesPrefixIdentity) {
  // A helper thread requests cancellation at staggered offsets while the
  // enumeration runs; wherever the cooperative check lands, the emitted
  // sequence must be a prefix of the full sequential order — at 1, 2 and
  // 4 threads.  (The cut point is timing-dependent; the prefix property
  // is not.)
  PropertyGraph g = SkewedSchemaGraph(42, 34, 11, 420);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  const std::vector<std::vector<NodeId>> full = CycleNodes(e.Enumerate({}));
  ASSERT_GT(full.size(), 4u);

  for (uint32_t workers : {1u, 2u, 4u}) {
    for (int delay_us : {0, 50, 200, 1000}) {
      common::CancelSource source;
      common::ExecContext ctx;
      ctx.cancel = source.token();
      common::ScopedExecContext scope(ctx);
      std::thread canceller([&source, delay_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        source.RequestCancel();
      });
      CycleEnumerationOptions options;
      options.num_threads = workers;
      options.parallel_chunk_starts = 1;
      std::vector<std::vector<NodeId>> seen;
      e.Visit(options, [&](const std::vector<uint32_t>& c) {
        std::vector<NodeId> nodes;
        nodes.reserve(c.size());
        for (uint32_t l : c) nodes.push_back(view.ToGlobal(l));
        seen.push_back(std::move(nodes));
        return true;
      });
      canceller.join();
      EXPECT_TRUE(IsPrefixOf(seen, full))
          << "workers=" << workers << " delay_us=" << delay_us
          << " seen=" << seen.size() << "/" << full.size();
      EXPECT_TRUE(common::ExecStatus().IsCancelled());
    }
  }
}

TEST(DeadlineCycleTest, NoDeadlineNoTokenIsBitIdenticalToBefore) {
  // The inactive-context fast path must not perturb emission at all:
  // with no deadline and no token installed, parallel output stays
  // bit-identical to sequential (the pre-existing contract).
  PropertyGraph g = SkewedSchemaGraph(1234, 26, 9, 260);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  ASSERT_FALSE(common::CurrentExecContext().active());
  const std::vector<std::vector<NodeId>> want = CycleNodes(e.Enumerate({}));
  for (uint32_t workers : {2u, 4u}) {
    CycleEnumerationOptions parallel;
    parallel.num_threads = workers;
    parallel.parallel_chunk_starts = 1;
    EXPECT_EQ(want, CycleNodes(e.Enumerate(parallel)));
  }
}

TEST(ParallelCycleTest, ExternalPoolAndAutoThreadsWork) {
  PropertyGraph g = SkewedSchemaGraph(3, 24, 8, 240);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  std::vector<std::vector<NodeId>> want = CycleNodes(e.Enumerate({}));

  serve::ThreadPool pool(3);
  CycleEnumerationOptions on_pool;
  on_pool.num_threads = 0;  // auto: pool workers + caller
  on_pool.pool = &pool;
  EXPECT_EQ(want, CycleNodes(e.Enumerate(on_pool)));
  // The pool survives for reuse (enumeration must not shut it down).
  EXPECT_EQ(want, CycleNodes(e.Enumerate(on_pool)));
}

TEST(ParallelCycleTest, NestedEnumerationFromPoolWorkerDegrades) {
  // A pool task that fans out onto its own pool would deadlock a bounded
  // pool; the enumerator must detect the worker context and run the
  // sequential path instead — completing (with identical output) IS the
  // assertion here.
  PropertyGraph g = SkewedSchemaGraph(11, 24, 8, 240);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  std::vector<std::vector<NodeId>> want = CycleNodes(e.Enumerate({}));

  serve::ThreadPool pool(1);  // capacity 1: any nested blocking deadlocks
  auto future = pool.Submit([&] {
    EXPECT_NE(serve::ThreadPool::CurrentWorkerPool(), nullptr);
    CycleEnumerationOptions nested;
    nested.num_threads = 4;
    nested.pool = &pool;  // same pool: the deadlock shape
    return CycleNodes(e.Enumerate(nested));
  });
  EXPECT_EQ(want, future.get());
  EXPECT_EQ(serve::ThreadPool::CurrentWorkerPool(), nullptr);
}

TEST(ParallelCycleTest, TsanStressSkewedKnowledgeBase) {
  // Hot loop for the -fsanitize=thread CI lane: a skewed synthetic KB,
  // concurrent top-level enumerations sharing one pool, each internally
  // parallel or degraded — every synchronization edge of the parallel
  // path (chunk cursor, prefix budget, buffer handoff) gets exercised.
  wiki::KnowledgeBase kb;
  Rng rng(99);
  constexpr uint32_t kArticles = 120;
  constexpr uint32_t kCategories = 24;
  std::vector<NodeId> articles, categories;
  for (uint32_t i = 0; i < kArticles; ++i) {
    articles.push_back(*kb.AddArticle("a" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < kCategories; ++i) {
    categories.push_back(*kb.AddCategory("c" + std::to_string(i)));
  }
  for (uint32_t e2 = 0; e2 < 1400; ++e2) {
    uint64_t x = rng.Uniform(kArticles);
    uint32_t u = static_cast<uint32_t>(x * x / kArticles);  // hub skew
    uint32_t v = rng.Uniform(kArticles);
    if (u != v) (void)kb.AddLink(articles[u], articles[v]);
  }
  for (uint32_t i = 0; i < kArticles; ++i) {
    (void)kb.AddBelongs(articles[i], categories[i % kCategories]);
  }
  const CsrGraph& csr = kb.Freeze();
  UndirectedView view(csr);
  CycleEnumerator e(view);

  CycleEnumerationOptions sequential;
  sequential.max_length = 4;  // keep the TSan (≈10×) runtime in check
  std::vector<std::vector<NodeId>> want = CycleNodes(e.Enumerate(sequential));

  serve::ThreadPool pool(4);
  std::vector<std::future<std::vector<std::vector<NodeId>>>> degraded;
  for (int i = 0; i < 4; ++i) {
    degraded.push_back(pool.Submit([&] {
      CycleEnumerationOptions nested = sequential;
      nested.num_threads = 4;
      nested.pool = &pool;
      return CycleNodes(e.Enumerate(nested));  // degrades on the worker
    }));
  }
  for (int i = 0; i < 4; ++i) {
    CycleEnumerationOptions parallel = sequential;
    parallel.num_threads = 4;
    parallel.pool = &pool;  // top-level: fans out across the same pool
    EXPECT_EQ(want, CycleNodes(e.Enumerate(parallel))) << "iteration " << i;
  }
  for (auto& f : degraded) EXPECT_EQ(want, f.get());
}

TEST(EnumerateCyclesHelperTest, InducedConvenienceWrapper) {
  PropertyGraph g = CompleteArticleGraph(5);
  CycleEnumerationOptions options;
  options.min_length = 3;
  options.max_length = 3;
  // Restrict to 4 of the 5 nodes: C(4,3) = 4 triangles.
  std::vector<Cycle> cycles =
      EnumerateCycles(CsrGraph::Freeze(g), {0, 1, 2, 3}, options);
  EXPECT_EQ(cycles.size(), 4u);
  for (const Cycle& c : cycles) {
    for (NodeId n : c.nodes) EXPECT_LT(n, 4u);
  }
}

}  // namespace
}  // namespace wqe::graph
