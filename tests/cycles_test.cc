/// \file cycles_test.cc
/// \brief Tests for cycle enumeration and cycle metrics — the paper's core
/// structural machinery.

#include <gtest/gtest.h>

#include <set>

#include "graph/cycle_metrics.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/graph.h"
#include "graph/undirected_view.h"

namespace wqe::graph {
namespace {

/// Articles 0..n-1 with a single directed link per unordered pair
/// (i -> j for i < j): the undirected view is the complete graph K_n.
PropertyGraph CompleteArticleGraph(uint32_t n) {
  PropertyGraph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      EXPECT_TRUE(g.AddEdge(i, j, EdgeKind::kLink).ok());
    }
  }
  return g;
}

size_t CountCyclesOfLength(const std::vector<Cycle>& cycles, uint32_t len) {
  size_t n = 0;
  for (const Cycle& c : cycles) {
    if (c.length() == len) ++n;
  }
  return n;
}

TEST(CycleEnumeratorTest, TriangleFoundOnce) {
  PropertyGraph g = CompleteArticleGraph(3);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  std::vector<Cycle> cycles = e.Enumerate(options);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].length(), 3u);
  // Canonical form starts at the smallest node.
  EXPECT_EQ(cycles[0].nodes[0], 0u);
  EXPECT_LT(cycles[0].nodes[1], cycles[0].nodes[2]);
}

TEST(CycleEnumeratorTest, TwoCycleNeedsParallelEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  {
    CsrGraph csr = CsrGraph::Freeze(g);
    UndirectedView view(csr);
    CycleEnumerator e(view);
    EXPECT_TRUE(e.Enumerate({}).empty());  // single link: no 2-cycle
  }
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kLink).ok());
  {
    CsrGraph csr = CsrGraph::Freeze(g);
    UndirectedView view(csr);
    CycleEnumerator e(view);
    std::vector<Cycle> cycles = e.Enumerate({});
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0].length(), 2u);
  }
}

TEST(CycleEnumeratorTest, RedirectNeverClosesCycle) {
  // Redirect r -> a plus link a -> r would be a parallel pair, but the
  // redirect edge is excluded from the cycle view (paper §4).
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId r = g.AddNode(NodeKind::kArticle, "r");
  ASSERT_TRUE(g.AddEdge(r, a, EdgeKind::kRedirect).ok());
  ASSERT_TRUE(g.AddEdge(a, r, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  EXPECT_TRUE(e.Enumerate({}).empty());
}

/// Number of distinct cycles of length k in K_n: C(n,k) * (k-1)! / 2.
size_t ExpectedCyclesInComplete(uint32_t n, uint32_t k) {
  auto choose = [](uint32_t a, uint32_t b) -> size_t {
    size_t r = 1;
    for (uint32_t i = 0; i < b; ++i) r = r * (a - i) / (i + 1);
    return r;
  };
  size_t fact = 1;
  for (uint32_t i = 2; i < k; ++i) fact *= i;
  return choose(n, k) * fact / 2;
}

class CompleteGraphCycleTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(CompleteGraphCycleTest, CountMatchesClosedForm) {
  auto [n, k] = GetParam();
  PropertyGraph g = CompleteArticleGraph(n);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.min_length = k;
  options.max_length = k;
  std::vector<Cycle> cycles = e.Enumerate(options);
  EXPECT_EQ(cycles.size(), ExpectedCyclesInComplete(n, k))
      << "K_" << n << ", length " << k;
  // Each enumerated cycle must be a set of k distinct nodes.
  for (const Cycle& c : cycles) {
    std::set<NodeId> unique(c.nodes.begin(), c.nodes.end());
    EXPECT_EQ(unique.size(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KnCounts, CompleteGraphCycleTest,
    ::testing::Values(std::make_tuple(4u, 3u), std::make_tuple(4u, 4u),
                      std::make_tuple(5u, 3u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 5u), std::make_tuple(6u, 3u),
                      std::make_tuple(6u, 4u), std::make_tuple(6u, 5u),
                      std::make_tuple(7u, 5u)));

TEST(CycleEnumeratorTest, SeedFilterKeepsOnlyTouchingCycles) {
  // Two disjoint triangles; seed in the first.
  PropertyGraph g;
  for (int i = 0; i < 6; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {0, 2},
                      {3, 4}, {4, 5}, {3, 5}}) {
    ASSERT_TRUE(g.AddEdge(u, v, EdgeKind::kLink).ok());
  }
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.seeds = {0};
  std::vector<Cycle> cycles = e.Enumerate(options);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes[0], 0u);
}

TEST(CycleEnumeratorTest, MaxCyclesCapsEnumeration) {
  PropertyGraph g = CompleteArticleGraph(7);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.max_cycles = 5;
  EXPECT_EQ(e.Enumerate(options).size(), 5u);
}

TEST(CycleEnumeratorTest, VisitorCanAbort) {
  PropertyGraph g = CompleteArticleGraph(6);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  size_t seen = 0;
  e.Visit({}, [&](const std::vector<uint32_t>&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(CycleEnumeratorTest, LengthBoundsRespected) {
  PropertyGraph g = CompleteArticleGraph(6);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  CycleEnumerationOptions options;
  options.min_length = 4;
  options.max_length = 5;
  std::vector<Cycle> cycles = e.Enumerate(options);
  EXPECT_EQ(CountCyclesOfLength(cycles, 3), 0u);
  EXPECT_EQ(CountCyclesOfLength(cycles, 4),
            ExpectedCyclesInComplete(6, 4));
  EXPECT_EQ(CountCyclesOfLength(cycles, 5),
            ExpectedCyclesInComplete(6, 5));
}

TEST(CycleEnumeratorTest, MixedArticleCategoryCycle) {
  // The paper's Figure 4(b) shape: venice - grand canal - palazzo bembo
  // via links and a shared category forms length-3 cycles.
  PropertyGraph g;
  NodeId q = g.AddNode(NodeKind::kArticle, "venice");
  NodeId x = g.AddNode(NodeKind::kArticle, "grand canal");
  NodeId c = g.AddNode(NodeKind::kCategory, "canals");
  ASSERT_TRUE(g.AddEdge(q, x, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(q, c, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c, EdgeKind::kBelongs).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  CycleEnumerator e(view);
  std::vector<Cycle> cycles = e.Enumerate({});
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].length(), 3u);
}

// ------------------------------------------------------------ CycleMetrics

TEST(CycleMetricsTest, MaxEdgesFormula) {
  EXPECT_EQ(MaxCycleEdges(2, 0), 2u);
  EXPECT_EQ(MaxCycleEdges(2, 1), 4u);
  EXPECT_EQ(MaxCycleEdges(2, 2), 7u);
  EXPECT_EQ(MaxCycleEdges(3, 0), 6u);
  EXPECT_EQ(MaxCycleEdges(3, 2), 13u);
  EXPECT_EQ(MaxCycleEdges(0, 0), 0u);
  EXPECT_EQ(MaxCycleEdges(0, 3), 3u);
}

TEST(CycleMetricsTest, DenseTriangleWithCategory) {
  // a <-> b mutual links; both belong to c: E=4, M=4, density 1.
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  NodeId c = g.AddNode(NodeKind::kCategory, "c");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(a, c, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(b, c, EdgeKind::kBelongs).ok());
  Cycle cycle;
  cycle.nodes = {a, b, c};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.length, 3u);
  EXPECT_EQ(m.num_articles, 2u);
  EXPECT_EQ(m.num_categories, 1u);
  EXPECT_EQ(m.num_edges, 4u);
  EXPECT_EQ(m.max_edges, 4u);
  EXPECT_NEAR(m.category_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.extra_edge_density, 1.0);
}

TEST(CycleMetricsTest, PlainCategoryBridgedFourCycleHasZeroDensity) {
  // q - c1 - x - c2 - q with no chords: E = |C| = 4 → density 0.
  PropertyGraph g;
  NodeId q = g.AddNode(NodeKind::kArticle, "q");
  NodeId x = g.AddNode(NodeKind::kArticle, "x");
  NodeId c1 = g.AddNode(NodeKind::kCategory, "c1");
  NodeId c2 = g.AddNode(NodeKind::kCategory, "c2");
  ASSERT_TRUE(g.AddEdge(q, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(q, c2, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c2, EdgeKind::kBelongs).ok());
  Cycle cycle;
  cycle.nodes = {q, c1, x, c2};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.num_edges, 4u);
  EXPECT_EQ(m.max_edges, 7u);
  EXPECT_DOUBLE_EQ(m.extra_edge_density, 0.0);
  EXPECT_DOUBLE_EQ(m.category_ratio, 0.5);
}

TEST(CycleMetricsTest, ChordRaisesDensity) {
  // Same 4-cycle plus c1 inside c2: one extra edge → density 1/3.
  PropertyGraph g;
  NodeId q = g.AddNode(NodeKind::kArticle, "q");
  NodeId x = g.AddNode(NodeKind::kArticle, "x");
  NodeId c1 = g.AddNode(NodeKind::kCategory, "c1");
  NodeId c2 = g.AddNode(NodeKind::kCategory, "c2");
  ASSERT_TRUE(g.AddEdge(q, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c1, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(q, c2, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(x, c2, EdgeKind::kBelongs).ok());
  ASSERT_TRUE(g.AddEdge(c1, c2, EdgeKind::kInside).ok());
  Cycle cycle;
  cycle.nodes = {q, c1, x, c2};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.num_edges, 5u);
  EXPECT_NEAR(m.extra_edge_density, 1.0 / 3.0, 1e-12);
}

TEST(CycleMetricsTest, TwoCycleDensityGuard) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kLink).ok());
  Cycle cycle;
  cycle.nodes = {a, b};
  CycleMetrics m = ComputeCycleMetrics(CsrGraph::Freeze(g), cycle);
  EXPECT_EQ(m.num_edges, 2u);
  EXPECT_EQ(m.max_edges, 2u);  // M == |C|: density undefined → 0
  EXPECT_DOUBLE_EQ(m.extra_edge_density, 0.0);
}

TEST(CycleMetricsTest, RedirectEdgesExcludedFromInducedCount) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(b, a, EdgeKind::kRedirect).ok());
  EXPECT_EQ(CountInducedEdges(CsrGraph::Freeze(g), {a, b}), 1u);
}

TEST(ReciprocalLinkRateTest, CountsMutualFraction) {
  PropertyGraph g;
  for (int i = 0; i < 4; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  // Pairs: (0,1) mutual, (0,2) single, (1,3) single → rate 1/3.
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, EdgeKind::kLink).ok());
  EXPECT_NEAR(ReciprocalLinkRate(CsrGraph::Freeze(g)), 1.0 / 3.0, 1e-12);
}

TEST(ReciprocalLinkRateTest, EmptyGraphIsZero) {
  PropertyGraph g;
  EXPECT_DOUBLE_EQ(ReciprocalLinkRate(CsrGraph::Freeze(g)), 0.0);
}

TEST(EnumerateCyclesHelperTest, InducedConvenienceWrapper) {
  PropertyGraph g = CompleteArticleGraph(5);
  CycleEnumerationOptions options;
  options.min_length = 3;
  options.max_length = 3;
  // Restrict to 4 of the 5 nodes: C(4,3) = 4 triangles.
  std::vector<Cycle> cycles =
      EnumerateCycles(CsrGraph::Freeze(g), {0, 1, 2, 3}, options);
  EXPECT_EQ(cycles.size(), 4u);
  for (const Cycle& c : cycles) {
    for (NodeId n : c.nodes) EXPECT_LT(n, 4u);
  }
}

}  // namespace
}  // namespace wqe::graph
