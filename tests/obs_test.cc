/// \file obs_test.cc
/// \brief Tests for the observability subsystem: counter/gauge semantics,
/// log-linear histogram percentile accuracy against the exact
/// `wqe::PercentileSorted`, snapshot deltas, the registry's get-or-create
/// and exporter contracts, span parent/stage propagation across a
/// `serve::ThreadPool` task, the trace-log ring, concurrent multi-writer
/// totals, and the runtime kill switch.  Runs under TSan in CI alongside
/// the serve suites (see ci.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/thread_pool.h"

namespace wqe::obs {
namespace {

// ------------------------------------------------------ Counter / Gauge

TEST(CounterTest, MonotonicIncrements) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.Add(-1.25);
  EXPECT_EQ(gauge.value(), 1.25);
  gauge.Set(-7.0);
  EXPECT_EQ(gauge.value(), -7.0);
}

// ------------------------------------------------------------ Histogram

/// Records `values` and asserts the histogram percentile lands within one
/// bucket width of the exact R-7 percentile (the interpolation can put
/// the exact value and the estimate in adjacent buckets, hence the max
/// of both widths).
void CheckPercentiles(std::vector<double> values) {
  Histogram histogram;
  for (double v : values) histogram.Record(v);
  std::sort(values.begin(), values.end());
  HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double p : {0.5, 0.95, 0.99}) {
    const double exact = PercentileSorted(values, p);
    const double estimate = snap.Percentile(p);
    const double tolerance = std::max(histogram.BucketWidthFor(exact),
                                      histogram.BucketWidthFor(estimate)) +
                             1e-9;
    EXPECT_NEAR(estimate, exact, tolerance)
        << "p=" << p << " n=" << values.size();
  }
}

TEST(HistogramTest, PercentilesMatchExactUniform) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Rng rng(42);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    values.push_back(0.5 + rng.NextDouble() * 49.5);  // [0.5, 50) ms
  }
  CheckPercentiles(std::move(values));
}

TEST(HistogramTest, PercentilesMatchExactLognormal) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Rng rng(7);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed latencies: exp(N(1.0, 0.8)) ms, the shape serving
    // latency distributions actually have.
    values.push_back(std::exp(rng.Gaussian(1.0, 0.8)));
  }
  CheckPercentiles(std::move(values));
}

TEST(HistogramTest, MeanMatchesSum) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Histogram histogram;
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Record(6.0);
  HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 9.0, 1e-12);
  EXPECT_NEAR(snap.Mean(), 3.0, 1e-12);
}

TEST(HistogramTest, UnderflowAndOverflowBuckets) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Histogram histogram;  // default layout: [1e-3, 1e-3 * 2^40)
  histogram.Record(0.0);
  histogram.Record(-5.0);   // clamps into underflow, never out of range
  histogram.Record(1e300);  // overflow
  HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  // Median sits in the underflow bucket: somewhere in [0, min_value].
  const double p50 = snap.Percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, histogram.options().min_value);
  // The tail clamps to the instrumented range's top edge (with n=3 the
  // max — rank 2 — is the first rank that reaches the overflow bucket).
  const double top = std::ldexp(histogram.options().min_value,
                                int(histogram.options().num_octaves));
  EXPECT_EQ(snap.Percentile(1.0), top);
}

TEST(HistogramTest, DeltaSinceIsolatesOnePass) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(1.0);
  HistogramSnapshot cold = histogram.snapshot();
  for (int i = 0; i < 100; ++i) histogram.Record(16.0);
  HistogramSnapshot warm = histogram.snapshot().DeltaSince(cold);
  EXPECT_EQ(warm.count, 100u);
  EXPECT_NEAR(warm.sum, 1600.0, 1e-9);
  // Only the second pass's values remain after the subtraction.
  EXPECT_NEAR(warm.Percentile(0.5), 16.0,
              histogram.BucketWidthFor(16.0) + 1e-9);
}

TEST(HistogramTest, ConcurrentWritersLoseNothing) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(0.05 + 0.1 * double((i + t) % 100));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, uint64_t(kThreads) * kPerThread);
  // Every thread records the same multiset: 200 copies of each value.
  double expected_sum = 0.0;
  for (int v = 0; v < 100; ++v) {
    expected_sum += (0.05 + 0.1 * v) * kThreads * (kPerThread / 100);
  }
  EXPECT_NEAR(snap.sum, expected_sum, 1e-3);
}

// ------------------------------------------------------------- Registry

TEST(RegistryTest, GetOrCreateIsStableAndLabelOrderInsensitive) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("wqe.test.x", {{"b", "2"}, {"a", "1"}});
  Counter* b = registry.GetCounter("wqe.test.x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);  // sorted labels: one series, stable pointer
  Counter* other = registry.GetCounter("wqe.test.x", {{"a", "1"}});
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.num_instruments(), 2u);
}

TEST(RegistryTest, DumpJsonIsStableSchema) {
  MetricsRegistry registry;
  registry.GetCounter("wqe.test.requests", {{"server", "1"}})->Inc(3);
  registry.GetGauge("wqe.test.depth")->Set(2.5);
  // Map order: plain names sort before labeled ones here.
  EXPECT_EQ(registry.DumpJson(),
            "{\"metrics\":["
            "{\"name\":\"wqe.test.depth\",\"type\":\"gauge\",\"value\":2.5},"
            "{\"name\":\"wqe.test.requests\",\"labels\":{\"server\":\"1\"},"
            "\"type\":\"counter\",\"value\":3}"
            "]}");
}

TEST(RegistryTest, DumpJsonHistogramCarriesQuantiles) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("wqe.test.latency_ms");
  histogram->Record(1.0);
  histogram->Record(2.0);
  const std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"type\":\"histogram\",\"count\":2,\"sum\":3,\"p50\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(RegistryTest, DumpPrometheusFormats) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  registry.GetCounter("wqe.test.requests", {{"server", "1"}})->Inc(3);
  registry.GetHistogram("wqe.test.latency_ms")->Record(1.0);
  const std::string prom = registry.DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE wqe_test_requests counter\n"
                      "wqe_test_requests{server=\"1\"} 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE wqe_test_latency_ms summary\n"),
            std::string::npos);
  EXPECT_NE(prom.find("wqe_test_latency_ms{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("wqe_test_latency_ms_count 1\n"), std::string::npos);
}

// ---------------------------------------------------------------- Spans

/// Pins the trace head-sampling rate for one test (the default samples
/// every 8th trace, so record-level assertions need every=1).
class ScopedSampleEvery {
 public:
  explicit ScopedSampleEvery(uint32_t n) : prev_(GetTraceSampleEvery()) {
    SetTraceSampleEvery(n);
  }
  ~ScopedSampleEvery() { SetTraceSampleEvery(prev_); }

 private:
  uint32_t prev_;
};

TEST(TraceTest, TraceLogRingOverwritesOldest) {
  TraceLog log(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    SpanRecord record;
    record.span_id = i;
    log.Append(record);
  }
  std::vector<SpanRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].span_id, i + 3);  // oldest-first: 3, 4, 5, 6
  }
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(TraceTest, NestedSpansShareTraceAndChainParents) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ScopedSampleEvery sample_all(1);
  MetricsRegistry registry;
  {
    Span root("request", nullptr, &registry);
    EXPECT_TRUE(root.context().active());
    EXPECT_EQ(common::CurrentTraceContext().span_id, root.context().span_id);
    {
      Span stage("expansion", nullptr, &registry);
      EXPECT_EQ(stage.context().trace_id, root.context().trace_id);
    }
    // Closing the child restores the parent as the ambient context.
    EXPECT_EQ(common::CurrentTraceContext().span_id, root.context().span_id);
  }
  EXPECT_FALSE(common::CurrentTraceContext().active());
  std::vector<SpanRecord> records = registry.trace_log().Snapshot();
  ASSERT_EQ(records.size(), 2u);  // children close (and land) first
  EXPECT_EQ(records[0].stage, "expansion");
  EXPECT_EQ(records[1].stage, "request");
  EXPECT_EQ(records[1].parent_span_id, 0u);  // trace root
  EXPECT_EQ(records[0].trace_id, records[1].trace_id);
  EXPECT_EQ(records[0].parent_span_id, records[1].span_id);
  EXPECT_GE(records[1].duration_ms, records[0].duration_ms);
}

TEST(TraceTest, ContextPropagatesAcrossPoolTask) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  SetEnabled(true);
  ScopedSampleEvery sample_all(1);
  MetricsRegistry registry;
  uint64_t root_trace = 0;
  uint64_t root_span = 0;
  {
    Span root("request", nullptr, &registry);
    root_trace = root.context().trace_id;
    root_span = root.context().span_id;
    serve::ThreadPool pool(1);
    pool.Submit([&registry] {
          Span stage("expansion", nullptr, &registry);
        })
        .get();
    pool.Shutdown();
  }
  std::vector<SpanRecord> records = registry.trace_log().Snapshot();
  ASSERT_EQ(records.size(), 2u);
  // The worker-side span joined the submitter's trace, parented directly
  // under the root even though it ran on another thread.
  EXPECT_EQ(records[0].stage, "expansion");
  EXPECT_EQ(records[0].trace_id, root_trace);
  EXPECT_EQ(records[0].parent_span_id, root_span);
  // The pool recorded the enqueue→dequeue gap as the trace's own
  // queue-wait span (pools are registry-agnostic: it lands globally).
  bool queue_wait_seen = false;
  for (const SpanRecord& record :
       MetricsRegistry::Global().trace_log().Snapshot()) {
    if (record.stage == "queue-wait" && record.trace_id == root_trace &&
        record.parent_span_id == root_span) {
      queue_wait_seen = true;
    }
  }
  EXPECT_TRUE(queue_wait_seen);
}

TEST(TraceTest, HeadSamplingKeepsWholeTracesTogether) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ScopedSampleEvery sample_half(2);
  MetricsRegistry registry;
  for (int i = 0; i < 8; ++i) {
    Span root("request", nullptr, &registry);
    Span child("expansion", nullptr, &registry);
    // The child inherits the root's decision, whatever it was.
    EXPECT_EQ(child.context().sampled, root.context().sampled);
  }
  // Every sampled trace contributed both spans, none contributed one:
  // the log holds complete trees only.  (The exact count depends on how
  // many roots the shared counter assigned to this test, so count pairs
  // rather than pinning a total.)
  std::map<uint64_t, int> spans_per_trace;
  for (const SpanRecord& record : registry.trace_log().Snapshot()) {
    ++spans_per_trace[record.trace_id];
  }
  EXPECT_FALSE(spans_per_trace.empty());  // every=2 over 8 roots samples some
  for (const auto& [trace_id, count] : spans_per_trace) {
    EXPECT_EQ(count, 2) << "trace " << trace_id << " recorded partially";
  }
}

// ---------------------------------------------------------- Kill switch

TEST(KillSwitchTest, RuntimeDisableStopsHistogramsAndSpans) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("wqe.test.off_ms");
  Counter* counter = registry.GetCounter("wqe.test.off_count");
  SetEnabled(false);
  histogram->Record(1.0);
  counter->Inc();
  {
    Span span("request", histogram, &registry);
    EXPECT_FALSE(span.context().active());  // inert: no trace started
    EXPECT_FALSE(common::CurrentTraceContext().active());
  }
  SetEnabled(true);
  EXPECT_EQ(histogram->count(), 0u);  // histograms and spans went dark...
  EXPECT_TRUE(registry.trace_log().Snapshot().empty());
  EXPECT_EQ(counter->value(), 1u);  // ...counters stayed live
  histogram->Record(1.0);
  EXPECT_EQ(histogram->count(), 1u);  // and recording resumes
}

}  // namespace
}  // namespace wqe::obs
