/// \file property_test.cc
/// \brief Property-style sweeps over randomized inputs: invariants that
/// must hold for every input, checked across seeds with TEST_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "graph/connected_components.h"
#include "graph/csr.h"
#include "graph/cycle_metrics.h"
#include "graph/cycles.h"
#include "graph/graph.h"
#include "graph/undirected_view.h"
#include "ir/eval.h"
#include "text/tokenizer.h"
#include "xml/xml_parser.h"

namespace wqe {
namespace {

/// Random article/category graph respecting the Figure 1 schema.
graph::PropertyGraph RandomSchemaGraph(uint64_t seed, uint32_t num_articles,
                                       uint32_t num_categories,
                                       uint32_t num_edges) {
  Rng rng(seed);
  graph::PropertyGraph g;
  for (uint32_t i = 0; i < num_articles; ++i) {
    g.AddNode(graph::NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (uint32_t i = 0; i < num_categories; ++i) {
    g.AddNode(graph::NodeKind::kCategory, "c" + std::to_string(i));
  }
  uint32_t n = num_articles + num_categories;
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t u = rng.Uniform(n);
    uint32_t v = rng.Uniform(n);
    if (u == v) continue;
    graph::EdgeKind kind;
    if (g.IsArticle(u) && g.IsArticle(v)) {
      kind = rng.Bernoulli(0.9) ? graph::EdgeKind::kLink
                                : graph::EdgeKind::kRedirect;
    } else if (g.IsArticle(u) && g.IsCategory(v)) {
      kind = graph::EdgeKind::kBelongs;
    } else if (g.IsCategory(u) && g.IsCategory(v)) {
      kind = graph::EdgeKind::kInside;
    } else {
      continue;  // category -> article: not in the schema
    }
    (void)g.AddEdge(u, v, kind);  // duplicates rejected, fine
  }
  return g;
}

class RandomGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphProperty, UndirectedViewIsSymmetric) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 30, 10, 150);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  for (uint32_t u = 0; u < view.num_nodes(); ++u) {
    for (uint32_t v : view.Neighbors(u)) {
      EXPECT_TRUE(view.HasEdge(v, u)) << u << " " << v;
      EXPECT_EQ(view.Multiplicity(u, v), view.Multiplicity(v, u));
      EXPECT_GE(view.Multiplicity(u, v), 1u);
    }
  }
}

TEST_P(RandomGraphProperty, MultiplicitySumsToNonRedirectEdges) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 25, 8, 120);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  uint64_t total_multiplicity = 0;
  for (uint32_t u = 0; u < view.num_nodes(); ++u) {
    for (uint32_t v : view.Neighbors(u)) {
      if (v > u) total_multiplicity += view.Multiplicity(u, v);
    }
  }
  uint64_t non_redirect =
      g.num_edges() - g.CountEdges(graph::EdgeKind::kRedirect);
  EXPECT_EQ(total_multiplicity, non_redirect);
}

TEST_P(RandomGraphProperty, ComponentSizesPartitionNodes) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 40, 12, 100);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  graph::ComponentsResult cc = graph::ConnectedComponents(view);
  uint64_t total = 0;
  for (uint32_t s : cc.size) total += s;
  EXPECT_EQ(total, view.num_nodes());
  // Sizes are non-increasing by label.
  for (size_t i = 1; i < cc.size.size(); ++i) {
    EXPECT_LE(cc.size[i], cc.size[i - 1]);
  }
  // Every edge stays within one component.
  for (uint32_t u = 0; u < view.num_nodes(); ++u) {
    for (uint32_t v : view.Neighbors(u)) {
      EXPECT_EQ(cc.label[u], cc.label[v]);
    }
  }
}

TEST_P(RandomGraphProperty, EnumeratedCyclesAreValidAndUnique) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 16, 6, 90);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  graph::CycleEnumerator enumerator(view);
  std::set<std::vector<uint32_t>> canonical_seen;

  enumerator.Visit({}, [&](const std::vector<uint32_t>& cycle) {
    // Length bounds.
    EXPECT_GE(cycle.size(), 2u);
    EXPECT_LE(cycle.size(), 5u);
    // Distinct nodes.
    std::set<uint32_t> unique(cycle.begin(), cycle.end());
    EXPECT_EQ(unique.size(), cycle.size());
    // Consecutive adjacency, including the closing edge.
    for (size_t i = 0; i < cycle.size(); ++i) {
      uint32_t a = cycle[i];
      uint32_t b = cycle[(i + 1) % cycle.size()];
      if (cycle.size() == 2) {
        EXPECT_GE(view.Multiplicity(a, b), 2u);
      } else {
        EXPECT_TRUE(view.HasEdge(a, b));
      }
    }
    // Canonical form: starts at its minimum, second < last (length >= 3).
    EXPECT_EQ(cycle[0], *std::min_element(cycle.begin(), cycle.end()));
    if (cycle.size() >= 3) {
      EXPECT_LT(cycle[1], cycle.back());
    }
    // No duplicates across the enumeration.
    EXPECT_TRUE(canonical_seen.insert(cycle).second);
    return true;
  });
}

TEST_P(RandomGraphProperty, ChordlessCyclesHaveZeroDensity) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 14, 6, 80);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions options;
  options.chordless_only = true;
  options.min_length = 4;  // triangles are trivially chordless
  for (const graph::Cycle& local : enumerator.Enumerate(options)) {
    graph::Cycle cycle;
    for (graph::NodeId n : local.nodes) {
      cycle.nodes.push_back(view.ToGlobal(n));
    }
    graph::CycleMetrics m = ComputeCycleMetrics(csr, cycle);
    // A chordless cycle can exceed the minimum edge count only through
    // parallel edges (mutual links) on its own perimeter.
    EXPECT_LE(m.num_edges, 2 * m.length);
  }
}

TEST_P(RandomGraphProperty, ChordlessIsSubsetOfAll) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 14, 6, 80);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  graph::CycleEnumerator enumerator(view);
  graph::CycleEnumerationOptions all_options;
  graph::CycleEnumerationOptions chordless_options;
  chordless_options.chordless_only = true;
  size_t all = enumerator.Visit(
      all_options, [](const std::vector<uint32_t>&) { return true; });
  size_t chordless = enumerator.Visit(
      chordless_options, [](const std::vector<uint32_t>&) { return true; });
  EXPECT_LE(chordless, all);
}

TEST_P(RandomGraphProperty, CycleMetricsBounds) {
  graph::PropertyGraph g = RandomSchemaGraph(GetParam(), 16, 8, 100);
  graph::CsrGraph csr = graph::CsrGraph::Freeze(g);
  graph::UndirectedView view(csr);
  graph::CycleEnumerator enumerator(view);
  for (const graph::Cycle& local : enumerator.Enumerate({})) {
    graph::Cycle cycle;
    for (graph::NodeId n : local.nodes) {
      cycle.nodes.push_back(view.ToGlobal(n));
    }
    graph::CycleMetrics m = ComputeCycleMetrics(csr, cycle);
    EXPECT_EQ(m.num_articles + m.num_categories, m.length);
    EXPECT_GE(m.category_ratio, 0.0);
    EXPECT_LE(m.category_ratio, 1.0);
    EXPECT_GE(m.extra_edge_density, 0.0);
    EXPECT_LE(m.extra_edge_density, 1.0);
    EXPECT_LE(m.num_edges, m.max_edges);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ------------------------------------------------------------ text props

class RandomTextProperty : public ::testing::TestWithParam<uint64_t> {};

std::string RandomText(uint64_t seed, size_t len) {
  Rng rng(seed);
  static const char kAlphabet[] =
      "abc XYZ 09.,!?-'_()<>&\"\xC3\xA9";  // includes UTF-8 é
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST_P(RandomTextProperty, TokenSpansAscendingNonOverlapping) {
  std::string input = RandomText(GetParam(), 200);
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(input);
  size_t prev_end = 0;
  for (const text::Token& t : tokens) {
    EXPECT_GE(t.begin, prev_end);
    EXPECT_LT(t.begin, t.end);
    EXPECT_LE(t.end, input.size());
    EXPECT_FALSE(t.text.empty());
    prev_end = t.end;
  }
}

TEST_P(RandomTextProperty, NormalizeTitleIdempotent) {
  std::string input = RandomText(GetParam(), 80);
  std::string once = NormalizeTitle(input);
  EXPECT_EQ(NormalizeTitle(once), once);
  // Normalized titles never carry uppercase or double spaces.
  EXPECT_EQ(once.find("  "), std::string::npos);
  for (char c : once) {
    EXPECT_FALSE(c >= 'A' && c <= 'Z');
  }
}

TEST_P(RandomTextProperty, XmlEscapeDecodeRoundTrip) {
  std::string input = RandomText(GetParam(), 120);
  auto decoded = xml::DecodeXmlEntities(xml::EscapeXml(input));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTextProperty,
                         ::testing::Values(7, 11, 19, 23, 31, 57));

// ------------------------------------------------------------- eval props

class RandomRankingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRankingProperty, MetricBoundsAndConsistency) {
  Rng rng(GetParam());
  std::vector<ir::ScoredDoc> results;
  ir::RelevantSet relevant;
  uint32_t n = 5 + rng.Uniform(30);
  for (uint32_t i = 0; i < n; ++i) {
    results.push_back({i, static_cast<double>(n - i)});
    if (rng.Bernoulli(0.3)) relevant.insert(i);
  }
  for (size_t r : {1, 5, 10, 15}) {
    double p = ir::PrecisionAtR(results, relevant, r);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // P@r * r counts hits: must be (close to) an integer.
    double hits = p * static_cast<double>(r);
    EXPECT_NEAR(hits, std::round(hits), 1e-9);
    EXPECT_GE(ir::RecallAtR(results, relevant, r), 0.0);
    EXPECT_LE(ir::RecallAtR(results, relevant, r), 1.0);
    EXPECT_LE(ir::NdcgAtR(results, relevant, r), 1.0);
  }
  double o = ir::AverageTopRPrecision(results, relevant);
  EXPECT_GE(o, 0.0);
  EXPECT_LE(o, 1.0);
  EXPECT_LE(ir::AveragePrecision(results, relevant), 1.0 + 1e-12);
  // Recall is monotone in r.
  EXPECT_LE(ir::RecallAtR(results, relevant, 5),
            ir::RecallAtR(results, relevant, 10) + 1e-12);
}

TEST_P(RandomRankingProperty, SummarizeOrdersQuartiles) {
  Rng rng(GetParam());
  std::vector<double> values;
  uint32_t n = 1 + rng.Uniform(50);
  for (uint32_t i = 0; i < n; ++i) values.push_back(rng.NextDouble() * 10);
  FiveNumberSummary s = Summarize(values);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_EQ(s.n, values.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRankingProperty,
                         ::testing::Values(3, 9, 27, 81, 243));

}  // namespace
}  // namespace wqe
