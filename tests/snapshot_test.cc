/// \file snapshot_test.cc
/// \brief Tests for the `snapshot::` subsystem: round-trip fidelity
/// (Freeze → Write → Read is bit-identical on every CSR array, in both
/// mmap and copy load modes), corruption rejection (truncation, bad
/// magic, future versions, flipped payload bytes, hostile section
/// tables — each a clean `Status`, never UB), cache generation stamps,
/// and hot republish into a live `serve::Server` (the race case is
/// meant to run under ThreadSanitizer — `ci.sh tsan` builds this suite
/// with `-fsanitize=thread`).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/testbed.h"
#include "common/hash.h"
#include "graph/csr.h"
#include "serve/expansion_cache.h"
#include "serve/server.h"
#include "snapshot/format.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "wiki/knowledge_base.h"
#include "wiki/synthetic.h"

namespace wqe::snapshot {
namespace {

// ------------------------------------------------------------- helpers

/// A per-test scratch path under gtest's temp dir; tests overwrite it
/// freely and never depend on contents across tests.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wqe_snapshot_" + name + ".bin";
}

wiki::KnowledgeBase SyntheticKb(uint64_t seed, size_t num_domains) {
  wiki::SyntheticWikipediaOptions options;
  options.seed = seed;
  options.num_domains = num_domains;
  auto generated = wiki::GenerateSyntheticWikipedia(options);
  EXPECT_TRUE(generated.ok()) << generated.status();
  return std::move(generated->kb);
}

std::vector<std::byte> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(chars.size());
  std::memcpy(bytes.data(), chars.data(), chars.size());
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

template <typename T>
void ExpectSpanEq(std::span<const T> expected, std::span<const T> actual,
                  const char* what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (!expected.empty()) {
    EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                          expected.size() * sizeof(T)),
              0)
        << what << " differs byte-wise";
  }
}

/// Every flat CSR array byte-identical — the tentpole's core contract.
void ExpectSectionsBitIdentical(const graph::CsrSections& expected,
                                const graph::CsrSections& actual) {
  ExpectSpanEq(expected.kinds, actual.kinds, "kinds");
  ExpectSpanEq(expected.redirect_target, actual.redirect_target,
               "redirect_target");
  ExpectSpanEq(expected.out_offsets, actual.out_offsets, "out_offsets");
  ExpectSpanEq(expected.out_targets, actual.out_targets, "out_targets");
  ExpectSpanEq(expected.out_kinds, actual.out_kinds, "out_kinds");
  ExpectSpanEq(expected.in_offsets, actual.in_offsets, "in_offsets");
  ExpectSpanEq(expected.in_sources, actual.in_sources, "in_sources");
  ExpectSpanEq(expected.in_kinds, actual.in_kinds, "in_kinds");
  ExpectSpanEq(expected.und_offsets, actual.und_offsets, "und_offsets");
  ExpectSpanEq(expected.und_neighbors, actual.und_neighbors,
               "und_neighbors");
  ExpectSpanEq(expected.und_mult, actual.und_mult, "und_mult");
  EXPECT_EQ(expected.edge_kind_counts, actual.edge_kind_counts);
  EXPECT_EQ(expected.node_kind_counts, actual.node_kind_counts);
}

// ----------------------------------------------------------- round trip

TEST(SnapshotRoundTripTest, BitIdenticalAcrossSeedsAndLoadModes) {
  struct Config {
    uint64_t seed;
    size_t num_domains;
  };
  const Config configs[] = {{42, 6}, {7, 10}, {123, 16}};
  for (const Config& config : configs) {
    SCOPED_TRACE("seed=" + std::to_string(config.seed) +
                 " domains=" + std::to_string(config.num_domains));
    wiki::KnowledgeBase kb = SyntheticKb(config.seed, config.num_domains);
    kb.Freeze();
    const std::string path = TempPath("roundtrip");
    ASSERT_TRUE(WriteSnapshot(kb, path).ok());

    for (LoadMode mode : {LoadMode::kMmap, LoadMode::kCopy}) {
      SCOPED_TRACE(mode == LoadMode::kMmap ? "mmap" : "copy");
      ReadOptions options;
      options.mode = mode;
      options.verify_invariants = true;  // full CheckInvariants on load
      auto loaded = LoadSnapshot(path, options);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
      EXPECT_TRUE(loaded->frozen());
      EXPECT_TRUE(loaded->loaded());

      ExpectSectionsBitIdentical(kb.csr().Sections(),
                                 loaded->csr().Sections());
      EXPECT_TRUE(loaded->csr().CheckInvariants().ok());
      EXPECT_TRUE(loaded->Validate().ok());

      EXPECT_EQ(loaded->num_articles(), kb.num_articles());
      EXPECT_EQ(loaded->num_redirects(), kb.num_redirects());
      EXPECT_EQ(loaded->num_categories(), kb.num_categories());
      const uint32_t n = kb.csr().num_nodes();
      ASSERT_EQ(loaded->csr().num_nodes(), n);
      for (uint32_t u = 0; u < n; ++u) {
        ASSERT_EQ(loaded->title(u), kb.title(u)) << "node " << u;
        ASSERT_EQ(loaded->display_title(u), kb.display_title(u))
            << "node " << u;
      }
      // The rebuilt title index resolves exactly like the original's.
      for (uint32_t u = 0; u < n; u += 7) {
        EXPECT_EQ(loaded->FindArticle(kb.title(u)),
                  kb.FindArticle(kb.title(u)))
            << "node " << u;
      }
    }
  }
}

TEST(SnapshotRoundTripTest, WriterRequiresFrozenKb) {
  wiki::KnowledgeBase kb = SyntheticKb(42, 4);
  Status status = WriteSnapshot(kb, TempPath("unfrozen"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotRoundTripTest, ReaderInfoDescribesEverySection) {
  wiki::KnowledgeBase kb = SyntheticKb(42, 4);
  kb.Freeze();
  const std::string path = TempPath("info");
  ASSERT_TRUE(WriteSnapshot(kb, path).ok());

  auto reader = Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const SnapshotInfo& info = reader->info();
  EXPECT_EQ(info.version, kFormatVersion);
  EXPECT_EQ(info.num_nodes, kb.csr().num_nodes());
  EXPECT_EQ(info.num_edges, kb.csr().num_edges());
  EXPECT_EQ(info.file_size, ReadFileBytes(path).size());
  ASSERT_EQ(info.sections.size(), size_t{kNumSections});
  bool seen[kNumSections] = {};
  for (const SectionInfo& section : info.sections) {
    const auto index = static_cast<size_t>(section.id);
    ASSERT_LT(index, size_t{kNumSections});
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
    EXPECT_STREQ(section.name, SectionName(section.id));
    EXPECT_EQ(section.offset % kSectionAlignment, 0u) << section.name;
    EXPECT_EQ(section.count * section.elem_size, section.size_bytes)
        << section.name;
    EXPECT_LE(section.offset + section.size_bytes, info.file_size)
        << section.name;
  }
}

TEST(SnapshotRoundTripTest, EngineOverLoadedSnapshotAnswersIdentically) {
  // An engine served from the mmap'd snapshot must expand exactly like
  // the engine that built the graph in-process.
  api::TestbedOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 3;
  auto bed = api::Testbed::Build(options);
  ASSERT_TRUE(bed.ok()) << bed.status();

  const std::string path = TempPath("engine");
  ASSERT_TRUE(WriteSnapshot((*bed)->kb(), path).ok());
  ReadOptions read_options;
  read_options.mode = LoadMode::kMmap;
  auto loaded = LoadSnapshot(path, read_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  auto engine = api::Engine::Build(std::move(*loaded), options.engine);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (size_t topic = 0; topic < (*bed)->num_topics(); ++topic) {
    api::ExpandRequest request;
    request.keywords = (*bed)->topic(topic).keywords;
    auto expected = (*bed)->engine().Expand(request);
    auto actual = (*engine)->Expand(request);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(actual->query_articles, expected->query_articles);
    EXPECT_EQ(actual->feature_articles, expected->feature_articles);
    EXPECT_EQ(actual->titles, expected->titles);
  }
}

// ----------------------------------------------------------- corruption

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  /// One valid snapshot, built once; each case mutates a fresh copy of
  /// its bytes.
  static void SetUpTestSuite() {
    wiki::KnowledgeBase kb = SyntheticKb(42, 6);
    kb.Freeze();
    path_ = new std::string(TempPath("corruption"));
    ASSERT_TRUE(WriteSnapshot(kb, *path_).ok());
    valid_ = new std::vector<std::byte>(ReadFileBytes(*path_));
    ASSERT_GE(valid_->size(), sizeof(FileHeader));
    auto reader = Reader::Open(*path_);
    ASSERT_TRUE(reader.ok()) << reader.status();
    info_ = new SnapshotInfo(reader->info());
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete valid_;
    delete info_;
    path_ = nullptr;
    valid_ = nullptr;
    info_ = nullptr;
  }

  /// Writes `bytes` over the snapshot path and asserts both load modes
  /// reject it with a ParseError mentioning `substring` — and that
  /// rejection is a Status, not a crash (the suite runs under ASan).
  void ExpectRejected(const std::vector<std::byte>& bytes,
                      const std::string& substring,
                      ReadOptions options = {}) {
    WriteFileBytes(*path_, bytes);
    for (LoadMode mode : {LoadMode::kMmap, LoadMode::kCopy}) {
      SCOPED_TRACE(mode == LoadMode::kMmap ? "mmap" : "copy");
      options.mode = mode;
      auto reader = Reader::Open(*path_, options);
      ASSERT_FALSE(reader.ok()) << "corrupt file was accepted";
      EXPECT_EQ(reader.status().code(), StatusCode::kParseError)
          << reader.status();
      EXPECT_NE(reader.status().message().find(substring),
                std::string::npos)
          << reader.status();
    }
  }

  static void Poke32(std::vector<std::byte>* bytes, size_t offset,
                     uint32_t value) {
    std::memcpy(bytes->data() + offset, &value, sizeof(value));
  }
  static void Poke64(std::vector<std::byte>* bytes, size_t offset,
                     uint64_t value) {
    std::memcpy(bytes->data() + offset, &value, sizeof(value));
  }

  static size_t EntryOffset(size_t index) {
    return sizeof(FileHeader) + index * sizeof(SectionEntry);
  }

  /// Finds a section with a non-empty payload to poke bytes into.
  const SectionInfo& NonEmptySection() const {
    for (const SectionInfo& section : info_->sections) {
      if (section.size_bytes > 0 && section.id != SectionId::kMeta) {
        return section;
      }
    }
    ADD_FAILURE() << "no non-empty section";
    return info_->sections.front();
  }

  static std::string* path_;
  static std::vector<std::byte>* valid_;
  static SnapshotInfo* info_;
};

std::string* SnapshotCorruptionTest::path_ = nullptr;
std::vector<std::byte>* SnapshotCorruptionTest::valid_ = nullptr;
SnapshotInfo* SnapshotCorruptionTest::info_ = nullptr;

TEST_F(SnapshotCorruptionTest, EmptyFile) {
  ExpectRejected({}, "truncated header");
}

TEST_F(SnapshotCorruptionTest, TruncatedHeader) {
  std::vector<std::byte> bytes(valid_->begin(), valid_->begin() + 17);
  ExpectRejected(bytes, "truncated header");
}

TEST_F(SnapshotCorruptionTest, TruncatedPayload) {
  std::vector<std::byte> bytes(valid_->begin(), valid_->end() - 9);
  ExpectRejected(bytes, "does not match actual size");
}

TEST_F(SnapshotCorruptionTest, BadMagic) {
  std::vector<std::byte> bytes = *valid_;
  bytes[0] ^= std::byte{0xFF};
  ExpectRejected(bytes, "bad magic");
}

TEST_F(SnapshotCorruptionTest, FutureVersionRefused) {
  std::vector<std::byte> bytes = *valid_;
  Poke32(&bytes, offsetof(FileHeader, version), kFormatVersion + 1);
  // Keep the header self-consistent so the version check itself — not
  // the checksum guard — is what rejects the file.
  Poke64(&bytes, offsetof(FileHeader, header_checksum),
         HashBytes(bytes.data(), offsetof(FileHeader, header_checksum)));
  ExpectRejected(bytes, "newer than the supported version");
}

TEST_F(SnapshotCorruptionTest, HeaderBitFlip) {
  std::vector<std::byte> bytes = *valid_;
  bytes[offsetof(FileHeader, file_checksum)] ^= std::byte{0x01};
  ExpectRejected(bytes, "header checksum mismatch");
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlip) {
  const SectionInfo& section = NonEmptySection();
  std::vector<std::byte> bytes = *valid_;
  bytes[section.offset + section.size_bytes / 2] ^= std::byte{0x20};
  ExpectRejected(bytes, "checksum mismatch");
}

TEST_F(SnapshotCorruptionTest, ShapeChecksHoldWithoutChecksums) {
  // verify_checksums=false must still never yield a structurally
  // invalid graph: break out_offsets' monotonicity and load unchecked.
  size_t out_offsets_at = 0;
  for (const SectionInfo& section : info_->sections) {
    if (section.id == SectionId::kOutOffsets) out_offsets_at = section.offset;
  }
  ASSERT_GT(out_offsets_at, 0u);
  std::vector<std::byte> bytes = *valid_;
  Poke64(&bytes, out_offsets_at + sizeof(uint64_t), uint64_t{1} << 40);
  ReadOptions options;
  options.verify_checksums = false;
  ExpectRejected(bytes, "out_offsets", options);
}

TEST_F(SnapshotCorruptionTest, SectionTableOffsetOutOfBounds) {
  std::vector<std::byte> bytes = *valid_;
  Poke64(&bytes, EntryOffset(3) + offsetof(SectionEntry, offset),
         uint64_t{1} << 60);
  ExpectRejected(bytes, "extends past end of file");
}

TEST_F(SnapshotCorruptionTest, SectionTableMisalignedOffset) {
  std::vector<std::byte> bytes = *valid_;
  Poke64(&bytes, EntryOffset(3) + offsetof(SectionEntry, offset),
         sizeof(FileHeader) + 4);
  ExpectRejected(bytes, "misaligned");
}

TEST_F(SnapshotCorruptionTest, SectionTableUnknownId) {
  std::vector<std::byte> bytes = *valid_;
  Poke32(&bytes, EntryOffset(0) + offsetof(SectionEntry, id), 77);
  ExpectRejected(bytes, "unknown id");
}

TEST_F(SnapshotCorruptionTest, SectionTableDuplicateId) {
  std::vector<std::byte> bytes = *valid_;
  // Clone entry 0 over entry 1 (id and elem_size both, so the duplicate
  // check — not the element-size check — fires).
  std::memcpy(bytes.data() + EntryOffset(1), bytes.data() + EntryOffset(0),
              2 * sizeof(uint32_t));
  ExpectRejected(bytes, "duplicate section");
}

TEST_F(SnapshotCorruptionTest, SectionTableCountSizeDisagree) {
  std::vector<std::byte> bytes = *valid_;
  uint64_t count = 0;
  std::memcpy(&count, bytes.data() + EntryOffset(4) +
                          offsetof(SectionEntry, count),
              sizeof(count));
  Poke64(&bytes, EntryOffset(4) + offsetof(SectionEntry, count), count + 1);
  ExpectRejected(bytes, "count/size disagree");
}

TEST_F(SnapshotCorruptionTest, ValidBytesStillLoadAfterSuite) {
  // Guard against helper bugs: the pristine byte image itself loads.
  WriteFileBytes(*path_, *valid_);
  auto loaded = LoadSnapshot(*path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->Validate().ok());
}

// ---------------------------------------------------- cache generations

TEST(SnapshotCacheGenerationTest, StaleGenerationDropsEntry) {
  serve::ExpansionCache cache;
  serve::ExpansionCache::Key key{"anarchist punk", "cycle", {}};
  api::ExpandResponse response;
  response.expander = "cycle";
  response.titles = {"a", "b"};

  cache.Put(key, response, /*generation=*/1);
  auto hit = cache.Get(key, /*generation=*/1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->titles, response.titles);
  EXPECT_EQ(cache.stats().stale_drops, 0u);

  // A republished graph (generation 2) must not see generation-1 work.
  EXPECT_EQ(cache.Get(key, /*generation=*/2), nullptr);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  EXPECT_EQ(cache.size(), 0u);  // dropped on sight, not just skipped

  // Re-stamping under the new generation works as usual.
  cache.Put(key, response, /*generation=*/2);
  EXPECT_NE(cache.Get(key, /*generation=*/2), nullptr);
  EXPECT_TRUE(cache.CheckShardInvariants().ok());
}

// -------------------------------------------------------- hot republish

api::TestbedOptions RepublishOptions() {
  api::TestbedOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 3;
  return options;
}

/// Loads a publishable KB from a snapshot of the engine's own graph —
/// identical content, distinct storage (served straight off the mmap).
wiki::KnowledgeBase ReloadedKb(const api::Testbed& bed,
                               const std::string& path) {
  EXPECT_TRUE(WriteSnapshot(bed.kb(), path).ok());
  auto loaded = LoadSnapshot(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return std::move(*loaded);
}

TEST(SnapshotRepublishTest, PublishBumpsGenerationAndInvalidatesCache) {
  auto bed = api::Testbed::Build(RepublishOptions());
  ASSERT_TRUE(bed.ok()) << bed.status();
  api::Engine& engine = (*bed)->engine();
  EXPECT_EQ(engine.snapshot_generation(), 1u);

  serve::ServerOptions serving;
  serving.num_threads = 2;
  serve::Server server(engine, serving);

  api::ExpandRequest request;
  request.keywords = (*bed)->topic(0).keywords;
  auto first = server.SubmitExpand(request).get();
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = server.SubmitExpand(request).get();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(server.cache()->stats().hits, 1u);
  EXPECT_EQ(server.cache()->stats().stale_drops, 0u);

  const std::string path = TempPath("republish");
  ASSERT_TRUE(engine.PublishSnapshot(ReloadedKb(**bed, path)).ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);

  // Same request after the publish: the generation-1 entry is dropped
  // as stale, recomputed on the new snapshot, and — same graph content
  // — comes back bit-identical.
  auto third = server.SubmitExpand(request).get();
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(server.cache()->stats().stale_drops, 1u);
  EXPECT_EQ(server.cache()->stats().hits, 1u);  // no new hits
  EXPECT_EQ(third->query_articles, first->query_articles);
  EXPECT_EQ(third->feature_articles, first->feature_articles);
  EXPECT_EQ(third->titles, first->titles);

  // And the fresh entry serves generation-2 lookups again.
  auto fourth = server.SubmitExpand(request).get();
  ASSERT_TRUE(fourth.ok()) << fourth.status();
  EXPECT_EQ(server.cache()->stats().hits, 2u);
}

TEST(SnapshotRepublishTest, LiveTrafficSurvivesRepublishTsan) {
  // Worker threads hammer the server while the owner republishes the
  // graph three times.  The published snapshots carry identical content
  // (round-tripped through the on-disk format), so every response —
  // whichever epoch served it — must be bit-identical to the reference;
  // any torn state shows up as a wrong answer here or as a TSan report
  // in the sanitizer lane.
  auto bed = api::Testbed::Build(RepublishOptions());
  ASSERT_TRUE(bed.ok()) << bed.status();
  api::Engine& engine = (*bed)->engine();

  const size_t num_topics = (*bed)->num_topics();
  std::vector<api::ExpandResponse> reference;
  for (size_t topic = 0; topic < num_topics; ++topic) {
    api::ExpandRequest request;
    request.keywords = (*bed)->topic(topic).keywords;
    auto response = engine.Expand(request);
    ASSERT_TRUE(response.ok()) << response.status();
    reference.push_back(*std::move(response));
  }

  serve::ServerOptions serving;
  serving.num_threads = 3;
  serve::Server server(engine, serving);
  const std::string path = TempPath("live");

  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t topic = i++ % num_topics;
        api::ExpandRequest request;
        request.keywords = (*bed)->topic(topic).keywords;
        auto response = server.SubmitExpand(request).get();
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_EQ(response->query_articles,
                  reference[topic].query_articles);
        EXPECT_EQ(response->feature_articles,
                  reference[topic].feature_articles);
        EXPECT_EQ(response->titles, reference[topic].titles);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int publish = 0; publish < 3; ++publish) {
    // Let some traffic land on the current epoch before swapping.
    size_t target = served.load() + 8;
    while (served.load() < target) std::this_thread::yield();
    ASSERT_TRUE(engine.PublishSnapshot(ReloadedKb(**bed, path)).ok());
  }
  size_t target = served.load() + 8;
  while (served.load() < target) std::this_thread::yield();
  stop.store(true);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(engine.snapshot_generation(), 4u);  // 1 from Build + 3
  EXPECT_GE(server.cache()->stats().stale_drops, 1u);
  EXPECT_TRUE(server.cache()->CheckShardInvariants().ok());
  // The last published snapshot is live and answers directly too.
  api::ExpandRequest request;
  request.keywords = (*bed)->topic(0).keywords;
  auto response = engine.Expand(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->titles, reference[0].titles);
}

}  // namespace
}  // namespace wqe::snapshot
