/// \file clef_test.cc
/// \brief Tests for image metadata (Figure 2 schema), §2.1 extraction, the
/// topic format, and the synthetic track generator.

#include <gtest/gtest.h>

#include <set>

#include "clef/image_metadata.h"
#include "clef/track.h"
#include "clef/track_generator.h"
#include "wiki/synthetic.h"

namespace wqe::clef {
namespace {

ImageMetadata SampleMeta() {
  ImageMetadata meta;
  meta.id = 82531;
  meta.file = "images/9/82531.jpg";
  meta.name = "Field Hamois Belgium Luc Viatour.jpg";
  LanguageSection en;
  en.lang = "en";
  en.description = "Summer field in Belgium (Hamois).";
  en.captions.push_back({"text/en/1/302887", "Summer field in Belgium."});
  en.captions.push_back({"text/en/1/303807", "A field in summer."});
  meta.sections.push_back(en);
  LanguageSection de;
  de.lang = "de";
  de.description = "Ein blühendes Feld in Belgien.";
  meta.sections.push_back(de);
  meta.general_comment =
      "({{Information |Description= Flowers in Belgium |Source= Flickr "
      "|Date= 1/1/85 |Author= JA |Permission= GFDL |other_versions= }})";
  meta.license = "GFDL";
  return meta;
}

TEST(ImageMetadataTest, XmlRoundTrip) {
  ImageMetadata meta = SampleMeta();
  std::string xml = meta.ToXml();
  auto parsed = ParseImageMetadata(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, meta.id);
  EXPECT_EQ(parsed->file, meta.file);
  EXPECT_EQ(parsed->name, meta.name);
  ASSERT_EQ(parsed->sections.size(), 2u);
  EXPECT_EQ(parsed->sections[0].lang, "en");
  EXPECT_EQ(parsed->sections[0].description, meta.sections[0].description);
  ASSERT_EQ(parsed->sections[0].captions.size(), 2u);
  EXPECT_EQ(parsed->sections[0].captions[0].article_ref, "text/en/1/302887");
  EXPECT_EQ(parsed->general_comment, meta.general_comment);
  EXPECT_EQ(parsed->license, "GFDL");
}

TEST(ImageMetadataTest, ParsePaperStyleDocument) {
  // Mirrors the layout of the paper's Figure 2.
  const char* xml = R"(<?xml version="1.0" encoding="UTF-8" ?>
<image id="82531" file="images/9/82531.jpg">
  <name>Field Hamois.jpg</name>
  <text xml:lang="en">
    <description>Summer field.</description>
    <comment />
    <caption article="text/en/1/302887">A field.</caption>
  </text>
  <text xml:lang="fr">
    <description>Un champ.</description>
    <comment />
  </text>
  <comment>({{Information |Description= Flowers |Source= Flickr }})</comment>
  <license>GFDL</license>
</image>)";
  auto parsed = ParseImageMetadata(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, 82531u);
  ASSERT_NE(parsed->FindSection("en"), nullptr);
  EXPECT_EQ(parsed->FindSection("en")->captions.size(), 1u);
  EXPECT_EQ(parsed->FindSection("xx"), nullptr);
}

TEST(ImageMetadataTest, ParseErrors) {
  EXPECT_TRUE(ParseImageMetadata("<other/>").status().IsParseError());
  EXPECT_TRUE(ParseImageMetadata("").status().IsParseError());
}

TEST(ExtractTemplateDescriptionTest, PullsDescriptionField) {
  EXPECT_EQ(ExtractTemplateDescription(
                "({{Information |Description= Flowers in Belgium |Source= "
                "Flickr }})"),
            "Flowers in Belgium");
  EXPECT_EQ(ExtractTemplateDescription("({{Information |Description= X }})"),
            "X");
  EXPECT_EQ(ExtractTemplateDescription("no template"), "");
  EXPECT_EQ(ExtractTemplateDescription("({{Information |Source= y }})"), "");
}

TEST(ExtractLinkedTextTest, FollowsPaperRules) {
  ImageMetadata meta = SampleMeta();
  std::string text = ExtractLinkedText(meta);
  // ① file name without extension.
  EXPECT_NE(text.find("Field Hamois Belgium Luc Viatour"), std::string::npos);
  EXPECT_EQ(text.find(".jpg"), std::string::npos);
  // ② English section (description + captions).
  EXPECT_NE(text.find("Summer field in Belgium (Hamois)."), std::string::npos);
  EXPECT_NE(text.find("A field in summer."), std::string::npos);
  // ③ general-comment template description.
  EXPECT_NE(text.find("Flowers in Belgium"), std::string::npos);
  // German section ignored.
  EXPECT_EQ(text.find("blühendes"), std::string::npos);
}

TEST(ExtractLinkedTextTest, MissingPiecesAreSkipped) {
  ImageMetadata meta;
  meta.name = "lonely.jpg";
  EXPECT_EQ(ExtractLinkedText(meta), "lonely");
  meta.name = "noextension";
  EXPECT_EQ(ExtractLinkedText(meta), "noextension");
}

// ----------------------------------------------------------------- Topics

TEST(TopicsFormatTest, RoundTrip) {
  std::vector<Topic> topics(2);
  topics[0].id = 70;
  topics[0].keywords = "gondola in venice";
  topics[0].relevant = {"1.xml", "2.xml"};
  topics[1].id = 71;
  topics[1].keywords = "graffiti street art";
  topics[1].relevant = {"9.xml"};
  std::string text = WriteTopics(topics);
  auto parsed = ParseTopics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].id, 70u);
  EXPECT_EQ((*parsed)[0].keywords, "gondola in venice");
  EXPECT_EQ((*parsed)[0].relevant.size(), 2u);
  EXPECT_EQ((*parsed)[1].relevant[0], "9.xml");
}

TEST(TopicsFormatTest, ParseErrors) {
  EXPECT_TRUE(ParseTopics("1\tonly two fields").status().IsParseError());
  EXPECT_TRUE(ParseTopics("1\t\tdocs").status().IsParseError());
  auto empty = ParseTopics("\n\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// ---------------------------------------------------------- TrackGenerator

class TrackGeneratorTest : public ::testing::Test {
 protected:
  static const wiki::SyntheticWikipedia& Wiki() {
    static const wiki::SyntheticWikipedia* kWiki = [] {
      wiki::SyntheticWikipediaOptions options;
      options.num_domains = 12;
      auto result = wiki::GenerateSyntheticWikipedia(options);
      EXPECT_TRUE(result.ok());
      return new wiki::SyntheticWikipedia(std::move(result).ValueOrDie());
    }();
    return *kWiki;
  }
  static const Track& GetTrack() {
    static const Track* kTrack = [] {
      TrackGeneratorOptions options;
      options.num_topics = 10;
      options.background_docs = 100;
      auto result = GenerateTrack(Wiki(), options);
      EXPECT_TRUE(result.ok()) << result.status();
      return new Track(std::move(result).ValueOrDie());
    }();
    return *kTrack;
  }
};

TEST_F(TrackGeneratorTest, ShapeMatchesOptions) {
  const Track& track = GetTrack();
  EXPECT_EQ(track.topics.size(), 10u);
  // documents = relevant + distractors + background
  EXPECT_GT(track.documents.size(), 100u + 10u * 30u);
  for (const Topic& t : track.topics) {
    EXPECT_FALSE(t.keywords.empty());
    EXPECT_GE(t.relevant.size(), 25u);
    EXPECT_LE(t.relevant.size(), 40u);
    EXPECT_FALSE(t.query_articles.empty());
    EXPECT_FALSE(t.planted_good.empty());
  }
}

TEST_F(TrackGeneratorTest, QrelsReferenceExistingDocuments) {
  const Track& track = GetTrack();
  std::set<std::string> names;
  for (const TrackDocument& d : track.documents) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate doc " << d.name;
  }
  for (const Topic& t : track.topics) {
    for (const std::string& r : t.relevant) {
      EXPECT_TRUE(names.count(r)) << "dangling qrel " << r;
    }
  }
}

TEST_F(TrackGeneratorTest, DocumentsAreValidFigure2Xml) {
  const Track& track = GetTrack();
  size_t checked = 0;
  for (const TrackDocument& d : track.documents) {
    auto meta = ParseImageMetadata(d.xml);
    ASSERT_TRUE(meta.ok()) << d.name << ": " << meta.status();
    EXPECT_NE(meta->FindSection("en"), nullptr);
    EXPECT_NE(meta->FindSection("de"), nullptr);  // foreign decoy section
    EXPECT_EQ(meta->license, "GFDL");
    EXPECT_FALSE(ExtractLinkedText(*meta).empty());
    if (++checked >= 50) break;  // enough coverage
  }
}

TEST_F(TrackGeneratorTest, RelevantDocsMentionPlantedTitles) {
  const Track& track = GetTrack();
  const auto& kb = Wiki().kb;
  const Topic& topic = track.topics[0];
  std::set<std::string> rel(topic.relevant.begin(), topic.relevant.end());
  size_t docs_with_planted = 0, rel_docs = 0;
  for (const TrackDocument& d : track.documents) {
    if (!rel.count(d.name)) continue;
    ++rel_docs;
    auto meta = ParseImageMetadata(d.xml);
    ASSERT_TRUE(meta.ok());
    std::string text = ExtractLinkedText(*meta);
    for (graph::NodeId a : topic.planted_good) {
      if (text.find(kb.display_title(a)) != std::string::npos) {
        ++docs_with_planted;
        break;
      }
    }
  }
  // The planting guarantees most relevant documents carry at least one
  // good expansion title (alias mentions may hide some).
  EXPECT_GT(docs_with_planted * 10, rel_docs * 6);
}

TEST_F(TrackGeneratorTest, DeterministicForSeed) {
  TrackGeneratorOptions options;
  options.num_topics = 3;
  options.background_docs = 10;
  auto a = GenerateTrack(Wiki(), options);
  auto b = GenerateTrack(Wiki(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->documents.size(), b->documents.size());
  for (size_t i = 0; i < a->documents.size(); ++i) {
    ASSERT_EQ(a->documents[i].xml, b->documents[i].xml);
  }
  for (size_t t = 0; t < a->topics.size(); ++t) {
    EXPECT_EQ(a->topics[t].keywords, b->topics[t].keywords);
  }
}

TEST_F(TrackGeneratorTest, RejectsBadOptions) {
  TrackGeneratorOptions options;
  options.num_topics = 0;
  EXPECT_TRUE(GenerateTrack(Wiki(), options).status().IsInvalidArgument());
  options = {};
  options.min_relevant_docs = 30;
  options.max_relevant_docs = 10;
  EXPECT_TRUE(GenerateTrack(Wiki(), options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace wqe::clef
