/// \file wiki_test.cc
/// \brief Tests for the knowledge base, synthetic generator and dump I/O.

#include <gtest/gtest.h>

#include <set>

#include "graph/cycle_metrics.h"
#include "wiki/dump.h"
#include "wiki/knowledge_base.h"
#include "wiki/synthetic.h"
#include "wiki/wordlist.h"

namespace wqe::wiki {
namespace {

// ---------------------------------------------------------- KnowledgeBase

TEST(KnowledgeBaseTest, AddAndFindArticle) {
  KnowledgeBase kb;
  auto venice = kb.AddArticle("Venice");
  ASSERT_TRUE(venice.ok());
  EXPECT_EQ(kb.title(*venice), "venice");
  EXPECT_EQ(kb.display_title(*venice), "Venice");
  EXPECT_EQ(kb.FindArticle("venice"), *venice);
  EXPECT_EQ(kb.FindArticle("missing"), std::nullopt);
  EXPECT_TRUE(kb.AddArticle("VENICE").status().IsAlreadyExists());
  EXPECT_TRUE(kb.AddArticle("").status().IsInvalidArgument());
}

TEST(KnowledgeBaseTest, CategoriesShareNamespaceWithPrefix) {
  KnowledgeBase kb;
  auto article = kb.AddArticle("venice");
  auto category = kb.AddCategory("venice");  // same word, different entity
  ASSERT_TRUE(article.ok());
  ASSERT_TRUE(category.ok());
  EXPECT_NE(*article, *category);
  // FindArticle only returns articles.
  EXPECT_EQ(kb.FindArticle("venice"), *article);
  EXPECT_EQ(kb.FindByTitle("category:venice"), *category);
}

TEST(KnowledgeBaseTest, RedirectResolution) {
  KnowledgeBase kb;
  auto main = kb.AddArticle("regatta");
  auto alias = kb.AddRedirect("regata", *main);
  ASSERT_TRUE(alias.ok());
  EXPECT_TRUE(kb.IsRedirect(*alias));
  EXPECT_FALSE(kb.IsRedirect(*main));
  EXPECT_EQ(kb.ResolveRedirect(*alias), *main);
  EXPECT_EQ(kb.ResolveRedirect(*main), *main);
  auto redirects = kb.RedirectsOf(*main);
  ASSERT_EQ(redirects.size(), 1u);
  EXPECT_EQ(redirects[0], *alias);
}

TEST(KnowledgeBaseTest, RedirectChainsRejected) {
  KnowledgeBase kb;
  auto main = kb.AddArticle("a");
  auto r1 = kb.AddRedirect("b", *main);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(kb.AddRedirect("c", *r1).status().IsInvalidArgument());
}

TEST(KnowledgeBaseTest, RedirectsCannotLinkOrBelong) {
  KnowledgeBase kb;
  auto main = kb.AddArticle("a");
  auto other = kb.AddArticle("b");
  auto cat = kb.AddCategory("c");
  auto r = kb.AddRedirect("alias", *main);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(kb.AddLink(*r, *other).IsInvalidArgument());
  EXPECT_TRUE(kb.AddLink(*other, *r).IsInvalidArgument());
  EXPECT_TRUE(kb.AddBelongs(*r, *cat).IsInvalidArgument());
}

TEST(KnowledgeBaseTest, NeighborhoodBfs) {
  KnowledgeBase kb;
  auto a = kb.AddArticle("a");
  auto b = kb.AddArticle("b");
  auto c = kb.AddArticle("c");
  auto cat = kb.AddCategory("cat");
  ASSERT_TRUE(kb.AddLink(*a, *b).ok());
  ASSERT_TRUE(kb.AddLink(*b, *c).ok());
  ASSERT_TRUE(kb.AddBelongs(*a, *cat).ok());

  auto r0 = kb.Neighborhood({*a}, 0, 0);
  EXPECT_EQ(r0.size(), 1u);
  auto r1 = kb.Neighborhood({*a}, 1, 0);
  std::set<NodeId> s1(r1.begin(), r1.end());
  EXPECT_EQ(s1.size(), 3u);  // a, b, cat
  EXPECT_TRUE(s1.count(*cat));
  auto r2 = kb.Neighborhood({*a}, 2, 0);
  EXPECT_EQ(r2.size(), 4u);  // + c (via b, in-direction traversal too)
  // Cap respected.
  EXPECT_LE(kb.Neighborhood({*a}, 2, 2).size(), 2u);
}

TEST(KnowledgeBaseTest, ValidateCatchesUncategorizedArticle) {
  KnowledgeBase kb;
  auto a = kb.AddArticle("a");
  (void)a;
  EXPECT_TRUE(kb.Validate().IsInternal());
  auto cat = kb.AddCategory("c");
  ASSERT_TRUE(kb.AddBelongs(*a, *cat).ok());
  EXPECT_TRUE(kb.Validate().ok());
}

// -------------------------------------------------------------- Wordlist

TEST(WordlistTest, BaseWordsThenPseudoWords) {
  EXPECT_GT(BaseWordCount(), 300u);
  EXPECT_EQ(VocabularyWord(0), "venice");
  // Pseudo-words are deterministic and distinct over a wide range.
  std::set<std::string> seen;
  for (size_t i = BaseWordCount(); i < BaseWordCount() + 2000; ++i) {
    std::string w = VocabularyWord(i);
    EXPECT_FALSE(w.empty());
    EXPECT_TRUE(seen.insert(w).second) << "duplicate pseudo-word " << w;
    EXPECT_EQ(w, VocabularyWord(i));
  }
}

TEST(WordlistTest, SliceMatchesIndividualWords) {
  auto slice = VocabularySlice(5, 4);
  ASSERT_EQ(slice.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(slice[i], VocabularyWord(5 + i));
  }
}

// ------------------------------------------------------ SyntheticWikipedia

class SyntheticWikipediaTest : public ::testing::Test {
 protected:
  static const SyntheticWikipedia& Wiki() {
    static const SyntheticWikipedia* kWiki = [] {
      SyntheticWikipediaOptions options;
      options.num_domains = 24;
      auto result = GenerateSyntheticWikipedia(options);
      EXPECT_TRUE(result.ok()) << result.status();
      auto* wiki = new SyntheticWikipedia(std::move(result).ValueOrDie());
      wiki->kb.Freeze();  // structural reads below take the snapshot path
      return wiki;
    }();
    return *kWiki;
  }
};

TEST_F(SyntheticWikipediaTest, ValidatesAndHasExpectedShape) {
  const auto& wiki = Wiki();
  EXPECT_TRUE(wiki.kb.Validate().ok());
  EXPECT_EQ(wiki.domain_articles.size(), 24u);
  EXPECT_GT(wiki.kb.num_articles(), 24u * 28u);
  EXPECT_GT(wiki.kb.num_categories(), 24u * 4u);
  EXPECT_GT(wiki.kb.num_redirects(), 0u);
  for (const auto& domain : wiki.domain_articles) {
    EXPECT_GE(domain.size(), 3u);
  }
}

TEST_F(SyntheticWikipediaTest, ReciprocalRateNearPaperValue) {
  // The paper measures 11.47% on real Wikipedia; the generator is
  // calibrated to land in the same regime.
  double rate = graph::ReciprocalLinkRate(Wiki().kb.csr());
  EXPECT_GT(rate, 0.06);
  EXPECT_LT(rate, 0.20);
}

TEST_F(SyntheticWikipediaTest, HubsHaveMutualPartners) {
  const auto& wiki = Wiki();
  size_t hubs_with_mutual = 0, hubs = 0;
  for (const auto& domain : wiki.domain_articles) {
    for (size_t h = 0; h < std::min<size_t>(8, domain.size()); ++h) {
      ++hubs;
      for (NodeId out : wiki.kb.LinkedFrom(domain[h])) {
        if (wiki.kb.graph().HasEdge(out, domain[h],
                                    graph::EdgeKind::kLink)) {
          ++hubs_with_mutual;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(hubs_with_mutual),
            0.8 * static_cast<double>(hubs));
}

TEST_F(SyntheticWikipediaTest, CategoryGraphIsTriangleFreeForest) {
  // Every category has exactly one outgoing `inside` edge (tree-like, as
  // Wikipedia edition rules prescribe), so the pure category graph has no
  // cycles at all.
  const auto& g = Wiki().kb.graph();
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!g.IsCategory(n)) continue;
    size_t inside = 0;
    for (const graph::Edge& e : g.OutEdges(n)) {
      if (e.kind == graph::EdgeKind::kInside) ++inside;
    }
    EXPECT_LE(inside, 1u);
  }
}

TEST_F(SyntheticWikipediaTest, DeterministicForSeed) {
  SyntheticWikipediaOptions options;
  options.num_domains = 6;
  auto a = GenerateSyntheticWikipedia(options);
  auto b = GenerateSyntheticWikipedia(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kb.num_articles(), b->kb.num_articles());
  EXPECT_EQ(a->kb.graph().num_edges(), b->kb.graph().num_edges());
  for (graph::NodeId n = 0; n < a->kb.graph().num_nodes(); ++n) {
    ASSERT_EQ(a->kb.title(n), b->kb.title(n));
  }
}

TEST_F(SyntheticWikipediaTest, SeedChangesOutput) {
  SyntheticWikipediaOptions options;
  options.num_domains = 6;
  auto a = GenerateSyntheticWikipedia(options);
  options.seed = 999;
  auto b = GenerateSyntheticWikipedia(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->kb.graph().num_edges(), b->kb.graph().num_edges());
}

TEST(SyntheticWikipediaOptionsTest, RejectsBadOptions) {
  SyntheticWikipediaOptions options;
  options.num_domains = 0;
  EXPECT_TRUE(GenerateSyntheticWikipedia(options).status()
                  .IsInvalidArgument());
  options = {};
  options.min_articles_per_domain = 50;
  options.max_articles_per_domain = 10;
  EXPECT_TRUE(GenerateSyntheticWikipedia(options).status()
                  .IsInvalidArgument());
  options = {};
  options.min_categories_per_domain = 0;
  EXPECT_TRUE(GenerateSyntheticWikipedia(options).status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------------------ Dump

TEST(WikitextTest, ExtractsLinksAndCategories) {
  auto links = ExtractWikiLinks(
      "The [[Grand Canal (Venice)|canal]] is in [[Venice]]. "
      "[[Category:Canals in Italy]] [[Category:Venice#History]]");
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0].target, "grand canal venice");
  EXPECT_FALSE(links[0].is_category);
  EXPECT_EQ(links[1].target, "venice");
  EXPECT_TRUE(links[2].is_category);
  EXPECT_EQ(links[2].target, "canals in italy");
  EXPECT_EQ(links[3].target, "venice");  // fragment stripped
}

TEST(WikitextTest, HandlesMalformedBrackets) {
  EXPECT_TRUE(ExtractWikiLinks("no links here").empty());
  EXPECT_TRUE(ExtractWikiLinks("[[unclosed").empty());
  auto nested = ExtractWikiLinks("[[a [[b]] c]]");
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(nested[0].target, "b");
  EXPECT_TRUE(ExtractWikiLinks("[[]]").empty());
}

const char* kTinyDump = R"(<mediawiki>
  <page><title>Venice</title><ns>0</ns><id>1</id>
    <revision><text>[[Gondola]] [[Category:Cities]]</text></revision>
  </page>
  <page><title>Gondola</title><ns>0</ns><id>2</id>
    <revision><text>[[Venice]] [[Missing Article]] [[Category:Boats]]</text></revision>
  </page>
  <page><title>Regata</title><ns>0</ns><id>3</id>
    <redirect title="Gondola" />
    <revision><text>#REDIRECT [[Gondola]]</text></revision>
  </page>
  <page><title>Category:Boats</title><ns>14</ns><id>4</id>
    <revision><text>[[Category:Cities]]</text></revision>
  </page>
  <page><title>Category:Cities</title><ns>14</ns><id>5</id>
    <revision><text></text></revision>
  </page>
  <page><title>Talk:Venice</title><ns>1</ns><id>6</id>
    <revision><text>ignored</text></revision>
  </page>
</mediawiki>)";

TEST(DumpParserTest, BuildsKnowledgeBase) {
  DumpImportStats stats;
  auto kb = ParseDump(kTinyDump, &stats);
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(stats.pages, 6u);
  EXPECT_EQ(stats.articles, 2u);
  EXPECT_EQ(stats.categories, 2u);
  EXPECT_EQ(stats.redirects, 1u);
  EXPECT_EQ(stats.links, 2u);     // venice<->gondola
  EXPECT_EQ(stats.belongs, 2u);
  EXPECT_EQ(stats.inside, 1u);    // boats inside cities
  EXPECT_EQ(stats.dangling_links, 1u);  // [[Missing Article]]
  EXPECT_EQ(stats.skipped_pages, 1u);   // Talk namespace

  auto venice = kb->FindArticle("venice");
  auto gondola = kb->FindArticle("gondola");
  ASSERT_TRUE(venice.has_value());
  ASSERT_TRUE(gondola.has_value());
  EXPECT_TRUE(kb->graph().HasEdge(*venice, *gondola, graph::EdgeKind::kLink));
  EXPECT_TRUE(kb->graph().HasEdge(*gondola, *venice, graph::EdgeKind::kLink));
  auto regata = kb->FindArticle("regata");
  ASSERT_TRUE(regata.has_value());
  EXPECT_EQ(kb->ResolveRedirect(*regata), *gondola);
}

TEST(DumpParserTest, RejectsNonMediawikiRoot) {
  EXPECT_TRUE(ParseDump("<notwiki></notwiki>").status().IsParseError());
  EXPECT_TRUE(ParseDump("").status().IsParseError());
}

TEST(DumpRoundTripTest, SyntheticKbSurvivesWriteParse) {
  SyntheticWikipediaOptions options;
  options.num_domains = 4;
  auto wiki = GenerateSyntheticWikipedia(options);
  ASSERT_TRUE(wiki.ok());
  std::string dump = WriteDump(wiki->kb);

  DumpImportStats stats;
  auto kb2 = ParseDump(dump, &stats);
  ASSERT_TRUE(kb2.ok()) << kb2.status();
  EXPECT_EQ(kb2->num_articles(), wiki->kb.num_articles());
  EXPECT_EQ(kb2->num_categories(), wiki->kb.num_categories());
  EXPECT_EQ(kb2->num_redirects(), wiki->kb.num_redirects());
  EXPECT_EQ(kb2->graph().CountEdges(graph::EdgeKind::kLink),
            wiki->kb.graph().CountEdges(graph::EdgeKind::kLink));
  EXPECT_EQ(kb2->graph().CountEdges(graph::EdgeKind::kBelongs),
            wiki->kb.graph().CountEdges(graph::EdgeKind::kBelongs));
  EXPECT_EQ(kb2->graph().CountEdges(graph::EdgeKind::kInside),
            wiki->kb.graph().CountEdges(graph::EdgeKind::kInside));
  EXPECT_EQ(stats.dangling_links, 0u);
}

}  // namespace
}  // namespace wqe::wiki
