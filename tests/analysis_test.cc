/// \file analysis_test.cc
/// \brief Tests for §3 analysis: component stats, cycle records, and the
/// table/figure aggregations.

#include <gtest/gtest.h>

#include "analysis/paper_report.h"
#include "analysis/query_graph_analysis.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"

namespace wqe::analysis {
namespace {

struct Context {
  const groundtruth::Pipeline* pipeline;
  groundtruth::GroundTruth gt;
  std::vector<TopicAnalysis> analyses;
};

const Context& SmallContext() {
  static const Context* kContext = [] {
    auto* ctx = new Context();
    groundtruth::PipelineOptions options;
    options.wiki.num_domains = 12;
    options.track.num_topics = 6;
    options.track.background_docs = 150;
    auto pipeline = groundtruth::Pipeline::Build(options);
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    ctx->pipeline = pipeline->release();

    groundtruth::XqOptimizerOptions fast;
    fast.restarts = 1;
    fast.enable_swap = false;
    groundtruth::GroundTruthBuilder builder(ctx->pipeline, fast);
    auto gt = builder.Build();
    EXPECT_TRUE(gt.ok()) << gt.status();
    ctx->gt = std::move(gt).ValueOrDie();

    QueryGraphAnalyzer analyzer(ctx->pipeline, &ctx->gt);
    auto analyses = analyzer.AnalyzeAll();
    EXPECT_TRUE(analyses.ok()) << analyses.status();
    ctx->analyses = std::move(analyses).ValueOrDie();
    return ctx;
  }();
  return *kContext;
}

TEST(TopicAnalysisTest, ComponentStatsAreRatios) {
  for (const TopicAnalysis& a : SmallContext().analyses) {
    EXPECT_GT(a.component.graph_size, 0u);
    EXPECT_GT(a.component.relative_size, 0.0);
    EXPECT_LE(a.component.relative_size, 1.0);
    EXPECT_GE(a.component.article_ratio, 0.0);
    EXPECT_LE(a.component.article_ratio, 1.0);
    EXPECT_NEAR(a.component.article_ratio + a.component.category_ratio, 1.0,
                1e-9);
    EXPECT_GE(a.component.query_node_ratio, 0.0);
    EXPECT_LE(a.component.query_node_ratio, 1.0);
    EXPECT_GE(a.component.tpr, 0.0);
    EXPECT_LE(a.component.tpr, 1.0);
  }
}

TEST(TopicAnalysisTest, CyclesTouchQueryArticles) {
  const Context& ctx = SmallContext();
  for (size_t t = 0; t < ctx.analyses.size(); ++t) {
    const auto& entry = ctx.gt.entries[t];
    for (const CycleRecord& r : ctx.analyses[t].cycles) {
      EXPECT_GE(r.cycle.length(), 2u);
      EXPECT_LE(r.cycle.length(), 5u);
      bool touches = false;
      for (graph::NodeId n : r.cycle.nodes) {
        if (std::find(entry.query_articles.begin(),
                      entry.query_articles.end(),
                      n) != entry.query_articles.end()) {
          touches = true;
          break;
        }
      }
      EXPECT_TRUE(touches);
    }
  }
}

TEST(TopicAnalysisTest, MetricsConsistentWithLength) {
  for (const TopicAnalysis& a : SmallContext().analyses) {
    for (const CycleRecord& r : a.cycles) {
      EXPECT_EQ(r.metrics.length, r.cycle.length());
      EXPECT_EQ(r.metrics.num_articles + r.metrics.num_categories,
                r.metrics.length);
      if (r.metrics.length == 2) {
        EXPECT_EQ(r.metrics.num_categories, 0u);  // schema: no art-cat pair
      }
      EXPECT_GE(r.metrics.extra_edge_density, 0.0);
      EXPECT_LE(r.metrics.extra_edge_density, 1.0);
    }
  }
}

TEST(TopicAnalysisTest, ArticlesByLengthBucketed) {
  const Context& ctx = SmallContext();
  const auto& kb = ctx.pipeline->kb();
  for (const TopicAnalysis& a : ctx.analyses) {
    for (uint32_t len = 2; len <= 5; ++len) {
      for (graph::NodeId article : a.articles_by_length[len]) {
        EXPECT_TRUE(kb.graph().IsArticle(article));
      }
    }
  }
}

TEST(PaperReportTest, Table2SummariesInRange) {
  auto rows = ComputeTable2(SmallContext().gt);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].cutoff, 1u);
  for (const Table2Row& row : rows) {
    EXPECT_GE(row.summary.min, 0.0);
    EXPECT_LE(row.summary.max, 1.0);
    EXPECT_LE(row.summary.q1, row.summary.median);
    EXPECT_LE(row.summary.median, row.summary.q3);
    EXPECT_EQ(row.summary.n, SmallContext().gt.entries.size());
  }
  // Paper shape: median top-1 and top-5 precision at 1.
  EXPECT_GE(rows[0].summary.median, 0.9);
  EXPECT_GE(rows[1].summary.median, 0.6);
}

TEST(PaperReportTest, Table3CategoriesDominate) {
  Table3Report report = ComputeTable3(SmallContext().analyses);
  // Paper shape: the largest CC is "clearly dominated by categories".
  EXPECT_GT(report.category_ratio.median, 0.5);
  EXPECT_LT(report.article_ratio.median, 0.5);
  EXPECT_GE(report.query_node_ratio.median, 0.9);
}

TEST(PaperReportTest, Table4UnionsDominateSingles) {
  const Context& ctx = SmallContext();
  auto rows = ComputeTable4(*ctx.pipeline, ctx.gt, ctx.analyses);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 7u);
  const Table4Row& len2 = (*rows)[0];
  const Table4Row& all = (*rows)[6];
  // Paper shape: the {2,3,4,5} union's top-10/top-15 beats length-2 alone.
  EXPECT_GE(all.precision[2], len2.precision[2] - 1e-9);
  EXPECT_GE(all.precision[3], len2.precision[3] - 1e-9);
  for (const Table4Row& row : *rows) {
    for (double p : row.precision) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(PaperReportTest, Fig5And6Series) {
  const Context& ctx = SmallContext();
  LengthSeries fig5 = ComputeFig5(ctx.analyses);
  ASSERT_EQ(fig5.lengths.size(), 4u);
  LengthSeries fig6 = ComputeFig6(ctx.analyses);
  ASSERT_EQ(fig6.lengths.size(), 4u);
  // Paper shape: cycle counts grow with length.
  EXPECT_LT(fig6.values[0], fig6.values[2]);
  EXPECT_LT(fig6.values[1], fig6.values[3]);
}

TEST(PaperReportTest, Fig7SeriesCoverLengths3To5) {
  const Context& ctx = SmallContext();
  LengthSeries fig7a = ComputeFig7a(ctx.analyses);
  ASSERT_EQ(fig7a.lengths.size(), 3u);
  EXPECT_EQ(fig7a.lengths[0], 3u);
  for (double v : fig7a.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  LengthSeries fig7b = ComputeFig7b(ctx.analyses);
  for (double v : fig7b.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(PaperReportTest, Fig9TrendPositive) {
  const Context& ctx = SmallContext();
  Fig9Report report = ComputeFig9(ctx.analyses);
  EXPECT_GT(report.num_cycles, 0u);
  EXPECT_EQ(report.bin_centers.size(), report.mean_contribution.size());
  // Paper shape: "the denser the cycle, the better its contribution".
  EXPECT_GT(report.trend.slope, 0.0);
}

TEST(PaperReportTest, MiscScalarsPlausible) {
  const Context& ctx = SmallContext();
  MiscScalars scalars = ComputeMiscScalars(*ctx.pipeline, ctx.analyses);
  // TPR ≈ 0.3 in the paper; accept a generous band around it.
  EXPECT_GT(scalars.mean_largest_cc_tpr, 0.1);
  EXPECT_LT(scalars.mean_largest_cc_tpr, 0.8);
  // Reciprocal rate calibrated to ≈ 0.115.
  EXPECT_GT(scalars.reciprocal_link_rate, 0.06);
  EXPECT_LT(scalars.reciprocal_link_rate, 0.2);
  EXPECT_GT(scalars.mean_graph_size, 5.0);
}

TEST(PaperReportTest, ArticleFrequencyCorrelationComputes) {
  const Context& ctx = SmallContext();
  auto report = ComputeArticleFrequencyCorrelation(*ctx.pipeline, ctx.gt,
                                                   ctx.analyses);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->num_articles, 0u);
  EXPECT_GE(report->pearson, -1.0);
  EXPECT_LE(report->pearson, 1.0);
  // The planted correlation: frequent articles are at least roughly as
  // good as rare ones (the signal the paper conjectured is exploitable).
  EXPECT_GE(report->mean_gain_frequent, report->mean_gain_rare - 10.0);
}

TEST(AnalyzerTest, OutOfRangeTopic) {
  const Context& ctx = SmallContext();
  QueryGraphAnalyzer analyzer(ctx.pipeline, &ctx.gt);
  EXPECT_TRUE(analyzer.Analyze(999).status().IsOutOfRange());
}

TEST(AnalyzerTest, ScoringCapStillCountsAllCycles) {
  const Context& ctx = SmallContext();
  AnalyzerOptions capped;
  capped.max_scored_cycles = 1;
  QueryGraphAnalyzer analyzer(ctx.pipeline, &ctx.gt, capped);
  auto a = analyzer.Analyze(0);
  ASSERT_TRUE(a.ok());
  QueryGraphAnalyzer full(ctx.pipeline, &ctx.gt);
  auto b = full.Analyze(0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cycles.size(), b->cycles.size());
}

TEST(AnalyzerTest, ParallelAnalyzeAllIdenticalToSequential) {
  // The shared context's analyses were computed sequentially (pipeline
  // num_threads defaults to 1); a 4-thread AnalyzeAll over the same
  // ground truth must reproduce them field-for-field.
  const Context& ctx = SmallContext();
  AnalyzerOptions parallel;
  parallel.num_threads = 4;
  QueryGraphAnalyzer analyzer(ctx.pipeline, &ctx.gt, parallel);
  auto analyses = analyzer.AnalyzeAll();
  ASSERT_TRUE(analyses.ok()) << analyses.status();
  ASSERT_EQ(analyses->size(), ctx.analyses.size());
  for (size_t t = 0; t < ctx.analyses.size(); ++t) {
    const TopicAnalysis& want = ctx.analyses[t];
    const TopicAnalysis& got = (*analyses)[t];
    EXPECT_EQ(got.topic_index, want.topic_index);
    EXPECT_DOUBLE_EQ(got.baseline_quality, want.baseline_quality);
    EXPECT_EQ(got.component.graph_size, want.component.graph_size);
    EXPECT_DOUBLE_EQ(got.component.tpr, want.component.tpr);
    ASSERT_EQ(got.cycles.size(), want.cycles.size()) << "topic " << t;
    for (size_t c = 0; c < want.cycles.size(); ++c) {
      EXPECT_EQ(got.cycles[c].cycle.nodes, want.cycles[c].cycle.nodes);
      EXPECT_DOUBLE_EQ(got.cycles[c].contribution,
                       want.cycles[c].contribution);
      EXPECT_EQ(got.cycles[c].metrics.num_edges,
                want.cycles[c].metrics.num_edges);
    }
    for (uint32_t len = kMinCycleLength; len <= kMaxCycleLength; ++len) {
      EXPECT_EQ(got.articles_by_length[len], want.articles_by_length[len]);
    }
  }
}

TEST(AnalyzerTest, WithinTopicParallelismIdenticalToSequential) {
  // A direct Analyze call (not the topic fan-out) parallelizes inside
  // the topic ball — enumeration and metrics — and must stay identical.
  const Context& ctx = SmallContext();
  AnalyzerOptions within;
  within.num_threads = 4;
  QueryGraphAnalyzer analyzer(ctx.pipeline, &ctx.gt, within);
  auto a = analyzer.Analyze(0);
  ASSERT_TRUE(a.ok()) << a.status();
  const TopicAnalysis& want = ctx.analyses[0];
  ASSERT_EQ(a->cycles.size(), want.cycles.size());
  for (size_t c = 0; c < want.cycles.size(); ++c) {
    EXPECT_EQ(a->cycles[c].cycle.nodes, want.cycles[c].cycle.nodes);
    EXPECT_DOUBLE_EQ(a->cycles[c].contribution, want.cycles[c].contribution);
  }
}

}  // namespace
}  // namespace wqe::analysis
