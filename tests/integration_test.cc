/// \file integration_test.cc
/// \brief Cross-module end-to-end checks: the whole §2→§3→§4 pipeline on a
/// mid-size instance, asserting the paper's headline shapes.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/paper_report.h"
#include "analysis/query_graph_analysis.h"
#include "api/evaluation.h"
#include "api/testbed.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"
#include "wiki/dump.h"

namespace wqe {
namespace {

struct EndToEnd {
  const groundtruth::Pipeline* pipeline;
  const api::Testbed* bed;  ///< facade view of the same experiment
  groundtruth::GroundTruth gt;
  std::vector<analysis::TopicAnalysis> analyses;
};

const EndToEnd& Context() {
  static const EndToEnd* kContext = [] {
    auto* ctx = new EndToEnd();
    groundtruth::PipelineOptions options;
    options.wiki.num_domains = 20;
    options.track.num_topics = 12;
    options.track.background_docs = 300;
    auto pipeline = groundtruth::Pipeline::Build(options);
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    ctx->pipeline = pipeline->release();

    // The serving-facade view: same generator options, so the engine is
    // built over an identical KB, corpus and track.
    auto bed = api::Testbed::Build(
        api::TestbedOptions::FromPipelineOptions(options));
    EXPECT_TRUE(bed.ok()) << bed.status();
    ctx->bed = bed->release();

    groundtruth::XqOptimizerOptions xq;
    xq.restarts = 1;
    xq.enable_swap = false;
    groundtruth::GroundTruthBuilder builder(ctx->pipeline, xq);
    auto gt = builder.Build();
    EXPECT_TRUE(gt.ok()) << gt.status();
    ctx->gt = std::move(gt).ValueOrDie();

    analysis::QueryGraphAnalyzer analyzer(ctx->pipeline, &ctx->gt);
    auto analyses = analyzer.AnalyzeAll();
    EXPECT_TRUE(analyses.ok()) << analyses.status();
    ctx->analyses = std::move(analyses).ValueOrDie();
    return ctx;
  }();
  return *kContext;
}

TEST(EndToEndTest, GroundTruthImprovesEveryTopic) {
  for (const auto& e : Context().gt.entries) {
    EXPECT_GE(e.xq.quality, e.xq.baseline_quality - 1e-9)
        << "topic " << e.topic_id;
    EXPECT_GT(e.xq.quality, 0.5) << "topic " << e.topic_id;
  }
}

TEST(EndToEndTest, SystemOrderingMatchesPaperNarrative) {
  const auto& ctx = Context();
  const api::Engine& engine = ctx.bed->engine();
  const auto topics = ctx.bed->EvalTopics();

  auto none_eval = api::EvaluateSystem(engine, "no-expansion", topics);
  auto direct_eval = api::EvaluateSystem(engine, "direct-link", topics);
  auto cycle_eval = api::EvaluateSystem(engine, "cycle", topics);
  ASSERT_TRUE(none_eval.ok());
  ASSERT_TRUE(direct_eval.ok());
  ASSERT_TRUE(cycle_eval.ok());

  // Structure-aware expansion beats both the unexpanded query and naive
  // link expansion.
  EXPECT_GT(cycle_eval->mean_o, none_eval->mean_o);
  EXPECT_GT(cycle_eval->mean_o, direct_eval->mean_o);
  // And does so with fewer features than naive link expansion.
  EXPECT_LT(cycle_eval->mean_features, direct_eval->mean_features);
}

TEST(EndToEndTest, RedirectAliasExtensionDoesNotHurt) {
  const auto& ctx = Context();
  const api::Engine& engine = ctx.bed->engine();
  const auto topics = ctx.bed->EvalTopics();
  api::ExpanderOverrides with_aliases;
  with_aliases.include_redirect_aliases = true;
  auto base_eval = api::EvaluateSystem(engine, "cycle", topics);
  auto alias_eval =
      api::EvaluateSystem(engine, "cycle", topics, with_aliases);
  ASSERT_TRUE(base_eval.ok());
  ASSERT_TRUE(alias_eval.ok());
  EXPECT_GE(alias_eval->mean_o, base_eval->mean_o - 0.05);
}

TEST(EndToEndTest, AliasFeaturesAreRedirectsOfBaseFeatures) {
  const auto& ctx = Context();
  const api::Testbed& bed = *ctx.bed;
  const wiki::KnowledgeBase& kb = bed.kb();
  std::vector<api::ExpandRequest> requests;
  for (size_t t = 0; t < bed.num_topics(); ++t) {
    api::ExpandRequest request;
    request.keywords = bed.topic(t).keywords;
    request.expander = "cycle";
    request.overrides.include_redirect_aliases = true;
    requests.push_back(std::move(request));
  }
  auto batch = bed.engine().ExpandBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  size_t alias_count = 0;
  for (const api::ExpandResponse& expanded : *batch) {
    for (graph::NodeId f : expanded.feature_articles) {
      if (!kb.IsRedirect(f)) continue;
      ++alias_count;
      // The alias' main article must itself be a selected feature.
      graph::NodeId main = kb.ResolveRedirect(f);
      EXPECT_NE(std::find(expanded.feature_articles.begin(),
                          expanded.feature_articles.end(), main),
                expanded.feature_articles.end());
    }
  }
  EXPECT_GT(alias_count, 0u);  // the KB has plenty of redirects
}

TEST(EndToEndTest, Figure9TrendIsPositive) {
  analysis::Fig9Report report = analysis::ComputeFig9(Context().analyses);
  EXPECT_GT(report.num_cycles, 100u);
  EXPECT_GT(report.trend.slope, 0.0);
}

TEST(EndToEndTest, Figure5TwoCyclesBeatThreeCycles) {
  analysis::LengthSeries fig5 = analysis::ComputeFig5(Context().analyses);
  ASSERT_EQ(fig5.values.size(), 4u);
  // The robust part of the paper's Fig 5 shape: length 2 above length 3.
  EXPECT_GT(fig5.values[0], fig5.values[1]);
}

TEST(EndToEndTest, QueryGraphsContainSatelliteComponents) {
  // The foreign-mention planting must produce at least some disconnected
  // query graphs, as the paper observes (Table 3 %size < 1).
  size_t with_satellites = 0;
  for (const auto& a : Context().analyses) {
    if (a.component.num_components > 1) ++with_satellites;
  }
  EXPECT_GT(with_satellites, 0u);
}

TEST(EndToEndTest, GroundTruthEntriesCarryTrackIndex) {
  const auto& ctx = Context();
  for (size_t t = 0; t < ctx.gt.entries.size(); ++t) {
    EXPECT_EQ(ctx.gt.entries[t].topic_index, t);
    EXPECT_EQ(ctx.gt.entries[t].topic_id, ctx.pipeline->topic(t).id);
  }
}

TEST(EndToEndTest, PartialGroundTruthAnalyzesAgainstRightQrels) {
  // Regression test: analyzing a ground truth holding only topic 3 must
  // evaluate contributions against topic 3's qrels, not topic 0's.
  const auto& ctx = Context();
  groundtruth::GroundTruthBuilder builder(ctx.pipeline);
  auto entry = builder.BuildEntry(3);
  ASSERT_TRUE(entry.ok());
  double baseline = entry->xq.baseline_quality;
  groundtruth::GroundTruth partial;
  partial.entries.push_back(std::move(*entry));
  analysis::QueryGraphAnalyzer analyzer(ctx.pipeline, &partial);
  auto a = analyzer.Analyze(0);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->baseline_quality, baseline, 1e-9);
}

TEST(EndToEndTest, KbSurvivesDumpRoundTripWithinPipeline) {
  const auto& ctx = Context();
  std::string dump = wiki::WriteDump(ctx.pipeline->kb());
  auto kb2 = wiki::ParseDump(dump);
  ASSERT_TRUE(kb2.ok()) << kb2.status();
  EXPECT_EQ(kb2->num_articles(), ctx.pipeline->kb().num_articles());
  EXPECT_EQ(kb2->graph().num_edges(),
            ctx.pipeline->kb().graph().num_edges());
}

TEST(EndToEndTest, DeterministicAcrossPipelineBuilds) {
  groundtruth::PipelineOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 3;
  options.track.background_docs = 50;
  auto p1 = groundtruth::Pipeline::Build(options);
  auto p2 = groundtruth::Pipeline::Build(options);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  ASSERT_EQ((*p1)->track().documents.size(),
            (*p2)->track().documents.size());
  for (size_t i = 0; i < (*p1)->track().documents.size(); ++i) {
    ASSERT_EQ((*p1)->track().documents[i].xml,
              (*p2)->track().documents[i].xml);
  }
  groundtruth::GroundTruthBuilder b1(p1->get()), b2(p2->get());
  auto e1 = b1.BuildEntry(0);
  auto e2 = b2.BuildEntry(0);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->xq.selected, e2->xq.selected);
}

}  // namespace
}  // namespace wqe
