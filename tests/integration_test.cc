/// \file integration_test.cc
/// \brief Cross-module end-to-end checks: the whole §2→§3→§4 pipeline on a
/// mid-size instance, asserting the paper's headline shapes.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/paper_report.h"
#include "analysis/query_graph_analysis.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"
#include "expansion/evaluation.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"
#include "wiki/dump.h"

namespace wqe {
namespace {

struct EndToEnd {
  const groundtruth::Pipeline* pipeline;
  groundtruth::GroundTruth gt;
  std::vector<analysis::TopicAnalysis> analyses;
};

const EndToEnd& Context() {
  static const EndToEnd* kContext = [] {
    auto* ctx = new EndToEnd();
    groundtruth::PipelineOptions options;
    options.wiki.num_domains = 20;
    options.track.num_topics = 12;
    options.track.background_docs = 300;
    auto pipeline = groundtruth::Pipeline::Build(options);
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    ctx->pipeline = pipeline->release();

    groundtruth::XqOptimizerOptions xq;
    xq.restarts = 1;
    xq.enable_swap = false;
    groundtruth::GroundTruthBuilder builder(ctx->pipeline, xq);
    auto gt = builder.Build();
    EXPECT_TRUE(gt.ok()) << gt.status();
    ctx->gt = std::move(gt).ValueOrDie();

    analysis::QueryGraphAnalyzer analyzer(ctx->pipeline, &ctx->gt);
    auto analyses = analyzer.AnalyzeAll();
    EXPECT_TRUE(analyses.ok()) << analyses.status();
    ctx->analyses = std::move(analyses).ValueOrDie();
    return ctx;
  }();
  return *kContext;
}

TEST(EndToEndTest, GroundTruthImprovesEveryTopic) {
  for (const auto& e : Context().gt.entries) {
    EXPECT_GE(e.xq.quality, e.xq.baseline_quality - 1e-9)
        << "topic " << e.topic_id;
    EXPECT_GT(e.xq.quality, 0.5) << "topic " << e.topic_id;
  }
}

TEST(EndToEndTest, SystemOrderingMatchesPaperNarrative) {
  const auto& ctx = Context();
  const groundtruth::Pipeline& p = *ctx.pipeline;
  expansion::NoExpansion none(&p.kb(), &p.linker());
  expansion::DirectLinkExpansion direct(&p.kb(), &p.linker());
  expansion::CycleExpander cycle(&p.kb(), &p.linker());

  auto none_eval = expansion::EvaluateExpander(none, p);
  auto direct_eval = expansion::EvaluateExpander(direct, p);
  auto cycle_eval = expansion::EvaluateExpander(cycle, p);
  ASSERT_TRUE(none_eval.ok());
  ASSERT_TRUE(direct_eval.ok());
  ASSERT_TRUE(cycle_eval.ok());

  // Structure-aware expansion beats both the unexpanded query and naive
  // link expansion.
  EXPECT_GT(cycle_eval->mean_o, none_eval->mean_o);
  EXPECT_GT(cycle_eval->mean_o, direct_eval->mean_o);
  // And does so with fewer features than naive link expansion.
  EXPECT_LT(cycle_eval->mean_features, direct_eval->mean_features);
}

TEST(EndToEndTest, RedirectAliasExtensionDoesNotHurt) {
  const auto& ctx = Context();
  const groundtruth::Pipeline& p = *ctx.pipeline;
  expansion::CycleExpanderOptions with_aliases;
  with_aliases.include_redirect_aliases = true;
  expansion::CycleExpander base(&p.kb(), &p.linker());
  expansion::CycleExpander aliased(&p.kb(), &p.linker(), with_aliases);
  auto base_eval = expansion::EvaluateExpander(base, p);
  auto alias_eval = expansion::EvaluateExpander(aliased, p);
  ASSERT_TRUE(base_eval.ok());
  ASSERT_TRUE(alias_eval.ok());
  EXPECT_GE(alias_eval->mean_o, base_eval->mean_o - 0.05);
}

TEST(EndToEndTest, AliasFeaturesAreRedirectsOfBaseFeatures) {
  const auto& ctx = Context();
  const groundtruth::Pipeline& p = *ctx.pipeline;
  expansion::CycleExpanderOptions options;
  options.include_redirect_aliases = true;
  expansion::CycleExpander system(&p.kb(), &p.linker(), options);
  size_t alias_count = 0;
  for (size_t t = 0; t < p.num_topics(); ++t) {
    auto expanded = system.Expand(p.topic(t).keywords);
    ASSERT_TRUE(expanded.ok());
    for (graph::NodeId f : expanded->feature_articles) {
      if (!p.kb().IsRedirect(f)) continue;
      ++alias_count;
      // The alias' main article must itself be a selected feature.
      graph::NodeId main = p.kb().ResolveRedirect(f);
      EXPECT_NE(std::find(expanded->feature_articles.begin(),
                          expanded->feature_articles.end(), main),
                expanded->feature_articles.end());
    }
  }
  EXPECT_GT(alias_count, 0u);  // the KB has plenty of redirects
}

TEST(EndToEndTest, Figure9TrendIsPositive) {
  analysis::Fig9Report report = analysis::ComputeFig9(Context().analyses);
  EXPECT_GT(report.num_cycles, 100u);
  EXPECT_GT(report.trend.slope, 0.0);
}

TEST(EndToEndTest, Figure5TwoCyclesBeatThreeCycles) {
  analysis::LengthSeries fig5 = analysis::ComputeFig5(Context().analyses);
  ASSERT_EQ(fig5.values.size(), 4u);
  // The robust part of the paper's Fig 5 shape: length 2 above length 3.
  EXPECT_GT(fig5.values[0], fig5.values[1]);
}

TEST(EndToEndTest, QueryGraphsContainSatelliteComponents) {
  // The foreign-mention planting must produce at least some disconnected
  // query graphs, as the paper observes (Table 3 %size < 1).
  size_t with_satellites = 0;
  for (const auto& a : Context().analyses) {
    if (a.component.num_components > 1) ++with_satellites;
  }
  EXPECT_GT(with_satellites, 0u);
}

TEST(EndToEndTest, GroundTruthEntriesCarryTrackIndex) {
  const auto& ctx = Context();
  for (size_t t = 0; t < ctx.gt.entries.size(); ++t) {
    EXPECT_EQ(ctx.gt.entries[t].topic_index, t);
    EXPECT_EQ(ctx.gt.entries[t].topic_id, ctx.pipeline->topic(t).id);
  }
}

TEST(EndToEndTest, PartialGroundTruthAnalyzesAgainstRightQrels) {
  // Regression test: analyzing a ground truth holding only topic 3 must
  // evaluate contributions against topic 3's qrels, not topic 0's.
  const auto& ctx = Context();
  groundtruth::GroundTruthBuilder builder(ctx.pipeline);
  auto entry = builder.BuildEntry(3);
  ASSERT_TRUE(entry.ok());
  double baseline = entry->xq.baseline_quality;
  groundtruth::GroundTruth partial;
  partial.entries.push_back(std::move(*entry));
  analysis::QueryGraphAnalyzer analyzer(ctx.pipeline, &partial);
  auto a = analyzer.Analyze(0);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->baseline_quality, baseline, 1e-9);
}

TEST(EndToEndTest, KbSurvivesDumpRoundTripWithinPipeline) {
  const auto& ctx = Context();
  std::string dump = wiki::WriteDump(ctx.pipeline->kb());
  auto kb2 = wiki::ParseDump(dump);
  ASSERT_TRUE(kb2.ok()) << kb2.status();
  EXPECT_EQ(kb2->num_articles(), ctx.pipeline->kb().num_articles());
  EXPECT_EQ(kb2->graph().num_edges(),
            ctx.pipeline->kb().graph().num_edges());
}

TEST(EndToEndTest, DeterministicAcrossPipelineBuilds) {
  groundtruth::PipelineOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 3;
  options.track.background_docs = 50;
  auto p1 = groundtruth::Pipeline::Build(options);
  auto p2 = groundtruth::Pipeline::Build(options);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  ASSERT_EQ((*p1)->track().documents.size(),
            (*p2)->track().documents.size());
  for (size_t i = 0; i < (*p1)->track().documents.size(); ++i) {
    ASSERT_EQ((*p1)->track().documents[i].xml,
              (*p2)->track().documents[i].xml);
  }
  groundtruth::GroundTruthBuilder b1(p1->get()), b2(p2->get());
  auto e1 = b1.BuildEntry(0);
  auto e2 = b2.BuildEntry(0);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->xq.selected, e2->xq.selected);
}

}  // namespace
}  // namespace wqe
