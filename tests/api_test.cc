/// \file api_test.cc
/// \brief Tests for the `api::Engine` facade and its expander registry:
/// name-based strategy lookup, per-call overrides, batched serving, and
/// the fallback behavior of unlinkable requests.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/engine.h"
#include "api/evaluation.h"
#include "api/testbed.h"
#include "expansion/cycle_expander.h"

namespace wqe::api {
namespace {

const Testbed& SmallBed() {
  static const Testbed* kBed = [] {
    TestbedOptions options;
    options.wiki.num_domains = 12;
    options.track.num_topics = 6;
    options.track.background_docs = 150;
    auto result = Testbed::Build(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->release();
  }();
  return *kBed;
}

// ------------------------------------------------------------- registry

TEST(ExpanderRegistryTest, BuiltinsAreRegistered) {
  const Engine& engine = SmallBed().engine();
  std::vector<std::string> names = engine.registry().Names();
  EXPECT_EQ(names, (std::vector<std::string>{"community", "cycle",
                                             "direct-link", "no-expansion"}));
  EXPECT_TRUE(engine.registry().Contains("adjacency"));  // alias
  EXPECT_TRUE(engine.registry().Contains("category"));   // alias
  EXPECT_EQ(engine.registry().Resolve("adjacency"), "direct-link");
  EXPECT_EQ(engine.registry().Resolve("category"), "community");
  EXPECT_EQ(engine.registry().Resolve("cycle"), "cycle");
}

TEST(ExpanderRegistryTest, AllBuiltinsConstructByName) {
  const Testbed& bed = SmallBed();
  const ExpanderRegistry& registry = bed.engine().registry();
  for (const std::string& name : registry.Names()) {
    auto expander = registry.Create(name, bed.kb(), bed.linker());
    ASSERT_TRUE(expander.ok()) << name << ": " << expander.status();
    ASSERT_NE(*expander, nullptr);
  }
}

TEST(ExpanderRegistryTest, UnknownNameIsNotFound) {
  const Testbed& bed = SmallBed();
  auto result =
      bed.engine().registry().Create("warp-drive", bed.kb(), bed.linker());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  // The error names the available strategies.
  EXPECT_NE(result.status().message().find("cycle"), std::string::npos);
}

TEST(ExpanderRegistryTest, DuplicateRegistrationFails) {
  ExpanderRegistry registry = ExpanderRegistry::WithBuiltins();
  auto factory = [](const wiki::KnowledgeBase&, const linking::EntityLinker&,
                    const ExpanderOverrides&)
      -> Result<std::unique_ptr<expansion::Expander>> {
    return Status::NotImplemented("test-only");
  };
  EXPECT_TRUE(registry.Register("cycle", factory).IsAlreadyExists());
  EXPECT_TRUE(registry.Register("adjacency", factory).IsAlreadyExists());
  EXPECT_TRUE(registry.Register("", factory).IsInvalidArgument());
  EXPECT_TRUE(registry.Register("custom", nullptr).IsInvalidArgument());
  EXPECT_TRUE(registry.Register("custom", factory).ok());
  EXPECT_TRUE(registry.Contains("custom"));
  EXPECT_TRUE(registry.RegisterAlias("alias", "nope").IsNotFound());
  EXPECT_TRUE(registry.RegisterAlias("custom2", "custom").ok());
  EXPECT_EQ(registry.Resolve("custom2"), "custom");
}

TEST(ExpanderRegistryTest, InvalidOverridesAreRejected) {
  const Testbed& bed = SmallBed();
  const ExpanderRegistry& registry = bed.engine().registry();
  ExpanderOverrides zero_features;
  zero_features.max_features = 0;
  EXPECT_TRUE(registry.Create("cycle", bed.kb(), bed.linker(), zero_features)
                  .status()
                  .IsInvalidArgument());
  ExpanderOverrides bad_ratio;
  bad_ratio.min_category_ratio = 1.5;
  EXPECT_TRUE(registry.Create("cycle", bed.kb(), bed.linker(), bad_ratio)
                  .status()
                  .IsInvalidArgument());
  ExpanderOverrides inverted;
  inverted.min_cycle_length = 5;
  inverted.max_cycle_length = 3;
  EXPECT_TRUE(registry.Create("cycle", bed.kb(), bed.linker(), inverted)
                  .status()
                  .IsInvalidArgument());
  ExpanderOverrides inverted_window;  // would silently reject every cycle
  inverted_window.min_category_ratio = 0.6;
  inverted_window.max_category_ratio = 0.2;
  EXPECT_TRUE(registry.Create("cycle", bed.kb(), bed.linker(), inverted_window)
                  .status()
                  .IsInvalidArgument());
}

// --------------------------------------------------------------- engine

TEST(EngineTest, BuildRejectsUnknownDefaultExpander) {
  EngineOptions options;
  options.default_expander = "nope";
  auto engine = Engine::Build(wiki::KnowledgeBase(), options);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
}

TEST(EngineTest, QueryBeforeFinalizeFails) {
  auto engine = Engine::Build(wiki::KnowledgeBase());
  ASSERT_TRUE(engine.ok());
  QueryRequest request;
  request.keywords = "anything";
  EXPECT_TRUE((*engine)->Query(request).status().IsInvalidArgument());
}

TEST(EngineTest, UnknownExpanderInRequestIsNotFound) {
  const Engine& engine = SmallBed().engine();
  QueryRequest request;
  request.keywords = SmallBed().topic(0).keywords;
  request.expander = "warp-drive";
  EXPECT_TRUE(engine.Query(request).status().IsNotFound());
}

TEST(EngineTest, EmptyExpanderUsesDefault) {
  const Engine& engine = SmallBed().engine();
  QueryRequest request;
  request.keywords = SmallBed().topic(0).keywords;
  auto response = engine.Query(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->expansion.expander, engine.options().default_expander);
  EXPECT_FALSE(response->docs.empty());
}

TEST(EngineTest, AliasResolvesToCanonicalStrategy) {
  const Engine& engine = SmallBed().engine();
  ExpandRequest request;
  request.keywords = SmallBed().topic(0).keywords;
  request.expander = "adjacency";
  auto response = engine.Expand(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->expander, "direct-link");
}

TEST(EngineTest, PerCallOverridesApply) {
  const Engine& engine = SmallBed().engine();
  ExpandRequest base;
  base.keywords = SmallBed().topic(0).keywords;
  base.expander = "cycle";
  auto unlimited = engine.Expand(base);
  ASSERT_TRUE(unlimited.ok());
  ASSERT_GT(unlimited->feature_articles.size(), 1u);

  ExpandRequest capped = base;
  capped.overrides.max_features = 1;
  auto one = engine.Expand(capped);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->feature_articles.size(), 1u);
  // The overridden call must not disturb subsequent default calls.
  auto again = engine.Expand(base);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->feature_articles, unlimited->feature_articles);
}

TEST(EngineTest, UnlinkableKeywordsFallBackToRawQuery) {
  const Engine& engine = SmallBed().engine();
  QueryRequest request;
  request.keywords = "zzz qqq www";
  request.expander = "cycle";
  auto response = engine.Query(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->expansion.query_articles.empty());
  EXPECT_TRUE(response->expansion.feature_articles.empty());
  // The raw keywords are still issued as the query.
  ASSERT_EQ(response->expansion.titles.size(), 1u);
  EXPECT_EQ(response->expansion.titles[0], "zzz qqq www");
  // Empty keywords are a request error.
  QueryRequest empty;
  EXPECT_TRUE(engine.Query(empty).status().IsInvalidArgument());
}

// ---------------------------------------------------------------- batch

TEST(EngineBatchTest, QueryBatchMatchesSequentialQueries) {
  const Testbed& bed = SmallBed();
  const Engine& engine = bed.engine();
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < 50; ++i) {
    QueryRequest request;
    request.keywords = bed.topic(i % bed.num_topics()).keywords;
    request.expander = "cycle";
    requests.push_back(std::move(request));
  }

  size_t before = engine.stats().expanders_constructed;
  std::vector<QueryResponse> sequential;
  for (const QueryRequest& request : requests) {
    auto response = engine.Query(request);
    ASSERT_TRUE(response.ok()) << response.status();
    sequential.push_back(std::move(*response));
  }
  size_t sequential_constructed =
      engine.stats().expanders_constructed - before;

  before = engine.stats().expanders_constructed;
  auto batch = engine.QueryBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  size_t batch_constructed = engine.stats().expanders_constructed - before;

  ASSERT_EQ(batch->size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ((*batch)[i].docs, sequential[i].docs) << "request " << i;
    EXPECT_EQ((*batch)[i].expansion.titles, sequential[i].expansion.titles);
    EXPECT_EQ((*batch)[i].expansion.feature_articles,
              sequential[i].expansion.feature_articles);
  }
  // Strategy setup is amortized: one construction for the whole batch,
  // versus one per sequential call.
  EXPECT_EQ(sequential_constructed, requests.size());
  EXPECT_EQ(batch_constructed, 1u);
}

TEST(EngineBatchTest, BatchConstructsOnePerDistinctConfig) {
  const Testbed& bed = SmallBed();
  const Engine& engine = bed.engine();
  std::vector<ExpandRequest> requests;
  for (size_t i = 0; i < 12; ++i) {
    ExpandRequest request;
    request.keywords = bed.topic(i % bed.num_topics()).keywords;
    request.expander = (i % 2 == 0) ? "cycle" : "no-expansion";
    if (i % 4 == 0) request.overrides.max_features = 3;
    requests.push_back(std::move(request));
  }
  size_t before = engine.stats().expanders_constructed;
  auto batch = engine.ExpandBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  // cycle, cycle+max3, no-expansion: three distinct configurations.
  EXPECT_EQ(engine.stats().expanders_constructed - before, 3u);
}

TEST(EngineBatchTest, BatchErrorNamesOffendingRequest) {
  const Testbed& bed = SmallBed();
  std::vector<QueryRequest> requests(2);
  requests[0].keywords = bed.topic(0).keywords;
  requests[1].keywords = "";  // invalid
  auto batch = bed.engine().QueryBatch(requests);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
  EXPECT_NE(batch.status().message().find("request #1"), std::string::npos);
}

// ----------------------------------------------------------- evaluation

TEST(EvaluateSystemTest, SkipsUnevaluableTopicsButKeepsRest) {
  const Testbed& bed = SmallBed();
  std::vector<api::EvalTopic> topics = bed.EvalTopics();
  topics.push_back({"", {}});  // unevaluable: empty keywords
  auto eval = api::EvaluateSystem(bed.engine(), "cycle", topics);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_EQ(eval->topics, bed.num_topics());
  EXPECT_GT(eval->mean_o, 0.0);
}

}  // namespace
}  // namespace wqe::api
