/// \file text_test.cc
/// \brief Tests for tokenizer, Porter stemmer, stopwords and the analyzer.

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace wqe::text {
namespace {

// -------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, BasicWordsLowercasedWithOffsets) {
  Tokenizer t;
  auto tokens = t.Tokenize("Gondola in Venice");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "gondola");
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[0].end, 7u);
  EXPECT_EQ(tokens[2].text, "venice");
  EXPECT_EQ(tokens[2].begin, 11u);
}

TEST(TokenizerTest, PunctuationSplits) {
  Tokenizer t;
  auto tokens = t.TokenizeToStrings("field (Hamois, Belgium)!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "field");
  EXPECT_EQ(tokens[1], "hamois");
  EXPECT_EQ(tokens[2], "belgium");
}

TEST(TokenizerTest, InnerHyphenAndApostropheKept) {
  Tokenizer t;
  auto tokens = t.TokenizeToStrings("bouches-du-rhone o'neill -leading");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "bouches-du-rhone");
  EXPECT_EQ(tokens[1], "o'neill");
  EXPECT_EQ(tokens[2], "leading");
}

TEST(TokenizerTest, InnerPunctDisabled) {
  TokenizerOptions options;
  options.keep_inner_punct = false;
  Tokenizer t(options);
  auto tokens = t.TokenizeToStrings("bouches-du-rhone");
  ASSERT_EQ(tokens.size(), 3u);
}

TEST(TokenizerTest, NumbersKeptByDefaultDroppedOnRequest) {
  Tokenizer keep;
  EXPECT_EQ(keep.TokenizeToStrings("1712 establishments").size(), 2u);
  TokenizerOptions options;
  options.keep_numbers = false;
  Tokenizer drop(options);
  auto tokens = drop.TokenizeToStrings("1712 establishments");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "establishments");
}

TEST(TokenizerTest, Utf8BytesSurvive) {
  Tokenizer t;
  auto tokens = t.TokenizeToStrings("blühendes Feld");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "blühendes");
}

TEST(TokenizerTest, EmptyAndAllPunct) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("... !!! ???").empty());
}

// ----------------------------------------------------------- PorterStemmer

struct StemCase {
  const char* in;
  const char* out;
};

class PorterStemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerTest, MatchesReferenceVector) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

// Vectors from Porter's original paper and the standard voc/output list.
INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, PorterStemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerEdgeTest, ShortAndNonAlphaUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("at"), "at");
  EXPECT_EQ(stemmer.Stem("be"), "be");
  EXPECT_EQ(stemmer.Stem("1712"), "1712");
  EXPECT_EQ(stemmer.Stem("bouches-du-rhone"), "bouches-du-rhone");
  EXPECT_EQ(stemmer.Stem(""), "");
}

TEST(PorterStemmerEdgeTest, QueryAndDocConflate) {
  PorterStemmer stemmer;
  // Retrieval correctness depends on query/document conflation.
  EXPECT_EQ(stemmer.Stem("gondolas"), stemmer.Stem("gondola"));
  EXPECT_EQ(stemmer.Stem("bridges"), stemmer.Stem("bridge"));
  EXPECT_EQ(stemmer.Stem("painting"), stemmer.Stem("paintings"));
}

// --------------------------------------------------------------- Stopwords

TEST(StopwordsTest, DefaultContainsFunctionWords) {
  const StopwordSet& sw = StopwordSet::Default();
  EXPECT_TRUE(sw.Contains("the"));
  EXPECT_TRUE(sw.Contains("of"));
  EXPECT_TRUE(sw.Contains("in"));
  EXPECT_FALSE(sw.Contains("venice"));
  EXPECT_FALSE(sw.Contains("gondola"));
  EXPECT_GT(sw.size(), 100u);
}

TEST(StopwordsTest, EmptySetContainsNothing) {
  EXPECT_FALSE(StopwordSet::Empty().Contains("the"));
  EXPECT_EQ(StopwordSet::Empty().size(), 0u);
}

// ---------------------------------------------------------------- Analyzer

TEST(AnalyzerTest, FullPipelineStopsAndStems) {
  Analyzer analyzer;
  auto terms = analyzer.AnalyzeToStrings("the bridges of Venice");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "bridg");
  EXPECT_EQ(terms[1], "venic");
}

TEST(AnalyzerTest, PositionsCompactedOverStopwords) {
  // "bridge of sighs": "of" removed and positions compacted (INDRI-style
  // stopping), so the kept terms are adjacent — exact-phrase titles with
  // inner stopwords match verbatim document text.
  Analyzer analyzer;
  auto terms = analyzer.Analyze("bridge of sighs");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].position, 0u);
  EXPECT_EQ(terms[1].position, 1u);
}

TEST(AnalyzerTest, StemmingDisabled) {
  AnalyzerOptions options;
  options.stem = false;
  Analyzer analyzer(options);
  auto terms = analyzer.AnalyzeToStrings("bridges");
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], "bridges");
}

TEST(AnalyzerTest, StopwordsDisabled) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.AnalyzeToStrings("the bridge").size(), 2u);
}

TEST(AnalyzerTest, SpansPointIntoSource) {
  Analyzer analyzer;
  std::string input = "grand canal";
  auto terms = analyzer.Analyze(input);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(input.substr(terms[1].begin, terms[1].end - terms[1].begin),
            "canal");
}

}  // namespace
}  // namespace wqe::text
