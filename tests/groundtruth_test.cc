/// \file groundtruth_test.cc
/// \brief Tests for §2: the pipeline context, the X(q) hill climb, and
/// query-graph assembly.

#include <gtest/gtest.h>

#include <algorithm>

#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"
#include "groundtruth/query_graph.h"
#include "groundtruth/xq_optimizer.h"

namespace wqe::groundtruth {
namespace {

/// Small shared pipeline (built once; ~1.5k docs).
const Pipeline& SmallPipeline() {
  static const Pipeline* kPipeline = [] {
    PipelineOptions options;
    options.wiki.num_domains = 12;
    options.track.num_topics = 6;
    options.track.background_docs = 150;
    auto result = Pipeline::Build(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->release();
  }();
  return *kPipeline;
}

TEST(PipelineTest, WiresEverything) {
  const Pipeline& p = SmallPipeline();
  EXPECT_GT(p.kb().num_articles(), 100u);
  EXPECT_EQ(p.num_topics(), 6u);
  EXPECT_TRUE(p.engine().finalized());
  EXPECT_EQ(p.engine().store().size(), p.track().documents.size());
  for (size_t t = 0; t < p.num_topics(); ++t) {
    EXPECT_EQ(p.relevant(t).size(), p.topic(t).relevant.size());
  }
}

TEST(PipelineTest, DocTextIsExtractedNotRawXml) {
  const Pipeline& p = SmallPipeline();
  const std::string& text = p.doc_text(0);
  EXPECT_EQ(text.find("<image"), std::string::npos);
  EXPECT_EQ(text.find("xml:lang"), std::string::npos);
  EXPECT_FALSE(text.empty());
}

TEST(PipelineTest, KeywordsLinkToQueryArticles) {
  const Pipeline& p = SmallPipeline();
  for (size_t t = 0; t < p.num_topics(); ++t) {
    auto linked = p.linker().LinkToArticles(p.topic(t).keywords);
    // The generated keywords are hub titles; the linker must find them.
    EXPECT_EQ(linked.size(), p.topic(t).query_articles.size())
        << "topic " << t << ": " << p.topic(t).keywords;
    for (graph::NodeId q : p.topic(t).query_articles) {
      EXPECT_NE(std::find(linked.begin(), linked.end(), q), linked.end());
    }
  }
}

// ------------------------------------------------------------- XqOptimizer

class XqOptimizerTest : public ::testing::Test {
 protected:
  const Pipeline& p_ = SmallPipeline();
};

TEST_F(XqOptimizerTest, ImprovesOverBaseline) {
  GroundTruthBuilder builder(&p_);
  auto entry = builder.BuildEntry(0);
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_GE(entry->xq.quality, entry->xq.baseline_quality);
  EXPECT_GT(entry->xq.quality, 0.5);  // planting makes high O reachable
  EXPECT_FALSE(entry->xq.selected.empty());
}

TEST_F(XqOptimizerTest, SelectedSubsetOfCandidates) {
  GroundTruthBuilder builder(&p_);
  auto entry = builder.BuildEntry(1);
  ASSERT_TRUE(entry.ok());
  for (graph::NodeId a : entry->xq.selected) {
    EXPECT_NE(std::find(entry->doc_articles.begin(),
                        entry->doc_articles.end(), a),
              entry->doc_articles.end())
        << "selected article not in L(q.D)";
  }
}

TEST_F(XqOptimizerTest, EmptyCandidatesReturnsBaseline) {
  XqOptimizer optimizer(&p_.engine(), &p_.kb());
  auto linked = p_.linker().LinkToArticles(p_.topic(0).keywords);
  auto result = optimizer.Optimize(linked, {}, p_.relevant(0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->selected.empty());
  EXPECT_DOUBLE_EQ(result->quality, result->baseline_quality);
}

TEST_F(XqOptimizerTest, DeterministicForSeed) {
  XqOptimizerOptions options;
  options.restarts = 1;
  GroundTruthBuilder b1(&p_, options), b2(&p_, options);
  auto e1 = b1.BuildEntry(2);
  auto e2 = b2.BuildEntry(2);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->xq.selected, e2->xq.selected);
  EXPECT_DOUBLE_EQ(e1->xq.quality, e2->xq.quality);
}

TEST_F(XqOptimizerTest, EvaluateArticlesMatchesEquation1Range) {
  XqOptimizer optimizer(&p_.engine(), &p_.kb());
  auto linked = p_.linker().LinkToArticles(p_.topic(0).keywords);
  auto o = optimizer.EvaluateArticles(linked, p_.relevant(0));
  ASSERT_TRUE(o.ok());
  EXPECT_GE(*o, 0.0);
  EXPECT_LE(*o, 1.0);
  // Empty article set evaluates to 0, not an error.
  auto empty = optimizer.EvaluateArticles({}, p_.relevant(0));
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(*empty, 0.0);
}

// -------------------------------------------------------------- QueryGraph

TEST(QueryGraphTest, ContainsArticlesMainsAndCategories) {
  const Pipeline& p = SmallPipeline();
  auto query = p.linker().LinkToArticles(p.topic(0).keywords);
  ASSERT_FALSE(query.empty());
  std::vector<graph::NodeId> expansion = {p.topic(0).planted_good.front()};
  QueryGraph qg = BuildQueryGraph(p.kb(), query, expansion);

  // Every query/expansion article and each of its categories is present.
  for (graph::NodeId a : query) {
    ASSERT_NE(qg.sub.Local(a), graph::kInvalidNode);
    for (graph::NodeId c : p.kb().CategoriesOf(a)) {
      EXPECT_NE(qg.sub.Local(c), graph::kInvalidNode);
    }
  }
  EXPECT_NE(qg.sub.Local(expansion[0]), graph::kInvalidNode);
  EXPECT_EQ(qg.query_articles, query);
  EXPECT_EQ(qg.expansion_articles, expansion);
  EXPECT_EQ(qg.LocalQueryArticles().size(), query.size());
}

TEST(QueryGraphTest, RedirectInputIncludesMainArticle) {
  wiki::KnowledgeBase kb;
  auto main = *kb.AddArticle("main");
  auto cat = *kb.AddCategory("cat");
  ASSERT_TRUE(kb.AddBelongs(main, cat).ok());
  auto alias = *kb.AddRedirect("alias", main);
  kb.Freeze();  // BuildQueryGraph slices the frozen snapshot
  QueryGraph qg = BuildQueryGraph(kb, {alias}, {});
  // alias, main, and main's category are all present.
  EXPECT_EQ(qg.num_nodes(), 3u);
  EXPECT_NE(qg.sub.Local(alias), graph::kInvalidNode);
  EXPECT_NE(qg.sub.Local(main), graph::kInvalidNode);
  EXPECT_NE(qg.sub.Local(cat), graph::kInvalidNode);
}

TEST(QueryGraphTest, InducedEdgesOnlyAmongMembers) {
  const Pipeline& p = SmallPipeline();
  auto query = p.linker().LinkToArticles(p.topic(1).keywords);
  QueryGraph qg = BuildQueryGraph(p.kb(), query, p.topic(1).planted_good);
  // Spot-check both directions of the slice invariant: every subgraph
  // edge exists in the KB between the mapped endpoints, and every KB edge
  // between two members made it into the subgraph.
  const graph::CsrSubgraph& sub = qg.sub;
  size_t sub_edges = 0;
  for (graph::NodeId n = 0; n < sub.num_nodes(); ++n) {
    auto targets = sub.OutTargets(n);
    auto kinds = sub.OutKinds(n);
    for (size_t i = 0; i < targets.size(); ++i, ++sub_edges) {
      EXPECT_TRUE(p.kb().graph().HasEdge(sub.to_parent[n],
                                         sub.to_parent[targets[i]], kinds[i]));
    }
  }
  size_t kb_member_edges = 0;
  for (graph::NodeId parent : sub.to_parent) {
    for (graph::NodeId dst : p.kb().csr().OutTargets(parent)) {
      if (sub.Local(dst) != graph::kInvalidNode) ++kb_member_edges;
    }
  }
  EXPECT_EQ(sub_edges, kb_member_edges);
  EXPECT_EQ(sub_edges, sub.num_edges());
}

// ------------------------------------------------------------- GroundTruth

TEST(GroundTruthTest, BuildAllTopicsAndSerialize) {
  const Pipeline& p = SmallPipeline();
  XqOptimizerOptions fast;
  fast.restarts = 1;
  fast.enable_swap = false;  // keep the full-track build quick
  GroundTruthBuilder builder(&p, fast);
  auto gt = builder.Build();
  ASSERT_TRUE(gt.ok()) << gt.status();
  ASSERT_EQ(gt->entries.size(), p.num_topics());
  for (const GroundTruthEntry& e : gt->entries) {
    EXPECT_EQ(e.precision_at.size(), 4u);
    EXPECT_GT(e.graph.num_nodes(), 0u);
    EXPECT_GE(e.xq.quality, e.xq.baseline_quality);
  }
  std::string serialized = WriteGroundTruth(*gt, p.kb());
  EXPECT_EQ(static_cast<size_t>(
                std::count(serialized.begin(), serialized.end(), '\n')),
            gt->entries.size());
}

TEST(GroundTruthTest, OutOfRangeTopic) {
  GroundTruthBuilder builder(&SmallPipeline());
  EXPECT_TRUE(builder.BuildEntry(999).status().IsOutOfRange());
}

}  // namespace
}  // namespace wqe::groundtruth
