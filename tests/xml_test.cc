/// \file xml_test.cc
/// \brief Tests for the XML pull parser and writer.

#include <gtest/gtest.h>

#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace wqe::xml {
namespace {

std::vector<Event> Drain(std::string_view doc) {
  PullParser p(doc);
  std::vector<Event> events;
  for (;;) {
    auto ev = p.Next();
    EXPECT_TRUE(ev.ok()) << ev.status();
    if (!ev.ok() || ev->type == EventType::kEndDocument) break;
    events.push_back(*ev);
  }
  return events;
}

TEST(PullParserTest, SimpleElementWithText) {
  auto events = Drain("<a>hello</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::kStartElement);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].type, EventType::kCharacters);
  EXPECT_EQ(events[1].text, "hello");
  EXPECT_EQ(events[2].type, EventType::kEndElement);
}

TEST(PullParserTest, NestedElements) {
  auto events = Drain("<a><b><c/></b></a>");
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[2].name, "c");
  EXPECT_TRUE(events[2].self_closing);
  EXPECT_EQ(events[3].type, EventType::kEndElement);
  EXPECT_EQ(events[3].name, "c");
}

TEST(PullParserTest, AttributesWithBothQuoteStyles) {
  auto events = Drain(R"(<img id="82531" file='images/9.jpg' />)");
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].Attr("id"), "82531");
  EXPECT_EQ(events[0].Attr("file"), "images/9.jpg");
  EXPECT_TRUE(events[0].HasAttr("id"));
  EXPECT_FALSE(events[0].HasAttr("nope"));
  EXPECT_EQ(events[0].Attr("nope"), "");
}

TEST(PullParserTest, EntityDecoding) {
  auto events = Drain("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "<x> & \"y\" 'z'");
}

TEST(PullParserTest, NumericCharacterReferences) {
  auto events = Drain("<a>&#65;&#x42;&#233;</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "AB\xC3\xA9");  // é in UTF-8
}

TEST(PullParserTest, CommentsAndPIsSkipped) {
  auto events =
      Drain("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner -->x</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "x");
}

TEST(PullParserTest, CdataReturnedAsCharacters) {
  auto events = Drain("<a><![CDATA[<raw> & stuff]]></a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "<raw> & stuff");
}

TEST(PullParserTest, AttributeEntityDecoding) {
  auto events = Drain(R"(<a t="a&amp;b"/>)");
  EXPECT_EQ(events[0].Attr("t"), "a&b");
}

// Malformed-input table.
struct BadXmlCase {
  const char* doc;
  const char* why;
};

class PullParserErrorTest : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(PullParserErrorTest, ReportsParseError) {
  PullParser p(GetParam().doc);
  Status error = Status::OK();
  for (int i = 0; i < 100; ++i) {
    auto ev = p.Next();
    if (!ev.ok()) {
      error = ev.status();
      break;
    }
    if (ev->type == EventType::kEndDocument) break;
  }
  EXPECT_TRUE(error.IsParseError())
      << GetParam().why << " — got: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, PullParserErrorTest,
    ::testing::Values(
        BadXmlCase{"<a>", "unclosed element"},
        BadXmlCase{"<a></b>", "mismatched end tag"},
        BadXmlCase{"</a>", "end tag with no open element"},
        BadXmlCase{"<a attr>x</a>", "attribute without value"},
        BadXmlCase{"<a attr=x>y</a>", "unquoted attribute"},
        BadXmlCase{"<a t=\"v>x</a>", "unterminated attribute"},
        BadXmlCase{"<a>&unknown;</a>", "unknown entity"},
        BadXmlCase{"<a>&#xZZ;</a>", "bad numeric reference"},
        BadXmlCase{"<a><![CDATA[x</a>", "unterminated CDATA"},
        BadXmlCase{"<!-- forever <a>x</a>", "unterminated comment"},
        BadXmlCase{"x<a></a>", "text outside root"},
        BadXmlCase{"<1a></1a>", "bad element name"}));

TEST(PullParserTest, SkipElementSkipsSubtree) {
  PullParser p("<root><skip><deep>x</deep></skip><keep>y</keep></root>");
  ASSERT_TRUE(p.Next().ok());   // <root>
  auto skip_start = p.Next();   // <skip>
  ASSERT_TRUE(skip_start.ok());
  EXPECT_EQ(skip_start->name, "skip");
  ASSERT_TRUE(p.SkipElement().ok());
  auto keep = p.Next();
  ASSERT_TRUE(keep.ok());
  EXPECT_EQ(keep->name, "keep");
}

TEST(PullParserTest, ReadElementTextConcatenatesChildren) {
  PullParser p("<a>one <b>two</b> three</a>");
  ASSERT_TRUE(p.Next().ok());
  auto text = p.ReadElementText();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "one two three");
}

TEST(EscapeXmlTest, EscapesAllFive) {
  EXPECT_EQ(EscapeXml("<a & \"b\" 'c'>"),
            "&lt;a &amp; &quot;b&quot; &apos;c&apos;&gt;");
}

TEST(XmlWriterTest, BuildsDocument) {
  XmlWriter w(2);
  w.WriteDeclaration();
  w.StartElement("image");
  w.WriteAttribute("id", "7");
  w.WriteElement("name", "x.jpg");
  w.WriteEmptyElement("comment");
  w.EndElement();
  std::string doc = w.TakeString();
  EXPECT_NE(doc.find("<?xml"), std::string::npos);
  EXPECT_NE(doc.find("<image id=\"7\">"), std::string::npos);
  EXPECT_NE(doc.find("<name>x.jpg</name>"), std::string::npos);
  EXPECT_NE(doc.find("<comment />"), std::string::npos);
}

TEST(XmlWriterTest, EscapesTextAndAttributes) {
  XmlWriter w(0);
  w.StartElement("a");
  w.WriteAttribute("t", "x<y&");
  w.WriteText("a<b>&c");
  w.EndElement();
  std::string doc = w.TakeString();
  EXPECT_NE(doc.find("t=\"x&lt;y&amp;\""), std::string::npos);
  EXPECT_NE(doc.find("a&lt;b&gt;&amp;c"), std::string::npos);
}

// Round-trip property: writer output parses back to the same structure.
class XmlRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTripTest, WriteParsePreservesText) {
  std::string payload = GetParam();
  XmlWriter w(2);
  w.WriteDeclaration();
  w.StartElement("doc");
  w.WriteAttribute("attr", payload);
  w.WriteElement("field", payload);
  w.EndElement();
  std::string xml_doc = w.TakeString();

  PullParser p(xml_doc);
  auto root = p.Next();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->Attr("attr"), payload);
  // Skip indentation whitespace emitted between elements.
  Event field;
  for (;;) {
    auto ev = p.Next();
    ASSERT_TRUE(ev.ok());
    ASSERT_NE(ev->type, EventType::kEndDocument);
    if (ev->type == EventType::kStartElement) {
      field = *ev;
      break;
    }
  }
  ASSERT_EQ(field.name, "field");
  auto text = p.ReadElementText();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Payloads, XmlRoundTripTest,
    ::testing::Values("plain", "with <angle> & ampersand",
                      "quotes \" and ' here", "unicode blühendes Ω",
                      "({{Information |Description= x |Source= y}})",
                      "a\nmultiline\nvalue"));

}  // namespace
}  // namespace wqe::xml
