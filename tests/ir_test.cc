/// \file ir_test.cc
/// \brief Tests for the retrieval engine: store, index, query language,
/// scoring and evaluation metrics.

#include <gtest/gtest.h>

#include <set>

#include "ir/document_store.h"
#include "ir/eval.h"
#include "ir/inverted_index.h"
#include "ir/query.h"
#include "ir/scorer.h"
#include "ir/search_engine.h"

namespace wqe::ir {
namespace {

// ----------------------------------------------------------- DocumentStore

TEST(DocumentStoreTest, AddAndLookup) {
  DocumentStore store;
  auto id = store.Add("doc1.xml", "some text");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.Get(*id).name, "doc1.xml");
  EXPECT_EQ(store.FindByName("doc1.xml"), *id);
  EXPECT_EQ(store.FindByName("nope"), std::nullopt);
  EXPECT_TRUE(store.Add("doc1.xml", "dup").status().IsAlreadyExists());
  EXPECT_TRUE(store.Add("", "x").status().IsInvalidArgument());
}

// ----------------------------------------------------------- InvertedIndex

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : index_(&analyzer_) {
    // doc0: "the gondola in venice"  → gondola(1) venic(3)
    // doc1: "venice venice gondola"  → venic venic gondola
    // doc2: "grand canal of venice"
    EXPECT_TRUE(index_.Add(0, "the gondola in venice").ok());
    EXPECT_TRUE(index_.Add(1, "venice venice gondola").ok());
    EXPECT_TRUE(index_.Add(2, "grand canal of venice").ok());
  }
  text::Analyzer analyzer_;
  InvertedIndex index_;
};

TEST_F(IndexTest, PostingsAndStats) {
  const PostingsList* venice = index_.Find("venic");  // stemmed
  ASSERT_NE(venice, nullptr);
  EXPECT_EQ(venice->df(), 3u);
  EXPECT_EQ(venice->collection_tf, 4u);
  EXPECT_EQ(index_.num_docs(), 3u);
  EXPECT_EQ(index_.Find("venice"), nullptr);  // unstemmed form absent
  EXPECT_EQ(index_.Find("zzz"), nullptr);
  EXPECT_EQ(index_.doc_length(1), 3u);
  EXPECT_EQ(index_.total_tokens(), 2u + 3u + 3u);
}

TEST_F(IndexTest, RequiresIdOrder) {
  EXPECT_TRUE(index_.Add(7, "skip ahead").IsInvalidArgument());
}

TEST_F(IndexTest, PhraseTfExactAdjacency) {
  // "grand canal" appears once in doc2 only.
  EXPECT_EQ(index_.PhraseTf({"grand", "canal"}, 2), 1u);
  EXPECT_EQ(index_.PhraseTf({"grand", "canal"}, 0), 0u);
  EXPECT_EQ(index_.PhraseTf({"canal", "grand"}, 2), 0u);  // order matters
  EXPECT_EQ(index_.PhraseTf({"venic", "venic"}, 1), 1u);
  EXPECT_EQ(index_.PhraseTf({}, 0), 0u);
}

TEST_F(IndexTest, PhrasePostingsAcrossDocs) {
  auto postings = index_.PhrasePostings({"venic"});
  EXPECT_EQ(postings.size(), 3u);
  auto grand_canal = index_.PhrasePostings({"grand", "canal"});
  ASSERT_EQ(grand_canal.size(), 1u);
  EXPECT_EQ(grand_canal[0].doc, 2u);
  EXPECT_TRUE(index_.PhrasePostings({"zzz", "venic"}).empty());
}

TEST(IndexStopwordPositionTest, PhraseMatchesAcrossStopwords) {
  // Stopping compacts positions on both the document and the query side,
  // so the title "bridge of sighs" matches documents containing it with or
  // without the inner stopword — but not with an interposed content word.
  SearchEngine engine;
  ASSERT_TRUE(engine.AddDocument("d0", "the bridge of sighs in venice").ok());
  ASSERT_TRUE(engine.AddDocument("d1", "bridge sighs venice").ok());
  ASSERT_TRUE(
      engine.AddDocument("d2", "bridge near sighs venice").ok());
  ASSERT_TRUE(engine.Finalize().ok());
  auto results = engine.SearchTitles({"bridge of sighs"}, 3);
  ASSERT_TRUE(results.ok()) << results.status();
  std::set<DocId> docs;
  for (const ScoredDoc& sd : *results) docs.insert(sd.doc);
  EXPECT_TRUE(docs.count(0));
  EXPECT_TRUE(docs.count(1));
  // d2 has "near" between the words: phrase tf 0, but its terms still make
  // it a candidate — it must rank below the phrase matches.
  EXPECT_NE(results->front().doc, 2u);
  EXPECT_NE((*results)[1].doc, 2u);
}

// ------------------------------------------------------------ Query parser

TEST(QueryParserTest, ParsesTermPhraseCombine) {
  auto q = ParseQuery("#combine(venice #1(grand canal) gondola)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->kind, QueryNode::Kind::kCombine);
  ASSERT_EQ(q->children.size(), 3u);
  EXPECT_EQ(q->children[0].kind, QueryNode::Kind::kTerm);
  EXPECT_EQ(q->children[0].term, "venice");
  EXPECT_EQ(q->children[1].kind, QueryNode::Kind::kPhrase);
  ASSERT_EQ(q->children[1].phrase.size(), 2u);
  EXPECT_EQ(q->children[1].phrase[1], "canal");
}

TEST(QueryParserTest, BareTermsImplicitlyCombined) {
  auto q = ParseQuery("graffiti street art");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryNode::Kind::kCombine);
  EXPECT_EQ(q->children.size(), 3u);
}

TEST(QueryParserTest, SingleTermStaysTerm) {
  auto q = ParseQuery("venice");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryNode::Kind::kTerm);
}

TEST(QueryParserTest, SingleWordPhraseCollapses) {
  auto q = ParseQuery("#1(venice)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, QueryNode::Kind::kTerm);
}

TEST(QueryParserTest, NestedCombine) {
  auto q = ParseQuery("#combine(#combine(a b) c)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->children.size(), 2u);
  EXPECT_EQ(q->children[0].kind, QueryNode::Kind::kCombine);
}

TEST(QueryParserTest, Lowercases) {
  auto q = ParseQuery("#1(Grand CANAL)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->phrase[0], "grand");
  EXPECT_EQ(q->phrase[1], "canal");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("#combine()").ok());
  EXPECT_FALSE(ParseQuery("#1()").ok());
  EXPECT_FALSE(ParseQuery("#unknown(a)").ok());
  EXPECT_FALSE(ParseQuery("#combine(a").ok());
}

TEST(QueryNodeTest, ToStringRoundTrip) {
  auto q = ParseQuery("#combine(venice #1(grand canal))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), "#combine(venice #1(grand canal))");
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ToString(), q->ToString());
}

TEST(QueryNodeTest, CombinePhrasesBuildsTitleQuery) {
  QueryNode q = QueryNode::CombinePhrases({"Venice", "Grand Canal", ""});
  ASSERT_EQ(q.kind, QueryNode::Kind::kCombine);
  ASSERT_EQ(q.children.size(), 2u);
  EXPECT_EQ(q.children[0].kind, QueryNode::Kind::kTerm);
  EXPECT_EQ(q.children[1].kind, QueryNode::Kind::kPhrase);
}

// ----------------------------------------------------------------- Scoring

class ScoringTest : public ::testing::Test {
 protected:
  ScoringTest() {
    // Exact-phrase discrimination setup: doc0 has the phrase, doc1 has the
    // words scattered, doc2 is unrelated.
    EXPECT_TRUE(engine_.AddDocument("d0", "the grand canal at dusk").ok());
    EXPECT_TRUE(
        engine_.AddDocument("d1", "a canal and a grand palace").ok());
    EXPECT_TRUE(engine_.AddDocument("d2", "mountain glacier summit").ok());
    EXPECT_TRUE(engine_.Finalize().ok());
  }
  SearchEngine engine_;
};

TEST_F(ScoringTest, ExactPhraseBeatsScatteredWords) {
  auto results = engine_.SearchText("#1(grand canal)", 3);
  ASSERT_TRUE(results.ok());
  ASSERT_GE(results->size(), 1u);
  EXPECT_EQ(results->front().doc, 0u);
  // d1 contains both words but not adjacent → no phrase match.
  for (const ScoredDoc& sd : *results) {
    EXPECT_NE(sd.doc, 2u);
  }
}

TEST_F(ScoringTest, TermQueryRanksByTf) {
  SearchEngine engine;
  ASSERT_TRUE(engine.AddDocument("a", "canal canal canal").ok());
  ASSERT_TRUE(engine.AddDocument("b", "canal boat boat").ok());
  ASSERT_TRUE(engine.Finalize().ok());
  auto results = engine.SearchText("canal", 2);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ(results->front().doc, 0u);
  EXPECT_GT((*results)[0].score, (*results)[1].score);
}

TEST_F(ScoringTest, CombineAveragesAcrossLeaves) {
  // Doc matching both leaves must outrank docs matching one.
  SearchEngine engine;
  ASSERT_TRUE(engine.AddDocument("both", "gondola venice").ok());
  ASSERT_TRUE(engine.AddDocument("one", "gondola mountain").ok());
  ASSERT_TRUE(engine.Finalize().ok());
  auto results = engine.SearchText("#combine(gondola venice)", 2);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->front().doc, 0u);
}

TEST_F(ScoringTest, PureStopwordQueryFails) {
  auto results = engine_.SearchText("#combine(the of)", 5);
  EXPECT_TRUE(results.status().IsInvalidArgument());
}

TEST_F(ScoringTest, DeterministicTieBreakByDocId) {
  SearchEngine engine;
  ASSERT_TRUE(engine.AddDocument("x", "canal").ok());
  ASSERT_TRUE(engine.AddDocument("y", "canal").ok());
  ASSERT_TRUE(engine.Finalize().ok());
  auto results = engine.SearchText("canal", 2);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_LT(results->front().doc, results->back().doc);
}

TEST_F(ScoringTest, TopKTruncates) {
  auto results = engine_.SearchText("canal", 1);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

// Regression for the serving layer's determinism contract (scorer.h): a
// large all-tied candidate set must rank by ascending DocId, stay stable
// across repeated evaluations, and cut deterministically when the top-k
// boundary lands inside the tie group.  Parallel-vs-sequential ranking
// equality in serve_test.cc is only well-defined because of this.
TEST_F(ScoringTest, TieBreakIsStableAcrossRepeatedEvaluations) {
  SearchEngine engine;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        engine.AddDocument("doc" + std::to_string(i), "gondola pier").ok());
  }
  ASSERT_TRUE(engine.Finalize().ok());
  auto first = engine.SearchText("gondola", 25);  // cut inside the tie
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 25u);
  for (size_t i = 1; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].score, (*first)[i - 1].score);
    EXPECT_GT((*first)[i].doc, (*first)[i - 1].doc);
  }
  for (int round = 0; round < 3; ++round) {
    auto again = engine.SearchText("gondola", 25);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *first) << "round " << round;
  }
}

TEST(SearchEngineTest, LifecycleErrors) {
  SearchEngine engine;
  EXPECT_TRUE(engine.SearchText("x", 5).status().IsInvalidArgument());
  EXPECT_TRUE(engine.Finalize().IsInvalidArgument());  // no docs
  ASSERT_TRUE(engine.AddDocument("d", "text").ok());
  ASSERT_TRUE(engine.Finalize().ok());
  EXPECT_TRUE(engine.AddDocument("late", "x").status().IsInvalidArgument());
  EXPECT_TRUE(engine.Finalize().IsInvalidArgument());  // double finalize
}

// -------------------------------------------------------------- Evaluation

class EvalTest : public ::testing::Test {
 protected:
  // Ranked docs 0..9; relevant = {0, 2, 4, 100}.
  EvalTest() {
    for (DocId d = 0; d < 10; ++d) {
      results_.push_back({d, 10.0 - d});
    }
    relevant_ = {0, 2, 4, 100};
  }
  std::vector<ScoredDoc> results_;
  RelevantSet relevant_;
};

TEST_F(EvalTest, PrecisionAtR) {
  EXPECT_DOUBLE_EQ(PrecisionAtR(results_, relevant_, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtR(results_, relevant_, 5), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(PrecisionAtR(results_, relevant_, 10), 0.3);
  // Missing ranks count against the denominator (paper definition).
  EXPECT_DOUBLE_EQ(PrecisionAtR(results_, relevant_, 15), 3.0 / 15.0);
  EXPECT_DOUBLE_EQ(PrecisionAtR(results_, relevant_, 0), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtR({}, relevant_, 5), 0.0);
}

TEST_F(EvalTest, Equation1AveragesCutoffs) {
  double expected =
      (1.0 + 3.0 / 5.0 + 3.0 / 10.0 + 3.0 / 15.0) / 4.0;
  EXPECT_DOUBLE_EQ(AverageTopRPrecision(results_, relevant_), expected);
  EXPECT_DOUBLE_EQ(
      AverageTopRPrecision(results_, relevant_, {1}), 1.0);
  EXPECT_DOUBLE_EQ(AverageTopRPrecision(results_, relevant_, {}), 0.0);
}

TEST_F(EvalTest, RecallAtR) {
  EXPECT_DOUBLE_EQ(RecallAtR(results_, relevant_, 5), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(RecallAtR(results_, {}, 5), 0.0);
}

TEST_F(EvalTest, AveragePrecision) {
  // Hits at ranks 1, 3, 5: AP = (1/1 + 2/3 + 3/5) / 4.
  double expected = (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 4.0;
  EXPECT_NEAR(AveragePrecision(results_, relevant_), expected, 1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecision(results_, {}), 0.0);
}

TEST_F(EvalTest, NdcgBounds) {
  double ndcg = NdcgAtR(results_, relevant_, 10);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0);
  // Perfect ranking of a single relevant doc.
  std::vector<ScoredDoc> perfect = {{5, 1.0}};
  EXPECT_DOUBLE_EQ(NdcgAtR(perfect, {5}, 1), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtR(perfect, {}, 5), 0.0);
}

TEST(PaperCutoffsTest, MatchesPaper) {
  const auto& r = PaperRankCutoffs();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[3], 15u);
}

}  // namespace
}  // namespace wqe::ir
