/// \file ball_prune_test.cc
/// \brief Unit tests for the semijoin-guided ball-pruning kernel
/// (graph/ball_prune.h): peeling fixed point, distance filter, the
/// iterated BFS ↔ re-peel interaction, and degenerate balls.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/ball_prune.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/undirected_view.h"
#include "obs/metrics.h"

namespace wqe::graph {
namespace {

PropertyGraph ArticleGraph(uint32_t n) {
  PropertyGraph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  return g;
}

std::vector<uint32_t> AliveLocals(const std::vector<uint64_t>& bits,
                                  uint32_t n) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < n; ++i) {
    if (BallPruneAlive(bits.data(), i)) out.push_back(i);
  }
  return out;
}

TEST(BallPruneTest, PathGraphPeelsToNothing) {
  // 0 - 1 - 2 - 3: every node ends up degree-deficient as the leaves
  // cascade inward; no cycle exists, so nothing may survive.
  PropertyGraph g = ArticleGraph(4);
  for (uint32_t i = 0; i + 1 < 4; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 1, EdgeKind::kLink).ok());
  }
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {}, 5, &alive);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_alive, 0u);
  EXPECT_TRUE(AliveLocals(alive, 4).empty());
  EXPECT_DOUBLE_EQ(stats.survivor_fraction(), 0.0);
}

TEST(BallPruneTest, TriangleWithTailKeepsOnlyTriangle) {
  // Triangle 0-1-2 with tail 2-3-4: the tail peels (4 is a leaf, then 3),
  // the triangle's effective degrees stay at 2.
  PropertyGraph g = ArticleGraph(5);
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {}, 5, &alive);
  EXPECT_EQ(stats.num_alive, 3u);
  EXPECT_EQ(AliveLocals(alive, 5), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_TRUE(stats.pruned_any());
}

TEST(BallPruneTest, ParallelEdgePairSurvivesPeeling) {
  // Mutual links 0 <-> 1 are a length-2 cycle: multiplicity 2 counts as
  // two cycle-usable slots, so neither node peels; pendant 2 does.
  PropertyGraph g = ArticleGraph(3);
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {}, 5, &alive);
  EXPECT_EQ(AliveLocals(alive, 3), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(stats.num_alive, 2u);
}

TEST(BallPruneTest, DistanceFilterIteratesWithRepeeling) {
  // Seed s=0 with a mutual-link partner p=1 (a 2-cycle), chain
  // s-a-t1, triangle t1-t2-t3.  At L=4 the BFS radius is 2: t2 and t3
  // sit at distance 3 and die, which breaks the triangle and cascades
  // the re-peel through t1 and a — only {s, p} can touch a cycle of
  // length <= 4 through s.
  PropertyGraph g = ArticleGraph(6);  // 0=s 1=p 2=a 3=t1 4=t2 5=t3
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(5, 3, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);

  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {0}, 4, &alive);
  EXPECT_EQ(AliveLocals(alive, 6), (std::vector<uint32_t>{0, 1}));
  EXPECT_GE(stats.rounds, 2u);  // the second BFS proves the fixed point

  // At L=5 nothing changes (radius 2 still misses t2/t3); at L=6 the
  // radius reaches distance 3 and the triangle would survive — but the
  // enumerator's bound is 5, so only L <= 5 matters in production.
  BallPruneStats wide = PruneBall(view, {0}, 6, &alive);
  EXPECT_EQ(wide.num_alive, 6u);
}

TEST(BallPruneTest, SeededFilterKeepsUnseededCycleOut) {
  // Two disjoint triangles; only the one containing the seed survives.
  PropertyGraph g = ArticleGraph(6);
  for (uint32_t base : {0u, 3u}) {
    ASSERT_TRUE(g.AddEdge(base, base + 1, EdgeKind::kLink).ok());
    ASSERT_TRUE(g.AddEdge(base + 1, base + 2, EdgeKind::kLink).ok());
    ASSERT_TRUE(g.AddEdge(base + 2, base, EdgeKind::kLink).ok());
  }
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {1}, 5, &alive);
  EXPECT_EQ(AliveLocals(alive, 6), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(stats.num_alive, 3u);
}

TEST(BallPruneTest, EmptyBall) {
  PropertyGraph g;
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  std::vector<uint64_t> alive = {0xdeadbeef};  // must be cleared
  BallPruneStats stats = PruneBall(view, {}, 5, &alive);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_alive, 0u);
  EXPECT_TRUE(alive.empty());
  EXPECT_DOUBLE_EQ(stats.survivor_fraction(), 1.0);  // nothing was pruned
}

TEST(BallPruneTest, AllQueryNodeBall) {
  // Every node is a seed and every node is on a triangle: nothing dies,
  // and the subset view exercises the global -> local seed mapping.
  PropertyGraph g = ArticleGraph(4);
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr, {0, 1, 2});
  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {0, 1, 2}, 5, &alive);
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_alive, 3u);
  EXPECT_FALSE(stats.pruned_any());
}

TEST(BallPruneTest, SeedsOutsideViewKillEverything) {
  // Seeds were requested but none is in the ball: no qualifying cycle
  // can exist, so the whole ball is pruned (and enumeration with the
  // same seeds would emit nothing — identical output, zero work).
  PropertyGraph g = ArticleGraph(4);
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr, {0, 1, 2});
  std::vector<uint64_t> alive;
  BallPruneStats stats = PruneBall(view, {3}, 5, &alive);
  EXPECT_EQ(stats.num_alive, 0u);
}

TEST(BallPruneTest, SurvivorFractionExportedToGlobalRegistry) {
  PropertyGraph g = ArticleGraph(3);
  ASSERT_TRUE(g.AddEdge(0, 1, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, EdgeKind::kLink).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, EdgeKind::kLink).ok());
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  std::vector<uint64_t> alive;
  obs::Histogram* fraction = obs::MetricsRegistry::Global().GetHistogram(
      "wqe.graph.prune_survivor_fraction");
  obs::Histogram* latency =
      obs::MetricsRegistry::Global().GetHistogram("wqe.graph.prune_ms");
  const uint64_t fraction_before = fraction->count();
  const uint64_t latency_before = latency->count();
  PruneBall(view, {}, 5, &alive);
  EXPECT_EQ(fraction->count(), fraction_before + 1);
  EXPECT_EQ(latency->count(), latency_before + 1);
  const std::string json = obs::MetricsRegistry::Global().DumpJson();
  EXPECT_NE(json.find("wqe.graph.prune_survivor_fraction"),
            std::string::npos);
  EXPECT_NE(json.find("wqe.graph.prune_ms"), std::string::npos);
}

}  // namespace
}  // namespace wqe::graph
