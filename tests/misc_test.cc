/// \file misc_test.cc
/// \brief Coverage for paths the main suites leave thin: the optimizer's
/// SWAP move, logging levels, the stopwatch, and expander edge cases.

#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"

namespace wqe {
namespace {

const groundtruth::Pipeline& TinyPipeline() {
  static const groundtruth::Pipeline* kPipeline = [] {
    groundtruth::PipelineOptions options;
    options.wiki.num_domains = 8;
    options.track.num_topics = 3;
    options.track.background_docs = 60;
    auto result = groundtruth::Pipeline::Build(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->release();
  }();
  return *kPipeline;
}

TEST(XqOptimizerSwapTest, SwapEnabledNeverWorseThanDisabled) {
  const auto& p = TinyPipeline();
  groundtruth::XqOptimizerOptions no_swap;
  no_swap.enable_swap = false;
  no_swap.restarts = 1;
  groundtruth::XqOptimizerOptions with_swap;
  with_swap.enable_swap = true;
  with_swap.restarts = 1;

  for (size_t t = 0; t < p.num_topics(); ++t) {
    groundtruth::GroundTruthBuilder b1(&p, no_swap), b2(&p, with_swap);
    auto e1 = b1.BuildEntry(t);
    auto e2 = b2.BuildEntry(t);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    // SWAP only adds moves, so with identical restarts/seed it cannot end
    // strictly worse.
    EXPECT_GE(e2->xq.quality, e1->xq.quality - 1e-9) << "topic " << t;
  }
}

TEST(XqOptimizerSwapTest, MoreRestartsNeverWorse) {
  const auto& p = TinyPipeline();
  groundtruth::XqOptimizerOptions one;
  one.restarts = 1;
  one.enable_swap = false;
  groundtruth::XqOptimizerOptions three;
  three.restarts = 3;
  three.enable_swap = false;
  groundtruth::GroundTruthBuilder b1(&p, one), b3(&p, three);
  auto e1 = b1.BuildEntry(0);
  auto e3 = b3.BuildEntry(0);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e3.ok());
  EXPECT_GE(e3->xq.quality, e1->xq.quality - 1e-9);
}

TEST(LoggingTest, ThresholdSuppressesBelowLevel) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Statements below the threshold are cheap no-ops; above flush to
  // stderr.  We can only assert the level round-trips and nothing crashes.
  WQE_LOG(Debug) << "suppressed";
  WQE_LOG(Info) << "suppressed";
  WQE_LOG(Error) << "visible (expected in test output)";
  SetLogLevel(saved);
  EXPECT_EQ(GetLogLevel(), saved);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double first = watch.ElapsedMillis();
  EXPECT_GE(first, 15.0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.015);
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), first);
}

TEST(CycleExpanderEdgeTest, SingleQueryArticleStillExpands) {
  const auto& p = TinyPipeline();
  expansion::CycleExpander system(p.kb(), p.linker());
  // A bare hub title links to exactly one article.
  const auto& hub_title =
      p.kb().display_title(p.topic(0).query_articles[0]);
  auto expanded = system.Expand(hub_title);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->query_articles.size(), 1u);
  EXPECT_FALSE(expanded->feature_articles.empty());
}

TEST(CycleExpanderEdgeTest, TinyNeighborhoodCapStillWorks) {
  const auto& p = TinyPipeline();
  expansion::CycleExpanderOptions options;
  options.max_neighborhood = 5;  // barely more than the query itself
  expansion::CycleExpander system(p.kb(), p.linker(), options);
  auto expanded = system.Expand(p.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());  // may find few/no features, must not fail
}

TEST(CycleExpanderEdgeTest, MaxCyclesCapRespected) {
  const auto& p = TinyPipeline();
  expansion::CycleExpanderOptions options;
  options.max_cycles = 3;
  expansion::CycleExpander system(p.kb(), p.linker(), options);
  auto expanded = system.Expand(p.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());
  EXPECT_LE(expanded->feature_articles.size(), options.max_features);
}

TEST(CommunityEdgeTest, EmptyNeighborhoodYieldsNoFeatures) {
  const auto& p = TinyPipeline();
  expansion::CommunityOptions options;
  options.max_neighborhood = 1;
  expansion::CommunityExpansion system(p.kb(), p.linker(), options);
  auto expanded = system.Expand(p.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->feature_articles.empty());
}

TEST(PipelineEdgeTest, DocTextNeverEmpty) {
  const auto& p = TinyPipeline();
  for (const auto& doc : p.engine().store().documents()) {
    EXPECT_FALSE(doc.text.empty()) << doc.name;
  }
}

}  // namespace
}  // namespace wqe
