/// \file csr_test.cc
/// \brief The frozen `CsrGraph` snapshot: unit tests plus the
/// builder↔snapshot equivalence property suite.
///
/// The property tests pit the CSR cycle path against an *independent*
/// reference enumerator that reads the mutable `PropertyGraph` directly
/// (set-based adjacency, no CSR code involved) and assert bit-identical
/// canonical cycle sets — lengths 2–5, with and without seed filters and
/// the chordless restriction, on whole graphs and induced subsets.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/graph.h"
#include "graph/undirected_view.h"
#include "wiki/knowledge_base.h"

namespace wqe::graph {

/// Test-only backdoor (friend of CsrGraph): hands out mutable references
/// to the private CSR arrays so the invariant tests can corrupt a frozen
/// snapshot and prove `CheckInvariants` catches each violation class.
/// The graph reads through spans bound to the heap-owned `CsrArrays`
/// block, so in-place element mutation through these references is
/// visible to it; resizing would dangle the spans — the tests only
/// swap/assign elements.
struct CsrGraphTestPeer {
  static std::vector<uint64_t>& out_offsets(CsrGraph& g) {
    return g.owned_->out_offsets;
  }
  static std::vector<NodeId>& out_targets(CsrGraph& g) {
    return g.owned_->out_targets;
  }
  static std::vector<NodeId>& redirect_target(CsrGraph& g) {
    return g.owned_->redirect_target;
  }
  static std::vector<NodeId>& und_neighbors(CsrGraph& g) {
    return g.owned_->und_neighbors;
  }
  static std::vector<uint32_t>& und_mult(CsrGraph& g) {
    return g.owned_->und_mult;
  }
};

namespace {

/// Random article/category graph respecting the Figure 1 schema.
PropertyGraph RandomSchemaGraph(uint64_t seed, uint32_t num_articles,
                                uint32_t num_categories, uint32_t num_edges) {
  Rng rng(seed);
  PropertyGraph g;
  for (uint32_t i = 0; i < num_articles; ++i) {
    g.AddNode(NodeKind::kArticle, "a" + std::to_string(i));
  }
  for (uint32_t i = 0; i < num_categories; ++i) {
    g.AddNode(NodeKind::kCategory, "c" + std::to_string(i));
  }
  uint32_t n = num_articles + num_categories;
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t u = rng.Uniform(n);
    uint32_t v = rng.Uniform(n);
    if (u == v) continue;
    EdgeKind kind;
    if (g.IsArticle(u) && g.IsArticle(v)) {
      kind = rng.Bernoulli(0.85) ? EdgeKind::kLink : EdgeKind::kRedirect;
    } else if (g.IsArticle(u) && g.IsCategory(v)) {
      kind = EdgeKind::kBelongs;
    } else if (g.IsCategory(u) && g.IsCategory(v)) {
      kind = EdgeKind::kInside;
    } else {
      continue;  // category -> article: not in the schema
    }
    (void)g.AddEdge(u, v, kind);  // duplicates rejected, fine
  }
  return g;
}

// ------------------------------------------------------- reference model
// Independent re-implementation of the paper's cycle semantics, straight
// off the builder's edge lists: undirected multiplicity per unordered
// pair, set-based adjacency, plain recursive DFS.  Shares no code with
// the CSR path.

struct ReferenceGraph {
  std::map<NodeId, std::set<NodeId>> adj;
  std::map<std::pair<NodeId, NodeId>, uint32_t> mult;

  ReferenceGraph(const PropertyGraph& g, const std::vector<NodeId>& members) {
    std::set<NodeId> in_set(members.begin(), members.end());
    for (NodeId u : in_set) {
      for (const Edge& e : g.OutEdges(u)) {
        if (e.kind == EdgeKind::kRedirect) continue;
        if (!in_set.count(e.dst)) continue;
        adj[u].insert(e.dst);
        adj[e.dst].insert(u);
        ++mult[{std::min(u, e.dst), std::max(u, e.dst)}];
      }
    }
  }

  uint32_t Multiplicity(NodeId u, NodeId v) const {
    auto it = mult.find({std::min(u, v), std::max(u, v)});
    return it == mult.end() ? 0 : it->second;
  }

  bool HasEdge(NodeId u, NodeId v) const { return Multiplicity(u, v) > 0; }
};

struct ReferenceOptions {
  uint32_t min_length = 2;
  uint32_t max_length = 5;
  std::vector<NodeId> seeds;
  bool chordless_only = false;
};

/// All cycles in canonical global-id form: rotation starting at the cycle
/// minimum, second node smaller than the last.
std::set<std::vector<NodeId>> ReferenceCycles(const ReferenceGraph& g,
                                              const ReferenceOptions& options) {
  std::set<std::vector<NodeId>> out;
  std::set<NodeId> seed_set(options.seeds.begin(), options.seeds.end());
  auto emit = [&](const std::vector<NodeId>& path) {
    if (path.size() < options.min_length) return;
    if (!seed_set.empty()) {
      bool touches = false;
      for (NodeId v : path) touches |= seed_set.count(v) > 0;
      if (!touches) return;
    }
    if (options.chordless_only && path.size() >= 4) {
      for (size_t i = 0; i < path.size(); ++i) {
        for (size_t j = i + 2; j < path.size(); ++j) {
          if (i == 0 && j == path.size() - 1) continue;
          if (g.HasEdge(path[i], path[j])) return;
        }
      }
    }
    out.insert(path);
  };

  // Length 2: parallel pairs.
  if (options.min_length <= 2) {
    for (const auto& [pair, count] : g.mult) {
      if (count >= 2) emit({pair.first, pair.second});
    }
  }
  // Length >= 3: DFS from each start, only through larger ids, both
  // orientations generated and filtered down to the canonical one.
  std::vector<NodeId> path;
  std::set<NodeId> on_path;
  std::function<void(NodeId, NodeId)> dfs = [&](NodeId start, NodeId u) {
    auto it = g.adj.find(u);
    if (it == g.adj.end()) return;
    for (NodeId v : it->second) {
      if (v == start && path.size() >= 3 && path[1] < path.back()) {
        emit(path);
      }
      if (v <= start || on_path.count(v)) continue;
      if (path.size() >= options.max_length) continue;
      path.push_back(v);
      on_path.insert(v);
      dfs(start, v);
      on_path.erase(v);
      path.pop_back();
    }
  };
  for (const auto& [u, neighbors] : g.adj) {
    (void)neighbors;
    path = {u};
    on_path = {u};
    dfs(u, u);
  }
  return out;
}

/// CSR-side cycles in the same canonical global form.  Every property
/// input also cross-checks the parallel enumerator (adversarial size-1
/// chunks, more workers than cores) against the sequential stream:
/// same cycles, same order.
std::set<std::vector<NodeId>> CsrCycles(const CsrGraph& csr,
                                        const UndirectedView& view,
                                        const ReferenceOptions& options) {
  (void)csr;
  CycleEnumerationOptions enum_options;
  enum_options.min_length = options.min_length;
  enum_options.max_length = options.max_length;
  enum_options.seeds = options.seeds;
  enum_options.chordless_only = options.chordless_only;
  CycleEnumerator enumerator(view);
  std::vector<Cycle> sequential = enumerator.Enumerate(enum_options);

  CycleEnumerationOptions parallel_options = enum_options;
  parallel_options.num_threads = 4;
  parallel_options.parallel_chunk_starts = 1;
  std::vector<Cycle> parallel =
      enumerator.ParallelEnumerate(parallel_options);
  EXPECT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < std::min(sequential.size(), parallel.size()); ++i) {
    EXPECT_EQ(sequential[i].nodes, parallel[i].nodes)
        << "parallel merge diverged at cycle " << i;
  }

  std::set<std::vector<NodeId>> out;
  for (const Cycle& c : sequential) {
    // Locals ascend with globals, so the local-canonical rotation is
    // already the global-canonical one; this insert must never collide.
    EXPECT_TRUE(out.insert(c.nodes).second) << "duplicate cycle emitted";
  }
  return out;
}

std::vector<NodeId> AllNodes(const PropertyGraph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) nodes[i] = i;
  return nodes;
}

class CsrEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrEquivalenceProperty, WholeGraphCycleSetsBitIdentical) {
  PropertyGraph g = RandomSchemaGraph(GetParam(), 18, 7, 110);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  ReferenceGraph ref(g, AllNodes(g));

  ReferenceOptions options;  // lengths 2..5, no filters
  EXPECT_EQ(ReferenceCycles(ref, options), CsrCycles(csr, view, options));
}

TEST_P(CsrEquivalenceProperty, SeededAndChordlessCycleSetsBitIdentical) {
  PropertyGraph g = RandomSchemaGraph(GetParam(), 16, 6, 95);
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  ReferenceGraph ref(g, AllNodes(g));

  ReferenceOptions seeded;
  seeded.seeds = {0, 3, 7};
  EXPECT_EQ(ReferenceCycles(ref, seeded), CsrCycles(csr, view, seeded));

  ReferenceOptions chordless;
  chordless.min_length = 4;
  chordless.chordless_only = true;
  EXPECT_EQ(ReferenceCycles(ref, chordless),
            CsrCycles(csr, view, chordless));

  ReferenceOptions bounded;
  bounded.min_length = 3;
  bounded.max_length = 4;
  EXPECT_EQ(ReferenceCycles(ref, bounded), CsrCycles(csr, view, bounded));
}

TEST_P(CsrEquivalenceProperty, InducedSubsetCycleSetsBitIdentical) {
  PropertyGraph g = RandomSchemaGraph(GetParam(), 20, 8, 130);
  CsrGraph csr = CsrGraph::Freeze(g);
  // Every third node, deliberately passed unsorted and with duplicates.
  std::vector<NodeId> members;
  for (NodeId n = 0; n < g.num_nodes(); n += 3) members.push_back(n);
  std::reverse(members.begin(), members.end());
  members.push_back(members.front());
  UndirectedView view(csr, members);
  ReferenceGraph ref(g, members);

  ReferenceOptions options;
  EXPECT_EQ(ReferenceCycles(ref, options), CsrCycles(csr, view, options));
}

TEST_P(CsrEquivalenceProperty, SubsetViewMatchesReferenceAdjacency) {
  PropertyGraph g = RandomSchemaGraph(GetParam(), 22, 8, 120);
  CsrGraph csr = CsrGraph::Freeze(g);
  std::vector<NodeId> members;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (n % 2 == 0) members.push_back(n);
  }
  UndirectedView view(csr, members);
  ReferenceGraph ref(g, members);

  ASSERT_EQ(view.num_nodes(), members.size());
  for (uint32_t lu = 0; lu < view.num_nodes(); ++lu) {
    NodeId gu = view.ToGlobal(lu);
    auto it = ref.adj.find(gu);
    size_t want_degree = it == ref.adj.end() ? 0 : it->second.size();
    ASSERT_EQ(view.Degree(lu), want_degree) << "node " << gu;
    for (uint32_t lv : view.Neighbors(lu)) {
      NodeId gv = view.ToGlobal(lv);
      // Multiplicities must agree pair-by-pair (parallel-edge counts).
      EXPECT_EQ(view.Multiplicity(lu, lv), ref.Multiplicity(gu, gv));
      EXPECT_TRUE(view.HasEdge(lv, lu));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalenceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42, 77,
                                           123));

// ------------------------------------------------------------ unit tests

PropertyGraph TinyWiki() {
  PropertyGraph g;
  NodeId a0 = g.AddNode(NodeKind::kArticle, "a0");
  NodeId a1 = g.AddNode(NodeKind::kArticle, "a1");
  NodeId a2 = g.AddNode(NodeKind::kArticle, "a2");
  NodeId c0 = g.AddNode(NodeKind::kCategory, "c0");
  NodeId c1 = g.AddNode(NodeKind::kCategory, "c1");
  NodeId r = g.AddNode(NodeKind::kArticle, "r");
  EXPECT_TRUE(g.AddEdge(a0, a1, EdgeKind::kLink).ok());
  EXPECT_TRUE(g.AddEdge(a1, a0, EdgeKind::kLink).ok());
  EXPECT_TRUE(g.AddEdge(a0, c0, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(a1, c0, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(a2, c1, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(c1, c0, EdgeKind::kInside).ok());
  EXPECT_TRUE(g.AddEdge(r, a0, EdgeKind::kRedirect).ok());
  return g;
}

TEST(CsrGraphTest, MirrorsBuilderCountsAndKinds) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  EXPECT_EQ(csr.num_nodes(), g.num_nodes());
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(csr.kind(n), g.kind(n));
    EXPECT_EQ(csr.OutDegree(n), g.OutDegree(n));
    EXPECT_EQ(csr.InDegree(n), g.InDegree(n));
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(csr.CountEdges(static_cast<EdgeKind>(k)),
              g.CountEdges(static_cast<EdgeKind>(k)));
  }
  EXPECT_EQ(csr.CountNodes(NodeKind::kArticle), 4u);
  EXPECT_EQ(csr.CountNodes(NodeKind::kCategory), 2u);
}

TEST(CsrGraphTest, RowsSortedAndHasEdgeBinarySearches) {
  PropertyGraph g = RandomSchemaGraph(99, 25, 10, 160);
  CsrGraph csr = CsrGraph::Freeze(g);
  for (NodeId n = 0; n < csr.num_nodes(); ++n) {
    auto out = csr.OutTargets(n);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    auto in = csr.InSources(n);
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
    auto und = csr.UndNeighbors(n);
    EXPECT_TRUE(std::is_sorted(und.begin(), und.end()));
    EXPECT_EQ(und.size(), csr.UndMultiplicities(n).size());
  }
  // HasEdge agrees with the builder for every (src, dst, kind) probe.
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      for (int k = 0; k < 4; ++k) {
        EdgeKind kind = static_cast<EdgeKind>(k);
        EXPECT_EQ(csr.HasEdge(u, v, kind), g.HasEdge(u, v, kind));
      }
    }
  }
}

TEST(CsrGraphTest, RedirectTargetPrecomputed) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  EXPECT_EQ(csr.RedirectTarget(5), 0u);  // r -> a0
  EXPECT_EQ(csr.RedirectTarget(0), kInvalidNode);
  EXPECT_EQ(csr.RedirectTarget(3), kInvalidNode);  // category
}

TEST(CsrGraphTest, UndirectedExcludesRedirectsAndCountsParallels) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  // r participates only via redirect: no undirected structural edges.
  EXPECT_EQ(csr.UndDegree(5), 0u);
  EXPECT_EQ(csr.UndMultiplicity(5, 0), 0u);
  // Mutual links a0 <-> a1: one pair, multiplicity 2.
  EXPECT_EQ(csr.UndMultiplicity(0, 1), 2u);
  EXPECT_EQ(csr.UndMultiplicity(1, 0), 2u);
  EXPECT_EQ(csr.UndMultiplicity(0, 3), 1u);
  EXPECT_FALSE(csr.HasUndEdge(0, 2));
  // Pairs: (a0,a1), (a0,c0), (a1,c0), (a2,c1), (c1,c0).
  EXPECT_EQ(csr.num_und_pairs(), 5u);
}

TEST(CsrGraphTest, EmptyGraph) {
  PropertyGraph g;
  CsrGraph csr = CsrGraph::Freeze(g);
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.num_und_pairs(), 0u);
  EXPECT_FALSE(csr.HasEdge(0, 0, EdgeKind::kLink));
}

TEST(KnowledgeBaseFreezeTest, FreezeIsOneWay) {
  wiki::KnowledgeBase kb;
  auto a = kb.AddArticle("venice");
  auto b = kb.AddArticle("gondola");
  auto c = kb.AddCategory("cities");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  WQE_CHECK_OK(kb.AddLink(*a, *b));
  WQE_CHECK_OK(kb.AddBelongs(*a, *c));
  EXPECT_FALSE(kb.frozen());

  const CsrGraph& csr = kb.Freeze();
  EXPECT_TRUE(kb.frozen());
  EXPECT_EQ(&kb.Freeze(), &csr);  // idempotent
  EXPECT_EQ(csr.num_nodes(), 3u);

  // Every mutator fails once frozen.
  EXPECT_TRUE(kb.AddArticle("lagoon").status().IsInvalidArgument());
  EXPECT_TRUE(kb.AddCategory("canals").status().IsInvalidArgument());
  EXPECT_TRUE(kb.AddRedirect("venezia", *a).status().IsInvalidArgument());
  EXPECT_TRUE(kb.AddLink(*b, *a).IsInvalidArgument());
  EXPECT_TRUE(kb.AddBelongs(*b, *c).IsInvalidArgument());
  EXPECT_TRUE(kb.AddInside(*c, *c).IsInvalidArgument());

  // Frozen fast paths agree with the builder-backed slow paths.
  EXPECT_EQ(kb.ResolveRedirect(*a), *a);
  EXPECT_FALSE(kb.IsRedirect(*a));
  EXPECT_EQ(kb.LinkedFrom(*a), std::vector<NodeId>{*b});
  EXPECT_EQ(kb.LinkingTo(*b), std::vector<NodeId>{*a});
  EXPECT_EQ(kb.CategoriesOf(*a), std::vector<NodeId>{*c});
}

TEST(KnowledgeBaseFreezeTest, FrozenStructuralReadsMatchUnfrozen) {
  auto build = [] {
    wiki::KnowledgeBase kb;
    NodeId a = *kb.AddArticle("a");
    NodeId b = *kb.AddArticle("b");
    NodeId c = *kb.AddArticle("c");
    NodeId cat = *kb.AddCategory("cat");
    NodeId r = *kb.AddRedirect("a alias", a);
    WQE_CHECK_OK(kb.AddLink(a, b));
    WQE_CHECK_OK(kb.AddLink(b, a));
    WQE_CHECK_OK(kb.AddLink(b, c));
    WQE_CHECK_OK(kb.AddBelongs(a, cat));
    WQE_CHECK_OK(kb.AddBelongs(b, cat));
    (void)r;
    return kb;
  };
  wiki::KnowledgeBase cold = build();
  wiki::KnowledgeBase hot = build();
  hot.Freeze();

  // List-valued accessors promise the same *set*, not the same order:
  // unfrozen reads follow insertion order, frozen reads the sorted CSR
  // rows (see the contract note in knowledge_base.h).
  auto sorted = [](std::vector<NodeId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId n = 0; n < cold.graph().num_nodes(); ++n) {
    EXPECT_EQ(cold.IsRedirect(n), hot.IsRedirect(n));
    EXPECT_EQ(cold.ResolveRedirect(n), hot.ResolveRedirect(n));
    EXPECT_EQ(sorted(cold.RedirectsOf(n)), sorted(hot.RedirectsOf(n)));
    EXPECT_EQ(sorted(cold.CategoriesOf(n)), sorted(hot.CategoriesOf(n)));
    EXPECT_EQ(sorted(cold.LinkedFrom(n)), sorted(hot.LinkedFrom(n)));
    EXPECT_EQ(sorted(cold.LinkingTo(n)), sorted(hot.LinkingTo(n)));
    // Frozen rows come back ascending — pinned, callers may rely on it.
    std::vector<NodeId> frozen_links = hot.LinkedFrom(n);
    EXPECT_TRUE(std::is_sorted(frozen_links.begin(), frozen_links.end()));
  }
  // Same reachable set for an uncapped neighborhood (visit order is
  // representation-dependent, membership is not).
  EXPECT_EQ(sorted(cold.Neighborhood({0}, 2, 0)),
            sorted(hot.Neighborhood({0}, 2, 0)));
}

// --------------------------------------------- structural invariants
// CheckInvariants is the debug-build validator Freeze runs before a
// snapshot can serve (see ci.sh's asan/tsan Debug lanes); these tests
// exercise it directly: clean on everything Freeze produces, and a
// distinct diagnostic per corrupted array.

TEST(CsrInvariantsTest, FreshSnapshotsAreClean) {
  EXPECT_TRUE(CsrGraph().CheckInvariants().ok());  // default-constructed
  CsrGraph tiny = CsrGraph::Freeze(TinyWiki());
  EXPECT_TRUE(tiny.CheckInvariants().ok());
  for (uint64_t seed : {1u, 7u, 99u}) {
    CsrGraph csr = CsrGraph::Freeze(RandomSchemaGraph(seed, 30, 10, 220));
    EXPECT_TRUE(csr.CheckInvariants().ok()) << "seed " << seed;
  }
}

TEST(CsrInvariantsTest, DetectsUnsortedRow) {
  CsrGraph csr = CsrGraph::Freeze(RandomSchemaGraph(3, 20, 8, 150));
  std::vector<NodeId>& targets = CsrGraphTestPeer::out_targets(csr);
  ASSERT_GE(targets.size(), 2u);
  // Find a row with >= 2 entries and swap its ends out of order.
  std::vector<uint64_t>& offsets = CsrGraphTestPeer::out_offsets(csr);
  for (size_t u = 0; u + 1 < offsets.size(); ++u) {
    if (offsets[u + 1] - offsets[u] >= 2 &&
        targets[offsets[u]] != targets[offsets[u + 1] - 1]) {
      std::swap(targets[offsets[u]], targets[offsets[u + 1] - 1]);
      break;
    }
  }
  Status status = csr.CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not sorted"), std::string::npos) << status;
}

TEST(CsrInvariantsTest, DetectsNonMonotoneOffsets) {
  CsrGraph csr = CsrGraph::Freeze(RandomSchemaGraph(4, 20, 8, 150));
  std::vector<uint64_t>& offsets = CsrGraphTestPeer::out_offsets(csr);
  ASSERT_GE(offsets.size(), 3u);
  offsets[1] = offsets.back() + 1;  // overshoots its successor
  EXPECT_FALSE(csr.CheckInvariants().ok());
}

TEST(CsrInvariantsTest, DetectsRedirectTableDrift) {
  CsrGraph csr = CsrGraph::Freeze(TinyWiki());  // has one redirect edge
  std::vector<NodeId>& redirect = CsrGraphTestPeer::redirect_target(csr);
  auto it = std::find_if(redirect.begin(), redirect.end(),
                         [](NodeId t) { return t != kInvalidNode; });
  ASSERT_NE(it, redirect.end());
  *it = kInvalidNode;  // table forgets an existing redirect edge
  Status status = csr.CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("redirect table"), std::string::npos)
      << status;
}

TEST(CsrInvariantsTest, DetectsAsymmetricUndirectedMultiplicity) {
  CsrGraph csr = CsrGraph::Freeze(RandomSchemaGraph(5, 20, 8, 150));
  std::vector<uint32_t>& mult = CsrGraphTestPeer::und_mult(csr);
  ASSERT_FALSE(mult.empty());
  mult.front() += 1;  // (u,v) no longer matches (v,u)
  Status status = csr.CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("asymmetric"), std::string::npos) << status;
}

TEST(CsrInvariantsTest, DetectsOutOfRangeNeighbor) {
  CsrGraph csr = CsrGraph::Freeze(RandomSchemaGraph(6, 20, 8, 150));
  std::vector<NodeId>& neighbors = CsrGraphTestPeer::und_neighbors(csr);
  ASSERT_FALSE(neighbors.empty());
  neighbors.back() = csr.num_nodes() + 17;
  EXPECT_FALSE(csr.CheckInvariants().ok());
}

#ifndef NDEBUG
// The freeze-time enforcement path: DCheckInvariants (what Freeze calls
// in Debug builds) must abort the process on a corrupted snapshot, not
// let it serve.  Death tests only mean anything where WQE_DCHECK is
// live, i.e. builds without NDEBUG — the CI tsan/asan lanes.
TEST(CsrInvariantsDeathTest, CorruptedSnapshotAbortsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CsrGraph csr = CsrGraph::Freeze(RandomSchemaGraph(8, 20, 8, 150));
  csr.DCheckInvariants();  // clean: must not abort
  std::vector<uint32_t>& mult = CsrGraphTestPeer::und_mult(csr);
  ASSERT_FALSE(mult.empty());
  mult.front() += 1;
  EXPECT_DEATH(csr.DCheckInvariants(), "asymmetric");
}
#endif  // NDEBUG

}  // namespace
}  // namespace wqe::graph
