/// \file expansion_test.cc
/// \brief Tests for the expansion systems: cycle expander and baselines.
///
/// Concrete expander classes are constructed directly only here (these
/// are their unit tests); everything else goes through the api::Engine
/// registry.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/evaluation.h"
#include "api/testbed.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"

namespace wqe::expansion {
namespace {

const api::Testbed& SmallBed() {
  static const api::Testbed* kBed = [] {
    api::TestbedOptions options;
    options.wiki.num_domains = 12;
    options.track.num_topics = 6;
    options.track.background_docs = 150;
    auto result = api::Testbed::Build(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->release();
  }();
  return *kBed;
}

TEST(NoExpansionTest, EmitsKeywordsOnly) {
  const auto& bed = SmallBed();
  NoExpansion system(bed.kb(), bed.linker());
  auto expanded = system.Expand(bed.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->feature_articles.empty());
  EXPECT_EQ(expanded->titles.size(), expanded->query_articles.size());
  EXPECT_FALSE(expanded->query.children.empty());
}

TEST(ExpanderTest, UnlinkableKeywordsFallBackToRawQuery) {
  const auto& bed = SmallBed();
  NoExpansion system(bed.kb(), bed.linker());
  auto expanded = system.Expand("zzz qqq www");
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->query_articles.empty());
  EXPECT_FALSE(expanded->query.children.empty());
  EXPECT_TRUE(system.Expand("").status().IsInvalidArgument());
}

TEST(DirectLinkTest, FeaturesAreLinkedNeighbors) {
  const auto& bed = SmallBed();
  DirectLinkExpansion system(bed.kb(), bed.linker());
  auto expanded = system.Expand(bed.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());
  EXPECT_FALSE(expanded->feature_articles.empty());
  EXPECT_LE(expanded->feature_articles.size(), 10u);
  for (graph::NodeId f : expanded->feature_articles) {
    bool linked = false;
    for (graph::NodeId q : expanded->query_articles) {
      if (bed.kb().graph().HasEdge(q, f, graph::EdgeKind::kLink)) {
        linked = true;
        break;
      }
    }
    EXPECT_TRUE(linked) << bed.kb().display_title(f);
  }
}

TEST(CommunityTest, FeaturesCloseTrianglesWithQuery) {
  const auto& bed = SmallBed();
  CommunityExpansion system(bed.kb(), bed.linker());
  auto expanded = system.Expand(bed.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());
  EXPECT_LE(expanded->feature_articles.size(), 10u);
}

TEST(CycleExpanderTest, AcceptsCycleFilters) {
  const auto& bed = SmallBed();
  CycleExpander system(bed.kb(), bed.linker());

  graph::CycleMetrics two_cycle;
  two_cycle.length = 2;
  EXPECT_TRUE(system.AcceptsCycle(two_cycle));

  graph::CycleMetrics cat_free_triangle;  // the sheep–anthrax case (Fig 8)
  cat_free_triangle.length = 3;
  cat_free_triangle.category_ratio = 0.0;
  cat_free_triangle.extra_edge_density = 1.0;
  EXPECT_FALSE(system.AcceptsCycle(cat_free_triangle));

  graph::CycleMetrics good_triangle;
  good_triangle.length = 3;
  good_triangle.category_ratio = 1.0 / 3.0;
  good_triangle.extra_edge_density = 0.0;
  EXPECT_TRUE(system.AcceptsCycle(good_triangle));  // density from len 4

  graph::CycleMetrics sparse_long;
  sparse_long.length = 5;
  sparse_long.category_ratio = 0.4;
  sparse_long.extra_edge_density = 0.1;
  EXPECT_FALSE(system.AcceptsCycle(sparse_long));

  graph::CycleMetrics dense_long = sparse_long;
  dense_long.extra_edge_density = 0.8;
  EXPECT_TRUE(system.AcceptsCycle(dense_long));

  graph::CycleMetrics all_categories;
  all_categories.length = 4;
  all_categories.category_ratio = 1.0;
  all_categories.extra_edge_density = 1.0;
  EXPECT_FALSE(system.AcceptsCycle(all_categories));  // ratio > max

  graph::CycleMetrics too_long;
  too_long.length = 6;
  too_long.category_ratio = 0.3;
  too_long.extra_edge_density = 1.0;
  EXPECT_FALSE(system.AcceptsCycle(too_long));
}

TEST(CycleExpanderTest, FindsPlantedCoreArticles) {
  const auto& bed = SmallBed();
  CycleExpander system(bed.kb(), bed.linker());
  size_t topics_with_core_hit = 0;
  for (size_t t = 0; t < bed.num_topics(); ++t) {
    auto expanded = system.Expand(bed.topic(t).keywords);
    ASSERT_TRUE(expanded.ok());
    const auto& planted = bed.topic(t).planted_good;
    size_t hits = 0;
    for (graph::NodeId f : expanded->feature_articles) {
      if (std::find(planted.begin(), planted.end(), f) != planted.end()) {
        ++hits;
      }
    }
    if (hits >= 2) ++topics_with_core_hit;
  }
  // Structure must recover planted features for most topics.
  EXPECT_GE(topics_with_core_hit, bed.num_topics() - 1);
}

TEST(CycleExpanderTest, RespectsMaxFeatures) {
  const auto& bed = SmallBed();
  CycleExpanderOptions options;
  options.max_features = 3;
  CycleExpander system(bed.kb(), bed.linker(), options);
  auto expanded = system.Expand(bed.topic(0).keywords);
  ASSERT_TRUE(expanded.ok());
  EXPECT_LE(expanded->feature_articles.size(), 3u);
}

TEST(CycleExpanderTest, DeterministicOutput) {
  const auto& bed = SmallBed();
  CycleExpander system(bed.kb(), bed.linker());
  auto a = system.Expand(bed.topic(2).keywords);
  auto b = system.Expand(bed.topic(2).keywords);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->feature_articles, b->feature_articles);
}

TEST(EvaluationTest, CycleExpansionBeatsNoExpansion) {
  const auto& bed = SmallBed();
  const auto topics = bed.EvalTopics();
  auto base_eval = api::EvaluateSystem(bed.engine(), "no-expansion", topics);
  auto cycle_eval = api::EvaluateSystem(bed.engine(), "cycle", topics);
  ASSERT_TRUE(base_eval.ok());
  ASSERT_TRUE(cycle_eval.ok());
  EXPECT_EQ(base_eval->topics, bed.num_topics());
  // The headline result: structure-guided expansion improves Equation 1.
  EXPECT_GT(cycle_eval->mean_o, base_eval->mean_o + 0.05);
  EXPECT_GT(cycle_eval->mean_precision[2], base_eval->mean_precision[2]);
  EXPECT_GT(cycle_eval->mean_features, 0.0);
  EXPECT_DOUBLE_EQ(base_eval->mean_features, 0.0);
}

TEST(EvaluationTest, CycleExpansionCompetitiveWithDirectLink) {
  const auto& bed = SmallBed();
  const auto topics = bed.EvalTopics();
  auto direct_eval = api::EvaluateSystem(bed.engine(), "direct-link", topics);
  auto cycle_eval = api::EvaluateSystem(bed.engine(), "cycle", topics);
  ASSERT_TRUE(direct_eval.ok());
  ASSERT_TRUE(cycle_eval.ok());
  // Both systems should land in the same quality regime; the ablation
  // bench (E10) reports the exact ordering for the full-size track.
  EXPECT_GE(cycle_eval->mean_o, direct_eval->mean_o - 0.1);
}

}  // namespace
}  // namespace wqe::expansion
