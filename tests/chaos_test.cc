/// \file chaos_test.cc
/// \brief Deterministic fault-injection chaos suite for the serving
/// stack.  Seeded fault schedules (`common::FaultInjector`) drive
/// randomized failures and delays through `serve::Server::Submit` and
/// `QueryBatch` while deadlines and cancellation fire mid-flight.  The
/// invariants checked on every schedule:
///
///  - no deadlock: every future becomes ready within a loose wall-clock
///    bound (the test itself would hang otherwise);
///  - no partial ranking reported as success: every OK response is
///    bit-identical to the sequential no-fault reference;
///  - every failure is attributable: an injected code, or one of the
///    lifecycle codes (DeadlineExceeded / Cancelled / ResourceExhausted);
///  - batches stay fail-atomic: a failing batch yields no responses and
///    names a failing request index;
///  - with injection disabled and no deadlines set, serving output is
///    exactly the sequential engine's (the chaos machinery is inert).
///
/// `ci.sh faults` runs this suite in Debug and again under
/// ThreadSanitizer; the seeds below push well over 200 requests through
/// the server per run.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/testbed.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "serve/server.h"

namespace wqe::serve {
namespace {

const api::Testbed& Bed() {
  static const api::Testbed* kBed = [] {
    api::TestbedOptions options;
    options.wiki.num_domains = 10;
    options.track.num_topics = 5;
    options.track.background_docs = 120;
    auto result = api::Testbed::Build(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->release();
  }();
  return *kBed;
}

/// The request mix: keywords cycle through the track topics, strategies
/// alternate, and overrides vary so batches exercise the amortized
/// expander path with more than one distinct configuration.
std::vector<api::QueryRequest> RequestMix(size_t count) {
  const api::Testbed& bed = Bed();
  std::vector<api::QueryRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    api::QueryRequest request;
    request.keywords = bed.topic(i % bed.num_topics()).keywords;
    request.expander = (i % 3 == 0) ? "direct-link" : "cycle";
    if (i % 4 == 0) request.overrides.max_features = 4;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Sequential no-fault reference for the mix, computed once.  Requests
/// carry no deadline and no token, so this is the plain engine output.
const std::vector<api::QueryResponse>& Reference(
    const std::vector<api::QueryRequest>& requests) {
  static const std::vector<api::QueryResponse>* kReference = [&requests] {
    auto result = Bed().engine().QueryBatch(requests);
    EXPECT_TRUE(result.ok()) << result.status();
    return new std::vector<api::QueryResponse>(std::move(*result));
  }();
  return *kReference;
}

bool SameRanking(const api::QueryResponse& got, const api::QueryResponse& want) {
  return got.docs == want.docs &&
         got.expansion.titles == want.expansion.titles &&
         got.expansion.feature_articles == want.expansion.feature_articles;
}

/// A failure the chaos run is allowed to surface: one of the injected
/// codes, or a lifecycle outcome of deadlines / cancellation / shedding.
bool AttributableFailure(const Status& status) {
  return status.IsInternal() || status.IsIOError() ||
         status.IsDeadlineExceeded() || status.IsCancelled() ||
         status.IsResourceExhausted();
}

constexpr auto kNoDeadlockBound = std::chrono::seconds(30);

template <typename Response>
Result<Response> MustBecomeReady(std::future<Result<Response>>& future) {
  // A future that never settles is a deadlock; fail loudly instead of
  // letting the test runner time the whole suite out.
  if (future.wait_for(kNoDeadlockBound) != std::future_status::ready) {
    ADD_FAILURE() << "request future not ready after "
                  << kNoDeadlockBound.count() << "s: serving deadlocked";
    return Status::Internal("deadlocked future");
  }
  return future.get();
}

TEST(ChaosTest, SeededFaultSchedulesPreserveServingInvariants) {
  const api::Testbed& bed = Bed();
  const std::vector<api::QueryRequest> mix = RequestMix(12);
  const std::vector<api::QueryResponse>& reference = Reference(mix);
  ASSERT_EQ(reference.size(), mix.size());

  size_t total_requests = 0;
  size_t total_failed = 0;
  for (uint64_t seed : {11u, 23u, 47u, 101u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    common::FaultSpec flaky_lookup;
    flaky_lookup.fail_probability = 0.15;
    flaky_lookup.fail_code = StatusCode::kInternal;
    flaky_lookup.delay_probability = 0.30;
    flaky_lookup.delay_ms = 1.0;
    common::FaultSpec flaky_build;
    flaky_build.fail_probability = 0.15;
    flaky_build.fail_code = StatusCode::kIOError;
    common::FaultSpec flaky_enumeration;
    flaky_enumeration.fail_probability = 0.10;
    flaky_enumeration.fail_code = StatusCode::kInternal;
    flaky_enumeration.delay_probability = 0.20;
    flaky_enumeration.delay_ms = 2.0;
    common::FaultSpec slow_dispatch;
    slow_dispatch.delay_probability = 0.30;
    slow_dispatch.delay_ms = 1.0;
    common::FaultSpec slow_chunk;
    slow_chunk.delay_probability = 0.20;
    slow_chunk.delay_ms = 1.0;
    common::FaultInjector::Global().Configure(
        seed, {{"serve.cache_lookup", flaky_lookup},
               {"serve.expander_construction", flaky_build},
               {"expansion.enumeration", flaky_enumeration},
               {"serve.pool_dispatch", slow_dispatch},
               {"graph.enumeration_chunk", slow_chunk}});

    ServerOptions options;
    options.num_threads = 3;
    options.default_deadline_ms = 0.0;
    Server server(bed.engine(), options);

    // --- a batch under fire: fail-atomic, or bit-identical throughout.
    auto CheckBatch = [&](const std::vector<api::QueryRequest>& requests) {
      auto batch = server.QueryBatch(requests);
      total_requests += requests.size();
      if (batch.ok()) {
        ASSERT_EQ(batch->size(), requests.size());
        for (size_t i = 0; i < batch->size(); ++i) {
          EXPECT_TRUE(SameRanking((*batch)[i], reference[i]))
              << "batch response " << i << " diverged from reference";
        }
      } else {
        ++total_failed;
        EXPECT_TRUE(AttributableFailure(batch.status())) << batch.status();
        EXPECT_NE(batch.status().message().find("QueryBatch request #"),
                  std::string::npos)
            << batch.status();
      }
    };
    CheckBatch(mix);

    // --- singles under fire, a few with tight deadlines and one
    // cancelled mid-flight.
    common::CancelSource source;
    std::vector<std::future<Result<api::QueryResponse>>> futures;
    std::vector<size_t> indices;
    constexpr size_t kSingles = 36;
    for (size_t i = 0; i < kSingles; ++i) {
      api::QueryRequest request = mix[i % mix.size()];
      if (i % 6 == 5) request.deadline_ms = 3.0;
      if (i == kSingles / 2) request.cancel = source.token();
      indices.push_back(i % mix.size());
      futures.push_back(server.Submit(std::move(request)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    source.RequestCancel();
    total_requests += kSingles;
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<api::QueryResponse> result =
          MustBecomeReady<api::QueryResponse>(futures[i]);
      if (result.ok()) {
        EXPECT_TRUE(SameRanking(*result, reference[indices[i]]))
            << "single " << i << " diverged from reference";
      } else {
        ++total_failed;
        EXPECT_TRUE(AttributableFailure(result.status())) << result.status();
      }
    }

    CheckBatch(mix);
    common::FaultInjector::Global().Disable();
  }

  // Four seeds x (12 + 36 + 12) = 240 requests through the server.
  EXPECT_GE(total_requests, 200u);
  // The schedules above are hot enough that some injections must land;
  // a zero here means the fault plan silently stopped evaluating.
  EXPECT_GT(total_failed, 0u);
  EXPECT_GT(common::FaultInjector::Global().injected_failures(), 0u);
}

TEST(ChaosTest, DisabledInjectionIsBitIdenticalToSequential) {
  // The inert path: no injection, no deadlines, no tokens.  Parallel
  // serving must reproduce the sequential engine bit-for-bit — the
  // robustness machinery may not perturb a healthy request stream.
  common::FaultInjector::Global().Disable();
  const api::Testbed& bed = Bed();
  const std::vector<api::QueryRequest> mix = RequestMix(12);
  const std::vector<api::QueryResponse>& reference = Reference(mix);

  ServerOptions options;
  options.num_threads = 3;
  Server server(bed.engine(), options);
  auto batch = server.QueryBatch(mix);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), reference.size());
  for (size_t i = 0; i < batch->size(); ++i) {
    EXPECT_TRUE(SameRanking((*batch)[i], reference[i])) << "request " << i;
    EXPECT_EQ((*batch)[i].expansion.query_articles,
              reference[i].expansion.query_articles)
        << "request " << i;
  }
  for (const api::QueryRequest& request : mix) {
    auto single = server.Submit(request).get();
    ASSERT_TRUE(single.ok()) << single.status();
  }
}

}  // namespace
}  // namespace wqe::serve
