/// \file graph_test.cc
/// \brief Tests for the property graph, undirected view, components and
/// triangles.

#include <gtest/gtest.h>

#include "graph/connected_components.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/triangles.h"
#include "graph/undirected_view.h"

namespace wqe::graph {
namespace {

PropertyGraph TinyWiki() {
  // a0 <-> a1 (mutual links), both belong to c0; a2 isolated article with
  // category c1; c1 inside c0; r redirect -> a0.
  PropertyGraph g;
  NodeId a0 = g.AddNode(NodeKind::kArticle, "a0");
  NodeId a1 = g.AddNode(NodeKind::kArticle, "a1");
  NodeId a2 = g.AddNode(NodeKind::kArticle, "a2");
  NodeId c0 = g.AddNode(NodeKind::kCategory, "c0");
  NodeId c1 = g.AddNode(NodeKind::kCategory, "c1");
  NodeId r = g.AddNode(NodeKind::kArticle, "r");
  EXPECT_TRUE(g.AddEdge(a0, a1, EdgeKind::kLink).ok());
  EXPECT_TRUE(g.AddEdge(a1, a0, EdgeKind::kLink).ok());
  EXPECT_TRUE(g.AddEdge(a0, c0, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(a1, c0, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(a2, c1, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(c1, c0, EdgeKind::kInside).ok());
  EXPECT_TRUE(g.AddEdge(r, a0, EdgeKind::kRedirect).ok());
  return g;
}

TEST(PropertyGraphTest, NodeAccessors) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "venice");
  NodeId c = g.AddNode(NodeKind::kCategory, "cities");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.IsArticle(a));
  EXPECT_TRUE(g.IsCategory(c));
  EXPECT_EQ(g.label(a), "venice");
  EXPECT_EQ(g.CountNodes(NodeKind::kArticle), 1u);
}

TEST(PropertyGraphTest, SchemaEnforced) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  NodeId c = g.AddNode(NodeKind::kCategory, "c");
  NodeId d = g.AddNode(NodeKind::kCategory, "d");
  // Valid combinations.
  EXPECT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  EXPECT_TRUE(g.AddEdge(a, c, EdgeKind::kBelongs).ok());
  EXPECT_TRUE(g.AddEdge(c, d, EdgeKind::kInside).ok());
  // Invalid combinations.
  EXPECT_TRUE(g.AddEdge(a, c, EdgeKind::kLink).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(c, a, EdgeKind::kBelongs).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(a, b, EdgeKind::kBelongs).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(a, d, EdgeKind::kInside).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(c, a, EdgeKind::kRedirect).IsInvalidArgument());
}

TEST(PropertyGraphTest, RejectsSelfLoopsAndDuplicates) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  NodeId b = g.AddNode(NodeKind::kArticle, "b");
  EXPECT_TRUE(g.AddEdge(a, a, EdgeKind::kLink).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).ok());
  EXPECT_TRUE(g.AddEdge(a, b, EdgeKind::kLink).IsAlreadyExists());
  // Different kind between same endpoints is fine.
  EXPECT_TRUE(g.AddEdge(a, b, EdgeKind::kRedirect).ok());
}

TEST(PropertyGraphTest, OutOfRangeNode) {
  PropertyGraph g;
  NodeId a = g.AddNode(NodeKind::kArticle, "a");
  EXPECT_TRUE(g.AddEdge(a, 99, EdgeKind::kLink).IsOutOfRange());
  EXPECT_TRUE(g.CheckNode(99).IsOutOfRange());
  EXPECT_TRUE(g.CheckNode(a).ok());
}

TEST(PropertyGraphTest, InOutEdgesAndCounts) {
  PropertyGraph g = TinyWiki();
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.CountEdges(EdgeKind::kLink), 2u);
  EXPECT_EQ(g.CountEdges(EdgeKind::kBelongs), 3u);
  EXPECT_EQ(g.CountEdges(EdgeKind::kInside), 1u);
  EXPECT_EQ(g.CountEdges(EdgeKind::kRedirect), 1u);
  EXPECT_EQ(g.OutDegree(0), 2u);  // a0: link a1 + belongs c0
  EXPECT_EQ(g.InDegree(0), 2u);   // from a1 link, r redirect
}

TEST(UndirectedViewTest, ExcludesRedirectsByDefault) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  // r (node 5) participates only via redirect — degree 0 in the view.
  EXPECT_EQ(view.Degree(view.ToLocal(5)), 0u);
  UndirectedViewOptions options;
  options.include_redirects = true;
  UndirectedView with_redirects(csr, options);
  EXPECT_EQ(with_redirects.Degree(with_redirects.ToLocal(5)), 1u);
}

TEST(UndirectedViewTest, MultiplicityCountsParallelEdges) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  uint32_t a0 = view.ToLocal(0), a1 = view.ToLocal(1);
  EXPECT_EQ(view.Multiplicity(a0, a1), 2u);  // mutual links
  uint32_t c0 = view.ToLocal(3);
  EXPECT_EQ(view.Multiplicity(a0, c0), 1u);
  EXPECT_EQ(view.Multiplicity(a0, view.ToLocal(2)), 0u);
}

TEST(UndirectedViewTest, InducedSubsetOnlySeesMembers) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr, {0, 1});  // just the two articles
  EXPECT_EQ(view.num_nodes(), 2u);
  EXPECT_EQ(view.num_undirected_edges(), 1u);
  EXPECT_EQ(view.ToLocal(3), UINT32_MAX);
}

TEST(UndirectedViewTest, NeighborsSortedAndDeduped) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  const auto& neigh = view.Neighbors(view.ToLocal(0));
  EXPECT_TRUE(std::is_sorted(neigh.begin(), neigh.end()));
  // a0's neighbors: a1 (mutual collapsed to one) and c0.
  EXPECT_EQ(neigh.size(), 2u);
}

TEST(ConnectedComponentsTest, FindsComponentsOrderedBySize) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  ComponentsResult cc = ConnectedComponents(view);
  // Components: {a0,a1,c0,c1,a2} (c1 inside c0 connects a2's category) and
  // {r} alone.
  EXPECT_EQ(cc.num_components(), 2u);
  EXPECT_EQ(cc.size[0], 5u);
  EXPECT_EQ(cc.size[1], 1u);
  EXPECT_EQ(cc.LargestComponent().size(), 5u);
}

TEST(ConnectedComponentsTest, EmptyView) {
  PropertyGraph g;
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  ComponentsResult cc = ConnectedComponents(view);
  EXPECT_EQ(cc.num_components(), 0u);
  EXPECT_TRUE(cc.LargestComponent().empty());
}

TEST(TrianglesTest, CountsTriangleThroughCategory) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  TriangleStats stats = CountTriangles(view);
  // Triangle: a0 - a1 - c0.
  EXPECT_EQ(stats.triangle_count, 1u);
  EXPECT_EQ(stats.nodes_in_triangles, 3u);
  EXPECT_NEAR(stats.tpr, 3.0 / 6.0, 1e-12);
}

TEST(TrianglesTest, TreeIsTriangleFree) {
  // Pure category tree: no triangles (the paper's observation).
  PropertyGraph g;
  std::vector<NodeId> cats;
  for (int i = 0; i < 7; ++i) {
    cats.push_back(g.AddNode(NodeKind::kCategory, "c" + std::to_string(i)));
  }
  for (int i = 1; i < 7; ++i) {
    ASSERT_TRUE(g.AddEdge(cats[i], cats[(i - 1) / 2], EdgeKind::kInside).ok());
  }
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  TriangleStats stats = CountTriangles(view);
  EXPECT_EQ(stats.triangle_count, 0u);
  EXPECT_DOUBLE_EQ(stats.tpr, 0.0);
}

TEST(TrianglesTest, RestrictedTpr) {
  PropertyGraph g = TinyWiki();
  CsrGraph csr = CsrGraph::Freeze(g);
  UndirectedView view(csr);
  // Restricted to the triangle's nodes: TPR 1. Restricted to {a2}: 0.
  EXPECT_DOUBLE_EQ(TriangleParticipationRatio(
                       view, {view.ToLocal(0), view.ToLocal(1),
                              view.ToLocal(3)}),
                   1.0);
  EXPECT_DOUBLE_EQ(TriangleParticipationRatio(view, {view.ToLocal(2)}), 0.0);
}

TEST(InduceTest, PreservesKindsLabelsAndEdges) {
  PropertyGraph g = TinyWiki();
  InducedSubgraph sub = Induce(g, {0, 1, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  // Edges among {a0, a1, c0}: 2 links + 2 belongs.
  EXPECT_EQ(sub.graph.num_edges(), 4u);
  EXPECT_EQ(sub.graph.label(sub.Local(3)), "c0");
  EXPECT_TRUE(sub.graph.IsCategory(sub.Local(3)));
  EXPECT_EQ(sub.Local(4), kInvalidNode);
  EXPECT_EQ(sub.to_parent[sub.Local(1)], 1u);
}

TEST(InduceTest, DuplicatesIgnored) {
  PropertyGraph g = TinyWiki();
  InducedSubgraph sub = Induce(g, {0, 0, 1, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
}

}  // namespace
}  // namespace wqe::graph
