/// \file common_test.cc
/// \brief Unit tests for the common substrate: Status/Result, RNG,
/// string utilities, statistics, table printing, annotated mutexes,
/// deadlines/cancellation, and the deterministic fault injector.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "serve/thread_pool.h"

namespace wqe {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  Status st = Status::InvalidArgument("bad value: ", 42);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad value: 42");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad value: 42");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::CapacityError("x").IsCapacityError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, LifecycleCodesToString) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "Deadline exceeded: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "Resource exhausted: full");
}

TEST(StatusTest, WithContextAppendsDetail) {
  Status st = Status::NotFound("article");
  Status ctx = st.WithContext("while linking");
  EXPECT_TRUE(ctx.IsNotFound());
  EXPECT_EQ(ctx.message(), "article; while linking");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  WQE_ASSIGN_OR_RETURN(int h, Half(x));
  WQE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(11);
  size_t first_two = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    uint32_t v = rng.Zipf(100, 1.2);
    EXPECT_LT(v, 100u);
    if (v < 2) ++first_two;
  }
  // Ranks 0 and 1 should receive far more than the uniform share (2%).
  EXPECT_GT(first_two, kDraws / 10);
}

TEST(RngTest, ZipfMatchesRankFrequencyLaw) {
  // Chi-square goodness of fit of the rejection-inversion sampler against
  // the exact law p(k) ∝ 1/k^s, across exponents including the s = 1
  // logarithmic branch.  (The seed sampler inverted its acceptance test
  // and put ~99% of the mass on rank 0 at s = 1; under this test its
  // chi-square statistic is in the millions.)
  const int kDraws = 60000;
  for (double s : {0.7, 1.0, 1.3}) {
    for (uint32_t n : {5u, 40u}) {
      Rng rng(1000 + static_cast<uint64_t>(s * 10) + n);
      std::vector<uint32_t> counts(n, 0);
      for (int i = 0; i < kDraws; ++i) {
        uint32_t v = rng.Zipf(n, s);
        ASSERT_LT(v, n);
        ++counts[v];
      }
      double hz = 0.0;
      for (uint32_t k = 1; k <= n; ++k) hz += std::pow(k, -s);
      double chi2 = 0.0;
      for (uint32_t k = 1; k <= n; ++k) {
        double expected = kDraws * std::pow(k, -s) / hz;
        double diff = static_cast<double>(counts[k - 1]) - expected;
        chi2 += diff * diff / expected;
      }
      // 99.9th percentile of chi-square with df = n-1 is ~18.5 (df 4) and
      // ~69.3 (df 39); 100 leaves slack without hiding an inverted law.
      EXPECT_LT(chi2, 100.0) << "s=" << s << " n=" << n;
      // Monotone non-increasing head: rank 0 must dominate rank 2.
      EXPECT_GT(counts[0], counts[2]);
    }
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / kDraws;
  double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.2);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.2);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(17);
  std::vector<uint32_t> sample = rng.SampleWithoutReplacement(50, 20);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (uint32_t v : sample) EXPECT_LT(v, 50u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
}

TEST(RngTest, WeightedChoiceRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 2000; ++i) {
    ++counts[rng.WeightedChoice(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 4);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng child1 = parent.Fork(1);
  Rng parent2(23);
  Rng child2 = parent2.Fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("Hello World 42"), "hello world 42");
  EXPECT_EQ(ToUpper("hello"), "HELLO");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nab\r "), "ab");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\n\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinAndReplace) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("category:foo", "category:"));
  EXPECT_FALSE(StartsWith("cat", "category:"));
  EXPECT_TRUE(EndsWith("image.jpg", ".jpg"));
  EXPECT_FALSE(EndsWith("jpg", "image.jpg"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Category:", "category:"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, Fnv1a64IsStable) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  // Known FNV-1a vector.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
}

TEST(StringUtilTest, NormalizeTitle) {
  EXPECT_EQ(NormalizeTitle("  Grand   Canal "), "grand canal");
  EXPECT_EQ(NormalizeTitle("Bridge_of_Sighs"), "bridge of sighs");
  EXPECT_EQ(NormalizeTitle("VENICE"), "venice");
  EXPECT_EQ(NormalizeTitle(""), "");
  EXPECT_EQ(NormalizeTitle("___"), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5, 3), "0.500");
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, SummarizeKnownQuartiles) {
  // R-7 quartiles of 1..5 are exactly 2, 3, 4.
  FiveNumberSummary s = Summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_EQ(s.n, 5u);
}

TEST(StatsTest, SummarizeEmptyAndSingle) {
  FiveNumberSummary empty = Summarize({});
  EXPECT_EQ(empty.n, 0u);
  FiveNumberSummary one = Summarize({3.5});
  EXPECT_DOUBLE_EQ(one.median, 3.5);
  EXPECT_DOUBLE_EQ(one.min, 3.5);
  EXPECT_DOUBLE_EQ(one.max, 3.5);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> sorted = {0, 10};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.25), 2.5);
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(StdDev({1}), 0.0);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, FitLineRecoversSlope) {
  LinearFit fit = FitLine({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(StatsTest, FitLineDegenerateX) {
  LinearFit fit = FitLine({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string rendered = t.Render();
  EXPECT_NE(rendered.find("== demo =="), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter t("csv");
  t.SetHeader({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, DoubleRowFormatting) {
  TablePrinter t("doubles");
  t.SetHeader({"label", "v1", "v2"});
  t.AddRow("row", {0.12345, 2.0}, 2);
  EXPECT_NE(t.Render().find("0.12"), std::string::npos);
  EXPECT_NE(t.Render().find("2.00"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Annotated mutex primitives (common/mutex.h)
// ---------------------------------------------------------------------------

using common::CondVar;
using common::Mutex;
using common::MutexLock;

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mu;
  int counter = 0;  // guarded by mu (annotation elided: local variable)
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  // try_lock on a mutex the calling thread already holds is UB, so probe
  // from a second thread.
  auto probe = [&mu] {
    bool acquired = false;
    std::thread t([&] {
      acquired = mu.TryLock();
      if (acquired) mu.Unlock();
    });
    t.join();
    return acquired;
  };
  mu.Lock();
  EXPECT_FALSE(probe());
  mu.Unlock();
  EXPECT_TRUE(probe());
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread consumer([&] {
    MutexLock lock(mu);
    // Open-coded wait loop: the annotated CondVar deliberately has no
    // predicate overload (see common/mutex.h).
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woken;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(woken, kWaiters);
}

// ---------------------------------------------- Deadline / cancellation

TEST(DeadlineTest, DefaultIsInfinite) {
  common::Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(common::Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(common::Deadline::AfterMillis(-5.0).expired());
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired) {
  common::Deadline d = common::Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, TightenPicksTheEarlier) {
  common::Deadline infinite;
  common::Deadline soon = common::Deadline::AfterMillis(1.0);
  common::Deadline later = common::Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(common::Deadline::Tighten(infinite, soon).is_infinite());
  EXPECT_LT(common::Deadline::Tighten(soon, later).remaining_ms(), 1'000.0);
  EXPECT_TRUE(common::Deadline::Tighten(infinite, infinite).is_infinite());
}

TEST(CancelTokenTest, DefaultTokenNeverCancels) {
  common::CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, SourceCancelsItsTokens) {
  common::CancelSource source;
  common::CancelToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  source.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
  // Tokens taken after the cancel observe it too.
  EXPECT_TRUE(source.token().cancelled());
}

TEST(ExecContextTest, DefaultIsInactiveAndCheapChecksPass) {
  EXPECT_FALSE(common::CurrentExecContext().active());
  EXPECT_FALSE(common::ExecInterrupted());
  EXPECT_TRUE(common::ExecStatus().ok());
}

TEST(ExecContextTest, ScopedInstallAndRestore) {
  common::ExecContext ctx;
  ctx.deadline = common::Deadline::AfterMillis(60'000.0);
  {
    common::ScopedExecContext scope(ctx);
    EXPECT_TRUE(common::CurrentExecContext().active());
    EXPECT_FALSE(common::ExecInterrupted());
  }
  EXPECT_FALSE(common::CurrentExecContext().active());
}

TEST(ExecContextTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  common::ExecContext ctx;
  ctx.deadline = common::Deadline::AfterMillis(0.0);
  common::ScopedExecContext scope(ctx);
  EXPECT_TRUE(common::ExecInterrupted());
  EXPECT_TRUE(common::ExecStatus().IsDeadlineExceeded());
}

TEST(ExecContextTest, CancelSurfacesAsCancelledAndWinsOverDeadline) {
  common::CancelSource source;
  common::ExecContext ctx;
  ctx.deadline = common::Deadline::AfterMillis(0.0);
  ctx.cancel = source.token();
  common::ScopedExecContext scope(ctx);
  EXPECT_TRUE(common::ExecStatus().IsDeadlineExceeded());  // not cancelled yet
  source.RequestCancel();
  EXPECT_TRUE(common::ExecInterrupted());
  EXPECT_TRUE(common::ExecStatus().IsCancelled());
}

TEST(ExecContextTest, MergePrefersTighterDeadlineAndRequestToken) {
  common::CancelSource ambient_source;
  common::CancelSource request_source;
  common::ExecContext ambient;
  ambient.deadline = common::Deadline::AfterMillis(0.0);  // tighter
  ambient.cancel = ambient_source.token();
  common::ExecContext request;
  request.deadline = common::Deadline::AfterMillis(60'000.0);
  request.cancel = request_source.token();
  common::ExecContext merged = common::ExecContext::Merge(ambient, request);
  EXPECT_TRUE(merged.deadline.expired());  // ambient's tighter deadline won
  request_source.RequestCancel();
  EXPECT_TRUE(merged.cancel.cancelled());  // request's token won
  // With no request token, the ambient token is inherited.
  common::ExecContext bare_request;
  common::ExecContext inherited =
      common::ExecContext::Merge(ambient, bare_request);
  ambient_source.RequestCancel();
  EXPECT_TRUE(inherited.cancel.cancelled());
}

TEST(ExecContextTest, PropagatesAcrossPoolSubmit) {
  common::ExecContext ctx;
  ctx.deadline = common::Deadline::AfterMillis(0.0);
  common::ScopedExecContext scope(ctx);
  serve::ThreadPool pool(1);
  // The worker thread has no context of its own; Submit must carry the
  // submitter's budget across the hop.
  EXPECT_TRUE(
      pool.Submit([] { return common::ExecStatus().IsDeadlineExceeded(); })
          .get());
}

// ---------------------------------------------------- Fault injection

TEST(FaultInjectorTest, DisabledInjectorIsTransparent) {
  common::FaultInjector& injector = common::FaultInjector::Global();
  injector.Disable();
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Evaluate("common_test.site").ok());
  auto probed = []() -> Status {
    WQE_FAULT_POINT("common_test.site");
    return Status::OK();
  };
  EXPECT_TRUE(probed().ok());
}

TEST(FaultInjectorTest, CertainFailureInjectsConfiguredCode) {
  common::FaultInjector& injector = common::FaultInjector::Global();
  common::FaultSpec spec;
  spec.fail_probability = 1.0;
  spec.fail_code = StatusCode::kIOError;
  injector.Configure(/*seed=*/7, {{"common_test.site", spec}});
  auto probed = []() -> Status {
    WQE_FAULT_POINT("common_test.site");
    return Status::OK();
  };
  Status st = probed();
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("common_test.site"), std::string::npos);
  EXPECT_EQ(injector.injected_failures(), 1u);
  // Unlisted sites are unaffected even while enabled.
  EXPECT_TRUE(injector.Evaluate("common_test.other_site").ok());
  injector.Disable();
  EXPECT_TRUE(probed().ok());
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  common::FaultInjector& injector = common::FaultInjector::Global();
  common::FaultSpec spec;
  spec.fail_probability = 0.4;
  auto draw_schedule = [&](uint64_t seed) {
    injector.Configure(seed, {{"common_test.sched", spec}});
    std::vector<bool> outcomes;
    outcomes.reserve(64);
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(injector.Evaluate("common_test.sched").ok());
    }
    return outcomes;
  };
  std::vector<bool> first = draw_schedule(123);
  std::vector<bool> second = draw_schedule(123);
  std::vector<bool> other = draw_schedule(321);
  injector.Disable();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);  // overwhelmingly likely across 64 draws
  // A 0.4-probability site injects *some* failures and *some* passes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultInjectorTest, DelayOnlySiteSleepsWithoutFailing) {
  common::FaultInjector& injector = common::FaultInjector::Global();
  common::FaultSpec spec;
  spec.delay_probability = 1.0;
  spec.delay_ms = 5.0;
  injector.Configure(/*seed=*/1, {{"common_test.delay", spec}});
  const auto start = std::chrono::steady_clock::now();
  injector.MaybeDelay("common_test.delay");
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_GE(injector.injected_delays(), 1u);
  EXPECT_GE(elapsed_ms, 4.0);  // sleep_for may round, allow slack down
  injector.Disable();
}

}  // namespace
}  // namespace wqe
