/// \file linking_test.cc
/// \brief Tests for the entity linker (§2.1): largest-substring matching,
/// redirect resolution, synonym phrases.

#include <gtest/gtest.h>

#include "linking/entity_linker.h"
#include "wiki/knowledge_base.h"

namespace wqe::linking {
namespace {

using wiki::KnowledgeBase;

class EntityLinkerTest : public ::testing::Test {
 protected:
  EntityLinkerTest() {
    venice_ = *kb_.AddArticle("Venice");
    grand_canal_ = *kb_.AddArticle("Grand Canal");
    grand_canal_venice_ = *kb_.AddArticle("Grand Canal of Venice");
    gondola_ = *kb_.AddArticle("Gondola");
    regatta_ = *kb_.AddArticle("Regatta");
    // Redirects: "regata" -> regatta; "the floating city" -> venice.
    regata_ = *kb_.AddRedirect("Regata", regatta_);
    floating_ = *kb_.AddRedirect("Floating City", venice_);
    auto cat = *kb_.AddCategory("venetian things");
    for (auto a : {venice_, grand_canal_, grand_canal_venice_, gondola_,
                   regatta_}) {
      EXPECT_TRUE(kb_.AddBelongs(a, cat).ok());
    }
  }
  KnowledgeBase kb_;
  graph::NodeId venice_, grand_canal_, grand_canal_venice_, gondola_,
      regatta_, regata_, floating_;
};

TEST_F(EntityLinkerTest, LinksSimpleMentions) {
  EntityLinker linker(&kb_);
  auto articles = linker.LinkToArticles("a gondola in Venice");
  ASSERT_EQ(articles.size(), 2u);
  EXPECT_EQ(articles[0], gondola_);
  EXPECT_EQ(articles[1], venice_);
}

TEST_F(EntityLinkerTest, PrefersLargestSubstring) {
  EntityLinker linker(&kb_);
  // "grand canal of venice" must match the 4-token title, not
  // "grand canal" + "venice".
  auto mentions = linker.Link("the Grand Canal of Venice at dusk");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].article, grand_canal_venice_);
  EXPECT_EQ(mentions[0].surface, "grand canal of venice");
}

TEST_F(EntityLinkerTest, GreedyLeftToRightNonOverlapping) {
  EntityLinker linker(&kb_);
  auto mentions = linker.Link("venice gondola regatta");
  ASSERT_EQ(mentions.size(), 3u);
  EXPECT_EQ(mentions[0].article, venice_);
  EXPECT_EQ(mentions[1].article, gondola_);
  EXPECT_EQ(mentions[2].article, regatta_);
  // Byte spans are ordered and non-overlapping.
  EXPECT_LE(mentions[0].end, mentions[1].begin);
  EXPECT_LE(mentions[1].end, mentions[2].begin);
}

TEST_F(EntityLinkerTest, RedirectTitlesResolveToMain) {
  EntityLinker linker(&kb_);
  auto mentions = linker.Link("the regata of the floating city");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].article, regatta_);
  EXPECT_TRUE(mentions[0].via_redirect);
  EXPECT_EQ(mentions[1].article, venice_);
  EXPECT_TRUE(mentions[1].via_redirect);
}

TEST_F(EntityLinkerTest, SynonymPhraseViaRedirect) {
  // "grand canal of floating city" matches no title directly; replacing
  // the redirect-title span fails too (multi-word), but replacing the
  // term "venice" by synonym works the other way: "grand canal of
  // venice" ← via synonym of... exercise the single-term substitution:
  // make a title "regatta day" and text "regata day".
  auto regatta_day = kb_.AddArticle("Regatta Day");
  ASSERT_TRUE(regatta_day.ok());
  auto cat = kb_.FindByTitle("category:venetian things");
  ASSERT_TRUE(cat.has_value());
  ASSERT_TRUE(kb_.AddBelongs(*regatta_day, *cat).ok());

  EntityLinker linker(&kb_);
  auto mentions = linker.Link("the regata day festivities");
  ASSERT_GE(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].article, *regatta_day);
  EXPECT_TRUE(mentions[0].via_synonym);
  EXPECT_EQ(mentions[0].surface, "regatta day");
}

TEST_F(EntityLinkerTest, SynonymsDisabled) {
  auto regatta_day = kb_.AddArticle("Regatta Day");
  ASSERT_TRUE(regatta_day.ok());
  EntityLinkerOptions options;
  options.use_synonyms = false;
  EntityLinker linker(&kb_, options);
  auto mentions = linker.Link("the regata day festivities");
  // Without synonyms, "regata" alone matches the redirect (→ regatta).
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].article, regatta_);
}

TEST_F(EntityLinkerTest, StopwordSingletonsSkipped) {
  auto the = kb_.AddArticle("The");  // pathological article
  ASSERT_TRUE(the.ok());
  EntityLinker linker(&kb_);
  EXPECT_TRUE(linker.LinkToArticles("the the the").empty());
  EntityLinkerOptions options;
  options.skip_stopword_singletons = false;
  EntityLinker permissive(&kb_, options);
  EXPECT_EQ(permissive.LinkToArticles("the the the").size(), 1u);
}

TEST_F(EntityLinkerTest, DedupesArticlesKeepsMentions) {
  EntityLinker linker(&kb_);
  EXPECT_EQ(linker.Link("venice and venice again").size(), 2u);
  EXPECT_EQ(linker.LinkToArticles("venice and venice again").size(), 1u);
}

TEST_F(EntityLinkerTest, NoMatchesYieldEmpty) {
  EntityLinker linker(&kb_);
  EXPECT_TRUE(linker.LinkToArticles("completely unrelated words").empty());
  EXPECT_TRUE(linker.LinkToArticles("").empty());
}

TEST_F(EntityLinkerTest, CaseAndPunctuationInsensitive) {
  EntityLinker linker(&kb_);
  auto articles = linker.LinkToArticles("GONDOLA! (venice)");
  ASSERT_EQ(articles.size(), 2u);
}

TEST_F(EntityLinkerTest, MaxWindowRespected) {
  EntityLinkerOptions options;
  options.max_window = 2;
  EntityLinker linker(&kb_, options);
  // 4-token title can no longer match; falls back to "grand canal" and
  // "venice".
  auto mentions = linker.Link("grand canal of venice");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].article, grand_canal_);
  EXPECT_EQ(mentions[1].article, venice_);
}

}  // namespace
}  // namespace wqe::linking
