/// \file serve_test.cc
/// \brief Tests for the `serve::` concurrency subsystem: the thread pool,
/// the sharded expansion cache (keying, LRU, TTL, counters), and the
/// Server's parallel serving — including the determinism contract
/// (parallel rankings bit-identical to sequential) and a mixed
/// multi-threaded stress case meant to run under ThreadSanitizer
/// (`ci.sh` / the CI `tsan` job build this suite with
/// `-fsanitize=thread`).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "api/testbed.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "serve/expansion_cache.h"
#include "serve/server.h"
#include "serve/thread_pool.h"

namespace wqe::serve {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ExecutesTasksAndReturnsFutures) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
  // The counter increments after the future is fulfilled, so only a full
  // drain makes it final — don't assert it right after get().
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_executed(), 32u);
}

TEST(ThreadPoolTest, ManyConcurrentIncrements) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksAndIsIdempotent) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      // The single worker serializes these; most are still queued when
      // Shutdown begins and must run before it returns.
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++executed;
      });
    }
    pool.Shutdown();
    EXPECT_EQ(executed.load(), 20);
    pool.Shutdown();  // idempotent
  }  // destructor after explicit Shutdown is a no-op
  EXPECT_EQ(executed.load(), 20);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

#ifndef NDEBUG
// The annotated join contract (`Shutdown` is WQE_EXCLUDES and must be
// driven from outside the pool): a worker shutting down its own pool
// would join itself and hang forever, so Debug builds abort instead.
// Live only where WQE_DCHECK is compiled in — the CI tsan/asan lanes.
TEST(ThreadPoolDeathTest, ShutdownFromWorkerAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([&pool] { pool.Shutdown(); }).get();
      },
      "OnWorkerThread");
}

// Same contract one layer up: RunParallel blocks on futures of tasks it
// just queued, so calling it *from* a worker of the same pool deadlocks
// a bounded pool.  EffectiveParallelism degrades worker callers to
// sequential; bypassing it trips the debug check.
TEST(ThreadPoolDeathTest, RunParallelFromOwnWorkerAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([&pool] { RunParallel(&pool, 1, [] {}); }).get();
      },
      "OnWorkerThread");
}
#endif  // NDEBUG

// ------------------------------------------------------- ExpansionCache

ExpansionCache::Key MakeKey(const std::string& keywords,
                            const std::string& expander = "cycle",
                            api::ExpanderOverrides overrides = {}) {
  return ExpansionCache::Key{keywords, expander, std::move(overrides)};
}

api::ExpandResponse MakeResponse(const std::string& marker) {
  api::ExpandResponse response;
  response.expander = marker;
  return response;
}

TEST(ExpansionCacheTest, MissThenHit) {
  ExpansionCache cache;
  EXPECT_EQ(cache.Get(MakeKey("venice")), nullptr);
  cache.Put(MakeKey("venice"), MakeResponse("m"));
  auto hit = cache.Get(MakeKey("venice"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->expander, "m");
  ExpansionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.5);
}

TEST(ExpansionCacheTest, KeyIsTheFullTriple) {
  ExpansionCache cache;
  cache.Put(MakeKey("venice", "cycle"), MakeResponse("cycle-v"));
  EXPECT_EQ(cache.Get(MakeKey("venice", "direct-link")), nullptr);
  EXPECT_EQ(cache.Get(MakeKey("verona", "cycle")), nullptr);
  api::ExpanderOverrides capped;
  capped.max_features = 3;
  EXPECT_EQ(cache.Get(MakeKey("venice", "cycle", capped)), nullptr);
  ASSERT_NE(cache.Get(MakeKey("venice", "cycle")), nullptr);
}

// Satellite: distinct overrides must never collide into one cache entry.
// Entry identity is full-key equality (not the hash), so this holds even
// if two hashes collided; the test also checks the hashes themselves are
// distinct for a spread of single-field and combined configurations.
TEST(ExpansionCacheTest, DistinctOverridesNeverShareAnEntry) {
  std::vector<api::ExpanderOverrides> configs;
  configs.emplace_back();  // all unset
  {
    api::ExpanderOverrides o;
    o.max_features = 3;
    configs.push_back(o);
    o.max_features = 4;
    configs.push_back(o);
  }
  {
    // Same numeric value in a different field than max_features=3.
    api::ExpanderOverrides o;
    o.max_cycles = 3;
    configs.push_back(o);
    o = {};
    o.neighborhood_radius = 3;
    configs.push_back(o);
  }
  {
    api::ExpanderOverrides o;
    o.min_density = 1.0;
    configs.push_back(o);
    o.min_density = 1.5;
    configs.push_back(o);
    o = {};
    o.length_decay = 1.5;  // same double, different field
    configs.push_back(o);
  }
  {
    api::ExpanderOverrides o;
    o.prioritize_mutual = true;
    configs.push_back(o);
    o.prioritize_mutual = false;  // set-false differs from unset
    configs.push_back(o);
  }
  {
    api::ExpanderOverrides o;
    o.min_cycle_length = 2;
    o.max_cycle_length = 4;
    configs.push_back(o);
    std::swap(*o.min_cycle_length, *o.max_cycle_length);  // 4, 2
    configs.push_back(o);
  }

  std::set<uint64_t> hashes;
  for (size_t i = 0; i < configs.size(); ++i) {
    hashes.insert(configs[i].Hash());
    for (size_t j = i + 1; j < configs.size(); ++j) {
      EXPECT_FALSE(configs[i] == configs[j]) << i << " vs " << j;
      EXPECT_NE(configs[i].ToKey(), configs[j].ToKey());
    }
  }
  EXPECT_EQ(hashes.size(), configs.size()) << "override hashes collided";

  ExpansionCache cache;
  for (size_t i = 0; i < configs.size(); ++i) {
    cache.Put(MakeKey("venice", "cycle", configs[i]),
              MakeResponse(std::to_string(i)));
  }
  EXPECT_EQ(cache.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    auto hit = cache.Get(MakeKey("venice", "cycle", configs[i]));
    ASSERT_NE(hit, nullptr) << i;
    EXPECT_EQ(hit->expander, std::to_string(i));
  }
}

TEST(ExpansionCacheTest, LruEvictsLeastRecentlyUsed) {
  ExpansionCacheOptions options;
  options.capacity = 3;
  options.num_shards = 1;  // one shard → strict global LRU order
  ExpansionCache cache(options);
  cache.Put(MakeKey("a"), MakeResponse("a"));
  cache.Put(MakeKey("b"), MakeResponse("b"));
  cache.Put(MakeKey("c"), MakeResponse("c"));
  ASSERT_NE(cache.Get(MakeKey("a")), nullptr);  // refresh a; b is now LRU
  cache.Put(MakeKey("d"), MakeResponse("d"));   // evicts b
  EXPECT_EQ(cache.Get(MakeKey("b")), nullptr);
  EXPECT_NE(cache.Get(MakeKey("a")), nullptr);
  EXPECT_NE(cache.Get(MakeKey("c")), nullptr);
  EXPECT_NE(cache.Get(MakeKey("d")), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ExpansionCacheTest, PutRefreshesExistingEntry) {
  ExpansionCacheOptions options;
  options.capacity = 2;
  options.num_shards = 1;
  ExpansionCache cache(options);
  cache.Put(MakeKey("a"), MakeResponse("a1"));
  cache.Put(MakeKey("b"), MakeResponse("b"));
  cache.Put(MakeKey("a"), MakeResponse("a2"));  // refresh, not insert
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  auto hit = cache.Get(MakeKey("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->expander, "a2");
  cache.Put(MakeKey("c"), MakeResponse("c"));  // now evicts b (LRU)
  EXPECT_EQ(cache.Get(MakeKey("b")), nullptr);
}

TEST(ExpansionCacheTest, TtlExpiresEntries) {
  ExpansionCacheOptions options;
  options.ttl = std::chrono::milliseconds(30);
  ExpansionCache cache(options);
  cache.Put(MakeKey("a"), MakeResponse("a"));
  ASSERT_NE(cache.Get(MakeKey("a")), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(cache.Get(MakeKey("a")), nullptr);
  ExpansionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ExpansionCacheTest, EvictedValueStaysAliveForHolders) {
  ExpansionCacheOptions options;
  options.capacity = 1;
  options.num_shards = 1;
  ExpansionCache cache(options);
  cache.Put(MakeKey("a"), MakeResponse("a"));
  auto held = cache.Get(MakeKey("a"));
  ASSERT_NE(held, nullptr);
  cache.Put(MakeKey("b"), MakeResponse("b"));  // evicts a
  EXPECT_EQ(cache.Get(MakeKey("a")), nullptr);
  EXPECT_EQ(held->expander, "a");  // shared_ptr keeps the value valid
}

// Concurrent TTL-expiry + capacity-eviction churn, with the structural
// validator (LRU ↔ index bijection, occupancy ≤ capacity) interleaved
// live and re-checked after the drain.  Sized to force both eviction
// (tiny per-shard capacity) and expiration (TTL shorter than the run);
// the ci.sh asan lane runs this under ASan+UBSan, where a dangling LRU
// iterator or double-erase in the expiry path would be fatal.
TEST(ExpansionCacheTest, ConcurrentTtlChurnKeepsShardInvariants) {
  ExpansionCacheOptions options;
  options.capacity = 16;
  options.num_shards = 4;
  options.ttl = std::chrono::milliseconds(5);
  ExpansionCache cache(options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 600;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Overlapping key ranges across threads: hits, refreshes,
        // evictions and expirations all mix on the same shards.
        std::string key = "k" + std::to_string((t * 17 + i) % 48);
        if (i % 3 == 0) {
          cache.Put(MakeKey(key), MakeResponse(key));
        } else {
          auto hit = cache.Get(MakeKey(key));
          if (hit != nullptr) {
            EXPECT_FALSE(hit->expander.empty());
          }
        }
        if (i % 100 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }
  // A validator thread audits the shards while the churn is running —
  // CheckShardInvariants locks shard by shard, so this also exercises
  // the lock discipline the annotations promise.
  std::thread auditor([&cache, &stop] {
    while (!stop.load()) {
      auto status = cache.CheckShardInvariants();
      EXPECT_TRUE(status.ok()) << status;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& worker : workers) worker.join();
  stop.store(true);
  auditor.join();

  auto status = cache.CheckShardInvariants();
  EXPECT_TRUE(status.ok()) << status;
  ExpansionCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, options.capacity);
  EXPECT_GT(stats.evictions + stats.expirations, 0u)
      << "churn never aged or evicted anything — test is under-sized";
  // Let everything expire, then confirm expiry leaves the structures
  // bijective too (expired entries are torn out of both containers).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int i = 0; i < 48; ++i) {
    EXPECT_EQ(cache.Get(MakeKey("k" + std::to_string(i))), nullptr);
  }
  status = cache.CheckShardInvariants();
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ExpansionCacheTest, ShardCountRoundsUpAndClearDropsEverything) {
  ExpansionCacheOptions options;
  options.capacity = 64;
  options.num_shards = 5;  // → 8
  ExpansionCache cache(options);
  EXPECT_EQ(cache.num_shards(), 8u);
  for (int i = 0; i < 40; ++i) {
    cache.Put(MakeKey("k" + std::to_string(i)), MakeResponse("v"));
  }
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(MakeKey("k1")), nullptr);
}

// --------------------------------------------------------------- Server

const api::Testbed& SmallBed() {
  static const api::Testbed* kBed = [] {
    api::TestbedOptions options;
    options.wiki.num_domains = 12;
    options.track.num_topics = 6;
    options.track.background_docs = 150;
    auto result = api::Testbed::Build(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->release();
  }();
  return *kBed;
}

std::vector<api::QueryRequest> MixedRequests(size_t count) {
  const api::Testbed& bed = SmallBed();
  std::vector<api::QueryRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    api::QueryRequest request;
    request.keywords = bed.topic(i % bed.num_topics()).keywords;
    request.expander = (i % 3 == 0) ? "direct-link" : "cycle";
    if (i % 4 == 0) request.overrides.max_features = 4;
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(ServerTest, WrappingLocksTheRegistry) {
  api::TestbedOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 2;
  auto bed = api::Testbed::Build(options);
  ASSERT_TRUE(bed.ok()) << bed.status();
  EXPECT_FALSE((*bed)->engine().registry_locked());
  Server server((*bed)->engine());
  EXPECT_TRUE((*bed)->engine().registry_locked());
}

TEST(ServerTest, SubmitMatchesEngineQuery) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 2;
  Server server(bed.engine(), options);

  api::QueryRequest request;
  request.keywords = bed.topic(0).keywords;
  auto sequential = bed.engine().Query(request);
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  auto future = server.Submit(request);
  Result<api::QueryResponse> served = future.get();
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(served->docs, sequential->docs);
  EXPECT_EQ(served->expansion.titles, sequential->expansion.titles);
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST(ServerTest, ParallelEnumerationDegradesOnWorkersNoDeadlock) {
  // An engine with intra-request enumeration parallelism wrapped by a
  // capacity-1 server: the request runs on the lone worker, where the
  // cycle enumerator must degrade to sequential — a nested fan-out
  // blocking on this pool would deadlock forever, so this test finishing
  // with bit-identical results IS the contract check.  It also proves no
  // second pool gets spawned per request (the transient-pool path is
  // skipped on worker threads by design).
  api::TestbedOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 2;
  options.engine.enumeration_threads = 4;
  auto bed = api::Testbed::Build(options);
  ASSERT_TRUE(bed.ok()) << bed.status();
  ASSERT_NE((*bed)->engine().enumeration_pool(), nullptr);

  api::QueryRequest request;
  request.keywords = (*bed)->topic(0).keywords;
  auto direct = (*bed)->engine().Query(request);  // parallel enumeration
  ASSERT_TRUE(direct.ok()) << direct.status();

  ServerOptions serving;
  serving.num_threads = 1;
  serving.enable_cache = false;
  Server server((*bed)->engine(), serving);
  auto served = server.Submit(request).get();  // degraded enumeration
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(served->docs, direct->docs);
  EXPECT_EQ(served->expansion.feature_articles,
            direct->expansion.feature_articles);
}

TEST(ServerTest, SubmitExpandHitsCacheOnRepeat) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 2;
  Server server(bed.engine(), options);

  api::ExpandRequest request;
  request.keywords = bed.topic(1).keywords;
  size_t hits_before = bed.engine().stats().cache_hits;
  size_t built_before = bed.engine().stats().expanders_constructed;

  auto first = server.SubmitExpand(request).get();
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = server.SubmitExpand(request).get();
  ASSERT_TRUE(second.ok()) << second.status();

  EXPECT_EQ(second->feature_articles, first->feature_articles);
  EXPECT_EQ(second->titles, first->titles);
  EXPECT_EQ(bed.engine().stats().cache_hits - hits_before, 1u);
  // The hit served without constructing an expander.
  EXPECT_EQ(bed.engine().stats().expanders_constructed - built_before, 1u);
  ASSERT_NE(server.cache(), nullptr);
  EXPECT_EQ(server.cache()->stats().hits, 1u);
}

TEST(ServerTest, ParallelQueryBatchIsBitIdenticalToSequential) {
  const api::Testbed& bed = SmallBed();
  const std::vector<api::QueryRequest> requests = MixedRequests(24);

  auto sequential = bed.engine().QueryBatch(requests);
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  for (size_t threads : {1u, 4u}) {
    ServerOptions options;
    options.num_threads = threads;
    Server server(bed.engine(), options);
    auto parallel = server.QueryBatch(requests);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ASSERT_EQ(parallel->size(), sequential->size());
    for (size_t i = 0; i < sequential->size(); ++i) {
      EXPECT_EQ((*parallel)[i].docs, (*sequential)[i].docs)
          << threads << " threads, request " << i;
      EXPECT_EQ((*parallel)[i].expansion.titles,
                (*sequential)[i].expansion.titles);
      EXPECT_EQ((*parallel)[i].expansion.feature_articles,
                (*sequential)[i].expansion.feature_articles);
      EXPECT_EQ((*parallel)[i].expansion.expander,
                (*sequential)[i].expansion.expander);
    }
  }
}

TEST(ServerTest, BatchAmortizesExpanderConstruction) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 4;
  options.enable_cache = false;  // isolate the construction counter
  Server server(bed.engine(), options);

  const std::vector<api::QueryRequest> requests = MixedRequests(24);
  // cycle, cycle+max4, direct-link, direct-link+max4: 4 distinct configs
  // (i%12 ∈ {0,4,8} pair (i%3==0, i%4==0) differently).
  std::set<std::string> distinct;
  for (const auto& request : requests) {
    distinct.insert(request.expander + request.overrides.ToKey());
  }
  size_t before = bed.engine().stats().expanders_constructed;
  auto batch = server.QueryBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(bed.engine().stats().expanders_constructed - before,
            distinct.size());
  EXPECT_EQ(server.stats().batches, 1u);
  EXPECT_EQ(server.stats().requests, requests.size());
}

TEST(ServerTest, SecondPassServesFromCache) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 2;
  Server server(bed.engine(), options);

  const std::vector<api::QueryRequest> requests = MixedRequests(18);
  size_t hits_before = bed.engine().stats().cache_hits;
  size_t misses_before = bed.engine().stats().cache_misses;

  auto first = server.QueryBatch(requests);
  ASSERT_TRUE(first.ok()) << first.status();
  size_t first_hits = bed.engine().stats().cache_hits - hits_before;

  auto second = server.QueryBatch(requests);
  ASSERT_TRUE(second.ok()) << second.status();
  size_t total_hits = bed.engine().stats().cache_hits - hits_before;
  size_t total_misses = bed.engine().stats().cache_misses - misses_before;

  // 18 requests over 6 topics × few configs: the first pass already
  // repeats keys; the second pass must hit on every request.
  EXPECT_EQ(total_hits - first_hits, requests.size());
  EXPECT_EQ(total_hits + total_misses, 2 * requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ((*second)[i].docs, (*first)[i].docs) << "request " << i;
  }
  ASSERT_NE(server.cache(), nullptr);
  EXPECT_EQ(server.cache()->stats().hits, total_hits);
  EXPECT_EQ(server.cache()->stats().misses, total_misses);
}

TEST(ServerTest, DisabledCacheStillServes) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 2;
  options.enable_cache = false;
  Server server(bed.engine(), options);
  EXPECT_EQ(server.cache(), nullptr);

  size_t hits_before = bed.engine().stats().cache_hits;
  api::QueryRequest request;
  request.keywords = bed.topic(0).keywords;
  auto a = server.Submit(request).get();
  auto b = server.Submit(request).get();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->docs, b->docs);
  EXPECT_EQ(bed.engine().stats().cache_hits, hits_before);
}

TEST(ServerTest, BatchFailureNamesLowestFailingRequest) {
  const api::Testbed& bed = SmallBed();
  Server server(bed.engine());
  std::vector<api::QueryRequest> requests(4);
  requests[0].keywords = bed.topic(0).keywords;
  requests[1].keywords = "";  // fails in the worker (empty keywords)
  requests[2].keywords = "";  // later failure must not win
  requests[3].keywords = bed.topic(1).keywords;
  auto batch = server.QueryBatch(requests);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
  EXPECT_NE(batch.status().message().find("QueryBatch request #1"),
            std::string::npos)
      << batch.status();

  // Bad configs fail with the same context shape.
  std::vector<api::QueryRequest> bad_config(2);
  bad_config[0].keywords = bed.topic(0).keywords;
  bad_config[1].keywords = bed.topic(1).keywords;
  bad_config[1].expander = "warp-drive";
  auto unknown = server.QueryBatch(bad_config);
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsNotFound());
  EXPECT_NE(unknown.status().message().find("QueryBatch request #1"),
            std::string::npos);

  // Mixed failure classes: a construction error at a higher index must
  // not preempt a runtime error at a lower one — the sequential facade
  // would fail on #0 before ever seeing #1's bad strategy, and the
  // parallel batch must name the same request.
  std::vector<api::QueryRequest> mixed(2);
  mixed[0].keywords = "";              // runtime failure in the worker
  mixed[1].keywords = bed.topic(0).keywords;
  mixed[1].expander = "warp-drive";    // construction failure in phase 1
  auto parallel = server.QueryBatch(mixed);
  auto sequential = bed.engine().QueryBatch(mixed);
  ASSERT_FALSE(parallel.ok());
  ASSERT_FALSE(sequential.ok());
  EXPECT_EQ(parallel.status().code(), sequential.status().code());
  EXPECT_NE(parallel.status().message().find("QueryBatch request #0"),
            std::string::npos)
      << parallel.status();
}

TEST(ServerTest, FailedRequestsAreCountedByStage) {
  const api::Testbed& bed = SmallBed();
  // A private registry isolates this server's instruments from every
  // other test's servers (each stack would otherwise share the global
  // registry under fresh instance labels — correct, but noisy to query).
  obs::MetricsRegistry registry;
  ServerOptions options;
  options.registry = &registry;
  Server server(bed.engine(), options);

  api::QueryRequest good;
  good.keywords = bed.topic(0).keywords;
  ASSERT_TRUE(server.Submit(good).get().ok());

  api::QueryRequest bad;
  bad.keywords = bed.topic(1).keywords;
  bad.expander = "warp-drive";
  Result<api::QueryResponse> failed = server.Submit(std::move(bad)).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsNotFound());

  ServerSnapshot snapshot = server.StatsSnapshot();
  EXPECT_EQ(snapshot.server.requests, 2u);
  EXPECT_EQ(snapshot.server.requests_failed, 1u);
  if (obs::kCompiledIn) {
    // Failures are latencies too: both requests landed in the histogram.
    EXPECT_EQ(snapshot.request_latency_ms.count, 2u);
  }
  // The per-stage error series names the stage that failed (the unknown
  // strategy dies in expander construction) and nothing else.
  const std::string prom = registry.DumpPrometheus();
  EXPECT_NE(prom.find("stage=\"expander-construction\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("stage=\"expansion\"} 0"), std::string::npos) << prom;
  EXPECT_NE(prom.find("stage=\"search\"} 0"), std::string::npos) << prom;
}

TEST(ServerTest, MixedBatchAttributesShedAndDeadlineOutcomes) {
  // One batch, three fates: #0 completes, #1 is shed at admission (its
  // budget is already spent when it arrives), #2 is admitted but blows
  // its deadline inside the worker (an injected cache-lookup stall eats
  // the whole budget).  The batch stays fail-atomic — the lowest failing
  // index (#1, the shed) names the error — and each outcome lands in its
  // own stage counter exactly once.
  const api::Testbed& bed = SmallBed();
  obs::MetricsRegistry registry;
  ServerOptions options;
  options.registry = &registry;
  options.num_threads = 1;
  Server server(bed.engine(), options);

  std::vector<api::QueryRequest> requests(3);
  requests[0].keywords = bed.topic(0).keywords;
  requests[1].keywords = bed.topic(1).keywords;
  requests[1].deadline_ms = 1e-6;  // expired before AdmitRequest can look
  requests[2].keywords = bed.topic(2).keywords;
  requests[2].deadline_ms = 5.0;  // admitted, then stalled past budget

  common::FaultSpec stall;
  stall.delay_probability = 1.0;
  stall.delay_ms = 25.0;  // > requests[2].deadline_ms, every lookup
  common::FaultInjector::Global().Configure(
      /*seed=*/3, {{"serve.cache_lookup", stall}});
  auto batch = server.QueryBatch(requests);
  common::FaultInjector::Global().Disable();

  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsResourceExhausted()) << batch.status();
  EXPECT_NE(batch.status().message().find("QueryBatch request #1"),
            std::string::npos)
      << batch.status();

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.requests_failed, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  const std::string prom = registry.DumpPrometheus();
  EXPECT_NE(prom.find("stage=\"admission\"} 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("stage=\"deadline\"} 1"), std::string::npos) << prom;
  // The interrupted request must not double-count into the pipeline-stage
  // series it happened to be inside when the budget ran out.
  EXPECT_NE(prom.find("stage=\"expansion\"} 0"), std::string::npos) << prom;
  EXPECT_NE(prom.find("stage=\"search\"} 0"), std::string::npos) << prom;
}

TEST(ServerTest, QueueDepthBoundShedsWithResourceExhausted) {
  const api::Testbed& bed = SmallBed();
  obs::MetricsRegistry registry;
  ServerOptions options;
  options.registry = &registry;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  Server server(bed.engine(), options);

  // Stall the lone worker so submissions pile up behind it, then keep
  // submitting until the bound trips.  At most 1 + max_queue_depth
  // requests can be in flight, so the third submission must shed.
  common::FaultSpec stall;
  stall.delay_probability = 1.0;
  stall.delay_ms = 30.0;
  common::FaultInjector::Global().Configure(
      /*seed=*/11, {{"serve.pool_dispatch", stall}});
  api::QueryRequest request;
  request.keywords = bed.topic(0).keywords;
  std::vector<std::future<Result<api::QueryResponse>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.Submit(request));
  size_t ok = 0, shed = 0;
  for (auto& future : futures) {
    Result<api::QueryResponse> result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
      ++shed;
    }
  }
  common::FaultInjector::Global().Disable();
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(server.stats().shed, shed);
}

TEST(ServerTest, CancelTokenFailsRequestAsCancelled) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 1;
  Server server(bed.engine(), options);

  common::CancelSource source;
  source.RequestCancel();  // cancelled before the worker ever runs
  api::QueryRequest request;
  request.keywords = bed.topic(0).keywords;
  request.cancel = source.token();
  Result<api::QueryResponse> result = server.Submit(request).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
}

#ifndef NDEBUG
// The registry-freeze contract (satellite): mutating the registry after a
// serve::Server wraps the engine trips WQE_DCHECK.  Only meaningful in
// builds without NDEBUG — the CI TSan job compiles with
// -DCMAKE_BUILD_TYPE=Debug precisely so this path is exercised.
TEST(ServerDeathTest, LateRegistryMutationAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  api::TestbedOptions options;
  options.wiki.num_domains = 8;
  options.track.num_topics = 2;
  auto bed = api::Testbed::Build(options);
  ASSERT_TRUE(bed.ok()) << bed.status();
  api::Engine& engine = (*bed)->engine();
  EXPECT_NO_FATAL_FAILURE(engine.registry());  // fine before serving
  Server server(engine);
  EXPECT_DEATH(engine.registry(), "registry_locked");
}
#endif  // NDEBUG

// The ThreadSanitizer stress case: several caller threads hammer one
// server with a mix of single Expand/Query submissions and parallel
// batches, all against one shared engine and cache.  Correctness of every
// response is checked against precomputed sequential answers.
TEST(ServerStressTest, MixedConcurrentCallersProduceSequentialResults) {
  const api::Testbed& bed = SmallBed();
  ServerOptions options;
  options.num_threads = 4;
  options.cache.capacity = 64;
  options.cache.num_shards = 4;
  Server server(bed.engine(), options);

  // Sequential ground truth, one per topic.
  std::vector<api::QueryResponse> expected_query;
  std::vector<api::ExpandResponse> expected_expand;
  for (size_t t = 0; t < bed.num_topics(); ++t) {
    api::QueryRequest query;
    query.keywords = bed.topic(t).keywords;
    auto q = bed.engine().Query(query);
    ASSERT_TRUE(q.ok()) << q.status();
    expected_query.push_back(std::move(*q));
    api::ExpandRequest expand;
    expand.keywords = bed.topic(t).keywords;
    auto e = bed.engine().Expand(expand);
    ASSERT_TRUE(e.ok()) << e.status();
    expected_expand.push_back(std::move(*e));
  }

  constexpr int kCallers = 4;
  constexpr int kRoundsPerCaller = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRoundsPerCaller; ++round) {
        size_t t = static_cast<size_t>(c + round) % bed.num_topics();
        switch ((c + round) % 3) {
          case 0: {  // single query
            api::QueryRequest request;
            request.keywords = bed.topic(t).keywords;
            auto response = server.Submit(std::move(request)).get();
            if (!response.ok() ||
                response->docs != expected_query[t].docs) {
              ++failures;
            }
            break;
          }
          case 1: {  // single expand
            api::ExpandRequest request;
            request.keywords = bed.topic(t).keywords;
            auto response = server.SubmitExpand(std::move(request)).get();
            if (!response.ok() ||
                response->titles != expected_expand[t].titles) {
              ++failures;
            }
            break;
          }
          default: {  // small batch over all topics
            std::vector<api::QueryRequest> requests(bed.num_topics());
            for (size_t i = 0; i < requests.size(); ++i) {
              requests[i].keywords = bed.topic(i).keywords;
            }
            auto batch = server.QueryBatch(requests);
            if (!batch.ok()) {
              ++failures;
              break;
            }
            for (size_t i = 0; i < batch->size(); ++i) {
              if ((*batch)[i].docs != expected_query[i].docs) ++failures;
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(failures.load(), 0);

  // Counter sanity after the storm: every request did exactly one cache
  // lookup, and every outcome was recorded.
  ASSERT_NE(server.cache(), nullptr);
  ExpansionCacheStats stats = server.cache()->stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.hits + stats.misses, server.stats().requests);
}

}  // namespace
}  // namespace wqe::serve
