file(REMOVE_RECURSE
  "CMakeFiles/wqe_xml_test.dir/tests/xml_test.cc.o"
  "CMakeFiles/wqe_xml_test.dir/tests/xml_test.cc.o.d"
  "wqe_xml_test"
  "wqe_xml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
