# Empty dependencies file for wqe_xml_test.
# This may be replaced when dependencies are built.
