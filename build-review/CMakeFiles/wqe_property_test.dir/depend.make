# Empty dependencies file for wqe_property_test.
# This may be replaced when dependencies are built.
