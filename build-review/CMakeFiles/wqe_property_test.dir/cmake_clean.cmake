file(REMOVE_RECURSE
  "CMakeFiles/wqe_property_test.dir/tests/property_test.cc.o"
  "CMakeFiles/wqe_property_test.dir/tests/property_test.cc.o.d"
  "wqe_property_test"
  "wqe_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
