file(REMOVE_RECURSE
  "CMakeFiles/wqe_csr_test.dir/tests/csr_test.cc.o"
  "CMakeFiles/wqe_csr_test.dir/tests/csr_test.cc.o.d"
  "wqe_csr_test"
  "wqe_csr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
