# Empty compiler generated dependencies file for wqe_csr_test.
# This may be replaced when dependencies are built.
