# Empty compiler generated dependencies file for wqe_analysis_test.
# This may be replaced when dependencies are built.
