file(REMOVE_RECURSE
  "CMakeFiles/wqe_analysis_test.dir/tests/analysis_test.cc.o"
  "CMakeFiles/wqe_analysis_test.dir/tests/analysis_test.cc.o.d"
  "wqe_analysis_test"
  "wqe_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
