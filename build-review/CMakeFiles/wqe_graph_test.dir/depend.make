# Empty dependencies file for wqe_graph_test.
# This may be replaced when dependencies are built.
