file(REMOVE_RECURSE
  "CMakeFiles/wqe_graph_test.dir/tests/graph_test.cc.o"
  "CMakeFiles/wqe_graph_test.dir/tests/graph_test.cc.o.d"
  "wqe_graph_test"
  "wqe_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
