file(REMOVE_RECURSE
  "CMakeFiles/wqe_api_test.dir/tests/api_test.cc.o"
  "CMakeFiles/wqe_api_test.dir/tests/api_test.cc.o.d"
  "wqe_api_test"
  "wqe_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
