# Empty compiler generated dependencies file for wqe_api_test.
# This may be replaced when dependencies are built.
