# Empty compiler generated dependencies file for wqe_expansion_test.
# This may be replaced when dependencies are built.
