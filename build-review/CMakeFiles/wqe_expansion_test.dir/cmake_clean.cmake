file(REMOVE_RECURSE
  "CMakeFiles/wqe_expansion_test.dir/tests/expansion_test.cc.o"
  "CMakeFiles/wqe_expansion_test.dir/tests/expansion_test.cc.o.d"
  "wqe_expansion_test"
  "wqe_expansion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
