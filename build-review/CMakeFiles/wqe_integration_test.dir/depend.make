# Empty dependencies file for wqe_integration_test.
# This may be replaced when dependencies are built.
