file(REMOVE_RECURSE
  "CMakeFiles/wqe_integration_test.dir/tests/integration_test.cc.o"
  "CMakeFiles/wqe_integration_test.dir/tests/integration_test.cc.o.d"
  "wqe_integration_test"
  "wqe_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
