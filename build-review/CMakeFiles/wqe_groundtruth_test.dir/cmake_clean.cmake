file(REMOVE_RECURSE
  "CMakeFiles/wqe_groundtruth_test.dir/tests/groundtruth_test.cc.o"
  "CMakeFiles/wqe_groundtruth_test.dir/tests/groundtruth_test.cc.o.d"
  "wqe_groundtruth_test"
  "wqe_groundtruth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_groundtruth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
