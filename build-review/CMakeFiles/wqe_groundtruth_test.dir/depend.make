# Empty dependencies file for wqe_groundtruth_test.
# This may be replaced when dependencies are built.
