# Empty compiler generated dependencies file for wqe_ir_test.
# This may be replaced when dependencies are built.
