file(REMOVE_RECURSE
  "CMakeFiles/wqe_ir_test.dir/tests/ir_test.cc.o"
  "CMakeFiles/wqe_ir_test.dir/tests/ir_test.cc.o.d"
  "wqe_ir_test"
  "wqe_ir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
