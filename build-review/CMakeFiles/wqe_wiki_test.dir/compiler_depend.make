# Empty compiler generated dependencies file for wqe_wiki_test.
# This may be replaced when dependencies are built.
