file(REMOVE_RECURSE
  "CMakeFiles/wqe_wiki_test.dir/tests/wiki_test.cc.o"
  "CMakeFiles/wqe_wiki_test.dir/tests/wiki_test.cc.o.d"
  "wqe_wiki_test"
  "wqe_wiki_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_wiki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
