# Empty dependencies file for wqe_common_test.
# This may be replaced when dependencies are built.
