file(REMOVE_RECURSE
  "CMakeFiles/wqe_common_test.dir/tests/common_test.cc.o"
  "CMakeFiles/wqe_common_test.dir/tests/common_test.cc.o.d"
  "wqe_common_test"
  "wqe_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
