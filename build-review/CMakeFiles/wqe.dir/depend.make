# Empty dependencies file for wqe.
# This may be replaced when dependencies are built.
