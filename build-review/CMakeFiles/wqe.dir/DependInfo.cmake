
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/paper_report.cc" "CMakeFiles/wqe.dir/src/analysis/paper_report.cc.o" "gcc" "CMakeFiles/wqe.dir/src/analysis/paper_report.cc.o.d"
  "/root/repo/src/analysis/query_graph_analysis.cc" "CMakeFiles/wqe.dir/src/analysis/query_graph_analysis.cc.o" "gcc" "CMakeFiles/wqe.dir/src/analysis/query_graph_analysis.cc.o.d"
  "/root/repo/src/api/engine.cc" "CMakeFiles/wqe.dir/src/api/engine.cc.o" "gcc" "CMakeFiles/wqe.dir/src/api/engine.cc.o.d"
  "/root/repo/src/api/evaluation.cc" "CMakeFiles/wqe.dir/src/api/evaluation.cc.o" "gcc" "CMakeFiles/wqe.dir/src/api/evaluation.cc.o.d"
  "/root/repo/src/api/expander_registry.cc" "CMakeFiles/wqe.dir/src/api/expander_registry.cc.o" "gcc" "CMakeFiles/wqe.dir/src/api/expander_registry.cc.o.d"
  "/root/repo/src/api/testbed.cc" "CMakeFiles/wqe.dir/src/api/testbed.cc.o" "gcc" "CMakeFiles/wqe.dir/src/api/testbed.cc.o.d"
  "/root/repo/src/clef/image_metadata.cc" "CMakeFiles/wqe.dir/src/clef/image_metadata.cc.o" "gcc" "CMakeFiles/wqe.dir/src/clef/image_metadata.cc.o.d"
  "/root/repo/src/clef/track.cc" "CMakeFiles/wqe.dir/src/clef/track.cc.o" "gcc" "CMakeFiles/wqe.dir/src/clef/track.cc.o.d"
  "/root/repo/src/clef/track_generator.cc" "CMakeFiles/wqe.dir/src/clef/track_generator.cc.o" "gcc" "CMakeFiles/wqe.dir/src/clef/track_generator.cc.o.d"
  "/root/repo/src/common/hash.cc" "CMakeFiles/wqe.dir/src/common/hash.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/wqe.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/wqe.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/wqe.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/wqe.dir/src/common/status.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/wqe.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "CMakeFiles/wqe.dir/src/common/table_printer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/common/table_printer.cc.o.d"
  "/root/repo/src/expansion/baselines.cc" "CMakeFiles/wqe.dir/src/expansion/baselines.cc.o" "gcc" "CMakeFiles/wqe.dir/src/expansion/baselines.cc.o.d"
  "/root/repo/src/expansion/cycle_expander.cc" "CMakeFiles/wqe.dir/src/expansion/cycle_expander.cc.o" "gcc" "CMakeFiles/wqe.dir/src/expansion/cycle_expander.cc.o.d"
  "/root/repo/src/expansion/expander.cc" "CMakeFiles/wqe.dir/src/expansion/expander.cc.o" "gcc" "CMakeFiles/wqe.dir/src/expansion/expander.cc.o.d"
  "/root/repo/src/graph/connected_components.cc" "CMakeFiles/wqe.dir/src/graph/connected_components.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/connected_components.cc.o.d"
  "/root/repo/src/graph/csr.cc" "CMakeFiles/wqe.dir/src/graph/csr.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/csr.cc.o.d"
  "/root/repo/src/graph/cycle_metrics.cc" "CMakeFiles/wqe.dir/src/graph/cycle_metrics.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/cycle_metrics.cc.o.d"
  "/root/repo/src/graph/cycles.cc" "CMakeFiles/wqe.dir/src/graph/cycles.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/cycles.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/wqe.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "CMakeFiles/wqe.dir/src/graph/subgraph.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/subgraph.cc.o.d"
  "/root/repo/src/graph/triangles.cc" "CMakeFiles/wqe.dir/src/graph/triangles.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/triangles.cc.o.d"
  "/root/repo/src/graph/undirected_view.cc" "CMakeFiles/wqe.dir/src/graph/undirected_view.cc.o" "gcc" "CMakeFiles/wqe.dir/src/graph/undirected_view.cc.o.d"
  "/root/repo/src/groundtruth/ground_truth.cc" "CMakeFiles/wqe.dir/src/groundtruth/ground_truth.cc.o" "gcc" "CMakeFiles/wqe.dir/src/groundtruth/ground_truth.cc.o.d"
  "/root/repo/src/groundtruth/pipeline.cc" "CMakeFiles/wqe.dir/src/groundtruth/pipeline.cc.o" "gcc" "CMakeFiles/wqe.dir/src/groundtruth/pipeline.cc.o.d"
  "/root/repo/src/groundtruth/query_graph.cc" "CMakeFiles/wqe.dir/src/groundtruth/query_graph.cc.o" "gcc" "CMakeFiles/wqe.dir/src/groundtruth/query_graph.cc.o.d"
  "/root/repo/src/groundtruth/xq_optimizer.cc" "CMakeFiles/wqe.dir/src/groundtruth/xq_optimizer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/groundtruth/xq_optimizer.cc.o.d"
  "/root/repo/src/ir/document_store.cc" "CMakeFiles/wqe.dir/src/ir/document_store.cc.o" "gcc" "CMakeFiles/wqe.dir/src/ir/document_store.cc.o.d"
  "/root/repo/src/ir/eval.cc" "CMakeFiles/wqe.dir/src/ir/eval.cc.o" "gcc" "CMakeFiles/wqe.dir/src/ir/eval.cc.o.d"
  "/root/repo/src/ir/inverted_index.cc" "CMakeFiles/wqe.dir/src/ir/inverted_index.cc.o" "gcc" "CMakeFiles/wqe.dir/src/ir/inverted_index.cc.o.d"
  "/root/repo/src/ir/query.cc" "CMakeFiles/wqe.dir/src/ir/query.cc.o" "gcc" "CMakeFiles/wqe.dir/src/ir/query.cc.o.d"
  "/root/repo/src/ir/scorer.cc" "CMakeFiles/wqe.dir/src/ir/scorer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/ir/scorer.cc.o.d"
  "/root/repo/src/ir/search_engine.cc" "CMakeFiles/wqe.dir/src/ir/search_engine.cc.o" "gcc" "CMakeFiles/wqe.dir/src/ir/search_engine.cc.o.d"
  "/root/repo/src/linking/entity_linker.cc" "CMakeFiles/wqe.dir/src/linking/entity_linker.cc.o" "gcc" "CMakeFiles/wqe.dir/src/linking/entity_linker.cc.o.d"
  "/root/repo/src/serve/expansion_cache.cc" "CMakeFiles/wqe.dir/src/serve/expansion_cache.cc.o" "gcc" "CMakeFiles/wqe.dir/src/serve/expansion_cache.cc.o.d"
  "/root/repo/src/serve/server.cc" "CMakeFiles/wqe.dir/src/serve/server.cc.o" "gcc" "CMakeFiles/wqe.dir/src/serve/server.cc.o.d"
  "/root/repo/src/serve/thread_pool.cc" "CMakeFiles/wqe.dir/src/serve/thread_pool.cc.o" "gcc" "CMakeFiles/wqe.dir/src/serve/thread_pool.cc.o.d"
  "/root/repo/src/text/analyzer.cc" "CMakeFiles/wqe.dir/src/text/analyzer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/text/analyzer.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "CMakeFiles/wqe.dir/src/text/porter_stemmer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/text/porter_stemmer.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "CMakeFiles/wqe.dir/src/text/stopwords.cc.o" "gcc" "CMakeFiles/wqe.dir/src/text/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "CMakeFiles/wqe.dir/src/text/tokenizer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/text/tokenizer.cc.o.d"
  "/root/repo/src/wiki/dump.cc" "CMakeFiles/wqe.dir/src/wiki/dump.cc.o" "gcc" "CMakeFiles/wqe.dir/src/wiki/dump.cc.o.d"
  "/root/repo/src/wiki/knowledge_base.cc" "CMakeFiles/wqe.dir/src/wiki/knowledge_base.cc.o" "gcc" "CMakeFiles/wqe.dir/src/wiki/knowledge_base.cc.o.d"
  "/root/repo/src/wiki/synthetic.cc" "CMakeFiles/wqe.dir/src/wiki/synthetic.cc.o" "gcc" "CMakeFiles/wqe.dir/src/wiki/synthetic.cc.o.d"
  "/root/repo/src/wiki/wordlist.cc" "CMakeFiles/wqe.dir/src/wiki/wordlist.cc.o" "gcc" "CMakeFiles/wqe.dir/src/wiki/wordlist.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "CMakeFiles/wqe.dir/src/xml/xml_parser.cc.o" "gcc" "CMakeFiles/wqe.dir/src/xml/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "CMakeFiles/wqe.dir/src/xml/xml_writer.cc.o" "gcc" "CMakeFiles/wqe.dir/src/xml/xml_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
