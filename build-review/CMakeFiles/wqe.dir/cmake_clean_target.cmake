file(REMOVE_RECURSE
  "libwqe.a"
)
