file(REMOVE_RECURSE
  "CMakeFiles/wqe_text_test.dir/tests/text_test.cc.o"
  "CMakeFiles/wqe_text_test.dir/tests/text_test.cc.o.d"
  "wqe_text_test"
  "wqe_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
