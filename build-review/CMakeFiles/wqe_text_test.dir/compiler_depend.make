# Empty compiler generated dependencies file for wqe_text_test.
# This may be replaced when dependencies are built.
