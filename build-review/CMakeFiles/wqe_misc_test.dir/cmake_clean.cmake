file(REMOVE_RECURSE
  "CMakeFiles/wqe_misc_test.dir/tests/misc_test.cc.o"
  "CMakeFiles/wqe_misc_test.dir/tests/misc_test.cc.o.d"
  "wqe_misc_test"
  "wqe_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
