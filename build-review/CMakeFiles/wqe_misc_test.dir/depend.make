# Empty dependencies file for wqe_misc_test.
# This may be replaced when dependencies are built.
