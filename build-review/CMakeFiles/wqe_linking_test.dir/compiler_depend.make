# Empty compiler generated dependencies file for wqe_linking_test.
# This may be replaced when dependencies are built.
