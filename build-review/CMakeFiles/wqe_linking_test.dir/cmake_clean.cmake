file(REMOVE_RECURSE
  "CMakeFiles/wqe_linking_test.dir/tests/linking_test.cc.o"
  "CMakeFiles/wqe_linking_test.dir/tests/linking_test.cc.o.d"
  "wqe_linking_test"
  "wqe_linking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_linking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
