file(REMOVE_RECURSE
  "CMakeFiles/wqe_cycles_test.dir/tests/cycles_test.cc.o"
  "CMakeFiles/wqe_cycles_test.dir/tests/cycles_test.cc.o.d"
  "wqe_cycles_test"
  "wqe_cycles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_cycles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
