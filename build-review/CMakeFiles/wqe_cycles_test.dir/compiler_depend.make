# Empty compiler generated dependencies file for wqe_cycles_test.
# This may be replaced when dependencies are built.
