file(REMOVE_RECURSE
  "CMakeFiles/wqe_serve_test.dir/tests/serve_test.cc.o"
  "CMakeFiles/wqe_serve_test.dir/tests/serve_test.cc.o.d"
  "wqe_serve_test"
  "wqe_serve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_serve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
