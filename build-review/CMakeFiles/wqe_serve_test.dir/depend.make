# Empty dependencies file for wqe_serve_test.
# This may be replaced when dependencies are built.
