file(REMOVE_RECURSE
  "CMakeFiles/wqe_clef_test.dir/tests/clef_test.cc.o"
  "CMakeFiles/wqe_clef_test.dir/tests/clef_test.cc.o.d"
  "wqe_clef_test"
  "wqe_clef_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_clef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
