# Empty dependencies file for wqe_clef_test.
# This may be replaced when dependencies are built.
