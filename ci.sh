#!/usr/bin/env sh
# CI entry point, lane-selectable so contributors can run one gate
# locally without the full multi-tree build:
#
#   ./ci.sh tier1   — verify build (-Werror) + full ctest
#   ./ci.sh bench   — Release bench smoke + BENCH_*.json schema/trajectory
#   ./ci.sh tsan    — ThreadSanitizer over the concurrency suites
#   ./ci.sh asan    — ASan+UBSan (non-recoverable) over the full ctest suite
#   ./ci.sh faults  — fault-injection chaos suite, Debug then TSan
#   ./ci.sh tidy    — clang-tidy gate over src/ (skips if not installed)
#   ./ci.sh all     — every lane above, in that order (the default)
#
# Mirrors .github/workflows/ci.yml, whose jobs call these same lanes.
# See README "Correctness tooling" for what each lane enforces.
set -eu

run_tier1() {
  set -x
  cmake -B build -S . -DWQE_WERROR=ON
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)
  set +x
}

# Bench smoke: Release tree (the perf numbers people quote), smallest
# cycle-enumeration configs (sequential, legacy, and a 2-thread parallel
# run whose setup hard-asserts bit-identical cycles), the ball-pruning
# bench (whose setup hard-asserts pruned == unpruned cycle sets and a
# >= 1.3x best speedup), and the snapshot-load bench (whose setup
# hard-asserts bit-identical graphs across all startup paths and a
# >= 10x mmap-vs-rebuild speedup), hard-failing on crash or malformed
# JSON so the perf benches and their machine-readable output can't
# silently rot.
#
# Set WQE_WRITE_BASELINE=1 to install this run's BENCH_*.json files into
# bench/baselines/ instead of gating against them — only do this on a
# quiet multi-core host (see bench/baselines/README.md), then commit.
run_bench() {
  set -x
  cmake -B build-bench -S . -DWQE_WERROR=ON -DCMAKE_BUILD_TYPE=Release \
    -DWQE_BUILD_TESTS=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-bench -j --target wqe_bench_perf_cycle_enumeration \
    --target wqe_bench_perf_ball_pruning \
    --target wqe_bench_perf_snapshot_load
  cd build-bench
  ./wqe_bench_perf_cycle_enumeration \
    --benchmark_filter='BM_CycleEnumerationBall(Legacy|Parallel/2)?/3/100$' \
    --benchmark_min_time=0.05
  ./wqe_bench_perf_ball_pruning
  ./wqe_bench_perf_snapshot_load
  python3 - <<'EOF'
import json
with open('BENCH_perf_cycle_enumeration.json') as f:
    data = json.load(f)
assert data['bench'] == 'perf_cycle_enumeration', data
results = data['results']
assert results, 'bench emitted no results'
for r in results:
    assert set(r) == {'name', 'metric', 'value', 'config'}, r
    assert isinstance(r['value'], (int, float)), r
assert any(r['metric'] == 'speedup_vs_legacy' for r in results), \
    'missing CSR-vs-legacy speedup record'
assert any(r['metric'] == 'speedup_vs_sequential' for r in results), \
    'missing parallel-vs-sequential speedup record'
print(f'bench smoke OK: {len(results)} records')
EOF
  # Bench trajectory: the comparator always self-checks (a file must never
  # regress against itself), and gates against a committed baseline when
  # one is present (use `WQE_WRITE_BASELINE=1 ./ci.sh bench` — or
  # `bench_compare.py --write-baseline` directly — to capture one).
  if [ "${WQE_WRITE_BASELINE:-0}" = "1" ]; then
    python3 ../bench/bench_compare.py --write-baseline ../bench/baselines \
      BENCH_perf_cycle_enumeration.json BENCH_perf_ball_pruning.json \
      BENCH_perf_snapshot_load.json
  else
    for bench_json in BENCH_perf_cycle_enumeration.json \
                      BENCH_perf_ball_pruning.json \
                      BENCH_perf_snapshot_load.json; do
      python3 ../bench/bench_compare.py "$bench_json" "$bench_json"
      if [ -f "../bench/baselines/$bench_json" ]; then
        python3 ../bench/bench_compare.py \
          "../bench/baselines/$bench_json" "$bench_json"
      fi
    done
  fi
  cd ..
  set +x
}

# ThreadSanitizer pass over the concurrency subsystem (tests only; the
# benches and examples don't add coverage and double the build).  Debug
# so NDEBUG is off and the WQE_DCHECK contracts (registry freeze, nested
# fan-out) are live — the main build's RelWithDebInfo compiles them out.
# cycles_test rides along for the parallel-enumerator stress case
# (chunk cursor, prefix budget, buffer handoff under TSan) and the
# pruned-identity property suite at 4 threads; ball_prune_test because
# the pruning kernel records into the shared global metrics registry;
# obs_test for the lock-free metrics instruments (multi-writer histogram
# stress) and trace propagation across pool tasks; snapshot_test for hot
# republish under live traffic (epoch swap + cache generation churn).
# (The asan lane below runs the full ctest suite, so both already cover
# obs_test there.)
run_tsan() {
  set -x
  cmake -B build-tsan -S . -DWQE_TSAN=ON -DWQE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  (cd build-tsan && ctest --output-on-failure -R 'serve_test|api_test|cycles_test|obs_test|ball_prune_test|chaos_test|snapshot_test')
  set +x
}

# Fault-injection chaos lane: the seeded fault schedules in chaos_test
# drive randomized failures, delays, deadlines and cancellation through
# the serving stack, asserting no deadlock, fail-atomic batches, and
# bit-identical survivors.  Runs in Debug (WQE_DCHECK contracts live)
# and then again under ThreadSanitizer — injected delays shift thread
# interleavings, which is precisely when races surface.
run_faults() {
  set -x
  cmake -B build-faults -S . -DWQE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-faults -j --target wqe_chaos_test
  (cd build-faults && ctest --output-on-failure -R 'chaos_test')
  cmake -B build-tsan -S . -DWQE_TSAN=ON -DWQE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j --target wqe_chaos_test
  (cd build-tsan && ctest --output-on-failure -R 'chaos_test')
  set +x
}

# AddressSanitizer + UBSan over the *full* ctest suite.  Debug keeps the
# WQE_DCHECK validators (CsrGraph::CheckInvariants at freeze time, the
# cache shard invariants in serve_test) live, so memory errors and
# structural corruption are both fatal here.
run_asan() {
  set -x
  cmake -B build-asan -S . -DWQE_ASAN=ON -DWQE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
  set +x
}

# clang-tidy gate over the library sources, warnings as errors, using the
# committed .clang-tidy (bugprone/concurrency/performance + the
# readability subset the codebase follows).  Skips — loudly, not
# silently — when clang-tidy isn't installed; the ci.yml job installs it,
# so the gate always runs upstream.
run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci.sh tidy: clang-tidy not installed; lane SKIPPED locally" \
         "(the clang-tidy job in .github/workflows/ci.yml still gates merges)"
    return 0
  fi
  set -x
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DWQE_BUILD_TESTS=OFF -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  find src -name '*.cc' -print | sort | \
    xargs clang-tidy -p build-tidy --warnings-as-errors='*' --quiet
  set +x
}

lane="${1:-all}"
case "$lane" in
  tier1) run_tier1 ;;
  bench) run_bench ;;
  tsan)  run_tsan ;;
  asan)  run_asan ;;
  faults) run_faults ;;
  tidy)  run_tidy ;;
  all)
    run_tier1
    run_bench
    run_tsan
    run_asan
    run_faults
    run_tidy
    ;;
  *)
    echo "usage: $0 [tier1|bench|tsan|asan|faults|tidy|all]" >&2
    exit 2
    ;;
esac
echo "ci.sh: lane '$lane' OK"
