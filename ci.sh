#!/usr/bin/env sh
# CI entry point: tier-1 verify with warnings-as-errors on the library,
# then the serve/ concurrency suite under ThreadSanitizer.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -eux

cmake -B build -S . -DWQE_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
cd ..

# ThreadSanitizer pass over the concurrency subsystem (tests only; the
# benches and examples don't add coverage and double the build).  Debug
# so NDEBUG is off and the WQE_DCHECK contracts (registry freeze) are
# live — the main build's RelWithDebInfo compiles them out.
cmake -B build-tsan -S . -DWQE_TSAN=ON -DWQE_WERROR=ON \
  -DCMAKE_BUILD_TYPE=Debug \
  -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
cd build-tsan && ctest --output-on-failure -R 'serve_test|api_test'
