#!/usr/bin/env sh
# CI entry point, lane-selectable so contributors can run one gate
# locally without the full multi-tree build:
#
#   ./ci.sh tier1   — verify build (-Werror) + full ctest
#   ./ci.sh bench   — Release bench smoke + BENCH_*.json schema/trajectory
#   ./ci.sh tsan    — ThreadSanitizer over the concurrency suites
#   ./ci.sh asan    — ASan+UBSan (non-recoverable) over the full ctest suite
#   ./ci.sh tidy    — clang-tidy gate over src/ (skips if not installed)
#   ./ci.sh all     — every lane above, in that order (the default)
#
# Mirrors .github/workflows/ci.yml, whose jobs call these same lanes.
# See README "Correctness tooling" for what each lane enforces.
set -eu

run_tier1() {
  set -x
  cmake -B build -S . -DWQE_WERROR=ON
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)
  set +x
}

# Bench smoke: Release tree (the perf numbers people quote), smallest
# cycle-enumeration configs (sequential, legacy, and a 2-thread parallel
# run whose setup hard-asserts bit-identical cycles), hard-failing on
# crash or malformed JSON so the perf benches and their machine-readable
# output can't silently rot.
run_bench() {
  set -x
  cmake -B build-bench -S . -DWQE_WERROR=ON -DCMAKE_BUILD_TYPE=Release \
    -DWQE_BUILD_TESTS=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-bench -j --target wqe_bench_perf_cycle_enumeration
  cd build-bench
  ./wqe_bench_perf_cycle_enumeration \
    --benchmark_filter='BM_CycleEnumerationBall(Legacy|Parallel/2)?/3/100$' \
    --benchmark_min_time=0.05
  python3 - <<'EOF'
import json
with open('BENCH_perf_cycle_enumeration.json') as f:
    data = json.load(f)
assert data['bench'] == 'perf_cycle_enumeration', data
results = data['results']
assert results, 'bench emitted no results'
for r in results:
    assert set(r) == {'name', 'metric', 'value', 'config'}, r
    assert isinstance(r['value'], (int, float)), r
assert any(r['metric'] == 'speedup_vs_legacy' for r in results), \
    'missing CSR-vs-legacy speedup record'
assert any(r['metric'] == 'speedup_vs_sequential' for r in results), \
    'missing parallel-vs-sequential speedup record'
print(f'bench smoke OK: {len(results)} records')
EOF
  # Bench trajectory: the comparator always self-checks (a file must never
  # regress against itself), and gates against a committed baseline when
  # one is present (drop a BENCH_*.json into bench/baselines/ to arm it).
  python3 ../bench/bench_compare.py \
    BENCH_perf_cycle_enumeration.json BENCH_perf_cycle_enumeration.json
  if [ -f ../bench/baselines/BENCH_perf_cycle_enumeration.json ]; then
    python3 ../bench/bench_compare.py \
      ../bench/baselines/BENCH_perf_cycle_enumeration.json \
      BENCH_perf_cycle_enumeration.json
  fi
  cd ..
  set +x
}

# ThreadSanitizer pass over the concurrency subsystem (tests only; the
# benches and examples don't add coverage and double the build).  Debug
# so NDEBUG is off and the WQE_DCHECK contracts (registry freeze, nested
# fan-out) are live — the main build's RelWithDebInfo compiles them out.
# cycles_test rides along for the parallel-enumerator stress case
# (chunk cursor, prefix budget, buffer handoff under TSan); obs_test for
# the lock-free metrics instruments (multi-writer histogram stress) and
# trace propagation across pool tasks.  (The asan lane below runs the
# full ctest suite, so both already cover obs_test there.)
run_tsan() {
  set -x
  cmake -B build-tsan -S . -DWQE_TSAN=ON -DWQE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  (cd build-tsan && ctest --output-on-failure -R 'serve_test|api_test|cycles_test|obs_test')
  set +x
}

# AddressSanitizer + UBSan over the *full* ctest suite.  Debug keeps the
# WQE_DCHECK validators (CsrGraph::CheckInvariants at freeze time, the
# cache shard invariants in serve_test) live, so memory errors and
# structural corruption are both fatal here.
run_asan() {
  set -x
  cmake -B build-asan -S . -DWQE_ASAN=ON -DWQE_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
  set +x
}

# clang-tidy gate over the library sources, warnings as errors, using the
# committed .clang-tidy (bugprone/concurrency/performance + the
# readability subset the codebase follows).  Skips — loudly, not
# silently — when clang-tidy isn't installed; the ci.yml job installs it,
# so the gate always runs upstream.
run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci.sh tidy: clang-tidy not installed; lane SKIPPED locally" \
         "(the clang-tidy job in .github/workflows/ci.yml still gates merges)"
    return 0
  fi
  set -x
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DWQE_BUILD_TESTS=OFF -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
  find src -name '*.cc' -print | sort | \
    xargs clang-tidy -p build-tidy --warnings-as-errors='*' --quiet
  set +x
}

lane="${1:-all}"
case "$lane" in
  tier1) run_tier1 ;;
  bench) run_bench ;;
  tsan)  run_tsan ;;
  asan)  run_asan ;;
  tidy)  run_tidy ;;
  all)
    run_tier1
    run_bench
    run_tsan
    run_asan
    run_tidy
    ;;
  *)
    echo "usage: $0 [tier1|bench|tsan|asan|tidy|all]" >&2
    exit 2
    ;;
esac
echo "ci.sh: lane '$lane' OK"
