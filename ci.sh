#!/usr/bin/env sh
# CI entry point: tier-1 verify with warnings-as-errors on the library,
# a Release bench smoke (benches must run and emit valid BENCH_*.json),
# then the serve/ concurrency suite under ThreadSanitizer.
# Mirrors .github/workflows/ci.yml so the same checks run locally.
set -eux

cmake -B build -S . -DWQE_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
cd ..

# Bench smoke: Release tree (the perf numbers people quote), smallest
# cycle-enumeration configs (sequential, legacy, and a 2-thread parallel
# run whose setup hard-asserts bit-identical cycles), hard-failing on
# crash or malformed JSON so the perf benches and their machine-readable
# output can't silently rot.
cmake -B build-bench -S . -DWQE_WERROR=ON -DCMAKE_BUILD_TYPE=Release \
  -DWQE_BUILD_TESTS=OFF -DWQE_BUILD_EXAMPLES=OFF
cmake --build build-bench -j --target wqe_bench_perf_cycle_enumeration
cd build-bench
./wqe_bench_perf_cycle_enumeration \
  --benchmark_filter='BM_CycleEnumerationBall(Legacy|Parallel/2)?/3/100$' \
  --benchmark_min_time=0.05
python3 - <<'EOF'
import json
with open('BENCH_perf_cycle_enumeration.json') as f:
    data = json.load(f)
assert data['bench'] == 'perf_cycle_enumeration', data
results = data['results']
assert results, 'bench emitted no results'
for r in results:
    assert set(r) == {'name', 'metric', 'value', 'config'}, r
    assert isinstance(r['value'], (int, float)), r
assert any(r['metric'] == 'speedup_vs_legacy' for r in results), \
    'missing CSR-vs-legacy speedup record'
assert any(r['metric'] == 'speedup_vs_sequential' for r in results), \
    'missing parallel-vs-sequential speedup record'
print(f'bench smoke OK: {len(results)} records')
EOF
# Bench trajectory: the comparator always self-checks (a file must never
# regress against itself), and gates against a committed baseline when
# one is present (drop a BENCH_*.json into bench/baselines/ to arm it).
python3 ../bench/bench_compare.py \
  BENCH_perf_cycle_enumeration.json BENCH_perf_cycle_enumeration.json
if [ -f ../bench/baselines/BENCH_perf_cycle_enumeration.json ]; then
  python3 ../bench/bench_compare.py \
    ../bench/baselines/BENCH_perf_cycle_enumeration.json \
    BENCH_perf_cycle_enumeration.json
fi
cd ..

# ThreadSanitizer pass over the concurrency subsystem (tests only; the
# benches and examples don't add coverage and double the build).  Debug
# so NDEBUG is off and the WQE_DCHECK contracts (registry freeze, nested
# fan-out) are live — the main build's RelWithDebInfo compiles them out.
# cycles_test rides along for the parallel-enumerator stress case
# (chunk cursor, prefix budget, buffer handoff under TSan).
cmake -B build-tsan -S . -DWQE_TSAN=ON -DWQE_WERROR=ON \
  -DCMAKE_BUILD_TYPE=Debug \
  -DWQE_BUILD_BENCHES=OFF -DWQE_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
cd build-tsan && ctest --output-on-failure -R 'serve_test|api_test|cycles_test'
