#!/usr/bin/env sh
# CI entry point: tier-1 verify with warnings-as-errors on the library.
# Mirrors .github/workflows/ci.yml so the same check runs locally.
set -eux

cmake -B build -S . -DWQE_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
