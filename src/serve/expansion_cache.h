#pragma once

/// \file expansion_cache.h
/// \brief Sharded LRU cache for computed expansions.
///
/// Expansion (entity linking + neighborhood extraction + cycle
/// enumeration) dominates query latency and is a pure function of
/// `(keywords, resolved strategy, overrides)` over an immutable knowledge
/// base — ideal cache material.  Keys carry that full triple: the 64-bit
/// hash (common/hash.h over `ExpanderOverrides::Hash`) only picks the
/// shard and bucket, while entry identity is full-key equality, so
/// distinct requests can never alias into one entry.
///
/// Sharding: entries are spread over N independently locked LRU shards by
/// the high bits of the key hash, so concurrent lookups from the worker
/// pool contend only when they land on the same shard.  Per-shard
/// capacity bounds total memory; an optional TTL ages entries out for
/// deployments whose knowledge base is periodically rebuilt.
///
/// Generations: "over an immutable knowledge base" became "over the
/// snapshot that computed it" once the engine learned hot republish
/// (`api::Engine::PublishSnapshot`).  Every entry is stamped with the
/// graph-snapshot generation it was computed under; a `Get` whose caller
/// passes a newer generation treats the entry as stale — dropped on
/// sight, counted as a miss plus a `stale_drops` — so a republish
/// implicitly invalidates the whole cache without any global sweep.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/engine.h"
#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace wqe::serve {

/// \brief Cache tuning.
struct ExpansionCacheOptions {
  /// Total entry budget across all shards (>= 1 enforced per shard).
  size_t capacity = 4096;
  /// Lock granularity; rounded up to a power of two, at least 1.
  size_t num_shards = 16;
  /// Entries older than this are treated as misses and dropped;
  /// zero disables expiry.
  std::chrono::milliseconds ttl{0};
  /// Where the cache registers its `wqe.cache.*{cache=N}` counters;
  /// null uses the global registry.  The `serve::Server` propagates its
  /// own registry choice here so one knob isolates a whole stack.
  obs::MetricsRegistry* registry = nullptr;
};

/// \brief Counter snapshot (monotonic except `entries`).
struct ExpansionCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;    ///< capacity-driven LRU drops
  size_t expirations = 0;  ///< TTL-driven drops
  size_t stale_drops = 0;  ///< generation-mismatch drops (post-republish)
  size_t entries = 0;      ///< currently resident

  double HitRatio() const {
    size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// \brief Thread-safe sharded LRU of `api::ExpandResponse` values.
class ExpansionCache {
 public:
  /// \brief Full cache key; see the file comment for the hash/equality
  /// contract.
  struct Key {
    std::string keywords;
    std::string expander;  ///< resolved canonical strategy name
    api::ExpanderOverrides overrides;

    /// Memoized: the shard pick and the bucket probe of one Get/Put call
    /// share a single computation.  Safe under sharded concurrency: keys
    /// stored in a shard are only re-hashed under that shard's mutex.
    uint64_t Hash() const;
    bool operator==(const Key& other) const {
      return keywords == other.keywords && expander == other.expander &&
             overrides == other.overrides;
    }

    /// \privatesection (memo fields, not part of the key's value)
    mutable uint64_t memo_hash = 0;
    mutable bool memo_valid = false;
  };

  explicit ExpansionCache(ExpansionCacheOptions options = {});

  /// \brief Returns the cached expansion (refreshing its LRU position) or
  /// nullptr on miss.  The returned pointer stays valid after eviction.
  /// `generation` is the caller's pinned graph-snapshot generation: an
  /// entry stamped with a different one is dropped as stale (default 0
  /// matches the default `Put`, for generation-agnostic callers/tests).
  std::shared_ptr<const api::ExpandResponse> Get(const Key& key,
                                                 uint64_t generation = 0);

  /// \brief Inserts (or refreshes) `response` under `key`, stamped with
  /// `generation`, evicting the least-recently-used entry of the target
  /// shard when it is full.
  void Put(const Key& key, api::ExpandResponse response,
           uint64_t generation = 0);

  /// \brief Drops every entry; counters are kept.
  void Clear();

  /// \brief Structural validator (the dynamic complement of the lock
  /// annotations): checks, per shard under its mutex, that the LRU list
  /// and the index are a bijection — equal sizes, every index entry
  /// resolving to a live list node with the same key, every list node
  /// indexed under its own key — that occupancy respects the per-shard
  /// capacity, and that no entry is null.  O(entries); intended for
  /// tests and debug builds, safe (just slow) to call concurrently with
  /// serving traffic.
  Status CheckShardInvariants() const;

  ExpansionCacheStats stats() const;
  size_t size() const;
  size_t num_shards() const { return shards_.size(); }
  const ExpansionCacheOptions& options() const { return options_; }

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const api::ExpandResponse> value;
    std::chrono::steady_clock::time_point inserted;
    uint64_t generation = 0;  ///< graph-snapshot epoch that computed it
  };
  /// One lock + LRU list (front = most recent) + index per shard.
  struct Shard {
    mutable common::Mutex mu;
    std::list<Entry> lru WQE_GUARDED_BY(mu);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index
        WQE_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t hash) const {
    // High bits, so the shard pick stays decorrelated from the
    // shard-local hash table's bucketing; modulo (not a mask) keeps every
    // shard reachable at any configured count.
    return *shards_[(hash >> 32) % shards_.size()];
  }
  bool Expired(const Entry& entry,
               std::chrono::steady_clock::time_point now) const {
    return options_.ttl.count() > 0 && now - entry.inserted >= options_.ttl;
  }

  ExpansionCacheOptions options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Registry-backed outcome counters (`wqe.cache.*{cache=N}`), resolved
  /// in the constructor; recording stays one relaxed fetch_add, exactly
  /// what the member atomics they replaced cost.
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* expirations_ = nullptr;
  obs::Counter* stale_drops_ = nullptr;
};

}  // namespace wqe::serve
