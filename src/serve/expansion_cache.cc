#include "serve/expansion_cache.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace wqe::serve {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint64_t ExpansionCache::Key::Hash() const {
  if (!memo_valid) {
    Hasher hasher;
    hasher.Add(std::string_view(keywords));
    hasher.Add(std::string_view(expander));
    hasher.Add(overrides.Hash());
    memo_hash = hasher.hash();
    memo_valid = true;
  }
  return memo_hash;
}

ExpansionCache::ExpansionCache(ExpansionCacheOptions options)
    : options_(std::move(options)) {
  size_t shards = RoundUpToPowerOfTwo(std::max<size_t>(1, options_.num_shards));
  // More shards than entries would make every shard hold one entry and
  // defeat the LRU; cap shards at the capacity.
  shards = std::min(shards,
                    RoundUpToPowerOfTwo(std::max<size_t>(1, options_.capacity)));
  per_shard_capacity_ =
      std::max<size_t>(1, (std::max<size_t>(1, options_.capacity) +
                           shards - 1) / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  const obs::Labels labels = {{"cache", std::to_string(obs::NextInstanceId())}};
  hits_ = registry.GetCounter("wqe.cache.hits", labels);
  misses_ = registry.GetCounter("wqe.cache.misses", labels);
  evictions_ = registry.GetCounter("wqe.cache.evictions", labels);
  expirations_ = registry.GetCounter("wqe.cache.expirations", labels);
  stale_drops_ = registry.GetCounter("wqe.cache.stale_drops", labels);
}

std::shared_ptr<const api::ExpandResponse> ExpansionCache::Get(
    const Key& key, uint64_t generation) {
  Shard& shard = ShardFor(key.Hash());
  auto now = std::chrono::steady_clock::now();
  common::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->Inc();
    return nullptr;
  }
  if (it->second->generation != generation) {
    // Computed under a different graph epoch — a republish happened.
    // Drop rather than serve a result the current graph may contradict.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    stale_drops_->Inc();
    misses_->Inc();
    return nullptr;
  }
  if (Expired(*it->second, now)) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    expirations_->Inc();
    misses_->Inc();
    return nullptr;
  }
  // Refresh: move to the front of the shard's recency list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Inc();
  return it->second->value;
}

void ExpansionCache::Put(const Key& key, api::ExpandResponse response,
                         uint64_t generation) {
  auto value = std::make_shared<const api::ExpandResponse>(std::move(response));
  Shard& shard = ShardFor(key.Hash());
  auto now = std::chrono::steady_clock::now();
  common::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->inserted = now;
    it->second->generation = generation;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value), now, generation});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_->Inc();
  }
}

void ExpansionCache::Clear() {
  for (auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

Status ExpansionCache::CheckShardInvariants() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    common::MutexLock lock(shard.mu);
    if (shard.lru.size() != shard.index.size()) {
      return Status::Internal("shard ", s, ": lru holds ", shard.lru.size(),
                              " entries but index holds ",
                              shard.index.size());
    }
    if (shard.lru.size() > per_shard_capacity_) {
      return Status::Internal("shard ", s, ": ", shard.lru.size(),
                              " entries exceed per-shard capacity ",
                              per_shard_capacity_);
    }
    // Bijection: every list node is indexed under its own key and the
    // index maps that key straight back to the node.  With equal sizes
    // this also proves every index entry resolves to a live node.
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      auto found = shard.index.find(it->key);
      if (found == shard.index.end()) {
        return Status::Internal("shard ", s,
                                ": lru entry missing from the index");
      }
      if (found->second != it) {
        return Status::Internal("shard ", s,
                                ": index maps a key to a different node");
      }
      if (it->value == nullptr) {
        return Status::Internal("shard ", s, ": null cached value");
      }
      if (&ShardFor(it->key.Hash()) != &shard) {
        return Status::Internal("shard ", s,
                                ": entry hashed to a different shard");
      }
    }
  }
  return Status::OK();
}

ExpansionCacheStats ExpansionCache::stats() const {
  ExpansionCacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  stats.expirations = expirations_->value();
  stats.stale_drops = stale_drops_->value();
  stats.entries = size();
  return stats;
}

size_t ExpansionCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace wqe::serve
