#include "serve/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wqe::serve {

namespace {
/// Set for the lifetime of WorkerLoop; never cleared mid-run, so a task
/// can always identify the pool it is running on.
thread_local ThreadPool* t_current_pool = nullptr;

/// Process-wide queue-wait latency across all pools.  Resolved once; the
/// global registry's instruments live for the process, so the static
/// pointer never dangles.
obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("wqe.serve.queue_wait_ms");
  return histogram;
}

/// Records the enqueue→dequeue gap: always into the histogram, and — when
/// the submitter had a trace in scope — as that trace's own `queue-wait`
/// span (a sibling of the spans the task itself opens).
void RecordQueueWait(std::chrono::steady_clock::time_point enqueued,
                     const common::TraceContext& ctx) {
  const auto now = std::chrono::steady_clock::now();
  const double wait_ms =
      std::chrono::duration<double, std::milli>(now - enqueued).count();
  QueueWaitHistogram()->Record(wait_ms);
  if (ctx.active() && ctx.sampled) {
    obs::SpanRecord record;
    record.trace_id = ctx.trace_id;
    record.span_id = obs::NewSpanId();
    record.parent_span_id = ctx.span_id;
    record.stage = "queue-wait";
    record.start_ms = obs::MillisSinceProcessStart(enqueued);
    record.duration_ms = wait_ms;
    obs::MetricsRegistry::Global().trace_log().Append(std::move(record));
  }
}
}  // namespace

ThreadPool* ThreadPool::CurrentWorkerPool() { return t_current_pool; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> fn) {
  // Capture the submitter's trace context so spans opened inside the task
  // parent under the submitting request, and timestamp the enqueue so the
  // dequeue side can account the queue wait.  The submitter's execution
  // budget (deadline / cancel token) is captured unconditionally — a
  // request's deadline must bind its pool-side work even with
  // observability off.
  const bool timed = obs::Enabled();
  const common::TraceContext ctx =
      timed ? common::CurrentTraceContext() : common::TraceContext{};
  const common::ExecContext exec = common::CurrentExecContext();
  const auto enqueued = timed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  {
    common::MutexLock lock(mu_);
    WQE_CHECK(!shutdown_);
    queue_.push_back([fn = std::move(fn), ctx, exec, enqueued, timed] {
      obs::ScopedTraceContext scope(ctx);
      common::ScopedExecContext exec_scope(exec);
      if (timed) RecordQueueWait(enqueued, ctx);
      WQE_FAULT_DELAY("serve.pool_dispatch");
      fn();
    });
  }
  cv_.NotifyOne();
}

void ThreadPool::Shutdown() {
  // A worker joining its own pool can never return (it would wait on
  // itself); the drain must be driven from outside the pool.
  WQE_DCHECK(!OnWorkerThread());
  // Serialize whole shutdowns (not just the flag flip): a second caller
  // blocks here until the first finishes joining, so concurrent Shutdown
  // calls can never double-join the same workers, and every caller
  // returns only once the pool is fully drained.
  common::MutexLock shutdown_lock(shutdown_mu_);
  {
    common::MutexLock lock(mu_);
    if (shutdown_ && workers_.empty()) return;  // already shut down
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t ThreadPool::queue_depth() const {
  common::MutexLock lock(mu_);
  return queue_.size();
}

uint32_t EffectiveParallelism(uint32_t num_threads, const ThreadPool* pool) {
  if (num_threads == 1) return 1;
  if (ThreadPool::CurrentWorkerPool() != nullptr) return 1;
  uint32_t t = num_threads;
  if (t == 0) {
    t = pool != nullptr ? static_cast<uint32_t>(pool->num_threads()) + 1
                        : std::max(1u, std::thread::hardware_concurrency());
  }
  return std::max(1u, t);
}

void RunParallel(ThreadPool* pool, size_t extra,
                 const std::function<void()>& worker) {
  WQE_DCHECK(pool == nullptr || !pool->OnWorkerThread());
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr && extra > 0) {
    transient = std::make_unique<ThreadPool>(extra);
    pool = transient.get();
  }
  std::vector<std::future<void>> futures;
  futures.reserve(extra);
  for (size_t i = 0; i < extra; ++i) futures.push_back(pool->Submit(worker));
  worker();
  for (std::future<void>& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(mu_);
      // Open-coded wait loop (no predicate lambda) so the analysis can
      // see the guarded reads happen under mu_.
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace wqe::serve
