#pragma once

/// \file server.h
/// \brief The concurrent serving core: Engine + ThreadPool + ExpansionCache.
///
/// `api::Engine`'s serving calls are const and internally thread-safe, but
/// the facade itself is sequential: a batch runs on the caller's thread and
/// a repeated query re-runs linking and cycle enumeration from scratch.
/// `serve::Server` wraps an engine with the two serving-side pieces:
///
///   - `Submit` / `SubmitExpand` enqueue one request on the worker pool
///     and return a `std::future` for its `Result`;
///   - `QueryBatch` / `ExpandBatch` fan a batch across the pool and block
///     until every response is in, preserving input order, the engine's
///     one-expander-per-distinct-config amortization, and its fail-atomic
///     error contract ("request #i" contexts);
///   - every expansion is served through a sharded LRU `ExpansionCache`
///     keyed by `(keywords, resolved strategy, overrides)`, so repeated
///     queries skip linking + enumeration entirely (hits/misses are
///     recorded both here and in `EngineStats`).
///
/// Rankings are bit-identical to sequential `Engine::Query` calls: scoring
/// is deterministic (ties break by DocId, see ir/scorer.h) and cached
/// expansions are pure functions of their key over the immutable KB.
///
/// All workers share the engine KB's one frozen `graph::CsrGraph`
/// snapshot (built once in `Engine::Build`, see graph/csr.h): a cache
/// *miss* slices that snapshot's precomputed flat undirected adjacency
/// for its query ball — it never re-materializes whole-graph adjacency or
/// touches the mutable builder, so cold-miss latency stays flat as
/// workers are added.
///
/// Hot republish: every request pins the engine's current `GraphSnapshot`
/// (`Engine::CurrentSnapshot`) once on its worker and serves entirely
/// from that epoch — expander construction, expansion, and the cache key
/// generation all use the pin, so `Engine::PublishSnapshot` racing a
/// request can never mix graph versions within it.  Cache entries are
/// stamped with the generation that computed them; entries from an older
/// epoch are dropped on lookup (see expansion_cache.h), so a republish
/// invalidates the cache without a sweep.  Batches pin once for the whole
/// batch, keeping their responses mutually consistent.
///
/// The wrapped engine's registry is frozen at construction
/// (`Engine::LockRegistry`): registering strategies while workers resolve
/// names is unsupported.
///
/// One pool per server, even with parallel cycle enumeration in play:
/// expansions run *on* this server's workers, where
/// `graph::CycleEnumerator` detects the worker context
/// (`ThreadPool::CurrentWorkerPool`) and degrades to sequential — nested
/// fan-out can neither deadlock on pool capacity nor spawn a transient
/// pool per request, and request-level parallelism keeps the workers
/// saturated.  Offline analysis colocated with serving (e.g. an E9 sweep
/// against the same engine) should borrow this pool via the non-const
/// `pool()` accessor instead of spawning a second one.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/expansion_cache.h"
#include "serve/thread_pool.h"

namespace wqe::serve {

/// \brief Serving configuration.
struct ServerOptions {
  /// Worker threads; 0 means one per hardware thread.
  size_t num_threads = 0;
  /// Serve expansions through the cache (disable for e.g. A/B latency
  /// measurements of the uncached path).
  bool enable_cache = true;
  ExpansionCacheOptions cache;
  /// Where this server registers its instruments and appends its spans;
  /// null uses the process-global registry.  Must outlive the server.
  /// Propagated into `cache.registry` when that is unset, so pointing a
  /// server at a private registry isolates the whole stack — how the
  /// serving bench gets clean per-configuration percentiles.  The
  /// pool-level `wqe.serve.queue_wait_ms` histogram is the one exception:
  /// pools are registry-agnostic, so queue waits always aggregate
  /// globally (their spans still land in this server's trace log via the
  /// submitter's context).
  obs::MetricsRegistry* registry = nullptr;
  /// Default per-request budget in milliseconds, applied to every
  /// request that does not carry its own `deadline_ms`; 0 (the default)
  /// means no deadline.  The deadline starts at submission (queue wait
  /// spends budget) and is enforced cooperatively inside the kernels —
  /// an over-budget request fails with `Status::DeadlineExceeded`, never
  /// with a partial ranking.
  double default_deadline_ms = 0.0;
  /// Admission bound: new submissions are shed with
  /// `Status::ResourceExhausted` when the pool queue already holds this
  /// many tasks.  0 (the default) = unbounded.  Independently of this
  /// bound, a request with a finite deadline is shed at admission when
  /// the observed queue wait (EWMA of recent enqueue→start gaps) would
  /// already consume its remaining budget — shedding at the door is
  /// cheaper than timing out after queueing.
  size_t max_queue_depth = 0;
};

/// \brief Snapshot of the server-side counters (the engine and cache keep
/// their own).  Returned by value from `Server::stats()`; the live state
/// is `obs::Counter` instruments (`wqe.server.*{server=N}`).
struct ServerStats {
  size_t requests = 0;  ///< singles + batched items submitted (shed included)
  size_t batches = 0;   ///< QueryBatch/ExpandBatch calls
  /// Requests whose `Result` came back non-OK (any stage; the per-stage
  /// split is the `wqe.server.errors_total{stage=...}` counter series).
  /// Includes shed and deadline-exceeded requests.
  size_t requests_failed = 0;
  /// Requests refused at admission (`wqe.server.shed_total`).
  size_t shed = 0;
  /// Requests that failed with `Status::DeadlineExceeded` after being
  /// admitted (`wqe.server.deadline_exceeded`).
  size_t deadline_exceeded = 0;
};

/// \brief One coherent-enough view of a serving stack: server, engine and
/// cache counters plus the request-latency distribution — everything the
/// SLO records in the serving bench and the README example are built
/// from.  `request_latency_ms.Percentile(0.99)` is the p99.
struct ServerSnapshot {
  ServerStats server;
  api::EngineStats engine;
  bool cache_enabled = false;
  ExpansionCacheStats cache;  ///< zeros when the cache is disabled
  obs::HistogramSnapshot request_latency_ms;
  size_t queue_depth = 0;  ///< racy by nature (see ThreadPool)
  size_t pool_threads = 0;
  size_t tasks_executed = 0;
};

/// \brief Concurrent front-end over one `api::Engine`.  Thread-safe: any
/// thread may submit requests or batches concurrently.
///
/// Callers must not block inside pool tasks on work queued behind them;
/// all Server entry points are safe to call from non-worker threads.
class Server {
 public:
  /// \brief Wraps `engine` (borrowed; must outlive the server) and locks
  /// its registry.
  explicit Server(const api::Engine& engine, ServerOptions options = {});

  /// \brief Drains in-flight work and joins the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \name Asynchronous singles
  /// @{
  std::future<Result<api::QueryResponse>> Submit(api::QueryRequest request);
  std::future<Result<api::ExpandResponse>> SubmitExpand(
      api::ExpandRequest request);
  /// @}

  /// \name Parallel batches
  /// Results arrive in input order; identical to `Engine::QueryBatch` /
  /// `Engine::ExpandBatch` output for the same requests.  On any failing
  /// request the whole batch fails (after in-flight work completes) with
  /// the lowest failing index named in the error.
  /// @{
  Result<std::vector<api::QueryResponse>> QueryBatch(
      const std::vector<api::QueryRequest>& requests);
  Result<std::vector<api::ExpandResponse>> ExpandBatch(
      const std::vector<api::ExpandRequest>& requests);
  /// @}

  /// \brief Stops accepting work, finishes what is queued, joins workers.
  /// Idempotent; after shutdown, submissions are a programming error.
  void Shutdown();

  const api::Engine& engine() const { return *engine_; }
  const ThreadPool& pool() const { return pool_; }
  /// \brief Mutable pool access, for passing into analysis/enumeration
  /// calls (`CycleEnumerationOptions::pool`, `AnalyzerOptions::pool`)
  /// so colocated offline work shares this pool instead of spawning its
  /// own.  Mind the FIFO queue: short-lived borrows (one enumeration,
  /// one metrics batch) interleave fine with traffic, but a long
  /// `AnalyzeAll` fan-out occupies every worker until its topics drain —
  /// requests submitted behind it wait.  Run bulk analysis against a
  /// serving engine on its own pool (or off-peak) instead.  Do not call
  /// `Shutdown` through it while serving.
  ThreadPool& pool() { return pool_; }
  /// \brief Null when the cache is disabled.
  const ExpansionCache* cache() const { return cache_.get(); }
  /// \brief Coherent-enough copy of the server counters (relaxed reads;
  /// exact once in-flight requests drain).
  ServerStats stats() const;
  /// \brief Full serving-stack snapshot: counters, latency distribution,
  /// pool state.  See `ServerSnapshot`.
  ServerSnapshot StatsSnapshot() const;
  /// \brief The registry this server records into (the global one unless
  /// `ServerOptions::registry` redirected it).
  obs::MetricsRegistry& metrics_registry() const { return *registry_; }

 private:
  /// One batch's shared expanders, keyed by (strategy, overrides) config
  /// and built lazily under the mutex on the first cache miss that needs
  /// each one — a fully warm batch constructs nothing.  Errored slots are
  /// kept so every request on a bad config reports the same status.
  struct BatchExpanders {
    common::Mutex mu;
    /// Guarded for *mutation*; the map's node stability is what lets a
    /// worker keep using `built[config]->get()` after releasing `mu`
    /// (the pointee is an immutable, internally thread-safe Expander).
    std::map<std::string, Result<std::unique_ptr<expansion::Expander>>> built
        WQE_GUARDED_BY(mu);
  };

  /// Serves one expansion on the pinned `snapshot`: cache lookup first
  /// (generation-checked), then — on a miss — the lazily-built shared
  /// expander from `batch`, or a locally built one when `batch` is null
  /// (the single-request path).
  Result<api::ExpandResponse> ExpandResolved(
      const api::GraphSnapshot& snapshot, const std::string& resolved,
      const std::string& keywords, const api::ExpanderOverrides& overrides,
      BatchExpanders* batch);

  Result<api::ExpandResponse> ExpandOne(const api::ExpandRequest& request);
  Result<api::QueryResponse> QueryOne(const api::QueryRequest& request);

  /// This server's registry instruments (`{server=N}`-labeled), resolved
  /// once at construction; recording through them is wait-free.  The
  /// stage-error counters share one name (`wqe.server.errors_total`)
  /// split by a `stage` label, mirroring the span stages that can fail.
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* requests_failed = nullptr;
    obs::Counter* errors_expander_construction = nullptr;
    obs::Counter* errors_expansion = nullptr;
    obs::Counter* errors_search = nullptr;
    obs::Counter* errors_admission = nullptr;
    obs::Counter* errors_deadline = nullptr;
    obs::Counter* errors_cancelled = nullptr;
    obs::Counter* shed_total = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Histogram* request_latency = nullptr;
    obs::Histogram* cache_lookup = nullptr;
    obs::Histogram* expander_construction = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  /// The execution context one request runs under: its own deadline (or
  /// the server default) computed now, merged with any ambient context
  /// on the submitting thread (the tighter deadline wins).
  common::ExecContext RequestContext(double deadline_ms,
                                     const common::CancelToken& cancel) const;

  /// Admission decision for one request, made on the submitting thread
  /// *before* any task is queued: OK to admit, `ResourceExhausted` (with
  /// counters recorded) to shed.  See `ServerOptions::max_queue_depth`.
  Status AdmitRequest(const common::ExecContext& exec);

  /// Folds one observed enqueue→start gap into the queue-wait EWMA the
  /// admission policy consults.
  void NoteQueueWait(double wait_ms);

  /// Attributes a failed request's status to its obs stage counters
  /// (deadline/cancelled get their own stages and totals).
  void AttributeFailure(const Status& status);

  /// Runs `work()` under a root `request` span (latency → the
  /// `wqe.server.request_latency_ms` histogram), with `exec` installed
  /// as the task's execution context, counting acceptance and failure.
  /// The shared tail of every per-request pool task.  A result that
  /// comes back OK after the budget ran out is demoted to the
  /// interruption status: work finished past its deadline (or after a
  /// cancel) must never be reported as success.
  template <typename Response, typename Work>
  Result<Response> ServeRequest(const common::ExecContext& exec,
                                std::chrono::steady_clock::time_point submitted,
                                Work&& work);

  /// Shared batch skeleton: prepare shared expanders (caller thread), fan
  /// out `run` per request (pool), collect in order, surface the first
  /// error with `what` context.
  template <typename Request, typename Response, typename Run>
  Result<std::vector<Response>> RunBatch(const std::vector<Request>& requests,
                                         const char* what, Run run);

  const api::Engine* engine_;
  ServerOptions options_;
  obs::MetricsRegistry* registry_;  ///< never null after construction
  Instruments instruments_;
  std::unique_ptr<ExpansionCache> cache_;  ///< null when disabled
  /// EWMA (0.8 old / 0.2 new) of observed enqueue→start gaps in ms; the
  /// admission policy's estimate of what a new request would wait.
  std::atomic<double> queue_wait_ewma_ms_{0.0};
  ThreadPool pool_;
};

}  // namespace wqe::serve
