#include "serve/server.h"

#include <map>
#include <string>
#include <utility>

#include "common/macros.h"

namespace wqe::serve {

Server::Server(const api::Engine& engine, ServerOptions options)
    : engine_(&engine),
      options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &obs::MetricsRegistry::Global()),
      pool_(options_.num_threads) {
  engine_->LockRegistry();
  const obs::Labels labels = {
      {"server", std::to_string(obs::NextInstanceId())}};
  instruments_.requests = registry_->GetCounter("wqe.server.requests", labels);
  instruments_.batches = registry_->GetCounter("wqe.server.batches", labels);
  instruments_.requests_failed =
      registry_->GetCounter("wqe.server.requests_failed", labels);
  auto stage_errors = [&](const char* stage) {
    obs::Labels staged = labels;
    staged.emplace_back("stage", stage);
    return registry_->GetCounter("wqe.server.errors_total", std::move(staged));
  };
  instruments_.errors_expander_construction =
      stage_errors("expander-construction");
  instruments_.errors_expansion = stage_errors("expansion");
  instruments_.errors_search = stage_errors("search");
  instruments_.request_latency =
      registry_->GetHistogram("wqe.server.request_latency_ms", labels);
  instruments_.cache_lookup =
      registry_->GetHistogram("wqe.server.cache_lookup_ms", labels);
  instruments_.expander_construction =
      registry_->GetHistogram("wqe.server.expander_construction_ms", labels);
  instruments_.queue_depth =
      registry_->GetGauge("wqe.server.queue_depth", labels);
  // The cache registers its own counters; default it into this server's
  // registry so one knob isolates the whole stack.
  if (options_.enable_cache) {
    if (options_.cache.registry == nullptr) {
      options_.cache.registry = registry_;
    }
    cache_ = std::make_unique<ExpansionCache>(options_.cache);
  }
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() { pool_.Shutdown(); }

ServerStats Server::stats() const {
  ServerStats stats;
  stats.requests = instruments_.requests->value();
  stats.batches = instruments_.batches->value();
  stats.requests_failed = instruments_.requests_failed->value();
  return stats;
}

ServerSnapshot Server::StatsSnapshot() const {
  ServerSnapshot snapshot;
  snapshot.server = stats();
  snapshot.engine = engine_->stats();
  snapshot.cache_enabled = cache_ != nullptr;
  if (cache_ != nullptr) snapshot.cache = cache_->stats();
  snapshot.request_latency_ms = instruments_.request_latency->snapshot();
  snapshot.queue_depth = pool_.queue_depth();
  snapshot.pool_threads = pool_.num_threads();
  snapshot.tasks_executed = pool_.tasks_executed();
  return snapshot;
}

Result<api::ExpandResponse> Server::ExpandResolved(
    const std::string& resolved, const std::string& keywords,
    const api::ExpanderOverrides& overrides, BatchExpanders* batch) {
  ExpansionCache::Key key;
  if (cache_ != nullptr) {
    key = ExpansionCache::Key{keywords, resolved, overrides};
    std::shared_ptr<const api::ExpandResponse> hit;
    {
      obs::Span span("cache-lookup", instruments_.cache_lookup, registry_);
      hit = cache_->Get(key);
    }
    if (hit != nullptr) {
      engine_->NoteCacheHit();
      return *hit;  // copy out of the shared entry
    }
    engine_->NoteCacheMiss();
  }
  // Only a miss needs an expander: batch-shared (built under the batch
  // mutex; map references stay stable under later insertions, and Expand
  // on the shared instance is const) or locally owned for singles.
  const expansion::Expander* expander = nullptr;
  std::unique_ptr<expansion::Expander> owned;
  {
    obs::Span span("expander-construction", instruments_.expander_construction,
                   registry_);
    if (batch != nullptr) {
      common::MutexLock lock(batch->mu);
      std::string config = resolved + overrides.ToKey();
      auto it = batch->built.find(config);
      if (it == batch->built.end()) {
        it = batch->built
                 .emplace(std::move(config),
                          engine_->BuildExpander(resolved, overrides))
                 .first;
      }
      if (!it->second.ok()) {
        instruments_.errors_expander_construction->Inc();
        return it->second.status();
      }
      expander = it->second->get();
    } else {
      Result<std::unique_ptr<expansion::Expander>> built =
          engine_->BuildExpander(resolved, overrides);
      if (!built.ok()) {
        instruments_.errors_expander_construction->Inc();
        return built.status();
      }
      owned = std::move(*built);
      expander = owned.get();
    }
  }
  Result<api::ExpandResponse> response =
      engine_->ExpandWith(*expander, resolved, keywords);
  if (!response.ok()) {
    instruments_.errors_expansion->Inc();
    return response.status();
  }
  if (cache_ != nullptr) cache_->Put(key, *response);
  return response;
}

Result<api::ExpandResponse> Server::ExpandOne(
    const api::ExpandRequest& request) {
  return ExpandResolved(engine_->ResolveStrategy(request.expander),
                        request.keywords, request.overrides,
                        /*expander=*/nullptr);
}

Result<api::QueryResponse> Server::QueryOne(const api::QueryRequest& request) {
  WQE_ASSIGN_OR_RETURN(
      api::ExpandResponse expansion,
      ExpandResolved(engine_->ResolveStrategy(request.expander),
                     request.keywords, request.overrides,
                     /*expander=*/nullptr));
  Result<api::QueryResponse> response =
      engine_->QueryWithExpansion(std::move(expansion), request.top_k);
  if (!response.ok()) instruments_.errors_search->Inc();
  return response;
}

template <typename Response, typename Work>
Result<Response> Server::ServeRequest(Work&& work) {
  obs::Span span("request", instruments_.request_latency, registry_);
  Result<Response> result = work();
  if (!result.ok()) instruments_.requests_failed->Inc();
  return result;
}

std::future<Result<api::QueryResponse>> Server::Submit(
    api::QueryRequest request) {
  instruments_.requests->Inc();
  auto future = pool_.Submit([this, request = std::move(request)]() {
    return ServeRequest<api::QueryResponse>(
        [&] { return QueryOne(request); });
  });
  instruments_.queue_depth->Set(static_cast<double>(pool_.queue_depth()));
  return future;
}

std::future<Result<api::ExpandResponse>> Server::SubmitExpand(
    api::ExpandRequest request) {
  instruments_.requests->Inc();
  auto future = pool_.Submit([this, request = std::move(request)]() {
    return ServeRequest<api::ExpandResponse>(
        [&] { return ExpandOne(request); });
  });
  instruments_.queue_depth->Set(static_cast<double>(pool_.queue_depth()));
  return future;
}

template <typename Request, typename Response, typename Run>
Result<std::vector<Response>> Server::RunBatch(
    const std::vector<Request>& requests, const char* what, Run run) {
  // Root span for the whole batch: the per-request `request` spans parent
  // under it (their tasks run with this context re-installed by the
  // pool), so one trace covers submit → queue-wait → stages → merge.
  obs::Span batch_span("batch", /*latency=*/nullptr, registry_);
  instruments_.batches->Inc();
  instruments_.requests->Inc(requests.size());

  // Phase 1 (caller thread): resolve names only.  Expanders are built
  // lazily in the workers — at most one per distinct (strategy,
  // overrides), the same amortization as Engine::ExpandBatch, but a
  // fully cache-warm batch constructs nothing at all.
  std::vector<std::string> resolved(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    resolved[i] = engine_->ResolveStrategy(requests[i].expander);
  }

  // Phase 2: fan out.  Tasks borrow `requests`/`resolved`/`expanders`;
  // phase 3 waits on every future before this frame can unwind, so the
  // borrows are safe even on failure.
  BatchExpanders expanders;
  std::vector<std::future<Result<Response>>> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(
        pool_.Submit([this, &run, &requests, &resolved, &expanders, i]() {
          return ServeRequest<Response>(
              [&] { return run(&expanders, resolved[i], requests[i]); });
        }));
  }
  instruments_.queue_depth->Set(static_cast<double>(pool_.queue_depth()));

  // Phase 3: collect every result, then surface the lowest failing index
  // (matching the sequential batch's first-error semantics — a bad
  // config fails every request that uses it, so the lowest such index
  // reports just as it would sequentially).
  std::vector<Result<Response>> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  obs::Span merge_span("merge", /*latency=*/nullptr, registry_);
  std::vector<Response> responses;
  responses.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return results[i].status().WithContext(std::string(what) +
                                             " request #" + std::to_string(i));
    }
    responses.push_back(std::move(*results[i]));
  }
  return responses;
}

Result<std::vector<api::QueryResponse>> Server::QueryBatch(
    const std::vector<api::QueryRequest>& requests) {
  return RunBatch<api::QueryRequest, api::QueryResponse>(
      requests, "QueryBatch",
      [this](BatchExpanders* batch, const std::string& name,
             const api::QueryRequest& request) -> Result<api::QueryResponse> {
        WQE_ASSIGN_OR_RETURN(
            api::ExpandResponse expansion,
            ExpandResolved(name, request.keywords, request.overrides, batch));
        Result<api::QueryResponse> response =
            engine_->QueryWithExpansion(std::move(expansion), request.top_k);
        if (!response.ok()) instruments_.errors_search->Inc();
        return response;
      });
}

Result<std::vector<api::ExpandResponse>> Server::ExpandBatch(
    const std::vector<api::ExpandRequest>& requests) {
  return RunBatch<api::ExpandRequest, api::ExpandResponse>(
      requests, "ExpandBatch",
      [this](BatchExpanders* batch, const std::string& name,
             const api::ExpandRequest& request)
          -> Result<api::ExpandResponse> {
        return ExpandResolved(name, request.keywords, request.overrides,
                              batch);
      });
}

}  // namespace wqe::serve
