#include "serve/server.h"

#include <map>
#include <utility>

#include "common/macros.h"

namespace wqe::serve {

Server::Server(const api::Engine& engine, ServerOptions options)
    : engine_(&engine),
      options_(std::move(options)),
      cache_(options_.enable_cache
                 ? std::make_unique<ExpansionCache>(options_.cache)
                 : nullptr),
      pool_(options_.num_threads) {
  engine_->LockRegistry();
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() { pool_.Shutdown(); }

Result<api::ExpandResponse> Server::ExpandResolved(
    const std::string& resolved, const std::string& keywords,
    const api::ExpanderOverrides& overrides, BatchExpanders* batch) {
  ExpansionCache::Key key;
  if (cache_ != nullptr) {
    key = ExpansionCache::Key{keywords, resolved, overrides};
    if (std::shared_ptr<const api::ExpandResponse> hit = cache_->Get(key)) {
      engine_->NoteCacheHit();
      return *hit;  // copy out of the shared entry
    }
    engine_->NoteCacheMiss();
  }
  // Only a miss needs an expander: batch-shared (built under the batch
  // mutex; map references stay stable under later insertions, and Expand
  // on the shared instance is const) or locally owned for singles.
  const expansion::Expander* expander = nullptr;
  std::unique_ptr<expansion::Expander> owned;
  if (batch != nullptr) {
    common::MutexLock lock(batch->mu);
    std::string config = resolved + overrides.ToKey();
    auto it = batch->built.find(config);
    if (it == batch->built.end()) {
      it = batch->built
               .emplace(std::move(config),
                        engine_->BuildExpander(resolved, overrides))
               .first;
    }
    if (!it->second.ok()) return it->second.status();
    expander = it->second->get();
  } else {
    WQE_ASSIGN_OR_RETURN(owned, engine_->BuildExpander(resolved, overrides));
    expander = owned.get();
  }
  WQE_ASSIGN_OR_RETURN(api::ExpandResponse response,
                       engine_->ExpandWith(*expander, resolved, keywords));
  if (cache_ != nullptr) cache_->Put(key, response);
  return response;
}

Result<api::ExpandResponse> Server::ExpandOne(
    const api::ExpandRequest& request) {
  return ExpandResolved(engine_->ResolveStrategy(request.expander),
                        request.keywords, request.overrides,
                        /*expander=*/nullptr);
}

Result<api::QueryResponse> Server::QueryOne(const api::QueryRequest& request) {
  WQE_ASSIGN_OR_RETURN(
      api::ExpandResponse expansion,
      ExpandResolved(engine_->ResolveStrategy(request.expander),
                     request.keywords, request.overrides,
                     /*expander=*/nullptr));
  return engine_->QueryWithExpansion(std::move(expansion), request.top_k);
}

std::future<Result<api::QueryResponse>> Server::Submit(
    api::QueryRequest request) {
  ++stats_.requests;
  return pool_.Submit(
      [this, request = std::move(request)]() { return QueryOne(request); });
}

std::future<Result<api::ExpandResponse>> Server::SubmitExpand(
    api::ExpandRequest request) {
  ++stats_.requests;
  return pool_.Submit(
      [this, request = std::move(request)]() { return ExpandOne(request); });
}

template <typename Request, typename Response, typename Run>
Result<std::vector<Response>> Server::RunBatch(
    const std::vector<Request>& requests, const char* what, Run run) {
  ++stats_.batches;
  stats_.requests += requests.size();

  // Phase 1 (caller thread): resolve names only.  Expanders are built
  // lazily in the workers — at most one per distinct (strategy,
  // overrides), the same amortization as Engine::ExpandBatch, but a
  // fully cache-warm batch constructs nothing at all.
  std::vector<std::string> resolved(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    resolved[i] = engine_->ResolveStrategy(requests[i].expander);
  }

  // Phase 2: fan out.  Tasks borrow `requests`/`resolved`/`expanders`;
  // phase 3 waits on every future before this frame can unwind, so the
  // borrows are safe even on failure.
  BatchExpanders expanders;
  std::vector<std::future<Result<Response>>> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(
        pool_.Submit([&run, &requests, &resolved, &expanders, i]() {
          return run(&expanders, resolved[i], requests[i]);
        }));
  }

  // Phase 3: collect every result, then surface the lowest failing index
  // (matching the sequential batch's first-error semantics — a bad
  // config fails every request that uses it, so the lowest such index
  // reports just as it would sequentially).
  std::vector<Result<Response>> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  std::vector<Response> responses;
  responses.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return results[i].status().WithContext(std::string(what) +
                                             " request #" + std::to_string(i));
    }
    responses.push_back(std::move(*results[i]));
  }
  return responses;
}

Result<std::vector<api::QueryResponse>> Server::QueryBatch(
    const std::vector<api::QueryRequest>& requests) {
  return RunBatch<api::QueryRequest, api::QueryResponse>(
      requests, "QueryBatch",
      [this](BatchExpanders* batch, const std::string& name,
             const api::QueryRequest& request) -> Result<api::QueryResponse> {
        WQE_ASSIGN_OR_RETURN(
            api::ExpandResponse expansion,
            ExpandResolved(name, request.keywords, request.overrides, batch));
        return engine_->QueryWithExpansion(std::move(expansion),
                                           request.top_k);
      });
}

Result<std::vector<api::ExpandResponse>> Server::ExpandBatch(
    const std::vector<api::ExpandRequest>& requests) {
  return RunBatch<api::ExpandRequest, api::ExpandResponse>(
      requests, "ExpandBatch",
      [this](BatchExpanders* batch, const std::string& name,
             const api::ExpandRequest& request)
          -> Result<api::ExpandResponse> {
        return ExpandResolved(name, request.keywords, request.overrides,
                              batch);
      });
}

}  // namespace wqe::serve
