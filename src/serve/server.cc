#include "serve/server.h"

#include <chrono>
#include <map>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"

namespace wqe::serve {

namespace {

/// Interruption outcomes (deadline/cancel) get their own obs stages; the
/// per-stage error counters for expander-construction/expansion/search
/// skip them so one failed request is attributed exactly once.
bool IsInterruption(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled();
}

/// An already-failed future, for requests shed at admission: batch
/// phase 3 and single-submit callers consume them exactly like pool
/// results, so fail-atomic lowest-failing-index semantics are untouched.
template <typename Response>
std::future<Result<Response>> ReadyFuture(Status status) {
  std::promise<Result<Response>> promise;
  promise.set_value(Result<Response>(std::move(status)));
  return promise.get_future();
}

}  // namespace

Server::Server(const api::Engine& engine, ServerOptions options)
    : engine_(&engine),
      options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &obs::MetricsRegistry::Global()),
      pool_(options_.num_threads) {
  engine_->LockRegistry();
  const obs::Labels labels = {
      {"server", std::to_string(obs::NextInstanceId())}};
  instruments_.requests = registry_->GetCounter("wqe.server.requests", labels);
  instruments_.batches = registry_->GetCounter("wqe.server.batches", labels);
  instruments_.requests_failed =
      registry_->GetCounter("wqe.server.requests_failed", labels);
  auto stage_errors = [&](const char* stage) {
    obs::Labels staged = labels;
    staged.emplace_back("stage", stage);
    return registry_->GetCounter("wqe.server.errors_total", std::move(staged));
  };
  instruments_.errors_expander_construction =
      stage_errors("expander-construction");
  instruments_.errors_expansion = stage_errors("expansion");
  instruments_.errors_search = stage_errors("search");
  instruments_.errors_admission = stage_errors("admission");
  instruments_.errors_deadline = stage_errors("deadline");
  instruments_.errors_cancelled = stage_errors("cancelled");
  instruments_.shed_total =
      registry_->GetCounter("wqe.server.shed_total", labels);
  instruments_.deadline_exceeded =
      registry_->GetCounter("wqe.server.deadline_exceeded", labels);
  instruments_.request_latency =
      registry_->GetHistogram("wqe.server.request_latency_ms", labels);
  instruments_.cache_lookup =
      registry_->GetHistogram("wqe.server.cache_lookup_ms", labels);
  instruments_.expander_construction =
      registry_->GetHistogram("wqe.server.expander_construction_ms", labels);
  instruments_.queue_depth =
      registry_->GetGauge("wqe.server.queue_depth", labels);
  // The cache registers its own counters; default it into this server's
  // registry so one knob isolates the whole stack.
  if (options_.enable_cache) {
    if (options_.cache.registry == nullptr) {
      options_.cache.registry = registry_;
    }
    cache_ = std::make_unique<ExpansionCache>(options_.cache);
  }
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() { pool_.Shutdown(); }

ServerStats Server::stats() const {
  ServerStats stats;
  stats.requests = instruments_.requests->value();
  stats.batches = instruments_.batches->value();
  stats.requests_failed = instruments_.requests_failed->value();
  stats.shed = instruments_.shed_total->value();
  stats.deadline_exceeded = instruments_.deadline_exceeded->value();
  return stats;
}

ServerSnapshot Server::StatsSnapshot() const {
  ServerSnapshot snapshot;
  snapshot.server = stats();
  snapshot.engine = engine_->stats();
  snapshot.cache_enabled = cache_ != nullptr;
  if (cache_ != nullptr) snapshot.cache = cache_->stats();
  snapshot.request_latency_ms = instruments_.request_latency->snapshot();
  snapshot.queue_depth = pool_.queue_depth();
  snapshot.pool_threads = pool_.num_threads();
  snapshot.tasks_executed = pool_.tasks_executed();
  return snapshot;
}

common::ExecContext Server::RequestContext(
    double deadline_ms, const common::CancelToken& cancel) const {
  common::ExecContext request;
  const double budget_ms =
      deadline_ms > 0.0 ? deadline_ms : options_.default_deadline_ms;
  if (budget_ms > 0.0) {
    request.deadline = common::Deadline::AfterMillis(budget_ms);
  }
  request.cancel = cancel;
  return common::ExecContext::Merge(common::CurrentExecContext(), request);
}

Status Server::AdmitRequest(const common::ExecContext& exec) {
  Status shed = Status::OK();
  const size_t depth = pool_.queue_depth();
  if (options_.max_queue_depth != 0 && depth >= options_.max_queue_depth) {
    shed = Status::ResourceExhausted("shed: queue depth ", depth,
                                     " at max_queue_depth ",
                                     options_.max_queue_depth);
  } else if (!exec.deadline.is_infinite()) {
    const double remaining_ms = exec.deadline.remaining_ms();
    const double expected_wait_ms =
        queue_wait_ewma_ms_.load(std::memory_order_relaxed);
    if (remaining_ms <= 0.0) {
      shed = Status::ResourceExhausted(
          "shed: deadline already expired at admission");
    } else if (expected_wait_ms >= remaining_ms) {
      shed = Status::ResourceExhausted("shed: expected queue wait ",
                                       expected_wait_ms,
                                       "ms exceeds remaining budget ",
                                       remaining_ms, "ms");
    }
  }
  if (!shed.ok()) {
    instruments_.shed_total->Inc();
    instruments_.errors_admission->Inc();
    instruments_.requests_failed->Inc();
  }
  return shed;
}

void Server::NoteQueueWait(double wait_ms) {
  double old_ewma = queue_wait_ewma_ms_.load(std::memory_order_relaxed);
  double next;
  do {
    next = old_ewma == 0.0 ? wait_ms : 0.8 * old_ewma + 0.2 * wait_ms;
  } while (!queue_wait_ewma_ms_.compare_exchange_weak(
      old_ewma, next, std::memory_order_relaxed));
}

void Server::AttributeFailure(const Status& status) {
  if (status.IsDeadlineExceeded()) {
    instruments_.deadline_exceeded->Inc();
    instruments_.errors_deadline->Inc();
  } else if (status.IsCancelled()) {
    instruments_.errors_cancelled->Inc();
  }
}

Result<api::ExpandResponse> Server::ExpandResolved(
    const api::GraphSnapshot& snapshot, const std::string& resolved,
    const std::string& keywords, const api::ExpanderOverrides& overrides,
    BatchExpanders* batch) {
  ExpansionCache::Key key;
  if (cache_ != nullptr) {
    key = ExpansionCache::Key{keywords, resolved, overrides};
    std::shared_ptr<const api::ExpandResponse> hit;
    {
      obs::Span span("cache-lookup", instruments_.cache_lookup, registry_);
      WQE_FAULT_POINT("serve.cache_lookup");
      hit = cache_->Get(key, snapshot.generation);
    }
    if (hit != nullptr) {
      engine_->NoteCacheHit();
      return *hit;  // copy out of the shared entry
    }
    engine_->NoteCacheMiss();
  }
  // Only a miss needs an expander: batch-shared (built under the batch
  // mutex; map references stay stable under later insertions, and Expand
  // on the shared instance is const) or locally owned for singles.
  const expansion::Expander* expander = nullptr;
  std::unique_ptr<expansion::Expander> owned;
  {
    obs::Span span("expander-construction", instruments_.expander_construction,
                   registry_);
    WQE_FAULT_POINT("serve.expander_construction");
    if (batch != nullptr) {
      common::MutexLock lock(batch->mu);
      std::string config = resolved + overrides.ToKey();
      auto it = batch->built.find(config);
      if (it == batch->built.end()) {
        it = batch->built
                 .emplace(std::move(config),
                          engine_->BuildExpander(snapshot, resolved, overrides))
                 .first;
      }
      if (!it->second.ok()) {
        instruments_.errors_expander_construction->Inc();
        return it->second.status();
      }
      expander = it->second->get();
    } else {
      Result<std::unique_ptr<expansion::Expander>> built =
          engine_->BuildExpander(snapshot, resolved, overrides);
      if (!built.ok()) {
        instruments_.errors_expander_construction->Inc();
        return built.status();
      }
      owned = std::move(*built);
      expander = owned.get();
    }
  }
  Result<api::ExpandResponse> response =
      engine_->ExpandWith(*expander, resolved, keywords);
  if (!response.ok()) {
    if (!IsInterruption(response.status())) {
      instruments_.errors_expansion->Inc();
    }
    return response.status();
  }
  // An OK response is always a *complete* expansion (the expander turns
  // truncated enumerations into errors), so it is safe to cache even if
  // the request itself is later demoted for finishing past its deadline.
  // Stamped with the pinned generation: entries computed on an epoch
  // that was republished away die on their next lookup.
  if (cache_ != nullptr) cache_->Put(key, *response, snapshot.generation);
  return response;
}

Result<api::ExpandResponse> Server::ExpandOne(
    const api::ExpandRequest& request) {
  // Pin the graph epoch for this request; a concurrent PublishSnapshot
  // retires the old epoch only after pins like this one drain.
  std::shared_ptr<const api::GraphSnapshot> snapshot =
      engine_->CurrentSnapshot();
  return ExpandResolved(*snapshot, engine_->ResolveStrategy(request.expander),
                        request.keywords, request.overrides,
                        /*batch=*/nullptr);
}

Result<api::QueryResponse> Server::QueryOne(const api::QueryRequest& request) {
  std::shared_ptr<const api::GraphSnapshot> snapshot =
      engine_->CurrentSnapshot();
  WQE_ASSIGN_OR_RETURN(
      api::ExpandResponse expansion,
      ExpandResolved(*snapshot, engine_->ResolveStrategy(request.expander),
                     request.keywords, request.overrides,
                     /*batch=*/nullptr));
  Result<api::QueryResponse> response =
      engine_->QueryWithExpansion(std::move(expansion), request.top_k);
  if (!response.ok() && !IsInterruption(response.status())) {
    instruments_.errors_search->Inc();
  }
  return response;
}

template <typename Response, typename Work>
Result<Response> Server::ServeRequest(
    const common::ExecContext& exec,
    std::chrono::steady_clock::time_point submitted, Work&& work) {
  NoteQueueWait(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - submitted)
                    .count());
  common::ScopedExecContext exec_scope(exec);
  obs::Span span("request", instruments_.request_latency, registry_);
  Result<Response> result = work();
  if (result.ok()) {
    // Work that finished after its budget ran out is not a success: the
    // caller has already given up, and honoring the deadline uniformly
    // keeps outcomes deterministic for a given schedule.
    Status interrupted = common::ExecStatus();
    if (!interrupted.ok()) result = std::move(interrupted);
  }
  if (!result.ok()) {
    instruments_.requests_failed->Inc();
    AttributeFailure(result.status());
  }
  return result;
}

std::future<Result<api::QueryResponse>> Server::Submit(
    api::QueryRequest request) {
  instruments_.requests->Inc();
  const common::ExecContext exec =
      RequestContext(request.deadline_ms, request.cancel);
  if (Status admit = AdmitRequest(exec); !admit.ok()) {
    return ReadyFuture<api::QueryResponse>(std::move(admit));
  }
  const auto submitted = std::chrono::steady_clock::now();
  auto future =
      pool_.Submit([this, exec, submitted, request = std::move(request)]() {
        return ServeRequest<api::QueryResponse>(
            exec, submitted, [&] { return QueryOne(request); });
      });
  instruments_.queue_depth->Set(static_cast<double>(pool_.queue_depth()));
  return future;
}

std::future<Result<api::ExpandResponse>> Server::SubmitExpand(
    api::ExpandRequest request) {
  instruments_.requests->Inc();
  const common::ExecContext exec =
      RequestContext(request.deadline_ms, request.cancel);
  if (Status admit = AdmitRequest(exec); !admit.ok()) {
    return ReadyFuture<api::ExpandResponse>(std::move(admit));
  }
  const auto submitted = std::chrono::steady_clock::now();
  auto future =
      pool_.Submit([this, exec, submitted, request = std::move(request)]() {
        return ServeRequest<api::ExpandResponse>(
            exec, submitted, [&] { return ExpandOne(request); });
      });
  instruments_.queue_depth->Set(static_cast<double>(pool_.queue_depth()));
  return future;
}

template <typename Request, typename Response, typename Run>
Result<std::vector<Response>> Server::RunBatch(
    const std::vector<Request>& requests, const char* what, Run run) {
  // Root span for the whole batch: the per-request `request` spans parent
  // under it (their tasks run with this context re-installed by the
  // pool), so one trace covers submit → queue-wait → stages → merge.
  obs::Span batch_span("batch", /*latency=*/nullptr, registry_);
  instruments_.batches->Inc();
  instruments_.requests->Inc(requests.size());

  // One pin for the whole batch: every item expands on the same graph
  // epoch (and the shared expanders below are built against it), so the
  // batch's responses stay mutually consistent across a mid-batch
  // republish.
  std::shared_ptr<const api::GraphSnapshot> snapshot =
      engine_->CurrentSnapshot();

  // Phase 1 (caller thread): resolve names only.  Expanders are built
  // lazily in the workers — at most one per distinct (strategy,
  // overrides), the same amortization as Engine::ExpandBatch, but a
  // fully cache-warm batch constructs nothing at all.
  std::vector<std::string> resolved(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    resolved[i] = engine_->ResolveStrategy(requests[i].expander);
  }

  // Phase 2: fan out.  Tasks borrow `requests`/`resolved`/`expanders`;
  // phase 3 waits on every future before this frame can unwind, so the
  // borrows are safe even on failure.
  BatchExpanders expanders;
  std::vector<std::future<Result<Response>>> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    // Admission is per batch item: a shed slot becomes an already-failed
    // future, so phase 3's lowest-failing-index semantics cover shed,
    // deadline and ordinary failures uniformly.
    const common::ExecContext exec =
        RequestContext(requests[i].deadline_ms, requests[i].cancel);
    if (Status admit = AdmitRequest(exec); !admit.ok()) {
      futures.push_back(ReadyFuture<Response>(std::move(admit)));
      continue;
    }
    const auto submitted = std::chrono::steady_clock::now();
    futures.push_back(pool_.Submit([this, &run, &requests, &resolved,
                                    &expanders, &snapshot, exec, submitted,
                                    i]() {
      return ServeRequest<Response>(exec, submitted, [&] {
        return run(*snapshot, &expanders, resolved[i], requests[i]);
      });
    }));
  }
  instruments_.queue_depth->Set(static_cast<double>(pool_.queue_depth()));

  // Phase 3: collect every result, then surface the lowest failing index
  // (matching the sequential batch's first-error semantics — a bad
  // config fails every request that uses it, so the lowest such index
  // reports just as it would sequentially).
  std::vector<Result<Response>> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  obs::Span merge_span("merge", /*latency=*/nullptr, registry_);
  std::vector<Response> responses;
  responses.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return results[i].status().WithContext(std::string(what) +
                                             " request #" + std::to_string(i));
    }
    responses.push_back(std::move(*results[i]));
  }
  return responses;
}

Result<std::vector<api::QueryResponse>> Server::QueryBatch(
    const std::vector<api::QueryRequest>& requests) {
  return RunBatch<api::QueryRequest, api::QueryResponse>(
      requests, "QueryBatch",
      [this](const api::GraphSnapshot& snapshot, BatchExpanders* batch,
             const std::string& name,
             const api::QueryRequest& request) -> Result<api::QueryResponse> {
        WQE_ASSIGN_OR_RETURN(
            api::ExpandResponse expansion,
            ExpandResolved(snapshot, name, request.keywords, request.overrides,
                           batch));
        Result<api::QueryResponse> response =
            engine_->QueryWithExpansion(std::move(expansion), request.top_k);
        if (!response.ok() && !IsInterruption(response.status())) {
          instruments_.errors_search->Inc();
        }
        return response;
      });
}

Result<std::vector<api::ExpandResponse>> Server::ExpandBatch(
    const std::vector<api::ExpandRequest>& requests) {
  return RunBatch<api::ExpandRequest, api::ExpandResponse>(
      requests, "ExpandBatch",
      [this](const api::GraphSnapshot& snapshot, BatchExpanders* batch,
             const std::string& name, const api::ExpandRequest& request)
          -> Result<api::ExpandResponse> {
        return ExpandResolved(snapshot, name, request.keywords,
                              request.overrides, batch);
      });
}

}  // namespace wqe::serve
