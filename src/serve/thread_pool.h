#pragma once

/// \file thread_pool.h
/// \brief Fixed-size worker pool with task futures and graceful shutdown.
///
/// The serving layer's unit of concurrency: `serve::Server` fans batched
/// requests across one of these.  Deliberately minimal — a mutex-guarded
/// FIFO and `std::packaged_task` futures — because the tasks it runs
/// (entity linking + cycle enumeration + retrieval) are milliseconds-long,
/// so queue contention is noise.  Work-stealing deques and similar
/// machinery (cf. the Galois runtime this subsystem is modeled after)
/// only pay off for microsecond tasks.

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"

namespace wqe::serve {

/// \brief Fixed-size thread pool.  Thread-safe: any thread may Submit.
class ThreadPool {
 public:
  /// \brief Starts `num_threads` workers; 0 means one per hardware thread
  /// (at least one).
  explicit ThreadPool(size_t num_threads = 0);

  /// \brief Graceful: drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `fn` and returns a future for its result.  Submitting
  /// after `Shutdown` is a programming error (checked).
  ///
  /// Tasks must not block on futures of tasks queued behind them (the
  /// classic pool self-deadlock); the serving layer never does — workers
  /// run leaf work only.
  ///
  /// Observability: the submitter's `common::TraceContext` is captured
  /// here and re-installed for the task's duration, so spans opened
  /// inside the task parent under the submitting request; the
  /// enqueue→dequeue gap is recorded as a `queue-wait` span and into the
  /// `wqe.serve.queue_wait_ms` histogram (see Enqueue).  The submitter's
  /// `common::ExecContext` (deadline + cancel token) is propagated the
  /// same way, so cooperative checks inside the task see the budget of
  /// the request that submitted it.
  template <typename F>
  auto Submit(F&& fn) WQE_EXCLUDES(mu_)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// \brief Stops accepting tasks, finishes everything already queued, and
  /// joins the workers.  Idempotent and safe to call concurrently: every
  /// caller returns only after the drain completes.  Called by the
  /// destructor.  Must not be called from one of this pool's own workers
  /// (a worker joining itself deadlocks; checked in debug builds).
  void Shutdown() WQE_EXCLUDES(shutdown_mu_, mu_);

  /// \brief Configured worker count (immutable — safe to read while
  /// another thread shuts the pool down).
  size_t num_threads() const { return num_threads_; }

  /// \brief Tasks completed so far (monotonic).
  size_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// \brief Tasks currently queued (diagnostic; racy by nature).
  size_t queue_depth() const WQE_EXCLUDES(mu_);

  /// \brief The pool whose worker is executing the calling thread, or
  /// nullptr when the caller is not a pool worker.  Thread-local, O(1).
  ///
  /// This is the nested-parallelism guard: a task that wants to fan
  /// sub-work across a pool must not block on sub-tasks queued behind it
  /// (the classic pool self-deadlock).  Parallel consumers (the cycle
  /// enumerator, the topic analyzer) consult this and degrade to
  /// sequential execution when already running on a worker.
  static ThreadPool* CurrentWorkerPool();

  /// \brief True when the calling thread is one of *this* pool's workers.
  bool OnWorkerThread() const { return CurrentWorkerPool() == this; }

 private:
  /// Type-erased submit: wraps `fn` with trace-context propagation and
  /// queue-wait accounting, then queues it.  Out of line so the
  /// template stays free of observability plumbing.
  void Enqueue(std::function<void()> fn) WQE_EXCLUDES(mu_);

  void WorkerLoop() WQE_EXCLUDES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::deque<std::function<void()>> queue_ WQE_GUARDED_BY(mu_);
  /// Owned by construction and by Shutdown; never touched by workers.
  /// Guarded by shutdown_mu_, which serializes whole shutdowns —
  /// shutdown_mu_ is always taken before mu_ (Shutdown nests them in
  /// that order; no other path holds both).
  std::vector<std::thread> workers_ WQE_GUARDED_BY(shutdown_mu_);
  size_t num_threads_ = 0;
  common::Mutex shutdown_mu_;
  bool shutdown_ WQE_GUARDED_BY(mu_) = false;
  std::atomic<size_t> tasks_executed_{0};
};

/// \name Degrade-aware fan-out helpers
/// The single source of the nested-parallelism policy shared by every
/// parallel kernel (cycle enumeration, metrics batches, topic analysis).
/// Keeping the rules here — not re-derived per call site — is what makes
/// "a pool worker never fans out again" a property of the system rather
/// than a convention.
/// @{

/// \brief Resolves a `num_threads` knob to the count of threads a
/// fan-out may actually use: 1 stays sequential, 0 means auto (the
/// pool's workers + the caller when `pool` is set, otherwise one per
/// hardware thread), and *any* request degrades to 1 when the calling
/// thread is already a pool worker — nested fan-out would deadlock a
/// bounded pool (and must not spawn a transient pool per task either).
uint32_t EffectiveParallelism(uint32_t num_threads, const ThreadPool* pool);

/// \brief Runs `worker` on the calling thread plus `extra` concurrent
/// copies — on `pool` when given, else on a transient pool torn down
/// before returning — and joins them all.  `worker` must be safe to run
/// `extra + 1` times concurrently (the usual shape: an atomic-cursor
/// steal loop over shared chunks).  Callers must have sized `extra`
/// from `EffectiveParallelism`, which guarantees the calling thread is
/// not a worker of `pool` (checked in debug builds) so blocking on the
/// join cannot deadlock the pool.
void RunParallel(ThreadPool* pool, size_t extra,
                 const std::function<void()>& worker);

/// @}

}  // namespace wqe::serve
