#pragma once

/// \file track_generator.h
/// \brief Synthetic ImageCLEF-style track with planted relevance structure.
///
/// Substitute for the ImageCLEF 2011 collection (see DESIGN.md §2).  For
/// each topic the generator picks a knowledge-base domain and three article
/// strata around the topic's query articles Q:
///
///  - **core** articles: mutual-link partners of Q — these sit in length-2
///    cycles and tight triangles with Q, and are mentioned densely in most
///    relevant documents (they sharpen top-1/top-5 precision);
///  - **peripheral** articles: related through shared categories or
///    one-directional links — they sit in category-bridged cycles of
///    length 3–5 and are mentioned in "tail" relevant documents that avoid
///    core vocabulary (they widen top-10/top-15);
///  - **weak** articles: same-domain decoys with no direct relation to Q —
///    they appear in *both* some relevant documents (putting them into
///    L(q.D)) and in many distractor documents (making them harmful
///    expansion features the optimizer must reject).
///
/// Distractor documents contain the exact query phrases amid foreign-topic
/// text, recreating the paper's premise that unexpanded keyword queries
/// are imprecise; non-English sections carry misleading foreign-domain
/// titles, which exercises the §2.1 rule that only the English section is
/// linked.

#include <vector>

#include "clef/track.h"
#include "common/result.h"
#include "wiki/synthetic.h"

namespace wqe::clef {

/// \brief Generator parameters.
struct TrackGeneratorOptions {
  uint64_t seed = 7;
  uint32_t num_topics = 50;

  /// Relevant documents per topic: uniform in [min, max].
  uint32_t min_relevant_docs = 25;
  uint32_t max_relevant_docs = 40;

  /// Distractor documents per topic.
  uint32_t distractors_per_topic = 24;

  /// Topic-independent background documents.
  uint32_t background_docs = 600;

  /// Fraction of relevant documents that are "core" documents (the rest
  /// are vocabulary-mismatch tail documents).
  double core_doc_fraction = 0.45;

  /// Probability a relevant document mentions a query title verbatim.
  /// High enough that the unexpanded query has non-trivial precision —
  /// keeping per-cycle contributions (Figures 5/9) in the paper's range
  /// rather than exploding against a near-zero baseline.
  double query_title_in_core_doc_prob = 0.4;
  double query_title_in_tail_doc_prob = 0.15;

  /// Probability a mention uses a redirect alias instead of the main
  /// title (exercises the synonym-linking path).
  double alias_mention_prob = 0.20;

  /// Probability a relevant document also mentions a weak decoy.
  double weak_in_relevant_prob = 0.30;

  /// Probability a relevant document mentions one article from a *foreign*
  /// domain.  Such articles enter L(q.D) and often X(q), but their
  /// categories do not connect to the topic domain — producing the
  /// disconnected satellite components the paper observes in query graphs
  /// (Figure 3, Table 3's %size < 1).
  double foreign_mention_prob = 0.25;

  /// Strata sizes.
  uint32_t max_core_articles = 8;
  uint32_t max_peripheral_articles = 14;
  uint32_t max_weak_articles = 4;
};

/// \brief Generates the full track against a synthetic knowledge base.
Result<Track> GenerateTrack(const wiki::SyntheticWikipedia& wiki,
                            const TrackGeneratorOptions& options);

}  // namespace wqe::clef
