#pragma once

/// \file track.h
/// \brief The benchmark track: documents + topics (queries with qrels).
///
/// Mirrors the ImageCLEF 2011 Wikipedia image-retrieval track used by the
/// paper: a collection of image-metadata documents and fifty topics, each a
/// keyword query `k` with its set `D` of correct documents.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace wqe::clef {

/// \brief One benchmark document (metadata XML + its external name).
struct TrackDocument {
  std::string name;  ///< external id, e.g. "82531.xml"
  std::string xml;   ///< full metadata file content
};

/// \brief One topic: the tuple q = <k, D> of the paper's Table 1.
struct Topic {
  uint32_t id = 0;
  std::string keywords;                ///< the raw query string k
  std::vector<std::string> relevant;   ///< names of the documents in D

  /// \name Generator provenance (planted ground truth)
  /// Populated by the synthetic generator for tests and sanity checks;
  /// empty when a track is loaded from files. The analysis pipeline never
  /// reads these.
  /// @{
  uint32_t domain = UINT32_MAX;
  std::vector<graph::NodeId> query_articles;
  std::vector<graph::NodeId> planted_good;  ///< intended expansion articles
  std::vector<graph::NodeId> planted_weak;  ///< decoys present in D's docs
  /// @}
};

/// \brief The whole track.
struct Track {
  std::vector<TrackDocument> documents;
  std::vector<Topic> topics;
};

/// \brief Serializes the topic list (id, keywords, qrels) to a plain-text
/// format: one topic per line, `id <TAB> keywords <TAB> doc1;doc2;...`.
std::string WriteTopics(const std::vector<Topic>& topics);

/// \brief Parses the `WriteTopics` format.
Result<std::vector<Topic>> ParseTopics(std::string_view text);

}  // namespace wqe::clef
