#include "clef/track_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "clef/image_metadata.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace wqe::clef {

namespace {

using wiki::KnowledgeBase;
using graph::NodeId;

/// Generic filler vocabulary; deliberately disjoint from the knowledge
/// base's title vocabulary so filler never entity-links.
const char* const kFiller[] = {
    "photograph", "view",  "image",   "scene",   "detail",  "panorama",
    "close-up",   "shot",  "morning", "evening", "sunny",   "cloudy",
    "beautiful",  "quiet", "crowded", "famous",  "typical", "unusual",
};
constexpr size_t kNumFiller = sizeof(kFiller) / sizeof(kFiller[0]);

const char* const kConnectors[] = {"near the", "beside the", "with a",
                                   "under the", "showing the", "behind the"};
constexpr size_t kNumConnectors = 6;

std::string Filler(Rng& rng) { return kFiller[rng.Uniform(kNumFiller)]; }

/// Topic-local context carried through document generation.
struct TopicPlan {
  uint32_t domain = 0;
  std::vector<NodeId> query_articles;
  std::vector<NodeId> core;
  std::vector<NodeId> peripheral;
  std::vector<NodeId> weak;
  /// All good expansion candidates with their structural affinity to the
  /// query articles (descending).  Mention sampling is weighted by this
  /// score, so structurally tighter articles (mutual links, shared
  /// categories → denser cycles) are mentioned more often in relevant
  /// documents — the correlation the paper observes on real Wikipedia.
  std::vector<std::pair<NodeId, double>> good_scored;
};

/// Returns the display title of `article`, or (with probability
/// `alias_prob`) the display title of one of its redirect aliases.
std::string MentionTitle(const KnowledgeBase& kb, NodeId article, Rng& rng,
                         double alias_prob) {
  if (rng.Bernoulli(alias_prob)) {
    std::vector<NodeId> aliases = kb.RedirectsOf(article);
    if (!aliases.empty()) {
      return kb.display_title(
          aliases[rng.Uniform(static_cast<uint32_t>(aliases.size()))]);
    }
  }
  return kb.display_title(article);
}

/// Builds a sentence interleaving the given mention phrases with filler.
std::string BuildSentence(const std::vector<std::string>& mentions,
                          Rng& rng) {
  std::string out = "A " + Filler(rng) + " of the";
  for (size_t i = 0; i < mentions.size(); ++i) {
    if (i > 0) {
      out += " ";
      out += kConnectors[rng.Uniform(kNumConnectors)];
    }
    out += " " + mentions[i];
  }
  out += " on a " + Filler(rng) + " day.";
  return out;
}

/// Foreign-language gibberish mentioning *other-domain* titles; §2.1 must
/// ignore it.
std::string ForeignText(const wiki::SyntheticWikipedia& wiki, uint32_t domain,
                        Rng& rng) {
  const auto& kb = wiki.kb;
  uint32_t num_domains =
      static_cast<uint32_t>(wiki.domain_articles.size());
  uint32_t other = rng.Uniform(num_domains);
  if (other == domain) other = (other + 1) % num_domains;
  const auto& articles = wiki.domain_articles[other];
  NodeId a = articles[rng.Uniform(static_cast<uint32_t>(articles.size()))];
  return "Ein Bild von " + kb.display_title(a) + " im Sommer.";
}

bool Contains(const std::vector<NodeId>& v, NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Classifies the domain's articles into core / peripheral / weak strata
/// relative to the query articles.
void ClassifyStrata(const wiki::SyntheticWikipedia& wiki,
                    const TrackGeneratorOptions& options, TopicPlan* plan,
                    Rng& rng) {
  const KnowledgeBase& kb = wiki.kb;
  const auto& candidates = wiki.domain_articles[plan->domain];

  // Pre-compute category sets of the query articles.
  std::unordered_set<NodeId> query_cats;
  for (NodeId q : plan->query_articles) {
    for (NodeId c : kb.CategoriesOf(q)) query_cats.insert(c);
  }

  struct Scored {
    NodeId article;
    double score;
  };
  std::vector<Scored> scored;
  for (NodeId c : candidates) {
    if (Contains(plan->query_articles, c)) continue;
    uint32_t mutual_count = 0;
    bool single = false, shared_cat = false;
    for (NodeId q : plan->query_articles) {
      bool fwd = kb.graph().HasEdge(q, c, graph::EdgeKind::kLink);
      bool bwd = kb.graph().HasEdge(c, q, graph::EdgeKind::kLink);
      if (fwd && bwd) ++mutual_count;
      if (fwd || bwd) single = true;
    }
    for (NodeId cat : kb.CategoriesOf(c)) {
      if (query_cats.count(cat)) {
        shared_cat = true;
        break;
      }
    }
    // Affinity grows with the number of *mutual* query partners: an
    // article reciprocally linked with several query entities (the third
    // member of a planted triad) is the topic's defining co-subject.
    double score = mutual_count > 0
                       ? 3.0 * static_cast<double>(mutual_count)
                       : (single && shared_cat ? 2.0
                          : single             ? 1.5
                          : shared_cat         ? 1.0
                                               : 0.0);
    scored.push_back({c, score});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });

  for (const Scored& s : scored) {
    if (s.score >= 3.0 && plan->core.size() < options.max_core_articles) {
      plan->core.push_back(s.article);
      plan->good_scored.emplace_back(s.article, s.score);
    } else if (s.score >= 2.0 && s.score < 3.0 &&
               plan->peripheral.size() < options.max_peripheral_articles) {
      plan->peripheral.push_back(s.article);
      plan->good_scored.emplace_back(s.article, s.score);
    }
  }
  // Weak decoys: the *least* related unassigned candidates (scored is
  // sorted descending, so walk from the back).
  for (auto it = scored.rbegin();
       it != scored.rend() && plan->weak.size() < options.max_weak_articles;
       ++it) {
    if (it->score <= 1.5 && !Contains(plan->core, it->article) &&
        !Contains(plan->peripheral, it->article)) {
      plan->weak.push_back(it->article);
    }
  }
  // Guarantee at least one expansion article of each flavour: promote the
  // best-scored unassigned leftovers when a stratum comes up empty.
  auto assigned = [&](NodeId a) {
    return Contains(plan->core, a) || Contains(plan->peripheral, a) ||
           Contains(plan->weak, a);
  };
  if (plan->core.empty()) {
    for (const Scored& s : scored) {
      if (s.score >= 1.5 && !assigned(s.article)) {
        plan->core.push_back(s.article);
        plan->good_scored.emplace_back(s.article, s.score);
        break;
      }
    }
  }
  if (plan->peripheral.empty()) {
    for (const Scored& s : scored) {
      if (!assigned(s.article)) {
        plan->peripheral.push_back(s.article);
        plan->good_scored.emplace_back(s.article, std::max(s.score, 0.5));
        break;
      }
    }
  }
  (void)rng;
}

/// Picks `count` mention titles from `articles` without replacement.
std::vector<std::string> PickMentions(const KnowledgeBase& kb,
                                      const std::vector<NodeId>& articles,
                                      uint32_t count, Rng& rng,
                                      double alias_prob) {
  std::vector<std::string> out;
  if (articles.empty() || count == 0) return out;
  std::vector<uint32_t> idx = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(articles.size()),
      std::min<uint32_t>(count, static_cast<uint32_t>(articles.size())));
  for (uint32_t i : idx) {
    out.push_back(MentionTitle(kb, articles[i], rng, alias_prob));
  }
  return out;
}

/// Picks `count` mention titles from scored candidates without
/// replacement, weighted by affinity.  `favor_high` biases toward high
/// affinity (core documents); otherwise toward low affinity (the
/// vocabulary-mismatch tail documents that long cycles recover).
std::vector<std::string> PickWeightedMentions(
    const KnowledgeBase& kb,
    const std::vector<std::pair<NodeId, double>>& scored, uint32_t count,
    bool favor_high, Rng& rng, double alias_prob) {
  std::vector<std::string> out;
  if (scored.empty() || count == 0) return out;
  double max_score = 0.0;
  for (const auto& [a, s] : scored) max_score = std::max(max_score, s);
  std::vector<NodeId> pool;
  std::vector<double> weights;
  for (const auto& [a, s] : scored) {
    pool.push_back(a);
    // Exponential weighting: the mutual-link partners (affinity 3) become
    // the dominant co-subjects of the topic, as the paper's length-2-cycle
    // articles are on real Wikipedia; low-affinity articles form the long
    // tail that only the vocabulary-mismatch documents mention.
    double w = favor_high ? std::exp(s) : std::exp(max_score - s);
    weights.push_back(std::max(w, 1e-6));
  }
  uint32_t take = std::min<uint32_t>(count,
                                     static_cast<uint32_t>(pool.size()));
  for (uint32_t k = 0; k < take; ++k) {
    size_t pick = rng.WeightedChoice(weights);
    out.push_back(MentionTitle(kb, pool[pick], rng, alias_prob));
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
    weights.erase(weights.begin() + static_cast<ptrdiff_t>(pick));
  }
  return out;
}

/// Assembles one metadata document.
ImageMetadata MakeDocument(uint32_t doc_id,
                           const std::vector<std::string>& name_mentions,
                           const std::vector<std::string>& desc_mentions,
                           const std::vector<std::string>& caption_mentions,
                           const wiki::SyntheticWikipedia& wiki,
                           uint32_t domain, Rng& rng) {
  ImageMetadata meta;
  meta.id = doc_id;
  meta.file = "images/" + std::to_string(doc_id % 10) + "/" +
              std::to_string(doc_id) + ".jpg";
  std::string base_name;
  for (const std::string& m : name_mentions) {
    if (!base_name.empty()) base_name += " ";
    base_name += m;
  }
  if (base_name.empty()) base_name = Filler(rng);
  meta.name = base_name + " " + std::to_string(doc_id) + ".jpg";

  LanguageSection en;
  en.lang = "en";
  en.description = BuildSentence(desc_mentions, rng);
  for (const std::string& m : caption_mentions) {
    ImageCaption cap;
    cap.article_ref =
        "text/en/" + std::to_string(rng.Uniform(9) + 1) + "/" +
        std::to_string(100000 + rng.Uniform(900000));
    cap.text = "The " + m + " " + Filler(rng) + ".";
    en.captions.push_back(std::move(cap));
  }
  meta.sections.push_back(std::move(en));

  LanguageSection de;
  de.lang = "de";
  de.description = ForeignText(wiki, domain, rng);
  meta.sections.push_back(std::move(de));

  meta.general_comment =
      "({{Information |Description= " + BuildSentence(desc_mentions, rng) +
      " |Source= Flickr |Date= 1/1/" + std::to_string(80 + rng.Uniform(20)) +
      " |Author= JA |Permission= GFDL |other_versions= }})";
  meta.license = "GFDL";
  return meta;
}

}  // namespace

Result<Track> GenerateTrack(const wiki::SyntheticWikipedia& wiki,
                            const TrackGeneratorOptions& options) {
  const KnowledgeBase& kb = wiki.kb;
  uint32_t num_domains = static_cast<uint32_t>(wiki.domain_articles.size());
  if (num_domains == 0) {
    return Status::InvalidArgument("knowledge base has no domains");
  }
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (options.min_relevant_docs < 2 ||
      options.min_relevant_docs > options.max_relevant_docs) {
    return Status::InvalidArgument(
        "relevant docs per topic must satisfy 2 <= min <= max");
  }

  Track track;
  Rng rng(options.seed);
  uint32_t next_doc_id = 10000;

  auto add_document = [&track](const ImageMetadata& meta) {
    TrackDocument doc;
    doc.name = std::to_string(meta.id) + ".xml";
    doc.xml = meta.ToXml();
    track.documents.push_back(std::move(doc));
    return track.documents.back().name;
  };

  for (uint32_t t = 0; t < options.num_topics; ++t) {
    Rng topic_rng = rng.Fork(t + 1);
    TopicPlan plan;
    plan.domain = t % num_domains;
    const auto& articles = wiki.domain_articles[plan.domain];

    // Query articles: prefer a hub pair sharing a common *mutual* link
    // partner (the user names two aspects of a tight topic; the third
    // triad member becomes the prime expansion feature), falling back to
    // random hubs. One extra hub is added a third of the time.
    uint32_t hub_pool = std::min<uint32_t>(
        6, static_cast<uint32_t>(articles.size()));
    bool found_pair = false;
    for (uint32_t i = 0; i < hub_pool && !found_pair; ++i) {
      for (uint32_t j = i + 1; j < hub_pool && !found_pair; ++j) {
        for (uint32_t k = 0; k < hub_pool; ++k) {
          if (k == i || k == j) continue;
          auto mutual = [&](NodeId a, NodeId b) {
            return kb.graph().HasEdge(a, b, graph::EdgeKind::kLink) &&
                   kb.graph().HasEdge(b, a, graph::EdgeKind::kLink);
          };
          if (mutual(articles[i], articles[k]) &&
              mutual(articles[j], articles[k])) {
            plan.query_articles = {articles[i], articles[j]};
            found_pair = true;
            break;
          }
        }
      }
    }
    if (!found_pair) {
      uint32_t num_query = 1 + topic_rng.Uniform(2);
      for (uint32_t h : topic_rng.SampleWithoutReplacement(
               hub_pool, std::min(num_query, hub_pool))) {
        plan.query_articles.push_back(articles[h]);
      }
    } else if (topic_rng.Bernoulli(1.0 / 3.0) && hub_pool > 2) {
      // Occasionally a third, unrelated keyword.
      for (uint32_t attempt = 0; attempt < 8; ++attempt) {
        NodeId extra = articles[topic_rng.Uniform(hub_pool)];
        if (!Contains(plan.query_articles, extra)) {
          plan.query_articles.push_back(extra);
          break;
        }
      }
    }

    ClassifyStrata(wiki, options, &plan, topic_rng);

    // Keyword string, e.g. "gondola in venice".
    Topic topic;
    topic.id = 70 + t;
    topic.domain = plan.domain;
    topic.query_articles = plan.query_articles;
    {
      // Connectors ("in") between every pair keep adjacent titles from
      // merging into a longer accidental title match during linking.
      std::vector<std::string> words;
      for (size_t i = 0; i < plan.query_articles.size(); ++i) {
        if (i > 0) words.push_back("in");
        words.push_back(ToLower(kb.display_title(plan.query_articles[i])));
      }
      topic.keywords = Join(words, " ");
    }
    topic.planted_good = plan.core;
    topic.planted_good.insert(topic.planted_good.end(),
                              plan.peripheral.begin(), plan.peripheral.end());
    topic.planted_weak = plan.weak;

    // --- Relevant documents. ---
    uint32_t num_relevant = static_cast<uint32_t>(topic_rng.UniformRange(
        options.min_relevant_docs, options.max_relevant_docs));
    for (uint32_t d = 0; d < num_relevant; ++d) {
      bool core_doc =
          static_cast<double>(d) <
          options.core_doc_fraction * static_cast<double>(num_relevant);

      std::vector<std::string> desc;
      std::vector<std::string> captions;
      std::vector<std::string> name_mentions;
      double ap = options.alias_mention_prob;
      // Each relevant document is *about one* good article (its primary
      // subject, mentioned in the name, description and caption).  One
      // subject per document keeps per-title coverage low, so assembling a
      // high-precision result set requires a sizable, diverse X(q) — as
      // the paper's expansion ratios (median 4.5, max 176) indicate.
      if (!plan.good_scored.empty()) {
        std::vector<std::string> primary = PickWeightedMentions(
            kb, plan.good_scored, 1, /*favor_high=*/core_doc, topic_rng, ap);
        desc = primary;
        captions = primary;
        name_mentions = primary;
      }
      double query_prob = core_doc ? options.query_title_in_core_doc_prob
                                   : options.query_title_in_tail_doc_prob;
      if (topic_rng.Bernoulli(query_prob)) {
        // A document genuinely about the query subject names it both in
        // the description and in the file name (higher phrase tf than a
        // distractor's single passing mention).
        std::string title = MentionTitle(
            kb,
            plan.query_articles[topic_rng.Uniform(static_cast<uint32_t>(
                plan.query_articles.size()))],
            topic_rng, ap);
        desc.push_back(title);
        name_mentions.push_back(title);
      }
      if (topic_rng.Bernoulli(options.weak_in_relevant_prob) &&
          !plan.weak.empty()) {
        desc.push_back(MentionTitle(
            kb,
            plan.weak[topic_rng.Uniform(
                static_cast<uint32_t>(plan.weak.size()))],
            topic_rng, 0.0));
      }
      // Cross-domain mention: puts a foreign article into L(q.D), which
      // becomes a disconnected satellite in the query graph.
      if (topic_rng.Bernoulli(options.foreign_mention_prob) &&
          num_domains > 1) {
        uint32_t other = topic_rng.Uniform(num_domains);
        if (other == plan.domain) other = (other + 1) % num_domains;
        const auto& others = wiki.domain_articles[other];
        desc.push_back(MentionTitle(
            kb, others[topic_rng.Uniform(static_cast<uint32_t>(
                    others.size()))],
            topic_rng, 0.0));
      }
      if (desc.empty()) desc.push_back(Filler(topic_rng));

      ImageMetadata meta = MakeDocument(next_doc_id++, name_mentions, desc,
                                        captions, wiki, plan.domain,
                                        topic_rng);
      topic.relevant.push_back(add_document(meta));
    }

    // --- Distractor documents: exact query phrases in foreign contexts. ---
    for (uint32_t d = 0; d < options.distractors_per_topic; ++d) {
      std::vector<std::string> desc;
      // The query phrase itself — in the description AND the file name,
      // exactly like a genuinely relevant document (this vocabulary
      // collision is what makes unexpanded queries imprecise).
      std::string query_phrase = ToLower(kb.display_title(
          plan.query_articles[topic_rng.Uniform(
              static_cast<uint32_t>(plan.query_articles.size()))]));
      desc.push_back(query_phrase);
      std::vector<std::string> name_mentions = {query_phrase};
      // Weak decoys appear here prominently.
      if (!plan.weak.empty()) {
        auto weak_mentions =
            PickMentions(kb, plan.weak, 1 + topic_rng.Uniform(2), topic_rng,
                         0.0);
        desc.insert(desc.end(), weak_mentions.begin(), weak_mentions.end());
      }
      // Loosely-related vocabulary misused out of context: distractors
      // often carry *peripheral* terms, so distant expansion features are
      // individually noisier than the tight mutual-link partners — the
      // paper's reason why short cycles beat long ones on early precision.
      if (topic_rng.Bernoulli(0.5) && !plan.good_scored.empty()) {
        auto peripheral_mentions = PickWeightedMentions(
            kb, plan.good_scored, 1, /*favor_high=*/false, topic_rng, 0.0);
        desc.insert(desc.end(), peripheral_mentions.begin(),
                    peripheral_mentions.end());
      }
      // Foreign-domain content.
      uint32_t other = topic_rng.Uniform(num_domains);
      if (other == plan.domain) other = (other + 1) % num_domains;
      const auto& others = wiki.domain_articles[other];
      desc.push_back(kb.display_title(
          others[topic_rng.Uniform(static_cast<uint32_t>(others.size()))]));

      ImageMetadata meta = MakeDocument(next_doc_id++, name_mentions, desc,
                                        {}, wiki, plan.domain, topic_rng);
      add_document(meta);
    }

    track.topics.push_back(std::move(topic));
  }

  // --- Background documents: mentions spread over 2–3 domains so no
  // single topic's vocabulary dominates any background document. ---
  Rng bg_rng = rng.Fork(0xBACC);
  for (uint32_t b = 0; b < options.background_docs; ++b) {
    uint32_t primary = bg_rng.Uniform(num_domains);
    std::vector<std::string> desc;
    uint32_t mentions = 2 + bg_rng.Uniform(3);
    for (uint32_t m = 0; m < mentions; ++m) {
      uint32_t domain = m == 0 ? primary : bg_rng.Uniform(num_domains);
      const auto& articles = wiki.domain_articles[domain];
      auto picked = PickMentions(kb, articles, 1, bg_rng, 0.1);
      desc.insert(desc.end(), picked.begin(), picked.end());
    }
    ImageMetadata meta =
        MakeDocument(next_doc_id++, {}, desc, {}, wiki, primary, bg_rng);
    add_document(meta);
  }

  WQE_LOG(Debug) << "track: " << track.documents.size() << " documents, "
                 << track.topics.size() << " topics";
  return track;
}

}  // namespace wqe::clef
