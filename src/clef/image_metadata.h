#pragma once

/// \file image_metadata.h
/// \brief ImageCLEF 2011-style image metadata documents (paper Figure 2).
///
/// Each benchmark document is an XML metadata file describing one image:
/// a file name, per-language text sections (description, comment,
/// captions), a general comment carrying a `{{Information ...}}` template,
/// and a license.  §2.1 of the paper extracts three items before entity
/// linking: ① the file name without extension, ② the English section, and
/// ③ the Description field of the general comment — `ExtractLinkedText`
/// reproduces exactly that.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace wqe::clef {

/// \brief One `<caption article="...">` entry.
struct ImageCaption {
  std::string article_ref;  ///< e.g. "text/en/1/302887"
  std::string text;
};

/// \brief One `<text xml:lang="...">` section.
struct LanguageSection {
  std::string lang;         ///< "en", "de", "fr", ...
  std::string description;
  std::string comment;
  std::vector<ImageCaption> captions;
};

/// \brief Whole metadata file.
struct ImageMetadata {
  uint32_t id = 0;
  std::string file;            ///< e.g. "images/9/82531.jpg"
  std::string name;            ///< e.g. "Field Hamois Belgium.jpg"
  std::vector<LanguageSection> sections;
  std::string general_comment; ///< `({{Information |Description= ... }})`
  std::string license;         ///< e.g. "GFDL"

  /// \brief Serializes to the Figure 2 XML layout.
  std::string ToXml() const;

  /// \brief Finds a section by language; nullptr when absent.
  const LanguageSection* FindSection(std::string_view lang) const;
};

/// \brief Parses a metadata XML file.
Result<ImageMetadata> ParseImageMetadata(std::string_view xml);

/// \brief §2.1 extraction: name without extension ⊕ English section text ⊕
/// the Description field of the general comment, joined with spaces.
std::string ExtractLinkedText(const ImageMetadata& meta);

/// \brief Pulls the `|Description=` value out of an
/// `({{Information |Description= X |Source= ... }})` template; empty when
/// the template or field is missing.
std::string ExtractTemplateDescription(std::string_view general_comment);

}  // namespace wqe::clef
