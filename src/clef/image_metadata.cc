#include "clef/image_metadata.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace wqe::clef {

std::string ImageMetadata::ToXml() const {
  xml::XmlWriter w(3);
  w.WriteDeclaration();
  w.StartElement("image");
  w.WriteAttribute("id", std::to_string(id));
  w.WriteAttribute("file", file);
  w.WriteElement("name", name);
  for (const LanguageSection& sec : sections) {
    w.StartElement("text");
    w.WriteAttribute("xml:lang", sec.lang);
    w.WriteElement("description", sec.description);
    if (sec.comment.empty()) {
      w.WriteEmptyElement("comment");
    } else {
      w.WriteElement("comment", sec.comment);
    }
    for (const ImageCaption& cap : sec.captions) {
      w.StartElement("caption");
      if (!cap.article_ref.empty()) {
        w.WriteAttribute("article", cap.article_ref);
      }
      w.WriteText(cap.text);
      w.EndElement();
    }
    w.EndElement();
  }
  if (!general_comment.empty()) {
    w.WriteElement("comment", general_comment);
  }
  w.WriteElement("license", license);
  w.EndElement();
  return w.TakeString();
}

const LanguageSection* ImageMetadata::FindSection(
    std::string_view lang) const {
  for (const LanguageSection& sec : sections) {
    if (sec.lang == lang) return &sec;
  }
  return nullptr;
}

Result<ImageMetadata> ParseImageMetadata(std::string_view xml_text) {
  xml::PullParser parser(xml_text);
  ImageMetadata meta;
  bool got_image = false;

  for (;;) {
    WQE_ASSIGN_OR_RETURN(xml::Event ev, parser.Next());
    if (ev.type == xml::EventType::kEndDocument) break;
    if (ev.type != xml::EventType::kStartElement) continue;

    if (ev.name == "image") {
      got_image = true;
      std::string id_text(ev.Attr("id"));
      if (!id_text.empty()) {
        meta.id = static_cast<uint32_t>(std::atol(id_text.c_str()));
      }
      meta.file = std::string(ev.Attr("file"));
      continue;
    }
    if (!got_image) {
      return Status::ParseError("root element must be <image>, got <",
                                ev.name, ">");
    }
    if (parser.depth() == 2) {
      if (ev.name == "name") {
        WQE_ASSIGN_OR_RETURN(meta.name, parser.ReadElementText());
      } else if (ev.name == "comment") {
        WQE_ASSIGN_OR_RETURN(meta.general_comment, parser.ReadElementText());
      } else if (ev.name == "license") {
        WQE_ASSIGN_OR_RETURN(meta.license, parser.ReadElementText());
      } else if (ev.name == "text") {
        LanguageSection sec;
        sec.lang = std::string(ev.Attr("xml:lang"));
        for (;;) {
          WQE_ASSIGN_OR_RETURN(xml::Event tev, parser.Next());
          if (tev.type == xml::EventType::kEndElement && tev.name == "text") {
            break;
          }
          if (tev.type == xml::EventType::kEndDocument) {
            return Status::ParseError("document ended inside <text>");
          }
          if (tev.type != xml::EventType::kStartElement) continue;
          if (tev.name == "description") {
            WQE_ASSIGN_OR_RETURN(sec.description, parser.ReadElementText());
          } else if (tev.name == "comment") {
            WQE_ASSIGN_OR_RETURN(sec.comment, parser.ReadElementText());
          } else if (tev.name == "caption") {
            ImageCaption cap;
            cap.article_ref = std::string(tev.Attr("article"));
            WQE_ASSIGN_OR_RETURN(cap.text, parser.ReadElementText());
            sec.captions.push_back(std::move(cap));
          } else {
            WQE_RETURN_NOT_OK(parser.SkipElement());
          }
        }
        meta.sections.push_back(std::move(sec));
      } else {
        WQE_RETURN_NOT_OK(parser.SkipElement());
      }
    }
  }
  if (!got_image) {
    return Status::ParseError("no <image> element found");
  }
  return meta;
}

std::string ExtractTemplateDescription(std::string_view general_comment) {
  size_t info = general_comment.find("{{Information");
  if (info == std::string_view::npos) return "";
  size_t desc = general_comment.find("|Description=", info);
  if (desc == std::string_view::npos) return "";
  size_t value_start = desc + std::string_view("|Description=").size();
  size_t value_end = general_comment.find('|', value_start);
  if (value_end == std::string_view::npos) {
    value_end = general_comment.find("}}", value_start);
  }
  if (value_end == std::string_view::npos) value_end = general_comment.size();
  return std::string(
      Trim(general_comment.substr(value_start, value_end - value_start)));
}

std::string ExtractLinkedText(const ImageMetadata& meta) {
  std::string out;
  auto append = [&out](std::string_view piece) {
    std::string_view trimmed = Trim(piece);
    if (trimmed.empty()) return;
    if (!out.empty()) out += " ";
    out.append(trimmed);
  };

  // ① file name without the extension.
  std::string_view name = meta.name;
  size_t dot = name.rfind('.');
  if (dot != std::string_view::npos) name = name.substr(0, dot);
  append(name);

  // ② the English section (description, comment, captions).
  const LanguageSection* en = meta.FindSection("en");
  if (en != nullptr) {
    append(en->description);
    append(en->comment);
    for (const ImageCaption& cap : en->captions) append(cap.text);
  }

  // ③ the Description field of the general comment template.
  append(ExtractTemplateDescription(meta.general_comment));
  return out;
}

}  // namespace wqe::clef
