#include "clef/track.h"

#include "common/string_util.h"

namespace wqe::clef {

std::string WriteTopics(const std::vector<Topic>& topics) {
  std::string out;
  for (const Topic& t : topics) {
    out += std::to_string(t.id);
    out += "\t";
    out += t.keywords;
    out += "\t";
    out += Join(t.relevant, ";");
    out += "\n";
  }
  return out;
}

Result<std::vector<Topic>> ParseTopics(std::string_view text) {
  std::vector<Topic> topics;
  size_t line_no = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::ParseError("topic line ", line_no, " must have 3 fields, got ",
                                fields.size());
    }
    Topic t;
    t.id = static_cast<uint32_t>(std::atol(fields[0].c_str()));
    t.keywords = std::string(Trim(fields[1]));
    if (t.keywords.empty()) {
      return Status::ParseError("topic line ", line_no, " has empty keywords");
    }
    for (const std::string& name : Split(fields[2], ';')) {
      if (!Trim(name).empty()) t.relevant.emplace_back(Trim(name));
    }
    topics.push_back(std::move(t));
  }
  return topics;
}

}  // namespace wqe::clef
