#pragma once

/// \file stopwords.h
/// \brief Standard English stopword list (INDRI/SMART-derived subset).

#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_set>

namespace wqe::text {

/// \brief Immutable stopword set.
class StopwordSet {
 public:
  /// \brief The default English list used by the retrieval engine and the
  /// entity linker (single-term stopwords never form entities on their own).
  static const StopwordSet& Default();

  /// \brief An empty set (stopping disabled).
  static const StopwordSet& Empty();

  /// \brief Builds a custom set.
  explicit StopwordSet(std::initializer_list<std::string_view> words);
  StopwordSet() = default;

  /// \brief True when `word` (already lowercase) is a stopword.
  bool Contains(std::string_view word) const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace wqe::text
