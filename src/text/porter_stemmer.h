#pragma once

/// \file porter_stemmer.h
/// \brief The classic Porter (1980) suffix-stripping stemmer.
///
/// INDRI's default English stemming is Porter-family; we implement the
/// original five-step algorithm so that query terms and document terms
/// conflate identically on both sides of retrieval.

#include <string>
#include <string_view>

namespace wqe::text {

/// \brief Stateless Porter stemmer.
///
/// Input is expected to be a lowercase ASCII word; tokens containing
/// non-letters are returned unchanged (years, hyphenated compounds).
class PorterStemmer {
 public:
  /// \brief Stems a single lowercase word.
  std::string Stem(std::string_view word) const;
};

}  // namespace wqe::text
