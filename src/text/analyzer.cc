#include "text/analyzer.h"

namespace wqe::text {

std::vector<AnalyzedTerm> Analyzer::Analyze(std::string_view input) const {
  std::vector<Token> tokens = tokenizer_.Tokenize(input);
  std::vector<AnalyzedTerm> out;
  out.reserve(tokens.size());
  for (Token& tok : tokens) {
    if (options_.remove_stopwords && stopwords_->Contains(tok.text)) {
      continue;
    }
    AnalyzedTerm term;
    term.term = ProcessToken(tok.text);
    // Positions are compacted over the kept terms (INDRI-style stopping):
    // "bridge of sighs" indexes as bridge@0 sighs@1, so the title used as
    // an exact phrase matches documents containing it verbatim.
    term.position = static_cast<uint32_t>(out.size());
    term.begin = tok.begin;
    term.end = tok.end;
    out.push_back(std::move(term));
  }
  return out;
}

std::vector<std::string> Analyzer::AnalyzeToStrings(
    std::string_view input) const {
  std::vector<AnalyzedTerm> terms = Analyze(input);
  std::vector<std::string> out;
  out.reserve(terms.size());
  for (auto& t : terms) out.push_back(std::move(t.term));
  return out;
}

std::string Analyzer::ProcessToken(std::string_view token) const {
  if (!options_.stem) return std::string(token);
  return stemmer_.Stem(token);
}

}  // namespace wqe::text
