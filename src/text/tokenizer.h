#pragma once

/// \file tokenizer.h
/// \brief Word tokenization with byte offsets.
///
/// Both the retrieval engine (positional index, phrase matching) and the
/// entity linker (largest-substring title matching) need tokens *with their
/// source offsets*, so the tokenizer reports spans rather than bare strings.

#include <string>
#include <string_view>
#include <vector>

namespace wqe::text {

/// \brief One token: lowercased text plus the byte span it came from.
struct Token {
  std::string text;    ///< lowercased token text
  size_t begin = 0;    ///< byte offset of first char in the input
  size_t end = 0;      ///< one past the last byte in the input

  bool operator==(const Token& other) const = default;
};

/// \brief Tokenization options.
struct TokenizerOptions {
  /// Keep digit-only tokens (e.g. "1712"). Wikipedia titles contain years,
  /// so the default is true.
  bool keep_numbers = true;
  /// Treat intra-word hyphens/apostrophes as part of the token
  /// ("bouches-du-rhone" stays one token).
  bool keep_inner_punct = true;
};

/// \brief Splits text into lowercase word tokens.
///
/// A token is a maximal run of alphanumeric bytes (plus inner `-`/`'` when
/// `keep_inner_punct`). Non-ASCII bytes are treated as letters so UTF-8
/// words survive intact (unlowered).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// \brief Tokenizes `input`; offsets refer to `input` bytes.
  std::vector<Token> Tokenize(std::string_view input) const;

  /// \brief Convenience: tokens as plain strings (no offsets).
  std::vector<std::string> TokenizeToStrings(std::string_view input) const;

 private:
  TokenizerOptions options_;
};

}  // namespace wqe::text
