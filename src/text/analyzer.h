#pragma once

/// \file analyzer.h
/// \brief The full text-analysis pipeline: tokenize → stop → stem.
///
/// Documents at index time and queries at search time must pass through the
/// *same* analyzer instance configuration, otherwise term vocabularies
/// diverge; `ir::SearchEngine` owns one analyzer and applies it to both.

#include <string>
#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace wqe::text {

/// \brief Analyzer configuration.
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// \brief An analyzed term: processed text plus token position and source
/// span.  Positions index the *kept* term sequence (stopwords removed and
/// positions compacted, as INDRI does with stopping enabled), so an exact
/// phrase like "bridge of sighs" matches documents containing it verbatim.
struct AnalyzedTerm {
  std::string term;
  uint32_t position = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// \brief Tokenize → stopword-filter → stem pipeline.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {},
                    const StopwordSet* stopwords = &StopwordSet::Default())
      : options_(options), tokenizer_(options.tokenizer),
        stopwords_(stopwords) {}

  /// \brief Runs the full pipeline on `input`.
  std::vector<AnalyzedTerm> Analyze(std::string_view input) const;

  /// \brief Terms only, no positions.
  std::vector<std::string> AnalyzeToStrings(std::string_view input) const;

  /// \brief Applies stemming (if enabled) to one lowercase token.
  std::string ProcessToken(std::string_view token) const;

  const StopwordSet& stopwords() const { return *stopwords_; }
  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  PorterStemmer stemmer_;
  const StopwordSet* stopwords_;
};

}  // namespace wqe::text
