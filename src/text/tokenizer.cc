#include "text/tokenizer.h"

namespace wqe::text {

namespace {

bool IsWordByte(unsigned char c, bool keep_numbers) {
  if (c >= 0x80) return true;  // UTF-8 continuation/lead bytes: keep
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return keep_numbers || true;  // classified below
  return false;
}

bool IsDigit(unsigned char c) { return c >= '0' && c <= '9'; }

char LowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::vector<Token> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(input[i]);
    if (!IsWordByte(c, options_.keep_numbers)) {
      ++i;
      continue;
    }
    size_t start = i;
    std::string tok;
    while (i < n) {
      unsigned char cur = static_cast<unsigned char>(input[i]);
      if (IsWordByte(cur, options_.keep_numbers)) {
        tok.push_back(LowerAscii(input[i]));
        ++i;
        continue;
      }
      // Inner punctuation: keep a single '-' or '\'' when flanked by word
      // bytes on both sides.
      if (options_.keep_inner_punct && (cur == '-' || cur == '\'') &&
          i + 1 < n &&
          IsWordByte(static_cast<unsigned char>(input[i + 1]),
                     options_.keep_numbers)) {
        tok.push_back(static_cast<char>(cur));
        ++i;
        continue;
      }
      break;
    }
    bool all_digits = true;
    for (char tc : tok) {
      if (!IsDigit(static_cast<unsigned char>(tc))) {
        all_digits = false;
        break;
      }
    }
    if (all_digits && !options_.keep_numbers) {
      continue;  // drop numeric token
    }
    if (!tok.empty()) {
      out.push_back(Token{std::move(tok), start, i});
    }
  }
  return out;
}

std::vector<std::string> Tokenizer::TokenizeToStrings(
    std::string_view input) const {
  std::vector<Token> toks = Tokenize(input);
  std::vector<std::string> out;
  out.reserve(toks.size());
  for (auto& t : toks) out.push_back(std::move(t.text));
  return out;
}

}  // namespace wqe::text
