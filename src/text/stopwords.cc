#include "text/stopwords.h"

#include <string>

namespace wqe::text {

StopwordSet::StopwordSet(std::initializer_list<std::string_view> words) {
  for (std::string_view w : words) words_.emplace(w);
}

bool StopwordSet::Contains(std::string_view word) const {
  return words_.count(std::string(word)) > 0;
}

const StopwordSet& StopwordSet::Default() {
  static const StopwordSet* kDefault = new StopwordSet{
      "a",       "about",   "above",  "after",   "again",   "against",
      "all",     "am",      "an",     "and",     "any",     "are",
      "as",      "at",      "be",     "because", "been",    "before",
      "being",   "below",   "between","both",    "but",     "by",
      "can",     "cannot",  "could",  "did",     "do",      "does",
      "doing",   "down",    "during", "each",    "few",     "for",
      "from",    "further", "had",    "has",     "have",    "having",
      "he",      "her",     "here",   "hers",    "herself", "him",
      "himself", "his",     "how",    "i",       "if",      "in",
      "into",    "is",      "it",     "its",     "itself",  "me",
      "more",    "most",    "my",     "myself",  "no",      "nor",
      "not",     "of",      "off",    "on",      "once",    "only",
      "or",      "other",   "ought",  "our",     "ours",    "ourselves",
      "out",     "over",    "own",    "same",    "she",     "should",
      "so",      "some",    "such",   "than",    "that",    "the",
      "their",   "theirs",  "them",   "themselves", "then", "there",
      "these",   "they",    "this",   "those",   "through", "to",
      "too",     "under",   "until",  "up",      "very",    "was",
      "we",      "were",    "what",   "when",    "where",   "which",
      "while",   "who",     "whom",   "why",     "with",    "would",
      "you",     "your",    "yours",  "yourself","yourselves",
  };
  return *kDefault;
}

const StopwordSet& StopwordSet::Empty() {
  static const StopwordSet* kEmpty = new StopwordSet();
  return *kEmpty;
}

}  // namespace wqe::text
