#include "text/porter_stemmer.h"

namespace wqe::text {

namespace {

/// Working buffer for one stemming run; implements the measure/condition
/// primitives from Porter's paper over a mutable string.
class Run {
 public:
  explicit Run(std::string word) : w_(std::move(word)) {}

  std::string Take() && { return std::move(w_); }

  size_t size() const { return w_.size(); }

  bool IsConsonant(size_t i) const {
    char c = w_[i];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// Porter's m: number of VC sequences in w_[0..end).
  int Measure(size_t end) const {
    int m = 0;
    size_t i = 0;
    // skip initial consonants
    while (i < end && IsConsonant(i)) ++i;
    for (;;) {
      if (i >= end) return m;
      // in vowels
      while (i < end && !IsConsonant(i)) ++i;
      if (i >= end) return m;
      ++m;
      while (i < end && IsConsonant(i)) ++i;
    }
  }

  bool HasVowel(size_t end) const {
    for (size_t i = 0; i < end; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool EndsWith(std::string_view suffix) const {
    return w_.size() >= suffix.size() &&
           std::string_view(w_).substr(w_.size() - suffix.size()) == suffix;
  }

  /// True when the stem before `suffix` ends with a double consonant.
  bool DoubleConsonantAt(size_t end) const {
    if (end < 2) return false;
    if (w_[end - 1] != w_[end - 2]) return false;
    return IsConsonant(end - 1);
  }

  /// Porter's *o: stem ends cvc where the final c is not w, x or y.
  bool EndsCvc(size_t end) const {
    if (end < 3) return false;
    if (!IsConsonant(end - 3) || IsConsonant(end - 2) || !IsConsonant(end - 1))
      return false;
    char c = w_[end - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  /// Replaces `suffix` (must match) by `repl`.
  void Replace(std::string_view suffix, std::string_view repl) {
    w_.resize(w_.size() - suffix.size());
    w_.append(repl);
  }

  /// If the word ends with `suffix` and m(stem) > threshold, replaces it by
  /// `repl` and returns true.
  bool ReplaceIfM(std::string_view suffix, std::string_view repl,
                  int threshold) {
    if (!EndsWith(suffix)) return false;
    size_t stem_end = w_.size() - suffix.size();
    if (Measure(stem_end) > threshold) {
      Replace(suffix, repl);
      return true;
    }
    return true;  // matched but condition failed: rule families stop here
  }

  std::string& str() { return w_; }
  const std::string& str() const { return w_; }

 private:
  std::string w_;
};

void Step1a(Run& r) {
  if (r.EndsWith("sses")) {
    r.Replace("sses", "ss");
  } else if (r.EndsWith("ies")) {
    r.Replace("ies", "i");
  } else if (r.EndsWith("ss")) {
    // keep
  } else if (r.EndsWith("s") && r.size() > 1) {
    r.Replace("s", "");
  }
}

void Step1b(Run& r) {
  bool second_third = false;
  if (r.EndsWith("eed")) {
    size_t stem_end = r.size() - 3;
    if (r.Measure(stem_end) > 0) r.Replace("eed", "ee");
  } else if (r.EndsWith("ed")) {
    size_t stem_end = r.size() - 2;
    if (r.HasVowel(stem_end)) {
      r.Replace("ed", "");
      second_third = true;
    }
  } else if (r.EndsWith("ing")) {
    size_t stem_end = r.size() - 3;
    if (r.HasVowel(stem_end)) {
      r.Replace("ing", "");
      second_third = true;
    }
  }
  if (second_third) {
    if (r.EndsWith("at") || r.EndsWith("bl") || r.EndsWith("iz")) {
      r.str().push_back('e');
    } else if (r.DoubleConsonantAt(r.size()) && !r.EndsWith("l") &&
               !r.EndsWith("s") && !r.EndsWith("z")) {
      r.str().pop_back();
    } else if (r.Measure(r.size()) == 1 && r.EndsCvc(r.size())) {
      r.str().push_back('e');
    }
  }
}

void Step1c(Run& r) {
  if (r.EndsWith("y") && r.size() > 1 && r.HasVowel(r.size() - 1)) {
    r.str().back() = 'i';
  }
}

struct Rule {
  const char* suffix;
  const char* repl;
};

void ApplyRuleTable(Run& r, const Rule* rules, size_t n, int threshold) {
  for (size_t i = 0; i < n; ++i) {
    if (r.EndsWith(rules[i].suffix)) {
      size_t stem_end = r.size() - std::string_view(rules[i].suffix).size();
      if (r.Measure(stem_end) > threshold) {
        r.Replace(rules[i].suffix, rules[i].repl);
      }
      return;  // longest-match families: first hit ends the step
    }
  }
}

void Step2(Run& r) {
  static const Rule kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  // Match the longest applicable suffix, as in the original algorithm
  // (rule order in the paper is grouped by penultimate letter; using
  // longest-match over the whole table is equivalent for this rule set).
  const Rule* best = nullptr;
  size_t best_len = 0;
  for (const Rule& rule : kRules) {
    std::string_view s(rule.suffix);
    if (s.size() > best_len && r.EndsWith(s)) {
      best = &rule;
      best_len = s.size();
    }
  }
  if (best != nullptr) {
    size_t stem_end = r.size() - best_len;
    if (r.Measure(stem_end) > 0) r.Replace(best->suffix, best->repl);
  }
}

void Step3(Run& r) {
  static const Rule kRules[] = {
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""},
  };
  ApplyRuleTable(r, kRules, sizeof(kRules) / sizeof(kRules[0]), 0);
}

void Step4(Run& r) {
  static const char* kSuffixes[] = {
      "al",    "ance", "ence", "er",  "ic",  "able", "ible", "ant", "ement",
      "ment",  "ent",  "ou",   "ism", "ate", "iti",  "ous",  "ive", "ize",
  };
  const char* best = nullptr;
  size_t best_len = 0;
  for (const char* s : kSuffixes) {
    std::string_view sv(s);
    if (sv.size() > best_len && r.EndsWith(sv)) {
      best = s;
      best_len = sv.size();
    }
  }
  // "ion" requires the stem to end in s or t.
  if (r.EndsWith("ion") && 3 > best_len) {
    size_t stem_end = r.size() - 3;
    if (stem_end > 0 &&
        (r.str()[stem_end - 1] == 's' || r.str()[stem_end - 1] == 't')) {
      best = "ion";
      best_len = 3;
    }
  }
  if (best != nullptr) {
    size_t stem_end = r.size() - best_len;
    if (r.Measure(stem_end) > 1) r.Replace(best, "");
  }
}

void Step5a(Run& r) {
  if (r.EndsWith("e")) {
    size_t stem_end = r.size() - 1;
    int m = r.Measure(stem_end);
    if (m > 1 || (m == 1 && !r.EndsCvc(stem_end))) {
      r.Replace("e", "");
    }
  }
}

void Step5b(Run& r) {
  if (r.size() >= 2 && r.str().back() == 'l' &&
      r.DoubleConsonantAt(r.size()) && r.Measure(r.size()) > 1) {
    r.str().pop_back();
  }
}

bool AllLowerAlpha(std::string_view w) {
  for (char c : w) {
    if (c < 'a' || c > 'z') return false;
  }
  return true;
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() <= 2 || !AllLowerAlpha(word)) return std::string(word);
  Run r{std::string(word)};
  Step1a(r);
  Step1b(r);
  Step1c(r);
  Step2(r);
  Step3(r);
  Step4(r);
  Step5a(r);
  Step5b(r);
  return std::move(r).Take();
}

}  // namespace wqe::text
