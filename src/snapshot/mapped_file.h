#pragma once

/// \file mapped_file.h
/// \brief Read-only memory-mapped file (RAII over open/mmap/munmap).
///
/// The zero-copy half of the snapshot loader: `MappedFile::Open` maps the
/// whole file `PROT_READ | MAP_PRIVATE`, so loading a snapshot costs page
/// faults instead of reads, the page cache shares the bytes across every
/// process that maps the same file, and nothing in this process can
/// scribble on them.  A `MappedFile` is handed around as
/// `std::shared_ptr<const MappedFile>` and pinned inside whatever points
/// into it (`graph::CsrGraph::FromSections` storage), so the mapping
/// outlives every span derived from it.

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"

namespace wqe::snapshot {

/// \brief One read-only mapping of a whole file.
class MappedFile {
 public:
  /// \brief Opens and maps `path`; IOError with errno context on any
  /// failure.  An empty file maps to an empty span (valid, no mapping).
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(
        static_cast<const std::byte*>(data_), size_);
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;

  std::string path_;
  void* data_ = nullptr;  ///< null for an empty file
  size_t size_ = 0;
};

}  // namespace wqe::snapshot
