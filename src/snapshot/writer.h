#pragma once

/// \file writer.h
/// \brief `snapshot::Writer` — serializes a frozen knowledge base to the
/// versioned on-disk format (see format.h).
///
/// Writing is build-time/offline work: one pass assembles the section
/// table (every flat CSR array plus label/display-title string blobs),
/// one pass streams the payloads with their FNV-1a checksums.  The
/// bytes land in a sibling `<path>.tmp` file that is atomically
/// renamed over `path` only after a clean flush+close, so (a) a
/// crashed write can never look like a valid snapshot and (b)
/// rewriting a published path is safe while readers have it mmap'd —
/// they keep the old inode; an in-place truncate would SIGBUS them.
/// The written file is what `snapshot::Reader` mmaps back in O(page
/// faults) — see reader.h.
///
/// Obs: records `wqe.snapshot.write_ms` (histogram) and sets
/// `wqe.snapshot.bytes` (gauge) in the global metrics registry.

#include <string>

#include "common/status.h"
#include "wiki/knowledge_base.h"

namespace wqe::snapshot {

/// \brief Snapshot serializer.  Stateless; `Write` is a static one-shot.
class Writer {
 public:
  /// \brief Writes `kb` (which must be frozen — InvalidArgument
  /// otherwise) to `path`, atomically replacing any existing file via a
  /// `<path>.tmp` + rename.  IOError on filesystem failures; a failed
  /// write removes the temp file and leaves `path` untouched.
  /// Concurrent writers to one `path` race on the temp name — publish
  /// pipelines are expected to have a single writer per target.
  static Status Write(const wiki::KnowledgeBase& kb, const std::string& path);
};

/// \brief Convenience alias for `Writer::Write`.
inline Status WriteSnapshot(const wiki::KnowledgeBase& kb,
                            const std::string& path) {
  return Writer::Write(kb, path);
}

}  // namespace wqe::snapshot
