#pragma once

/// \file reader.h
/// \brief `snapshot::Reader` — validates and loads on-disk snapshots.
///
/// Two load modes:
///  - `kMmap` (default): the file is mapped read-only and every CSR span
///    points straight into the mapping — zero copies of the flat arrays,
///    loading costs page faults instead of reads.  The mapping is pinned
///    by the returned graph (`CsrGraph::FromSections` storage), so it
///    lives exactly as long as anything that can reach it.
///  - `kCopy`: the file is read into an anonymous heap buffer.  Same
///    validation, no mmap dependency (the fallback on platforms without
///    one, and the mode to pick when the file may be swapped out from
///    under the process).
///
/// Validation is layered so a corrupt or version-skewed file is rejected
/// with a precise `Status` and can never cause UB:
///  1. header: magic, endianness tag, known version ("future version"
///     files are refused, see format.h), header checksum, declared size;
///  2. section table: known ids, exactly one of each, declared element
///     sizes, 8-byte alignment, overflow-safe in-bounds extents;
///  3. payload checksums (on by default, `verify_checksums`);
///  4. structural shape (always): offset arrays are zero-based, monotone
///     and end at their row-array sizes; every edge endpoint is a valid
///     node id — the properties span/row arithmetic relies on;
///  5. full `CsrGraph::CheckInvariants()` (opt-in, `verify_invariants`).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "snapshot/format.h"
#include "wiki/knowledge_base.h"

namespace wqe::snapshot {

/// \brief How the file's bytes are brought into memory.
enum class LoadMode {
  kMmap,  ///< zero-copy read-only mapping (POSIX)
  kCopy,  ///< eager read into an owned heap buffer
};

/// \brief Load/validation knobs.
struct ReadOptions {
  LoadMode mode = LoadMode::kMmap;
  /// Verify per-section + whole-file checksums (touches every byte).
  bool verify_checksums = true;
  /// Additionally run the full `CsrGraph::CheckInvariants()` pass.
  bool verify_invariants = false;
};

/// \brief One section as described by the (validated) table — for tools
/// and tests that introspect a file.
struct SectionInfo {
  SectionId id{};
  const char* name = "";
  uint32_t elem_size = 0;
  uint64_t count = 0;
  uint64_t size_bytes = 0;
  uint64_t offset = 0;
  uint64_t checksum = 0;
};

/// \brief Whole-file metadata exposed after a successful `Open`.
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t file_size = 0;
  uint64_t file_checksum = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  std::vector<SectionInfo> sections;  ///< in on-disk table order
};

/// \brief Human-readable name of a section id ("out_targets", ...).
const char* SectionName(SectionId id);

/// \brief Open-then-load handle over one snapshot file.
class Reader {
 public:
  /// \brief Opens `path` and runs validation layers 1–4 (and 3 unless
  /// disabled).  ParseError for any corruption or version skew, IOError
  /// for filesystem trouble.
  static Result<Reader> Open(const std::string& path, ReadOptions options = {});

  /// \brief The validated file metadata.
  const SnapshotInfo& info() const { return info_; }

  /// \brief Reconstitutes the knowledge base.  CSR arrays stay zero-copy
  /// in `kMmap` mode (spans into the mapping, which the KB's graph pins);
  /// titles and the title index are materialized either way.
  Result<wiki::KnowledgeBase> Load() const;

 private:
  Reader() = default;

  Status Validate();

  const SectionEntry& section(SectionId id) const {
    return sections_[static_cast<size_t>(id)];
  }
  template <typename T>
  std::span<const T> SectionSpan(SectionId id) const;

  ReadOptions options_;
  std::string path_;
  std::shared_ptr<const void> storage_;  ///< MappedFile or byte buffer
  std::span<const std::byte> bytes_;
  std::array<SectionEntry, kNumSections> sections_{};  ///< indexed by id
  SnapshotInfo info_;
};

/// \brief One-shot convenience: `Open` + `Load` under a `snapshot-load`
/// span, recording `wqe.snapshot.load_ms` and `wqe.snapshot.bytes`.
Result<wiki::KnowledgeBase> LoadSnapshot(const std::string& path,
                                         ReadOptions options = {});

}  // namespace wqe::snapshot
