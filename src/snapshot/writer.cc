#include "snapshot/writer.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "graph/csr.h"
#include "obs/metrics.h"
#include "snapshot/format.h"

namespace wqe::snapshot {

namespace {

static_assert(sizeof(graph::NodeId) == 4, "NodeId layout is part of the format");
static_assert(sizeof(graph::NodeKind) == 1, "NodeKind layout is part of the format");
static_assert(sizeof(graph::EdgeKind) == 1, "EdgeKind layout is part of the format");

/// One payload section queued for writing: its table entry plus the bytes
/// it serializes (borrowed; callers keep them alive until Write returns).
struct PendingSection {
  SectionEntry entry;
  const void* data = nullptr;
};

template <typename T>
PendingSection MakeSection(SectionId id, std::span<const T> span) {
  PendingSection s;
  s.entry.id = static_cast<uint32_t>(id);
  s.entry.elem_size = static_cast<uint32_t>(sizeof(T));
  s.entry.count = span.size();
  s.entry.size_bytes = span.size_bytes();
  s.data = span.data();
  return s;
}

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Concatenates per-node strings into (offsets, bytes) blob form.
void BuildStringBlob(const wiki::KnowledgeBase& kb, bool display,
                     std::vector<uint64_t>* offsets,
                     std::vector<char>* bytes) {
  const uint32_t n = kb.csr().num_nodes();
  offsets->reserve(n + 1);
  offsets->push_back(0);
  for (graph::NodeId u = 0; u < n; ++u) {
    const std::string& s = display ? kb.display_title(u) : kb.title(u);
    bytes->insert(bytes->end(), s.begin(), s.end());
    offsets->push_back(bytes->size());
  }
}

Status IOFail(const char* what, const std::string& path) {
  return Status::IOError(what, " failed for snapshot file '", path, "'");
}

}  // namespace

Status Writer::Write(const wiki::KnowledgeBase& kb, const std::string& path) {
  if (!kb.frozen()) {
    return Status::InvalidArgument(
        "snapshot::Writer needs a frozen knowledge base (call Freeze() "
        "first)");
  }
  Stopwatch watch;
  const graph::CsrGraph& csr = kb.csr();
  const graph::CsrSections g = csr.Sections();

  // --- Assemble sections (ids in on-disk order). ---
  std::vector<uint64_t> meta(kMetaFieldCount, 0);
  meta[kMetaNumNodes] = csr.num_nodes();
  meta[kMetaNumEdges] = csr.num_edges();
  meta[kMetaNodeKindCount0] = g.node_kind_counts[0];
  meta[kMetaNodeKindCount1] = g.node_kind_counts[1];
  for (size_t k = 0; k < 4; ++k) {
    meta[kMetaEdgeKindCount0 + k] = g.edge_kind_counts[k];
  }
  meta[kMetaNumArticles] = kb.num_articles();
  meta[kMetaNumRedirects] = kb.num_redirects();
  meta[kMetaNumCategories] = kb.num_categories();

  std::vector<uint64_t> label_offsets, display_offsets;
  std::vector<char> label_bytes, display_bytes;
  BuildStringBlob(kb, /*display=*/false, &label_offsets, &label_bytes);
  BuildStringBlob(kb, /*display=*/true, &display_offsets, &display_bytes);

  std::vector<PendingSection> sections;
  sections.reserve(kNumSections);
  sections.push_back(
      MakeSection(SectionId::kMeta, std::span<const uint64_t>(meta)));
  sections.push_back(MakeSection(SectionId::kNodeKinds, g.kinds));
  sections.push_back(
      MakeSection(SectionId::kRedirectTarget, g.redirect_target));
  sections.push_back(MakeSection(SectionId::kOutOffsets, g.out_offsets));
  sections.push_back(MakeSection(SectionId::kOutTargets, g.out_targets));
  sections.push_back(MakeSection(SectionId::kOutKinds, g.out_kinds));
  sections.push_back(MakeSection(SectionId::kInOffsets, g.in_offsets));
  sections.push_back(MakeSection(SectionId::kInSources, g.in_sources));
  sections.push_back(MakeSection(SectionId::kInKinds, g.in_kinds));
  sections.push_back(MakeSection(SectionId::kUndOffsets, g.und_offsets));
  sections.push_back(MakeSection(SectionId::kUndNeighbors, g.und_neighbors));
  sections.push_back(MakeSection(SectionId::kUndMult, g.und_mult));
  sections.push_back(MakeSection(SectionId::kLabelOffsets,
                                 std::span<const uint64_t>(label_offsets)));
  sections.push_back(MakeSection(SectionId::kLabelBytes,
                                 std::span<const char>(label_bytes)));
  sections.push_back(MakeSection(SectionId::kDisplayOffsets,
                                 std::span<const uint64_t>(display_offsets)));
  sections.push_back(MakeSection(SectionId::kDisplayBytes,
                                 std::span<const char>(display_bytes)));

  // --- Lay out offsets and checksums. ---
  uint64_t cursor = sizeof(FileHeader) + sections.size() * sizeof(SectionEntry);
  Hasher file_hash;
  for (PendingSection& s : sections) {
    cursor = AlignUp(cursor);
    s.entry.offset = cursor;
    cursor += s.entry.size_bytes;
    s.entry.checksum = HashBytes(s.data, s.entry.size_bytes);
    file_hash.Add(s.entry.checksum);
  }

  FileHeader header;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.file_size = cursor;
  header.file_checksum = file_hash.hash();
  header.header_checksum =
      HashBytes(&header, offsetof(FileHeader, header_checksum));

  // --- Stream everything out.  stdio keeps this dependency-free.  The
  // bytes go to a sibling temp file that is renamed over `path` only
  // after a clean flush+close: a crashed writer never leaves a torn
  // file under the published name, and a live reader that has `path`
  // mmap'd keeps its old inode — truncating the published file in
  // place would SIGBUS every pinned snapshot (see reader.h). ---
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IOFail("fopen", tmp);
  auto write_all = [&](const void* data, size_t size) {
    return size == 0 || std::fwrite(data, 1, size, f) == size;
  };
  bool ok = write_all(&header, sizeof(header));
  for (const PendingSection& s : sections) {
    ok = ok && write_all(&s.entry, sizeof(s.entry));
  }
  uint64_t written = sizeof(FileHeader) + sections.size() * sizeof(SectionEntry);
  const char zeros[kSectionAlignment] = {0};
  for (const PendingSection& s : sections) {
    const uint64_t padding = s.entry.offset - written;
    ok = ok && padding < kSectionAlignment && write_all(zeros, padding);
    ok = ok && write_all(s.data, s.entry.size_bytes);
    written = s.entry.offset + s.entry.size_bytes;
  }
  ok = ok && std::fflush(f) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return IOFail("write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IOFail("rename", path);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetHistogram("wqe.snapshot.write_ms")
      ->Record(watch.ElapsedMillis());
  registry.GetGauge("wqe.snapshot.bytes")
      ->Set(static_cast<double>(header.file_size));
  return Status::OK();
}

}  // namespace wqe::snapshot
