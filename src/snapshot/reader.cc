#include "snapshot/reader.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "graph/csr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/mapped_file.h"

namespace wqe::snapshot {

namespace {

/// Expected element width per SectionId (indexed by id value).  Part of
/// the format: a mismatching entry means the file lies about its layout.
constexpr uint32_t kExpectedElemSize[kNumSections] = {
    /*kMeta*/ 8,           /*kNodeKinds*/ 1,     /*kRedirectTarget*/ 4,
    /*kOutOffsets*/ 8,     /*kOutTargets*/ 4,    /*kOutKinds*/ 1,
    /*kInOffsets*/ 8,      /*kInSources*/ 4,     /*kInKinds*/ 1,
    /*kUndOffsets*/ 8,     /*kUndNeighbors*/ 4,  /*kUndMult*/ 4,
    /*kLabelOffsets*/ 8,   /*kLabelBytes*/ 1,    /*kDisplayOffsets*/ 8,
    /*kDisplayBytes*/ 1,
};

constexpr const char* kSectionNames[kNumSections] = {
    "meta",          "node_kinds",    "redirect_target", "out_offsets",
    "out_targets",   "out_kinds",     "in_offsets",      "in_sources",
    "in_kinds",      "und_offsets",   "und_neighbors",   "und_mult",
    "label_offsets", "label_bytes",   "display_offsets", "display_bytes",
};

Status Corrupt(const std::string& path, std::string_view what) {
  return Status::ParseError("snapshot '", path, "': ", what);
}

template <typename... Args>
Status CorruptF(const std::string& path, Args&&... args) {
  return Status::ParseError("snapshot '", path, "': ",
                            std::forward<Args>(args)...);
}

/// Reads the whole file into an owned buffer (the kCopy acquisition path).
Result<std::shared_ptr<std::vector<std::byte>>> ReadWholeFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("fopen('", path, "'): ", std::strerror(errno));
  }
  auto buffer = std::make_shared<std::vector<std::byte>>();
  bool ok = std::fseek(f, 0, SEEK_END) == 0;
  long size = ok ? std::ftell(f) : -1;
  ok = ok && size >= 0 && std::fseek(f, 0, SEEK_SET) == 0;
  if (ok && size > 0) {
    buffer->resize(static_cast<size_t>(size));
    ok = std::fread(buffer->data(), 1, buffer->size(), f) == buffer->size();
  }
  std::fclose(f);
  if (!ok) {
    return Status::IOError("read('", path, "') failed");
  }
  return buffer;
}

/// Checks an offsets array: zero-based, monotone, ends at `data_count`.
Status CheckOffsets(const std::string& path, const char* name,
                    std::span<const uint64_t> offsets, uint64_t data_count) {
  if (offsets.empty() || offsets.front() != 0) {
    return CorruptF(path, name, " does not start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return CorruptF(path, name, " is not monotone at index ", i);
    }
  }
  if (offsets.back() != data_count) {
    return CorruptF(path, name, " ends at ", offsets.back(),
                    " but its row array holds ", data_count, " elements");
  }
  return Status::OK();
}

/// Checks that every id in `ids` addresses a valid node.
Status CheckEndpoints(const std::string& path, const char* name,
                      std::span<const graph::NodeId> ids, uint64_t num_nodes) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= num_nodes) {
      return CorruptF(path, name, "[", i, "] = ", ids[i],
                      " is out of node range ", num_nodes);
    }
  }
  return Status::OK();
}

}  // namespace

const char* SectionName(SectionId id) {
  const auto index = static_cast<size_t>(id);
  return index < kNumSections ? kSectionNames[index] : "unknown";
}

template <typename T>
std::span<const T> Reader::SectionSpan(SectionId id) const {
  const SectionEntry& e = section(id);
  // Alignment holds by validated construction: the base is page- (mmap)
  // or operator-new-aligned and e.offset is kSectionAlignment-checked.
  return std::span<const T>(
      reinterpret_cast<const T*>(bytes_.data() + e.offset), e.count);
}

Result<Reader> Reader::Open(const std::string& path, ReadOptions options) {
  Reader reader;
  reader.options_ = options;
  reader.path_ = path;
  if (options.mode == LoadMode::kMmap) {
    WQE_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                         MappedFile::Open(path));
    reader.bytes_ = file->bytes();
    reader.storage_ = std::move(file);
  } else {
    WQE_ASSIGN_OR_RETURN(std::shared_ptr<std::vector<std::byte>> buffer,
                         ReadWholeFile(path));
    reader.bytes_ = std::span<const std::byte>(*buffer);
    reader.storage_ = std::move(buffer);
  }
  WQE_RETURN_NOT_OK(reader.Validate());
  return reader;
}

Status Reader::Validate() {
  // --- Layer 1: header. ---
  if (bytes_.size() < sizeof(FileHeader)) {
    return CorruptF(path_, "truncated header (", bytes_.size(), " of ",
                    sizeof(FileHeader), " bytes)");
  }
  FileHeader header;
  std::memcpy(&header, bytes_.data(), sizeof(header));
  if (header.magic != kMagic) {
    return Corrupt(path_, "bad magic (not a snapshot file)");
  }
  if (header.endian != kEndianTag) {
    return Corrupt(path_,
                   "endianness mismatch (written on a foreign byte order)");
  }
  if (header.version == 0 || header.version > kFormatVersion) {
    return CorruptF(path_, "format version ", header.version,
                    " is newer than the supported version ", kFormatVersion,
                    " (future-version files are refused, not guessed at)");
  }
  const uint64_t header_checksum =
      HashBytes(bytes_.data(), offsetof(FileHeader, header_checksum));
  if (header_checksum != header.header_checksum) {
    return Corrupt(path_, "header checksum mismatch");
  }
  if (header.file_size != bytes_.size()) {
    return CorruptF(path_, "declared size ", header.file_size,
                    " does not match actual size ", bytes_.size(),
                    " (truncated or padded file)");
  }
  if (header.section_count != kNumSections ||
      header.section_count > kMaxSections) {
    return CorruptF(path_, "version-1 files carry ", kNumSections,
                    " sections, found ", header.section_count);
  }
  const uint64_t table_end = sizeof(FileHeader) +
                             uint64_t{header.section_count} *
                                 sizeof(SectionEntry);
  if (table_end > bytes_.size()) {
    return Corrupt(path_, "section table extends past end of file");
  }

  // --- Layer 2: section table. ---
  info_.version = header.version;
  info_.file_size = header.file_size;
  info_.file_checksum = header.file_checksum;
  info_.sections.clear();
  bool seen[kNumSections] = {};
  Hasher file_hash;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry e;
    std::memcpy(&e, bytes_.data() + sizeof(FileHeader) +
                        i * sizeof(SectionEntry),
                sizeof(e));
    if (e.id >= kNumSections) {
      return CorruptF(path_, "section table entry ", i, " has unknown id ",
                      e.id);
    }
    const auto id = static_cast<SectionId>(e.id);
    if (seen[e.id]) {
      return CorruptF(path_, "duplicate section '", SectionName(id), "'");
    }
    seen[e.id] = true;
    if (e.elem_size != kExpectedElemSize[e.id]) {
      return CorruptF(path_, "section '", SectionName(id),
                      "' declares element size ", e.elem_size, ", expected ",
                      kExpectedElemSize[e.id]);
    }
    if (e.offset % kSectionAlignment != 0) {
      return CorruptF(path_, "section '", SectionName(id),
                      "' is misaligned (offset ", e.offset, ")");
    }
    // Overflow-safe bounds: each comparison stays within uint64 range.
    if (e.offset > bytes_.size() || e.size_bytes > bytes_.size() - e.offset) {
      return CorruptF(path_, "section '", SectionName(id),
                      "' extends past end of file (offset ", e.offset,
                      ", size ", e.size_bytes, ")");
    }
    if (e.count > bytes_.size() / e.elem_size ||
        e.count * e.elem_size != e.size_bytes) {
      return CorruptF(path_, "section '", SectionName(id),
                      "' count/size disagree (count ", e.count, ", size ",
                      e.size_bytes, ")");
    }
    sections_[e.id] = e;
    file_hash.Add(e.checksum);
    info_.sections.push_back(SectionInfo{id, SectionName(id), e.elem_size,
                                         e.count, e.size_bytes, e.offset,
                                         e.checksum});
  }
  for (uint32_t id = 0; id < kNumSections; ++id) {
    if (!seen[id]) {
      return CorruptF(path_, "missing section '",
                      SectionName(static_cast<SectionId>(id)), "'");
    }
  }

  // --- Layer 3: payload checksums (every byte touched — the expensive
  // layer, on by default, skippable for trusted local files). ---
  if (options_.verify_checksums) {
    for (const SectionEntry& e : sections_) {
      const uint64_t actual = HashBytes(bytes_.data() + e.offset, e.size_bytes);
      if (actual != e.checksum) {
        return CorruptF(path_, "section '",
                        SectionName(static_cast<SectionId>(e.id)),
                        "' checksum mismatch (corrupted payload)");
      }
    }
    if (file_hash.hash() != header.file_checksum) {
      return Corrupt(path_, "file checksum mismatch");
    }
  }

  // --- Layer 4: structural shape (always on — these are the properties
  // span arithmetic and node indexing rely on, so they hold even when
  // the caller skipped checksums). ---
  if (section(SectionId::kMeta).count != kMetaFieldCount) {
    return CorruptF(path_, "meta section holds ",
                    section(SectionId::kMeta).count, " fields, expected ",
                    uint64_t{kMetaFieldCount});
  }
  std::span<const uint64_t> meta = SectionSpan<uint64_t>(SectionId::kMeta);
  const uint64_t n = meta[kMetaNumNodes];
  const uint64_t e = meta[kMetaNumEdges];
  info_.num_nodes = n;
  info_.num_edges = e;
  if (n >= graph::kInvalidNode) {
    return CorruptF(path_, "node count ", n, " exceeds the NodeId space");
  }
  const struct {
    SectionId id;
    uint64_t expected;
  } counts[] = {
      {SectionId::kNodeKinds, n},      {SectionId::kRedirectTarget, n},
      {SectionId::kOutOffsets, n + 1}, {SectionId::kOutTargets, e},
      {SectionId::kOutKinds, e},       {SectionId::kInOffsets, n + 1},
      {SectionId::kInSources, e},      {SectionId::kInKinds, e},
      {SectionId::kUndOffsets, n + 1}, {SectionId::kLabelOffsets, n + 1},
      {SectionId::kDisplayOffsets, n + 1},
  };
  for (const auto& c : counts) {
    if (section(c.id).count != c.expected) {
      return CorruptF(path_, "section '", SectionName(c.id), "' holds ",
                      section(c.id).count, " elements, expected ", c.expected);
    }
  }
  if (section(SectionId::kUndNeighbors).count !=
      section(SectionId::kUndMult).count) {
    return Corrupt(path_,
                   "und_neighbors and und_mult are not parallel arrays");
  }
  WQE_RETURN_NOT_OK(CheckOffsets(path_, "out_offsets",
                                 SectionSpan<uint64_t>(SectionId::kOutOffsets),
                                 section(SectionId::kOutTargets).count));
  WQE_RETURN_NOT_OK(CheckOffsets(path_, "in_offsets",
                                 SectionSpan<uint64_t>(SectionId::kInOffsets),
                                 section(SectionId::kInSources).count));
  WQE_RETURN_NOT_OK(CheckOffsets(path_, "und_offsets",
                                 SectionSpan<uint64_t>(SectionId::kUndOffsets),
                                 section(SectionId::kUndNeighbors).count));
  WQE_RETURN_NOT_OK(
      CheckOffsets(path_, "label_offsets",
                   SectionSpan<uint64_t>(SectionId::kLabelOffsets),
                   section(SectionId::kLabelBytes).count));
  WQE_RETURN_NOT_OK(
      CheckOffsets(path_, "display_offsets",
                   SectionSpan<uint64_t>(SectionId::kDisplayOffsets),
                   section(SectionId::kDisplayBytes).count));
  WQE_RETURN_NOT_OK(
      CheckEndpoints(path_, "out_targets",
                     SectionSpan<graph::NodeId>(SectionId::kOutTargets), n));
  WQE_RETURN_NOT_OK(
      CheckEndpoints(path_, "in_sources",
                     SectionSpan<graph::NodeId>(SectionId::kInSources), n));
  WQE_RETURN_NOT_OK(CheckEndpoints(
      path_, "und_neighbors",
      SectionSpan<graph::NodeId>(SectionId::kUndNeighbors), n));
  std::span<const graph::NodeId> redirects =
      SectionSpan<graph::NodeId>(SectionId::kRedirectTarget);
  for (size_t i = 0; i < redirects.size(); ++i) {
    if (redirects[i] >= n && redirects[i] != graph::kInvalidNode) {
      return CorruptF(path_, "redirect_target[", i, "] = ", redirects[i],
                      " is neither a node nor the invalid sentinel");
    }
  }
  return Status::OK();
}

Result<wiki::KnowledgeBase> Reader::Load() const {
  std::span<const uint64_t> meta = SectionSpan<uint64_t>(SectionId::kMeta);

  graph::CsrSections sections;
  sections.kinds = SectionSpan<graph::NodeKind>(SectionId::kNodeKinds);
  sections.redirect_target =
      SectionSpan<graph::NodeId>(SectionId::kRedirectTarget);
  sections.out_offsets = SectionSpan<uint64_t>(SectionId::kOutOffsets);
  sections.out_targets = SectionSpan<graph::NodeId>(SectionId::kOutTargets);
  sections.out_kinds = SectionSpan<graph::EdgeKind>(SectionId::kOutKinds);
  sections.in_offsets = SectionSpan<uint64_t>(SectionId::kInOffsets);
  sections.in_sources = SectionSpan<graph::NodeId>(SectionId::kInSources);
  sections.in_kinds = SectionSpan<graph::EdgeKind>(SectionId::kInKinds);
  sections.und_offsets = SectionSpan<uint64_t>(SectionId::kUndOffsets);
  sections.und_neighbors =
      SectionSpan<graph::NodeId>(SectionId::kUndNeighbors);
  sections.und_mult = SectionSpan<uint32_t>(SectionId::kUndMult);
  for (size_t k = 0; k < sections.edge_kind_counts.size(); ++k) {
    sections.edge_kind_counts[k] = meta[kMetaEdgeKindCount0 + k];
  }
  sections.node_kind_counts[0] = meta[kMetaNodeKindCount0];
  sections.node_kind_counts[1] = meta[kMetaNodeKindCount1];

  WQE_ASSIGN_OR_RETURN(
      graph::CsrGraph csr,
      graph::CsrGraph::FromSections(sections, storage_,
                                    options_.verify_invariants));

  // Titles are materialized (owned strings) in both modes; zero-copy
  // applies to the CSR arrays, which dominate the footprint.
  auto explode = [&](SectionId offsets_id,
                     SectionId bytes_id) -> std::vector<std::string> {
    std::span<const uint64_t> offsets = SectionSpan<uint64_t>(offsets_id);
    std::span<const char> chars = SectionSpan<char>(bytes_id);
    std::vector<std::string> out;
    out.reserve(offsets.size() - 1);
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      out.emplace_back(chars.data() + offsets[i], offsets[i + 1] - offsets[i]);
    }
    return out;
  };
  std::vector<std::string> labels =
      explode(SectionId::kLabelOffsets, SectionId::kLabelBytes);
  std::vector<std::string> displays =
      explode(SectionId::kDisplayOffsets, SectionId::kDisplayBytes);

  Result<wiki::KnowledgeBase> kb = wiki::KnowledgeBase::FromSnapshot(
      std::move(csr), std::move(labels), std::move(displays),
      meta[kMetaNumArticles], meta[kMetaNumRedirects],
      meta[kMetaNumCategories]);
  if (!kb.ok()) {
    return CorruptF(path_, kb.status().message());
  }
  return kb;
}

Result<wiki::KnowledgeBase> LoadSnapshot(const std::string& path,
                                         ReadOptions options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Span span("snapshot-load",
                 registry.GetHistogram("wqe.snapshot.load_ms"), &registry);
  WQE_ASSIGN_OR_RETURN(Reader reader, Reader::Open(path, options));
  WQE_ASSIGN_OR_RETURN(wiki::KnowledgeBase kb, reader.Load());
  registry.GetGauge("wqe.snapshot.bytes")
      ->Set(static_cast<double>(reader.info().file_size));
  return kb;
}

}  // namespace wqe::snapshot
