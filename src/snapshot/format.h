#pragma once

/// \file format.h
/// \brief The versioned on-disk snapshot format (shared by Writer/Reader).
///
/// A snapshot file serializes one frozen `wiki::KnowledgeBase` — every
/// flat CSR array of its `graph::CsrGraph` plus the node metadata needed
/// to serve without the builder (normalized labels, display titles,
/// entity counts) — so a process can come up without re-paying XML parse
/// + freeze, and so a running server can republish a new KB dump.
///
/// Layout (all integers little-endian, all offsets absolute):
///
///   ┌────────────────────────────────────────────────────────────┐
///   │ FileHeader   (64 B): magic, version, endian tag, section   │
///   │               count, file size, file checksum, header CRC  │
///   ├────────────────────────────────────────────────────────────┤
///   │ SectionEntry × section_count: id, elem_size, offset,       │
///   │               count, size_bytes, per-section checksum      │
///   ├────────────────────────────────────────────────────────────┤
///   │ payload sections, each 8-byte aligned, zero-padded between │
///   └────────────────────────────────────────────────────────────┘
///
/// Integrity: every section carries an FNV-1a checksum of its payload
/// bytes; the file checksum folds the per-section checksums together in
/// table order; the header checksum covers the header's own fields.  The
/// reader rejects bad magic, endianness mismatch, versions newer than it
/// knows, truncation, out-of-bounds or misaligned section table entries,
/// and checksum mismatches — each with a precise `Status`, never UB.
///
/// Compatibility policy: `kFormatVersion` bumps on any layout change.
/// Readers accept exactly the versions they know how to parse (currently
/// only version 1) and reject newer files ("future version") rather than
/// guessing; old readers therefore fail cleanly on new files and new
/// readers may add back-compat paths per old version when one ships.

#include <cstdint>

namespace wqe::snapshot {

/// "WQESNAP\x01" as a little-endian u64 — doubles as a byte-order probe.
inline constexpr uint64_t kMagic = 0x0150414e53455157ULL;

/// Current (and only) format version.
inline constexpr uint32_t kFormatVersion = 1;

/// Endianness tag: written as the native value of this constant; a reader
/// seeing it byte-swapped is running on the other endianness.
inline constexpr uint32_t kEndianTag = 0x01020304;

/// Payload section alignment in bytes.  8 covers the widest element
/// (uint64_t offsets), so an mmap'd section can be read in place through
/// a typed span with no misaligned loads.
inline constexpr uint64_t kSectionAlignment = 8;

/// Sanity bound on the section count (the format currently defines 16;
/// room for growth without letting a corrupt header allocate gigabytes).
inline constexpr uint32_t kMaxSections = 64;

/// \brief Section identifiers.  Values are part of the on-disk format —
/// append only, never renumber.
enum class SectionId : uint32_t {
  kMeta = 0,            ///< uint64 scalars, see MetaField
  kNodeKinds = 1,       ///< uint8,  one graph::NodeKind per node
  kRedirectTarget = 2,  ///< uint32, per-node redirect target (or invalid)
  kOutOffsets = 3,      ///< uint64, num_nodes + 1
  kOutTargets = 4,      ///< uint32
  kOutKinds = 5,        ///< uint8,  one graph::EdgeKind per out edge
  kInOffsets = 6,       ///< uint64, num_nodes + 1
  kInSources = 7,       ///< uint32
  kInKinds = 8,         ///< uint8
  kUndOffsets = 9,      ///< uint64, num_nodes + 1
  kUndNeighbors = 10,   ///< uint32
  kUndMult = 11,        ///< uint32, parallel to kUndNeighbors
  kLabelOffsets = 12,   ///< uint64, num_nodes + 1 into kLabelBytes
  kLabelBytes = 13,     ///< uint8,  concatenated normalized labels
  kDisplayOffsets = 14, ///< uint64, num_nodes + 1 into kDisplayBytes
  kDisplayBytes = 15,   ///< uint8,  concatenated display titles
};

/// Number of sections a version-1 file carries (all of SectionId).
inline constexpr uint32_t kNumSections = 16;

/// \brief Indices into the kMeta section's uint64 array.
enum MetaField : uint64_t {
  kMetaNumNodes = 0,
  kMetaNumEdges = 1,
  kMetaNodeKindCount0 = 2,  ///< articles (incl. redirects)
  kMetaNodeKindCount1 = 3,  ///< categories
  kMetaEdgeKindCount0 = 4,  ///< + 4 entries, one per graph::EdgeKind
  kMetaNumArticles = 8,     ///< main articles (KB accounting)
  kMetaNumRedirects = 9,
  kMetaNumCategories = 10,
  kMetaFieldCount = 11,
};

/// \brief Fixed-size file header.  `header_checksum` covers every field
/// before it (byte-wise), so a torn or bit-flipped header is caught
/// before the section table is trusted.
struct FileHeader {
  uint64_t magic = kMagic;
  uint32_t version = kFormatVersion;
  uint32_t endian = kEndianTag;
  uint32_t section_count = kNumSections;
  uint32_t reserved = 0;
  uint64_t file_size = 0;      ///< total bytes, for truncation detection
  uint64_t file_checksum = 0;  ///< per-section checksums folded in order
  uint64_t header_checksum = 0;
  uint64_t padding[2] = {0, 0};  ///< reserved, keeps the header at 64 B
};
static_assert(sizeof(FileHeader) == 64, "on-disk header layout drifted");

/// \brief One section table entry.
struct SectionEntry {
  uint32_t id = 0;         ///< SectionId
  uint32_t elem_size = 0;  ///< bytes per element (1, 4 or 8)
  uint64_t offset = 0;     ///< absolute file offset, kSectionAlignment-ed
  uint64_t count = 0;      ///< elements
  uint64_t size_bytes = 0; ///< == count * elem_size
  uint64_t checksum = 0;   ///< FNV-1a over the payload bytes
};
static_assert(sizeof(SectionEntry) == 40, "on-disk section entry drifted");

}  // namespace wqe::snapshot
