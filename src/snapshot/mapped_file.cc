#include "snapshot/mapped_file.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define WQE_HAVE_MMAP 1
#endif

namespace wqe::snapshot {

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
#ifdef WQE_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open('", path, "'): ", std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status =
        Status::IOError("fstat('", path, "'): ", std::strerror(errno));
    ::close(fd);
    return status;
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->path_ = path;
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* data =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      Status status =
          Status::IOError("mmap('", path, "'): ", std::strerror(errno));
      ::close(fd);
      return status;
    }
    file->data_ = data;
  }
  // The mapping keeps its own reference to the pages; the descriptor is
  // only needed to establish it.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(std::move(file));
#else
  return Status::NotImplemented("mmap is unavailable on this platform; use "
                                "snapshot::LoadMode::kCopy");
#endif
}

MappedFile::~MappedFile() {
#ifdef WQE_HAVE_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
}

}  // namespace wqe::snapshot
