#pragma once

/// \file expander_registry.h
/// \brief Named, pluggable construction of expansion systems.
///
/// The paper's §4 frames dense-cycle expansion as one strategy among the
/// family it compares against (no expansion, per-link expansion, community
/// expansion).  The registry makes that family — and future strategies —
/// selectable by string at request time instead of by compile-time wiring:
/// callers register a factory under a name, and `api::Engine` resolves the
/// name (plus per-call option overrides) into a ready `expansion::Expander`.
///
/// Built-in names: "cycle" (§3/§4), "direct-link" (refs [1–3]),
/// "community" (ref [4]), "no-expansion"; aliases "adjacency" →
/// "direct-link" and "category" → "community".

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"
#include "linking/entity_linker.h"
#include "wiki/knowledge_base.h"

namespace wqe::api {

/// \brief Per-call tuning knobs layered over a strategy's registered
/// defaults.  Unset fields keep the defaults; knobs a strategy does not
/// have are ignored (a serving API must tolerate generic requests).
struct ExpanderOverrides {
  /// \name Generic knobs (every strategy that selects features)
  /// @{
  std::optional<size_t> max_features;
  std::optional<uint32_t> neighborhood_radius;
  std::optional<size_t> max_neighborhood;
  /// @}

  /// \name Direct-link knobs
  /// @{
  /// Prefer reciprocally linked neighbors (the length-2-cycle insight).
  std::optional<bool> prioritize_mutual;
  /// @}

  /// \name Cycle-expander knobs (the §3/§4 structural filters)
  /// @{
  std::optional<uint32_t> min_cycle_length;
  std::optional<uint32_t> max_cycle_length;
  std::optional<double> min_density;
  std::optional<double> min_category_ratio;
  std::optional<double> max_category_ratio;
  std::optional<double> two_cycle_weight;
  std::optional<double> length_decay;
  std::optional<bool> sqrt_count_damping;
  std::optional<size_t> max_cycles;
  /// §4's redirect-alias extension.
  std::optional<bool> include_redirect_aliases;
  /// @}

  /// \brief Stable text form, used as (part of) a cache key and in logs.
  std::string ToKey() const;

  /// \brief Deterministic 64-bit hash, consistent with `operator==`: equal
  /// overrides hash equal, and every field (set or unset) contributes so
  /// that distinct overrides are distinguished.  Used by the serving
  /// layer's sharded expansion cache; like any hash it is for bucketing —
  /// entry identity additionally compares the full key with `==`.
  uint64_t Hash() const;

  /// Field-wise equality (an unset field differs from any set value); the
  /// other half of the cache-key contract next to `Hash()`.
  bool operator==(const ExpanderOverrides& other) const = default;
};

/// \brief Default options of the built-in strategies (what an empty
/// override set resolves to).
struct StrategyDefaults {
  expansion::CycleExpanderOptions cycle;
  expansion::DirectLinkOptions direct_link;
  expansion::CommunityOptions community;
};

/// \brief String-keyed expander factory table.
class ExpanderRegistry {
 public:
  /// Builds a strategy instance over the engine-owned KB and linker.
  /// Factories validate the overrides and return a Status instead of
  /// crashing on bad input.
  using Factory = std::function<Result<std::unique_ptr<expansion::Expander>>(
      const wiki::KnowledgeBase& kb, const linking::EntityLinker& linker,
      const ExpanderOverrides& overrides)>;

  /// \brief Registers `factory` under `name`; AlreadyExists when the name
  /// (or an alias of it) is taken, InvalidArgument for empty names.
  Status Register(std::string name, Factory factory);

  /// \brief Registers `alias` as another name for `canonical`.
  Status RegisterAlias(std::string alias, std::string_view canonical);

  /// \brief True when `name` resolves (directly or via an alias).
  bool Contains(std::string_view name) const;

  /// \brief Canonical strategy names, sorted (aliases excluded).
  std::vector<std::string> Names() const;

  /// \brief Resolves an alias to its canonical name; identity otherwise.
  std::string Resolve(std::string_view name) const;

  /// \brief Instantiates strategy `name` with `overrides` applied over its
  /// registered defaults.  NotFound for unknown names; InvalidArgument for
  /// override values the strategy rejects (e.g. `max_features == 0`).
  Result<std::unique_ptr<expansion::Expander>> Create(
      std::string_view name, const wiki::KnowledgeBase& kb,
      const linking::EntityLinker& linker,
      const ExpanderOverrides& overrides = {}) const;

  /// \brief A registry pre-loaded with the four built-in systems (and the
  /// "adjacency"/"category" aliases), using `defaults` as their base
  /// options.
  static ExpanderRegistry WithBuiltins(const StrategyDefaults& defaults = {});

 private:
  std::map<std::string, Factory, std::less<>> factories_;
  std::map<std::string, std::string, std::less<>> aliases_;
};

}  // namespace wqe::api
