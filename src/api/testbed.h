#pragma once

/// \file testbed.h
/// \brief Synthetic-experiment builder for the `api::Engine` facade.
///
/// Generates the Wikipedia-shaped knowledge base and the ImageCLEF-style
/// track, builds an Engine over them (KB + linker + indexed metadata
/// text), and keeps the evaluation fixture — topics, resolved relevance
/// judgments, and the generator's planted provenance — next to it.  This
/// is what examples, benches and tests build instead of hand-wiring
/// `groundtruth::Pipeline` (which remains as the internal fixture of the
/// §2/§3 ground-truth and analysis machinery).

#include <memory>
#include <vector>

#include "api/engine.h"
#include "api/evaluation.h"
#include "clef/track.h"
#include "clef/track_generator.h"
#include "common/result.h"
#include "groundtruth/pipeline.h"
#include "ir/eval.h"
#include "wiki/synthetic.h"

namespace wqe::api {

/// \brief Aggregated configuration: generators + facade.
struct TestbedOptions {
  wiki::SyntheticWikipediaOptions wiki;
  clef::TrackGeneratorOptions track;
  EngineOptions engine;

  /// \brief The testbed equivalent of a `groundtruth::PipelineOptions`, so
  /// callers holding both views of one experiment (the facade and the §2/§3
  /// fixture) map the options in exactly one place.
  static TestbedOptions FromPipelineOptions(
      const groundtruth::PipelineOptions& base);
};

/// \brief Engine + evaluation fixture (immutable after Build).
class Testbed {
 public:
  /// \brief Generates KB and track, builds and finalizes the engine, and
  /// resolves the qrels.
  static Result<std::unique_ptr<Testbed>> Build(const TestbedOptions& options);

  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }
  const wiki::KnowledgeBase& kb() const { return engine_->kb(); }
  const linking::EntityLinker& linker() const { return engine_->linker(); }

  const clef::Track& track() const { return track_; }
  size_t num_topics() const { return track_.topics.size(); }
  const clef::Topic& topic(size_t i) const { return track_.topics[i]; }

  /// \brief The judged set D of topic `i` (document ids).
  const ir::RelevantSet& relevant(size_t i) const { return relevant_[i]; }

  /// \brief The track as evaluation input for `api::EvaluateSystem`.
  std::vector<EvalTopic> EvalTopics() const;

 private:
  Testbed() = default;

  std::unique_ptr<Engine> engine_;
  clef::Track track_;
  std::vector<ir::RelevantSet> relevant_;
};

}  // namespace wqe::api
