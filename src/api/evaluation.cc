#include "api/evaluation.h"

#include "common/macros.h"

namespace wqe::api {

namespace {

/// Folds one response into the running sums.
struct Accumulator {
  std::array<double, 4> sums{};
  double o_sum = 0.0;
  double feature_sum = 0.0;
  size_t topics = 0;

  void Add(const QueryResponse& response, const ir::RelevantSet& d) {
    const std::vector<size_t>& cutoffs = ir::PaperRankCutoffs();
    for (size_t c = 0; c < cutoffs.size(); ++c) {
      sums[c] += ir::PrecisionAtR(response.docs, d, cutoffs[c]);
    }
    o_sum += ir::AverageTopRPrecision(response.docs, d);
    feature_sum +=
        static_cast<double>(response.expansion.feature_articles.size());
    ++topics;
  }
};

QueryRequest RequestFor(std::string_view expander,
                             const ExpanderOverrides& overrides,
                             const EvalTopic& topic) {
  QueryRequest request;
  request.keywords = topic.keywords;
  request.expander = std::string(expander);
  request.overrides = overrides;
  request.top_k = 15;
  return request;
}

}  // namespace

Result<SystemEvaluation> EvaluateSystem(
    const Engine& engine, std::string_view expander,
    const std::vector<EvalTopic>& topics,
    const ExpanderOverrides& overrides) {
  SystemEvaluation eval;
  // Empty names mean the engine default, as in Engine::ResolveExpander.
  eval.name = engine.registry().Resolve(
      expander.empty() ? engine.options().default_expander
                       : std::string(expander));
  Accumulator acc;

  std::vector<QueryRequest> requests;
  requests.reserve(topics.size());
  for (const EvalTopic& topic : topics) {
    requests.push_back(RequestFor(expander, overrides, topic));
  }

  auto batch = engine.QueryBatch(requests);
  if (batch.ok()) {
    for (size_t t = 0; t < topics.size(); ++t) {
      acc.Add((*batch)[t], topics[t].relevant);
    }
  } else if (batch.status().IsInvalidArgument()) {
    // Some topic could not be evaluated (e.g. empty keywords or a query
    // with no analyzable terms): fall back to per-topic calls and skip
    // the offending ones, as the paper does for unlinkable queries.
    for (const EvalTopic& topic : topics) {
      auto response = engine.Query(RequestFor(expander, overrides, topic));
      if (!response.ok()) {
        if (response.status().IsInvalidArgument()) continue;
        return response.status();
      }
      acc.Add(*response, topic.relevant);
    }
    if (acc.topics == 0 && !topics.empty()) {
      // Every topic failed: this is a request-level error (bad overrides,
      // unfinalized engine, ...), not per-topic skips — propagate it
      // rather than returning a plausible-looking all-zero evaluation.
      return batch.status();
    }
  } else {
    return batch.status();
  }

  eval.topics = acc.topics;
  if (eval.topics > 0) {
    for (size_t c = 0; c < acc.sums.size(); ++c) {
      eval.mean_precision[c] =
          acc.sums[c] / static_cast<double>(eval.topics);
    }
    eval.mean_o = acc.o_sum / static_cast<double>(eval.topics);
    eval.mean_features =
        acc.feature_sum / static_cast<double>(eval.topics);
  }
  return eval;
}

}  // namespace wqe::api
