#pragma once

/// \file engine.h
/// \brief `api::Engine`: the single serving-style entry point.
///
/// §4 of the paper proposes embedding dense-cycle expansion in "real query
/// expansion systems".  The Engine is that system boundary: it owns the
/// knowledge base, the entity linker, the retrieval engine and a pluggable
/// `ExpanderRegistry`, and exposes a request/response API —
///
///   - `Expand(request)`   keywords → expansion features + INDRI query,
///   - `Query(request)`    expand + retrieve in one call,
///   - `ExpandBatch` / `QueryBatch`   batched variants that amortize
///     per-strategy setup (expander construction and validation) across
///     requests,
///
/// all returning `Result<T>`.  Strategy selection is by registry name with
/// per-call `ExpanderOverrides` — callers never instantiate concrete
/// expander classes.  Benches, examples and tests go through this facade
/// (see `api::Testbed` for the synthetic-experiment builder).
///
/// Hot republish: the KB and the linker built over it live together in a
/// `GraphSnapshot`, held as a `shared_ptr<const ...>` behind a tiny
/// mutex (pinning is lock/copy/unlock — microseconds against the
/// millisecond-scale expansions it protects).  `PublishSnapshot` swaps
/// in a freshly built snapshot (e.g. one loaded from disk, see
/// snapshot/reader.h) while serving continues: every request pins the
/// snapshot it started on via a `shared_ptr` copy and finishes there;
/// requests arriving after the swap see the new one.  The old snapshot
/// is destroyed when its last in-flight request drains —
/// epoch-style retirement that never blocks a request.  Each snapshot
/// carries a monotonically increasing `generation`, which the serve
/// layer's `ExpansionCache` stamps into entries so a republish implicitly
/// invalidates stale cached expansions (see serve/expansion_cache.h).

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/expander_registry.h"
#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "ir/search_engine.h"
#include "linking/entity_linker.h"
#include "obs/metrics.h"
#include "wiki/knowledge_base.h"

namespace wqe::serve {
class ThreadPool;  // fwd: the engine owns one for intra-query enumeration
}  // namespace wqe::serve

namespace wqe::api {

/// \brief Facade configuration.  The knowledge base itself is passed to
/// `Engine::Build` (it is data, not an option).
struct EngineOptions {
  ir::SearchEngineOptions search;
  linking::EntityLinkerOptions linker;
  /// Base options of the built-in strategies; per-call overrides layer on
  /// top of these.
  StrategyDefaults strategies;
  /// Strategy used when a request names none.
  std::string default_expander = "cycle";
  /// Result count when a query request asks for 0.
  size_t default_top_k = 15;
  /// Threads for *intra-request* cycle enumeration (1 = sequential
  /// default, 0 = one per hardware thread).  When != 1 the engine owns a
  /// `serve::ThreadPool` and injects it into the cycle strategy's
  /// defaults, so single expensive queries parallelize without spawning
  /// a pool per request.  Responses are bit-identical at any setting.
  /// Under a `serve::Server` this knob is inert by design: requests run
  /// on server workers, where nested enumeration degrades to sequential
  /// (request-level parallelism already saturates the pool).
  uint32_t enumeration_threads = 1;
  /// Ball-prune query neighborhoods before cycle enumeration
  /// (graph/ball_prune.h; responses are bit-identical either way).
  /// ANDed into the cycle strategy's `prune_ball` default at `Build` —
  /// disabling here or in `strategies.cycle` disables.
  bool prune_ball = true;
};

/// \brief One expansion request.
struct ExpandRequest {
  std::string keywords;
  /// Registry name ("cycle", "direct-link", ...); empty → the engine's
  /// default strategy.
  std::string expander;
  ExpanderOverrides overrides;
  /// Request budget in milliseconds; 0 (the default) means no deadline.
  /// Execution knobs like this are deliberately *not* `ExpanderOverrides`
  /// fields: they must never split serving-cache keys (the result is the
  /// same work, just bounded).  Combined with any ambient deadline — the
  /// tighter one wins.  Expired budgets surface as
  /// `Status::DeadlineExceeded`.
  double deadline_ms = 0.0;
  /// Optional cooperative-cancellation token (`common::CancelSource` is
  /// kept by the caller).  Null by default.  Cancellation surfaces as
  /// `Status::Cancelled`.
  common::CancelToken cancel;
};

/// \brief One end-to-end query request (expand + retrieve).
struct QueryRequest {
  std::string keywords;
  std::string expander;  ///< as in ExpandRequest
  ExpanderOverrides overrides;
  size_t top_k = 0;  ///< 0 → EngineOptions::default_top_k
  double deadline_ms = 0.0;     ///< as in ExpandRequest
  common::CancelToken cancel;   ///< as in ExpandRequest
};

/// \brief Expansion outcome.
struct ExpandResponse {
  std::string expander;  ///< resolved canonical strategy name
  std::vector<graph::NodeId> query_articles;    ///< L(k)
  std::vector<graph::NodeId> feature_articles;  ///< selected features
  std::vector<std::string> titles;              ///< issued phrase titles
  ir::QueryNode query;                          ///< #combine of phrases
  double expand_ms = 0.0;
};

/// \brief Query outcome: the expansion plus the ranked documents.
struct QueryResponse {
  ExpandResponse expansion;
  std::vector<ir::ScoredDoc> docs;
  double search_ms = 0.0;
  double total_ms = 0.0;
};

/// \brief Snapshot of the engine's cumulative instrumentation counters
/// (benches and tests assert batch amortization through these).  Returned
/// by value from `Engine::stats()`; the live state is `obs::Counter`
/// instruments registered as `wqe.engine.*{engine=N}` in the global
/// metrics registry, where N is a per-engine instance id so absolute
/// counts stay meaningful when several engines coexist in one process.
struct EngineStats {
  size_t expanders_constructed = 0;  ///< factory invocations
  size_t expand_calls = 0;  ///< single expansions served
  size_t searches = 0;      ///< retrieval invocations
  size_t batches = 0;       ///< ExpandBatch/QueryBatch calls
  /// Serving-layer expansion-cache outcomes, recorded through
  /// `NoteCacheHit`/`NoteCacheMiss` by the `serve::Server` wrapping this
  /// engine (the engine itself does not cache).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// \brief One published graph epoch: the frozen KB plus the linker built
/// over it.  Heap-allocated and immutable once published; shared by every
/// request that pinned it.  `generation` increases by one per publish
/// (the initial `Engine::Build` snapshot is generation 1).
struct GraphSnapshot {
  wiki::KnowledgeBase kb;
  std::unique_ptr<linking::EntityLinker> linker;
  uint64_t generation = 0;
};

/// \brief The facade.  Immutable topology after `Build` (documents may be
/// added until `FinalizeIndex`); all serving calls are const.  The graph
/// snapshot is replaceable at runtime via `PublishSnapshot`.
class Engine {
 public:
  /// \brief Takes ownership of `kb`, freezes it into its immutable
  /// `graph::CsrGraph` snapshot (shared by every expander and worker
  /// thread — see graph/csr.h), builds the linker, the retrieval engine
  /// and the built-in registry, and validates the options (the default
  /// strategy must resolve).
  static Result<std::unique_ptr<Engine>> Build(wiki::KnowledgeBase kb,
                                               EngineOptions options = {});

  /// Out of line: members own a forward-declared `serve::ThreadPool`.
  ~Engine();

  /// \name Corpus
  /// @{
  /// \brief Adds a document to the retrieval index (before FinalizeIndex).
  Result<ir::DocId> AddDocument(std::string_view name, std::string_view text);
  /// \brief Freezes the corpus and builds the index; required before
  /// Query/QueryBatch.
  Status FinalizeIndex();
  /// @}

  /// \name Serving
  /// @{
  Result<ExpandResponse> Expand(const ExpandRequest& request) const;
  Result<QueryResponse> Query(const QueryRequest& request) const;

  /// \brief Expands every request; one expander instance is constructed
  /// per distinct (strategy, overrides) pair instead of per request.
  /// Fails atomically: the first bad request aborts the batch.
  Result<std::vector<ExpandResponse>> ExpandBatch(
      const std::vector<ExpandRequest>& requests) const;

  /// \brief Queries every request with the same amortization as
  /// ExpandBatch.  Rankings are identical to issuing the requests through
  /// `Query` one by one.
  Result<std::vector<QueryResponse>> QueryBatch(
      const std::vector<QueryRequest>& requests) const;
  /// @}

  /// \name Serving hooks
  /// Low-level building blocks for the `serve::Server` concurrency layer:
  /// they expose the expand/search halves of `Query` separately so a
  /// caching server can skip the expansion half on a hit, while the
  /// amortization and stats semantics stay inside the engine.
  /// @{
  /// \brief A request's canonical strategy name: empty resolves to the
  /// engine default, aliases to their targets.  Unknown names pass through
  /// unchanged (they fail later, in `BuildExpander`, with a proper error).
  std::string ResolveStrategy(std::string_view expander) const;

  /// \brief Constructs one expander instance for `(strategy, overrides)`
  /// against the *current* snapshot and counts it in
  /// `stats().expanders_constructed`.  The instance only borrows the
  /// snapshot's KB and linker and its `Expand` is const, so one instance
  /// may serve many threads concurrently — but it does NOT pin the
  /// snapshot; callers that hold expanders across a possible republish
  /// use the pinned overload below.
  Result<std::unique_ptr<expansion::Expander>> BuildExpander(
      std::string_view expander, const ExpanderOverrides& overrides) const;

  /// \brief As above, built against `snapshot` — the serve layer pins a
  /// snapshot per request (`CurrentSnapshot`) and builds expanders
  /// against exactly that epoch, so a concurrent `PublishSnapshot` never
  /// mixes graph versions inside one request.
  Result<std::unique_ptr<expansion::Expander>> BuildExpander(
      const GraphSnapshot& snapshot, std::string_view expander,
      const ExpanderOverrides& overrides) const;

  /// \brief Expands `keywords` with a caller-provided (typically shared)
  /// expander instance; `resolved_name` is echoed into the response.
  Result<ExpandResponse> ExpandWith(const expansion::Expander& expander,
                                    std::string_view resolved_name,
                                    std::string_view keywords) const;

  /// \brief Completes a query from an already-computed expansion (a
  /// serving-cache hit): retrieval only, no linking or feature selection.
  /// `expansion.expand_ms` is left as recorded when the expansion was
  /// first computed.  `top_k == 0` uses the engine default.
  Result<QueryResponse> QueryWithExpansion(ExpandResponse expansion,
                                           size_t top_k) const;

  /// \brief Records a serving-layer cache outcome in `stats()`.
  void NoteCacheHit() const { counters_.cache_hits->Inc(); }
  void NoteCacheMiss() const { counters_.cache_misses->Inc(); }

  /// \brief Freezes the registry: after this, the non-const `registry()`
  /// accessor is a contract violation (asserted in debug builds).  Called
  /// by the `serve::Server` constructor — registering strategies while
  /// worker threads resolve names is unsupported.  Irreversible.
  ///
  /// Deliberately a one-way atomic flag, not a `common::Mutex`: the
  /// serving path (`ResolveStrategy` from every worker) reads the
  /// registry lock-free, which is only sound because mutation is
  /// impossible once the flag is set.  Clang's `-Wthread-safety` cannot
  /// model a phase transition, so this contract is enforced dynamically
  /// instead: `WQE_DCHECK(!registry_locked())` in the non-const
  /// `registry()` (death-tested in serve_test.cc) backs up the
  /// annotated-mutex discipline used everywhere else in the serve layer.
  void LockRegistry() const { registry_locked_.store(true); }
  bool registry_locked() const { return registry_locked_.load(); }

  /// \brief Pins the current graph epoch.  The returned pointer keeps the
  /// snapshot (KB, linker, any mmap behind the KB's CSR) alive until the
  /// caller drops it, so an in-flight request is immune to republishes.
  /// A brief lock/copy/unlock rather than `std::atomic<shared_ptr>`:
  /// libstdc++'s `_Sp_atomic::load` unlocks its internal spinlock with a
  /// relaxed RMW, so TSan (correctly, per the formal model) flags a race
  /// against a concurrent store — the annotated mutex gives the same
  /// epoch semantics with a contract the sanitizer can verify.
  std::shared_ptr<const GraphSnapshot> CurrentSnapshot() const {
    common::MutexLock lock(snapshot_mu_);
    return snapshot_;
  }

  /// \brief Atomically replaces the graph snapshot with `kb` (frozen here
  /// if the caller has not done so): builds the linker over it, stamps
  /// the next generation, and publishes.  In-flight requests finish on
  /// the snapshot they pinned; new requests see the new one.  The
  /// retrieval index, registry and options are untouched — this swaps
  /// the *graph*, not the engine.  Thread-safe against serving calls;
  /// concurrent publishers serialize on the snapshot mutex (last one
  /// wins).  Records a `snapshot-publish` span and sets the
  /// `wqe.server.snapshot_generation` gauge.
  Status PublishSnapshot(wiki::KnowledgeBase kb);

  /// \brief Generation of the currently published snapshot (1 after
  /// `Build`, +1 per `PublishSnapshot`).
  uint64_t snapshot_generation() const { return CurrentSnapshot()->generation; }
  /// @}

  /// \name Components
  /// @{
  /// \brief Mutable registry access, for registering custom strategies
  /// during setup.  Unsupported once a `serve::Server` wraps this engine
  /// (see `LockRegistry`); debug builds abort on the violation.
  ExpanderRegistry& registry();
  const ExpanderRegistry& registry() const { return registry_; }
  /// \brief Convenience views of the *current* snapshot's KB/linker.
  /// The references stay valid while that snapshot is published (or
  /// otherwise pinned) — code that may overlap a `PublishSnapshot` must
  /// hold a `CurrentSnapshot()` pin and read through it instead.
  const wiki::KnowledgeBase& kb() const { return CurrentSnapshot()->kb; }
  const linking::EntityLinker& linker() const {
    return *CurrentSnapshot()->linker;
  }
  const ir::SearchEngine& search_engine() const { return *search_; }
  const EngineOptions& options() const { return options_; }
  /// \brief Coherent-enough copy of the cumulative counters (relaxed
  /// reads of the backing registry instruments; exact once writers
  /// quiesce, which is when tests and benches read it).
  EngineStats stats() const;
  /// \brief The engine-owned enumeration pool; null unless
  /// `EngineOptions::enumeration_threads != 1`.
  serve::ThreadPool* enumeration_pool() const { return enum_pool_.get(); }
  /// @}

 private:
  Engine() = default;

  /// A request's strategy, instantiated and canonically named.
  struct ResolvedExpander {
    const expansion::Expander* expander = nullptr;
    std::string name;
  };

  /// Builds (or reuses, via `cache`) the expander for a request, against
  /// the pinned `snapshot`.
  Result<ResolvedExpander> ResolveExpander(
      const GraphSnapshot& snapshot, std::string_view name,
      const ExpanderOverrides& overrides,
      std::map<std::string, std::unique_ptr<expansion::Expander>>* cache)
      const;

  /// Freezes `kb`, builds the linker over it and wraps both with
  /// `generation` (shared by Build and PublishSnapshot).
  std::shared_ptr<const GraphSnapshot> MakeSnapshot(wiki::KnowledgeBase kb,
                                                    uint64_t generation) const;

  Result<QueryResponse> QueryWith(const expansion::Expander& expander,
                                  std::string_view resolved_name,
                                  const QueryRequest& request) const;

  /// The registry instruments behind `stats()`.  Resolved once in
  /// `Build` (global-registry pointers are stable for the process);
  /// recording through them is wait-free, so the const serving calls
  /// stay safe under concurrent use — same contract the old atomic
  /// struct gave, now with the counts exported alongside every other
  /// metric.
  struct Counters {
    obs::Counter* expanders_constructed = nullptr;
    obs::Counter* expand_calls = nullptr;
    obs::Counter* searches = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Gauge* snapshot_generation = nullptr;
  };

  EngineOptions options_;
  /// The published graph epoch.  Readers pin by copying the pointer
  /// under `snapshot_mu_` (`CurrentSnapshot`); `PublishSnapshot`
  /// replaces it under the same lock.  Retirement is reference-counted:
  /// the old epoch dies when its last pinning request drains.
  mutable common::Mutex snapshot_mu_;
  std::shared_ptr<const GraphSnapshot> snapshot_
      WQE_GUARDED_BY(snapshot_mu_);
  std::atomic<uint64_t> next_generation_{0};
  std::unique_ptr<ir::SearchEngine> search_;
  /// Declared before the registry: factories capture the pool pointer in
  /// their defaults, so it must outlive every expander they build.
  std::unique_ptr<serve::ThreadPool> enum_pool_;
  ExpanderRegistry registry_;
  Counters counters_;
  mutable std::atomic<bool> registry_locked_{false};
};

}  // namespace wqe::api
