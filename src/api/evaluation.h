#pragma once

/// \file evaluation.h
/// \brief Track-level evaluation of expansion strategies (E10/E11).
///
/// Runs a registry-named strategy through the `api::Engine` facade over a
/// set of evaluation topics and averages the paper's precision metrics.
/// Batching goes through `Engine::QueryBatch`, so strategy setup is paid
/// once per evaluation rather than once per topic.

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "ir/eval.h"

namespace wqe::api {

/// \brief One evaluation topic: the query and its judged set D.
struct EvalTopic {
  std::string keywords;
  ir::RelevantSet relevant;
};

/// \brief Aggregate retrieval quality of one system over all topics.
struct SystemEvaluation {
  std::string name;
  std::array<double, 4> mean_precision{};  ///< P@1, P@5, P@10, P@15
  double mean_o = 0.0;                     ///< Equation 1, averaged
  double mean_features = 0.0;              ///< avg |features| per topic
  size_t topics = 0;
};

/// \brief Evaluates registry strategy `expander` (with optional per-call
/// `overrides`) over `topics` and averages the precision metrics.  Topics
/// whose query cannot be evaluated (e.g. nothing survives analysis) are
/// skipped, mirroring the paper's handling of unlinkable queries.
Result<SystemEvaluation> EvaluateSystem(
    const Engine& engine, std::string_view expander,
    const std::vector<EvalTopic>& topics,
    const ExpanderOverrides& overrides = {});

}  // namespace wqe::api
