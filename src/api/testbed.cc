#include "api/testbed.h"

#include <utility>

#include "clef/image_metadata.h"
#include "common/logging.h"
#include "common/macros.h"

namespace wqe::api {

TestbedOptions TestbedOptions::FromPipelineOptions(
    const groundtruth::PipelineOptions& base) {
  TestbedOptions options;
  options.wiki = base.wiki;
  options.track = base.track;
  options.engine.search = base.engine;
  options.engine.linker = base.linker;
  return options;
}

Result<std::unique_ptr<Testbed>> Testbed::Build(
    const TestbedOptions& options) {
  std::unique_ptr<Testbed> bed(new Testbed());

  WQE_ASSIGN_OR_RETURN(wiki::SyntheticWikipedia wiki,
                       wiki::GenerateSyntheticWikipedia(options.wiki));
  WQE_ASSIGN_OR_RETURN(bed->track_,
                       clef::GenerateTrack(wiki, options.track));

  // The track generator is the last consumer of the generator provenance;
  // from here on only the KB itself is needed, and the engine owns it.
  WQE_ASSIGN_OR_RETURN(bed->engine_,
                       Engine::Build(std::move(wiki.kb), options.engine));

  // Index the §2.1-extracted text of every metadata file.
  for (const clef::TrackDocument& doc : bed->track_.documents) {
    WQE_ASSIGN_OR_RETURN(clef::ImageMetadata meta,
                         clef::ParseImageMetadata(doc.xml));
    std::string text = clef::ExtractLinkedText(meta);
    WQE_ASSIGN_OR_RETURN(ir::DocId id,
                         bed->engine_->AddDocument(doc.name, text));
    (void)id;
  }
  WQE_RETURN_NOT_OK(bed->engine_->FinalizeIndex());

  // Resolve qrels to document ids.
  const ir::DocumentStore& store = bed->engine_->search_engine().store();
  bed->relevant_.resize(bed->track_.topics.size());
  for (size_t t = 0; t < bed->track_.topics.size(); ++t) {
    for (const std::string& name : bed->track_.topics[t].relevant) {
      auto id = store.FindByName(name);
      if (!id.has_value()) {
        return Status::Internal("qrel document '", name,
                                "' missing from the collection");
      }
      bed->relevant_[t].insert(*id);
    }
  }

  WQE_LOG(Info) << "testbed: " << bed->kb().num_articles() << " articles, "
                << bed->track_.documents.size() << " documents, "
                << bed->track_.topics.size() << " topics";
  return bed;
}

std::vector<EvalTopic> Testbed::EvalTopics() const {
  std::vector<EvalTopic> topics;
  topics.reserve(track_.topics.size());
  for (size_t t = 0; t < track_.topics.size(); ++t) {
    topics.push_back({track_.topics[t].keywords, relevant_[t]});
  }
  return topics;
}

}  // namespace wqe::api
