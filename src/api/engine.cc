#include "api/engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "serve/thread_pool.h"

namespace wqe::api {

namespace {

/// Cache key for one (strategy, overrides) configuration within a batch.
std::string ConfigKey(std::string_view resolved_name,
                      const ExpanderOverrides& overrides) {
  return std::string(resolved_name) + overrides.ToKey();
}

/// The execution context a request should run under: its own budget
/// (deadline computed now, cancel token as given) merged with whatever
/// ambient context the caller already installed — the tighter deadline
/// wins, so a serve-layer default cannot be loosened per request.
common::ExecContext RequestExecContext(double deadline_ms,
                                       const common::CancelToken& cancel) {
  common::ExecContext request;
  if (deadline_ms > 0.0) {
    request.deadline = common::Deadline::AfterMillis(deadline_ms);
  }
  request.cancel = cancel;
  return common::ExecContext::Merge(common::CurrentExecContext(), request);
}

/// Stage latency histograms, shared by every engine (per-stage timing is
/// a process-level view; the per-instance split lives in the counters).
obs::Histogram* ExpandHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("wqe.engine.expand_ms");
  return histogram;
}

obs::Histogram* SearchHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("wqe.engine.search_ms");
  return histogram;
}

}  // namespace

Engine::~Engine() = default;

Result<std::unique_ptr<Engine>> Engine::Build(wiki::KnowledgeBase kb,
                                              EngineOptions options) {
  if (options.default_top_k == 0) {
    return Status::InvalidArgument("default_top_k must be > 0");
  }
  std::unique_ptr<Engine> engine(new Engine());
  engine->options_ = std::move(options);
  engine->search_ =
      std::make_unique<ir::SearchEngine>(engine->options_.search);
  // Intra-request enumeration parallelism: one engine-owned pool, wired
  // into the cycle strategy's defaults before the registry captures them
  // (sized one short of the knob — the enumerating request thread
  // participates in its own fan-out).
  if (engine->options_.enumeration_threads != 1) {
    uint32_t threads = engine->options_.enumeration_threads != 0
                           ? engine->options_.enumeration_threads
                           : std::max(1u, std::thread::hardware_concurrency());
    engine->options_.strategies.cycle.num_threads = threads;
    if (threads > 1) {
      engine->enum_pool_ = std::make_unique<serve::ThreadPool>(threads - 1);
      engine->options_.strategies.cycle.pool = engine->enum_pool_.get();
    }
  }
  engine->options_.strategies.cycle.prune_ball =
      engine->options_.strategies.cycle.prune_ball &&
      engine->options_.prune_ball;
  engine->registry_ =
      ExpanderRegistry::WithBuiltins(engine->options_.strategies);
  if (!engine->registry_.Contains(engine->options_.default_expander)) {
    return Status::InvalidArgument("default expander '",
                                   engine->options_.default_expander,
                                   "' is not registered");
  }
  // Register this engine's counter series under a process-unique
  // instance label; the pointers are stable for the process lifetime.
  const obs::Labels labels = {
      {"engine", std::to_string(obs::NextInstanceId())}};
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  engine->counters_.expanders_constructed =
      registry.GetCounter("wqe.engine.expanders_constructed", labels);
  engine->counters_.expand_calls =
      registry.GetCounter("wqe.engine.expand_calls", labels);
  engine->counters_.searches =
      registry.GetCounter("wqe.engine.searches", labels);
  engine->counters_.batches = registry.GetCounter("wqe.engine.batches", labels);
  engine->counters_.cache_hits =
      registry.GetCounter("wqe.engine.cache_hits", labels);
  engine->counters_.cache_misses =
      registry.GetCounter("wqe.engine.cache_misses", labels);
  engine->counters_.snapshot_generation =
      registry.GetGauge("wqe.server.snapshot_generation", labels);
  // Publish the initial graph epoch (generation 1).  Freezing happens
  // inside MakeSnapshot — the one-way bridge that compiles the structural
  // CSR every expander and worker thread will share.
  {
    common::MutexLock lock(engine->snapshot_mu_);
    engine->snapshot_ =
        engine->MakeSnapshot(std::move(kb), ++engine->next_generation_);
  }
  engine->counters_.snapshot_generation->Set(1.0);
  return engine;
}

std::shared_ptr<const GraphSnapshot> Engine::MakeSnapshot(
    wiki::KnowledgeBase kb, uint64_t generation) const {
  auto snapshot = std::make_shared<GraphSnapshot>();
  snapshot->kb = std::move(kb);
  snapshot->kb.Freeze();
  // Built after the KB lands at its final heap address: the linker keeps
  // a pointer to it.
  snapshot->linker = std::make_unique<linking::EntityLinker>(&snapshot->kb,
                                                             options_.linker);
  snapshot->generation = generation;
  return snapshot;
}

Status Engine::PublishSnapshot(wiki::KnowledgeBase kb) {
  obs::Span span("snapshot-publish");
  std::shared_ptr<const GraphSnapshot> snapshot =
      MakeSnapshot(std::move(kb), ++next_generation_);
  // The mutex publishes the fully built KB/linker to every reader that
  // pins after this point.  Old epochs retire when the last in-flight
  // request that pinned them drains — publishing never waits for them.
  {
    common::MutexLock lock(snapshot_mu_);
    snapshot_ = snapshot;
  }
  counters_.snapshot_generation->Set(
      static_cast<double>(snapshot->generation));
  return Status::OK();
}

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.expanders_constructed = counters_.expanders_constructed->value();
  stats.expand_calls = counters_.expand_calls->value();
  stats.searches = counters_.searches->value();
  stats.batches = counters_.batches->value();
  stats.cache_hits = counters_.cache_hits->value();
  stats.cache_misses = counters_.cache_misses->value();
  return stats;
}

Result<ir::DocId> Engine::AddDocument(std::string_view name,
                                      std::string_view text) {
  return search_->AddDocument(name, text);
}

Status Engine::FinalizeIndex() { return search_->Finalize(); }

ExpanderRegistry& Engine::registry() {
  // The registry-freeze contract (see LockRegistry in the header): once a
  // serve::Server has locked the registry, mutable access would race the
  // lock-free ResolveStrategy reads on its workers.  Dynamic enforcement
  // — the flag is a phase transition, which the static thread-safety
  // analysis cannot express.
  WQE_DCHECK(!registry_locked());  // no registration once serving started
  return registry_;
}

std::string Engine::ResolveStrategy(std::string_view expander) const {
  return registry_.Resolve(expander.empty() ? options_.default_expander
                                            : expander);
}

Result<std::unique_ptr<expansion::Expander>> Engine::BuildExpander(
    std::string_view expander, const ExpanderOverrides& overrides) const {
  return BuildExpander(*CurrentSnapshot(), expander, overrides);
}

Result<std::unique_ptr<expansion::Expander>> Engine::BuildExpander(
    const GraphSnapshot& snapshot, std::string_view expander,
    const ExpanderOverrides& overrides) const {
  WQE_ASSIGN_OR_RETURN(std::unique_ptr<expansion::Expander> built,
                       registry_.Create(ResolveStrategy(expander), snapshot.kb,
                                        *snapshot.linker, overrides));
  counters_.expanders_constructed->Inc();
  return built;
}

Result<Engine::ResolvedExpander> Engine::ResolveExpander(
    const GraphSnapshot& snapshot, std::string_view name,
    const ExpanderOverrides& overrides,
    std::map<std::string, std::unique_ptr<expansion::Expander>>* cache)
    const {
  std::string resolved = ResolveStrategy(name);
  std::string key = ConfigKey(resolved, overrides);
  auto it = cache->find(key);
  if (it == cache->end()) {
    WQE_ASSIGN_OR_RETURN(std::unique_ptr<expansion::Expander> built,
                         BuildExpander(snapshot, resolved, overrides));
    it = cache->emplace(std::move(key), std::move(built)).first;
  }
  return ResolvedExpander{it->second.get(), std::move(resolved)};
}

Result<ExpandResponse> Engine::ExpandWith(const expansion::Expander& expander,
                                          std::string_view resolved_name,
                                          std::string_view keywords) const {
  Stopwatch watch;
  obs::Span span("expansion", ExpandHistogram());
  WQE_ASSIGN_OR_RETURN(expansion::ExpandedQuery expanded,
                       expander.Expand(keywords));
  ExpandResponse response;
  response.expander = std::string(resolved_name);
  response.query_articles = std::move(expanded.query_articles);
  response.feature_articles = std::move(expanded.feature_articles);
  response.titles = std::move(expanded.titles);
  response.query = std::move(expanded.query);
  response.expand_ms = watch.ElapsedMillis();
  counters_.expand_calls->Inc();
  return response;
}

Result<QueryResponse> Engine::QueryWith(const expansion::Expander& expander,
                                        std::string_view resolved_name,
                                        const QueryRequest& request) const {
  if (!search_->finalized()) {
    return Status::InvalidArgument(
        "Query before FinalizeIndex(): the corpus is not indexed yet");
  }
  Stopwatch total;
  WQE_ASSIGN_OR_RETURN(
      ExpandResponse expansion,
      ExpandWith(expander, resolved_name, request.keywords));
  WQE_ASSIGN_OR_RETURN(
      QueryResponse response,
      QueryWithExpansion(std::move(expansion), request.top_k));
  response.total_ms = total.ElapsedMillis();
  return response;
}

Result<QueryResponse> Engine::QueryWithExpansion(ExpandResponse expansion,
                                                 size_t top_k) const {
  if (!search_->finalized()) {
    return Status::InvalidArgument(
        "Query before FinalizeIndex(): the corpus is not indexed yet");
  }
  Stopwatch total;
  QueryResponse response;
  response.expansion = std::move(expansion);
  size_t k = top_k == 0 ? options_.default_top_k : top_k;
  Stopwatch search_watch;
  {
    obs::Span span("search", SearchHistogram());
    WQE_ASSIGN_OR_RETURN(response.docs,
                         search_->Search(response.expansion.query, k));
  }
  counters_.searches->Inc();
  response.search_ms = search_watch.ElapsedMillis();
  response.total_ms = total.ElapsedMillis();
  return response;
}

Result<ExpandResponse> Engine::Expand(const ExpandRequest& request) const {
  common::ScopedExecContext exec_scope(
      RequestExecContext(request.deadline_ms, request.cancel));
  // Pin the graph epoch for the whole request: a concurrent
  // PublishSnapshot cannot swap the graph out from under the expansion.
  std::shared_ptr<const GraphSnapshot> snapshot = CurrentSnapshot();
  std::map<std::string, std::unique_ptr<expansion::Expander>> cache;
  WQE_ASSIGN_OR_RETURN(
      ResolvedExpander resolved,
      ResolveExpander(*snapshot, request.expander, request.overrides, &cache));
  return ExpandWith(*resolved.expander, resolved.name, request.keywords);
}

Result<QueryResponse> Engine::Query(const QueryRequest& request) const {
  common::ScopedExecContext exec_scope(
      RequestExecContext(request.deadline_ms, request.cancel));
  std::shared_ptr<const GraphSnapshot> snapshot = CurrentSnapshot();
  std::map<std::string, std::unique_ptr<expansion::Expander>> cache;
  WQE_ASSIGN_OR_RETURN(
      ResolvedExpander resolved,
      ResolveExpander(*snapshot, request.expander, request.overrides, &cache));
  return QueryWith(*resolved.expander, resolved.name, request);
}

Result<std::vector<ExpandResponse>> Engine::ExpandBatch(
    const std::vector<ExpandRequest>& requests) const {
  counters_.batches->Inc();
  // One pin for the whole batch: every request in it expands on the same
  // graph epoch, so batch results are mutually consistent even when a
  // republish lands mid-batch.
  std::shared_ptr<const GraphSnapshot> snapshot = CurrentSnapshot();
  std::map<std::string, std::unique_ptr<expansion::Expander>> cache;
  std::vector<ExpandResponse> responses;
  responses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    // Budgets are per request: each iteration installs (and on exit
    // removes) its own request's context, so one expired deadline never
    // bleeds into its batch neighbors.
    common::ScopedExecContext exec_scope(
        RequestExecContext(requests[i].deadline_ms, requests[i].cancel));
    auto resolved = ResolveExpander(*snapshot, requests[i].expander,
                                    requests[i].overrides, &cache);
    if (!resolved.ok()) {
      return resolved.status().WithContext("ExpandBatch request #" +
                                           std::to_string(i));
    }
    auto response = ExpandWith(*resolved->expander, resolved->name,
                               requests[i].keywords);
    if (!response.ok()) {
      return response.status().WithContext("ExpandBatch request #" +
                                           std::to_string(i));
    }
    responses.push_back(std::move(*response));
  }
  return responses;
}

Result<std::vector<QueryResponse>> Engine::QueryBatch(
    const std::vector<QueryRequest>& requests) const {
  counters_.batches->Inc();
  std::shared_ptr<const GraphSnapshot> snapshot = CurrentSnapshot();
  std::map<std::string, std::unique_ptr<expansion::Expander>> cache;
  std::vector<QueryResponse> responses;
  responses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    common::ScopedExecContext exec_scope(
        RequestExecContext(requests[i].deadline_ms, requests[i].cancel));
    auto resolved = ResolveExpander(*snapshot, requests[i].expander,
                                    requests[i].overrides, &cache);
    if (!resolved.ok()) {
      return resolved.status().WithContext("QueryBatch request #" +
                                           std::to_string(i));
    }
    auto response =
        QueryWith(*resolved->expander, resolved->name, requests[i]);
    if (!response.ok()) {
      return response.status().WithContext("QueryBatch request #" +
                                           std::to_string(i));
    }
    responses.push_back(std::move(*response));
  }
  return responses;
}

}  // namespace wqe::api
