#include "api/expander_registry.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <type_traits>
#include <utility>

#include "common/hash.h"
#include "common/macros.h"

namespace wqe::api {

namespace {

/// Shared validation for the count-like knobs every strategy interprets
/// the same way.
Status ValidateCommon(const ExpanderOverrides& o) {
  if (o.max_features && *o.max_features == 0) {
    return Status::InvalidArgument("max_features override must be > 0");
  }
  if (o.max_neighborhood && *o.max_neighborhood == 0) {
    return Status::InvalidArgument("max_neighborhood override must be > 0");
  }
  if (o.max_cycles && *o.max_cycles == 0) {
    return Status::InvalidArgument("max_cycles override must be > 0");
  }
  if (o.min_category_ratio &&
      (*o.min_category_ratio < 0.0 || *o.min_category_ratio > 1.0)) {
    return Status::InvalidArgument(
        "min_category_ratio override must be in [0, 1]");
  }
  if (o.max_category_ratio &&
      (*o.max_category_ratio < 0.0 || *o.max_category_ratio > 1.0)) {
    return Status::InvalidArgument(
        "max_category_ratio override must be in [0, 1]");
  }
  if (o.min_density && *o.min_density < 0.0) {
    return Status::InvalidArgument("min_density override must be >= 0");
  }
  return Status::OK();
}

}  // namespace

std::string ExpanderOverrides::ToKey() const {
  std::ostringstream ss;
  // Full precision: the key must distinguish any two distinct doubles,
  // or a batch could silently serve a cached expander with the wrong
  // options.
  ss << std::setprecision(std::numeric_limits<double>::max_digits10);
  auto emit = [&ss](const char* tag, const auto& field) {
    if (field) ss << ";" << tag << "=" << *field;
  };
  emit("mf", max_features);
  emit("nr", neighborhood_radius);
  emit("mn", max_neighborhood);
  emit("pm", prioritize_mutual);
  emit("cl", min_cycle_length);
  emit("cL", max_cycle_length);
  emit("md", min_density);
  emit("cr", min_category_ratio);
  emit("cR", max_category_ratio);
  emit("2w", two_cycle_weight);
  emit("ld", length_decay);
  emit("sq", sqrt_count_damping);
  emit("mc", max_cycles);
  emit("ra", include_redirect_aliases);
  return ss.str();
}

uint64_t ExpanderOverrides::Hash() const {
  Hasher hasher;
  // Presence bit then value, field by field in declaration order: unset
  // fields still advance the accumulator, so {max_features=3} and
  // {max_cycles=3} cannot collapse to the same hash trajectory.
  auto fold = [&hasher](const auto& field) {
    hasher.Add(field.has_value());
    if (field) {
      if constexpr (std::is_floating_point_v<
                        std::decay_t<decltype(*field)>>) {
        hasher.Add(*field);
      } else {
        hasher.Add(static_cast<uint64_t>(*field));
      }
    }
  };
  fold(max_features);
  fold(neighborhood_radius);
  fold(max_neighborhood);
  fold(prioritize_mutual);
  fold(min_cycle_length);
  fold(max_cycle_length);
  fold(min_density);
  fold(min_category_ratio);
  fold(max_category_ratio);
  fold(two_cycle_weight);
  fold(length_decay);
  fold(sqrt_count_damping);
  fold(max_cycles);
  fold(include_redirect_aliases);
  return hasher.hash();
}

Status ExpanderRegistry::Register(std::string name, Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("expander name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("null factory for expander '", name, "'");
  }
  if (Contains(name)) {
    return Status::AlreadyExists("expander '", name, "' already registered");
  }
  factories_.emplace(std::move(name), std::move(factory));
  return Status::OK();
}

Status ExpanderRegistry::RegisterAlias(std::string alias,
                                       std::string_view canonical) {
  if (alias.empty()) {
    return Status::InvalidArgument("alias must be non-empty");
  }
  if (Contains(alias)) {
    return Status::AlreadyExists("expander '", alias, "' already registered");
  }
  auto it = factories_.find(canonical);
  if (it == factories_.end()) {
    return Status::NotFound("alias target '", canonical,
                            "' is not a registered expander");
  }
  aliases_.emplace(std::move(alias), it->first);
  return Status::OK();
}

bool ExpanderRegistry::Contains(std::string_view name) const {
  return factories_.count(name) > 0 || aliases_.count(name) > 0;
}

std::vector<std::string> ExpanderRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map keeps them sorted
}

std::string ExpanderRegistry::Resolve(std::string_view name) const {
  auto it = aliases_.find(name);
  return it != aliases_.end() ? it->second : std::string(name);
}

Result<std::unique_ptr<expansion::Expander>> ExpanderRegistry::Create(
    std::string_view name, const wiki::KnowledgeBase& kb,
    const linking::EntityLinker& linker,
    const ExpanderOverrides& overrides) const {
  auto it = factories_.find(Resolve(name));
  if (it == factories_.end()) {
    return Status::NotFound("unknown expander '", name,
                            "'; registered: ", [this] {
                              std::string joined;
                              for (const auto& n : Names()) {
                                if (!joined.empty()) joined += ", ";
                                joined += n;
                              }
                              return joined;
                            }());
  }
  WQE_RETURN_NOT_OK(ValidateCommon(overrides));
  return it->second(kb, linker, overrides);
}

ExpanderRegistry ExpanderRegistry::WithBuiltins(
    const StrategyDefaults& defaults) {
  ExpanderRegistry registry;

  WQE_CHECK_OK(registry.Register(
      "no-expansion",
      [](const wiki::KnowledgeBase& kb, const linking::EntityLinker& linker,
         const ExpanderOverrides&)
          -> Result<std::unique_ptr<expansion::Expander>> {
        return std::unique_ptr<expansion::Expander>(
            new expansion::NoExpansion(kb, linker));
      }));

  WQE_CHECK_OK(registry.Register(
      "direct-link",
      [base = defaults.direct_link](
          const wiki::KnowledgeBase& kb, const linking::EntityLinker& linker,
          const ExpanderOverrides& o)
          -> Result<std::unique_ptr<expansion::Expander>> {
        expansion::DirectLinkOptions options = base;
        if (o.max_features) options.max_features = *o.max_features;
        if (o.prioritize_mutual) {
          options.prioritize_mutual = *o.prioritize_mutual;
        }
        return std::unique_ptr<expansion::Expander>(
            new expansion::DirectLinkExpansion(kb, linker, options));
      }));

  WQE_CHECK_OK(registry.Register(
      "community",
      [base = defaults.community](
          const wiki::KnowledgeBase& kb, const linking::EntityLinker& linker,
          const ExpanderOverrides& o)
          -> Result<std::unique_ptr<expansion::Expander>> {
        expansion::CommunityOptions options = base;
        if (o.max_features) options.max_features = *o.max_features;
        if (o.neighborhood_radius) {
          options.neighborhood_radius = *o.neighborhood_radius;
        }
        if (o.max_neighborhood) options.max_neighborhood = *o.max_neighborhood;
        return std::unique_ptr<expansion::Expander>(
            new expansion::CommunityExpansion(kb, linker, options));
      }));

  WQE_CHECK_OK(registry.Register(
      "cycle",
      [base = defaults.cycle](
          const wiki::KnowledgeBase& kb, const linking::EntityLinker& linker,
          const ExpanderOverrides& o)
          -> Result<std::unique_ptr<expansion::Expander>> {
        expansion::CycleExpanderOptions options = base;
        if (o.max_features) options.max_features = *o.max_features;
        if (o.neighborhood_radius) {
          options.neighborhood_radius = *o.neighborhood_radius;
        }
        if (o.max_neighborhood) options.max_neighborhood = *o.max_neighborhood;
        if (o.min_cycle_length) options.min_cycle_length = *o.min_cycle_length;
        if (o.max_cycle_length) options.max_cycle_length = *o.max_cycle_length;
        if (o.min_density) options.min_density = *o.min_density;
        if (o.min_category_ratio) {
          options.min_category_ratio = *o.min_category_ratio;
        }
        if (o.max_category_ratio) {
          options.max_category_ratio = *o.max_category_ratio;
        }
        if (o.two_cycle_weight) options.two_cycle_weight = *o.two_cycle_weight;
        if (o.length_decay) options.length_decay = *o.length_decay;
        if (o.sqrt_count_damping) {
          options.sqrt_count_damping = *o.sqrt_count_damping;
        }
        if (o.max_cycles) options.max_cycles = *o.max_cycles;
        if (o.include_redirect_aliases) {
          options.include_redirect_aliases = *o.include_redirect_aliases;
        }
        if (options.min_cycle_length > options.max_cycle_length) {
          return Status::InvalidArgument(
              "cycle expander: min_cycle_length (", options.min_cycle_length,
              ") > max_cycle_length (", options.max_cycle_length, ")");
        }
        if (options.min_category_ratio > options.max_category_ratio) {
          return Status::InvalidArgument(
              "cycle expander: min_category_ratio (",
              options.min_category_ratio, ") > max_category_ratio (",
              options.max_category_ratio,
              "): the window would reject every cycle");
        }
        return std::unique_ptr<expansion::Expander>(
            new expansion::CycleExpander(kb, linker, options));
      }));

  WQE_CHECK_OK(registry.RegisterAlias("adjacency", "direct-link"));
  WQE_CHECK_OK(registry.RegisterAlias("category", "community"));
  return registry;
}

}  // namespace wqe::api
