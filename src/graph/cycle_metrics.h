#pragma once

/// \file cycle_metrics.h
/// \brief Per-cycle structural measurements used in §3 of the paper.
///
/// For a cycle C the paper defines:
///  - A(C), C(C): number of articles / categories among the cycle's nodes;
///  - E(C): number of edges among the cycle's nodes (induced, direction
///    counted for article links, redirects excluded);
///  - M(C) = A·(A−1) + A·C + C·(C−1)/2: the maximum possible edge count
///    given the Figure 1 schema (ordered article pairs can carry two links,
///    belongs is one per article–category pair, inside one per unordered
///    category pair);
///  - category ratio = C(C) / |C| (Figure 7a);
///  - density of extra edges = (E(C) − |C|) / (M(C) − |C|) (Figure 7b/9).
///
/// All measurements read the frozen `CsrGraph` snapshot: membership tests
/// are binary searches over the cycle's (tiny, sorted) node set and edge
/// probes are sorted-row lookups — no per-cycle hash sets.

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/graph.h"

namespace wqe::graph {

/// \brief Structural measurements of one cycle.
struct CycleMetrics {
  uint32_t length = 0;
  uint32_t num_articles = 0;
  uint32_t num_categories = 0;
  uint32_t num_edges = 0;        ///< E(C)
  uint32_t max_edges = 0;        ///< M(C)
  double category_ratio = 0.0;   ///< C(C) / |C|
  double extra_edge_density = 0.0;
};

/// \brief Computes all metrics of `cycle` against its parent snapshot.
CycleMetrics ComputeCycleMetrics(const CsrGraph& graph, const Cycle& cycle);

/// \brief Metrics for every cycle, in input order (element i belongs to
/// `cycles[i]` — deterministic regardless of parallelism).  Cycles are
/// independent, so the batch shards across `pool` (or a transient pool)
/// when `num_threads != 1`; same thread-count semantics as
/// `CycleEnumerationOptions` (0 = auto), and calls from a pool worker
/// degrade to a sequential loop.  The analysis layer uses this to keep
/// per-topic metric computation off the critical path of large balls.
std::vector<CycleMetrics> ComputeCycleMetricsBatch(
    const CsrGraph& graph, const std::vector<Cycle>& cycles,
    uint32_t num_threads = 1, serve::ThreadPool* pool = nullptr);

/// \brief E(C): edges of `graph` with both endpoints in `nodes`, redirects
/// excluded.  Each directed edge counts once (mutual links count twice).
uint32_t CountInducedEdges(const CsrGraph& graph,
                           const std::vector<NodeId>& nodes);

/// \brief M(C) for the given composition.
uint32_t MaxCycleEdges(uint32_t num_articles, uint32_t num_categories);

/// \brief Fraction of linked (unordered) article pairs with links in both
/// directions — the paper's "11.47% of connected article pairs form a cycle
/// of length 2" statistic.
double ReciprocalLinkRate(const CsrGraph& graph);

}  // namespace wqe::graph
