#include "graph/undirected_view.h"

#include <algorithm>

namespace wqe::graph {

UndirectedView::UndirectedView(const CsrGraph& csr,
                               UndirectedViewOptions options)
    : csr_(&csr), options_(options) {
  if (!options_.include_redirects) {
    // Whole-graph default view: pure offset slicing of the snapshot.
    num_nodes_ = csr_->num_nodes();
    num_pairs_ = csr_->num_und_pairs();
    return;
  }
  BuildFromDirectedRows({}, /*whole_graph=*/true);
}

UndirectedView::UndirectedView(const CsrGraph& csr,
                               const std::vector<NodeId>& nodes,
                               UndirectedViewOptions options)
    : csr_(&csr), options_(options) {
  if (!options_.include_redirects) {
    BuildSubsetFromUndCsr(nodes);
  } else {
    BuildFromDirectedRows(nodes, /*whole_graph=*/false);
  }
}

void UndirectedView::BuildSubsetFromUndCsr(std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  global_ = std::move(nodes);
  subset_ = true;
  owned_ = true;
  num_nodes_ = static_cast<uint32_t>(global_.size());

  offsets_.reserve(num_nodes_ + 1);
  offsets_.push_back(0);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    // Intersect the parent's sorted row with the sorted member list; the
    // member index *is* the neighbor's local id.
    std::span<const NodeId> neigh = csr_->UndNeighbors(global_[u]);
    std::span<const uint32_t> mults = csr_->UndMultiplicities(global_[u]);
    size_t i = 0;
    uint32_t m = 0;
    while (i < neigh.size() && m < num_nodes_) {
      if (neigh[i] < global_[m]) {
        ++i;
      } else if (neigh[i] > global_[m]) {
        ++m;
      } else {
        neighbors_.push_back(m);
        mult_.push_back(mults[i]);
        ++i;
        ++m;
      }
    }
    offsets_.push_back(neighbors_.size());
  }
  num_pairs_ = neighbors_.size() / 2;
}

void UndirectedView::BuildFromDirectedRows(std::vector<NodeId> nodes,
                                           bool whole_graph) {
  owned_ = true;
  if (whole_graph) {
    num_nodes_ = csr_->num_nodes();
  } else {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    global_ = std::move(nodes);
    subset_ = true;
    num_nodes_ = static_cast<uint32_t>(global_.size());
  }
  auto to_local = [&](NodeId g) -> uint32_t {
    if (whole_graph) return g;
    auto it = std::lower_bound(global_.begin(), global_.end(), g);
    if (it == global_.end() || *it != g) return UINT32_MAX;
    return static_cast<uint32_t>(it - global_.begin());
  };

  offsets_.reserve(num_nodes_ + 1);
  offsets_.push_back(0);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    NodeId gu = whole_graph ? u : global_[u];
    // Merge the sorted out/in rows counting parallel edges per neighbor
    // (redirects included — this is the include_redirects slow path).
    std::span<const NodeId> out = csr_->OutTargets(gu);
    std::span<const NodeId> in = csr_->InSources(gu);
    size_t i = 0, j = 0;
    while (i < out.size() || j < in.size()) {
      NodeId next;
      if (j >= in.size() || (i < out.size() && out[i] <= in[j])) {
        next = out[i];
      } else {
        next = in[j];
      }
      uint32_t count = 0;
      while (i < out.size() && out[i] == next) {
        ++count;
        ++i;
      }
      while (j < in.size() && in[j] == next) {
        ++count;
        ++j;
      }
      uint32_t lv = to_local(next);
      if (lv == UINT32_MAX) continue;  // neighbor outside the view
      neighbors_.push_back(lv);
      mult_.push_back(count);
    }
    offsets_.push_back(neighbors_.size());
  }
  num_pairs_ = neighbors_.size() / 2;
}

uint32_t UndirectedView::ToLocal(NodeId global) const {
  if (!subset_) {
    return global < num_nodes_ ? global : UINT32_MAX;
  }
  auto it = std::lower_bound(global_.begin(), global_.end(), global);
  if (it == global_.end() || *it != global) return UINT32_MAX;
  return static_cast<uint32_t>(it - global_.begin());
}

bool UndirectedView::HasEdge(uint32_t u, uint32_t v) const {
  std::span<const uint32_t> neigh = Neighbors(u);
  return std::binary_search(neigh.begin(), neigh.end(), v);
}

uint32_t UndirectedView::Multiplicity(uint32_t u, uint32_t v) const {
  std::span<const uint32_t> neigh = Neighbors(u);
  auto it = std::lower_bound(neigh.begin(), neigh.end(), v);
  if (it == neigh.end() || *it != v) return 0;
  return Multiplicities(u)[static_cast<size_t>(it - neigh.begin())];
}

}  // namespace wqe::graph
