#include "graph/undirected_view.h"

#include <algorithm>
#include <numeric>

namespace wqe::graph {

UndirectedView::UndirectedView(const PropertyGraph& graph,
                               UndirectedViewOptions options)
    : graph_(&graph), options_(options) {
  std::vector<NodeId> all(graph.num_nodes());
  std::iota(all.begin(), all.end(), 0);
  Build(all);
}

UndirectedView::UndirectedView(const PropertyGraph& graph,
                               const std::vector<NodeId>& nodes,
                               UndirectedViewOptions options)
    : graph_(&graph), options_(options) {
  Build(nodes);
}

uint64_t UndirectedView::PairKey(uint32_t u, uint32_t v) {
  uint32_t lo = std::min(u, v);
  uint32_t hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void UndirectedView::Build(const std::vector<NodeId>& nodes) {
  global_.reserve(nodes.size());
  for (NodeId n : nodes) {
    if (local_.emplace(n, static_cast<uint32_t>(global_.size())).second) {
      global_.push_back(n);
    }
  }
  adj_.assign(global_.size(), {});

  // Scan out-edges of every member node; an edge contributes when both
  // endpoints are in the view.
  for (uint32_t lu = 0; lu < global_.size(); ++lu) {
    NodeId gu = global_[lu];
    for (const Edge& e : graph_->OutEdges(gu)) {
      if (e.kind == EdgeKind::kRedirect && !options_.include_redirects) {
        continue;
      }
      auto it = local_.find(e.dst);
      if (it == local_.end()) continue;
      uint32_t lv = it->second;
      if (lv == lu) continue;
      ++multiplicity_[PairKey(lu, lv)];
    }
  }
  for (const auto& [key, count] : multiplicity_) {
    uint32_t lo = static_cast<uint32_t>(key >> 32);
    uint32_t hi = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    adj_[lo].push_back(hi);
    adj_[hi].push_back(lo);
    ++num_pairs_;
  }
  for (auto& neigh : adj_) {
    std::sort(neigh.begin(), neigh.end());
  }
}

uint32_t UndirectedView::ToLocal(NodeId global) const {
  auto it = local_.find(global);
  return it == local_.end() ? UINT32_MAX : it->second;
}

bool UndirectedView::HasEdge(uint32_t u, uint32_t v) const {
  const auto& neigh = adj_[u];
  return std::binary_search(neigh.begin(), neigh.end(), v);
}

uint32_t UndirectedView::Multiplicity(uint32_t u, uint32_t v) const {
  auto it = multiplicity_.find(PairKey(u, v));
  return it == multiplicity_.end() ? 0 : it->second;
}

}  // namespace wqe::graph
