#include "graph/cycles.h"

#include <algorithm>

namespace wqe::graph {

namespace {

/// DFS state for one enumeration run.
struct DfsContext {
  const UndirectedView* view;
  const CycleEnumerationOptions* options;
  const CycleVisitor* visitor;
  std::vector<bool> is_seed;       ///< by local id (empty = no filter)
  std::vector<bool> on_path;
  std::vector<uint32_t> path;
  size_t emitted = 0;
  bool aborted = false;

  bool SeedFilterEnabled() const { return !is_seed.empty(); }

  bool PathTouchesSeed() const {
    if (!SeedFilterEnabled()) return true;
    for (uint32_t v : path) {
      if (is_seed[v]) return true;
    }
    return false;
  }

  /// True when no chord exists: the only adjacencies among path nodes are
  /// the consecutive ones (and the closing edge).
  bool PathIsChordless() const {
    const size_t n = path.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;  // closing edge
        if (view->HasEdge(path[i], path[j])) return false;
      }
    }
    return true;
  }

  void Emit() {
    if (!PathTouchesSeed()) return;
    if (options->chordless_only && path.size() >= 4 && !PathIsChordless()) {
      return;
    }
    ++emitted;
    if (!(*visitor)(path)) {
      aborted = true;
      return;
    }
    if (options->max_cycles != 0 && emitted >= options->max_cycles) {
      aborted = true;
    }
  }

  /// Extends the path (whose last node is `u`); `start` is path[0].
  ///
  /// Rows are sorted ascending, so one binary search splits `u`'s row at
  /// `start`: everything before it is excluded by canonicality (the start
  /// is the path minimum), equality is the closing edge, and only the
  /// suffix can extend the path.  At maximum depth the suffix is skipped
  /// entirely — the closure test is the whole visit.
  void Extend(uint32_t start, uint32_t u) {
    if (aborted) return;
    std::span<const uint32_t> neighbors = view->Neighbors(u);
    auto suffix = std::upper_bound(neighbors.begin(), neighbors.end(), start);
    // Close the cycle when we are back at the start with enough nodes.
    // The orientation constraint path[1] < path.back() ensures each cycle
    // is emitted in only one of its two traversal directions.
    if (suffix != neighbors.begin() && *(suffix - 1) == start &&
        path.size() >= 3 && path.size() >= options->min_length &&
        path[1] < path.back()) {
      Emit();
      if (aborted) return;
    }
    if (path.size() >= options->max_length) return;
    for (auto it = suffix; it != neighbors.end(); ++it) {
      uint32_t v = *it;
      if (on_path[v]) continue;
      path.push_back(v);
      on_path[v] = true;
      Extend(start, v);
      on_path[v] = false;
      path.pop_back();
      if (aborted) return;
    }
  }
};

}  // namespace

size_t CycleEnumerator::Visit(const CycleEnumerationOptions& options,
                              const CycleVisitor& visitor) const {
  const uint32_t n = view_->num_nodes();
  DfsContext ctx;
  ctx.view = view_;
  ctx.options = &options;
  ctx.visitor = &visitor;
  if (!options.seeds.empty()) {
    ctx.is_seed.assign(n, false);
    for (NodeId g : options.seeds) {
      uint32_t local = view_->ToLocal(g);
      if (local != UINT32_MAX) ctx.is_seed[local] = true;
    }
  }
  ctx.on_path.assign(n, false);

  // Length-2 cycles: adjacent pairs with >= 2 parallel edges, read straight
  // off the parallel multiplicity row.
  if (options.min_length <= 2 && options.max_length >= 2) {
    for (uint32_t u = 0; u < n && !ctx.aborted; ++u) {
      std::span<const uint32_t> neighbors = view_->Neighbors(u);
      std::span<const uint32_t> mults = view_->Multiplicities(u);
      size_t first =
          std::upper_bound(neighbors.begin(), neighbors.end(), u) -
          neighbors.begin();
      for (size_t i = first; i < neighbors.size(); ++i) {
        if (mults[i] >= 2) {
          ctx.path = {u, neighbors[i]};
          ctx.Emit();
          if (ctx.aborted) break;
        }
      }
    }
    ctx.path.clear();
  }

  // Length >= 3: canonical DFS from every start node.
  if (options.max_length >= 3 && !ctx.aborted) {
    for (uint32_t s = 0; s < n && !ctx.aborted; ++s) {
      ctx.path.assign(1, s);
      ctx.on_path[s] = true;
      ctx.Extend(s, s);
      ctx.on_path[s] = false;
    }
  }
  return ctx.emitted;
}

std::vector<Cycle> CycleEnumerator::Enumerate(
    const CycleEnumerationOptions& options) const {
  std::vector<Cycle> out;
  Visit(options, [&](const std::vector<uint32_t>& local_cycle) {
    Cycle c;
    c.nodes.reserve(local_cycle.size());
    for (uint32_t local : local_cycle) {
      c.nodes.push_back(view_->ToGlobal(local));
    }
    out.push_back(std::move(c));
    return true;
  });
  return out;
}

std::vector<Cycle> EnumerateCycles(const CsrGraph& csr,
                                   const std::vector<NodeId>& nodes,
                                   const CycleEnumerationOptions& options) {
  UndirectedView view(csr, nodes);
  CycleEnumerator enumerator(view);
  return enumerator.Enumerate(options);
}

}  // namespace wqe::graph
