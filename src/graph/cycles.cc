#include "graph/cycles.h"

#include <algorithm>
#include <atomic>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/mutex.h"
#include "graph/ball_prune.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/thread_pool.h"

namespace wqe::graph {

namespace {

/// How many DFS extensions / start visits pass between cooperative
/// deadline/cancel checks.  Large enough that the clock read is noise
/// against the enumeration work, small enough that an expired deadline
/// stops the run within a few microseconds of real work.
constexpr int kExecCheckInterval = 256;

/// Whole-enumeration latency (sequential or parallel), shared by every
/// enumerator: this is the kernel the serve stack's `enumeration` span
/// bottoms out in.
obs::Histogram* EnumerationHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "wqe.graph.enumeration_latency_ms");
  return histogram;
}

/// DFS state for one enumeration run (one thread's worth: the parallel
/// path gives every worker its own context over the shared view).
///
/// `sink` receives each surviving cycle path; returning false aborts this
/// context's enumeration.  The sequential path wires the user visitor plus
/// emission counting straight in; parallel workers wire a buffer append.
struct DfsContext {
  const UndirectedView* view;
  const CycleEnumerationOptions* options;
  const std::vector<bool>* is_seed;  ///< by local id (null = no filter)
  /// Ball-pruning bitset by local id (graph/ball_prune.h); null when
  /// pruning is off or removed nothing.  Dead nodes lie on no qualifying
  /// cycle, so skipping them changes no emission and no emission order.
  const uint64_t* alive = nullptr;
  std::function<bool(const std::vector<uint32_t>&)> sink;
  std::vector<bool> on_path;
  std::vector<uint32_t> path;
  bool aborted = false;
  /// Sticky: set once the ambient deadline fires or cancellation is
  /// requested.  Distinct from `aborted` (which a visitor can also set)
  /// so the parallel path can tell a truncated chunk from a capped one.
  bool interrupted = false;
  /// Whether the ambient ExecContext has anything to check; cached at
  /// Init so the (overwhelmingly common) no-deadline path costs one
  /// branch per check site.
  bool exec_active = false;
  /// Starts at 1 so the very first check consults the clock: a request
  /// that is already over budget then deterministically emits nothing,
  /// at any thread count.
  int check_countdown = 1;

  void Init(const UndirectedView& v, const CycleEnumerationOptions& o,
            const std::vector<bool>* seeds, const uint64_t* alive_bits) {
    view = &v;
    options = &o;
    is_seed = seeds;
    alive = alive_bits;
    on_path.assign(v.num_nodes(), false);
    exec_active = common::CurrentExecContext().active();
  }

  /// Countdown-gated cooperative check: consults the clock / cancel flag
  /// every `kExecCheckInterval` calls.  Sticky once interrupted.
  bool CheckInterrupt() {
    if (!exec_active) return false;
    if (interrupted) return true;
    if (--check_countdown > 0) return false;
    check_countdown = kExecCheckInterval;
    interrupted = common::ExecInterrupted();
    return interrupted;
  }

  /// Immediate cooperative check (no countdown) for coarse boundaries —
  /// chunk claims — where the check cost is already amortized.
  bool CheckInterruptNow() {
    if (!exec_active) return false;
    if (!interrupted) interrupted = common::ExecInterrupted();
    return interrupted;
  }

  bool Alive(uint32_t v) const {
    return alive == nullptr || BallPruneAlive(alive, v);
  }

  bool PathTouchesSeed() const {
    if (is_seed == nullptr) return true;
    for (uint32_t v : path) {
      if ((*is_seed)[v]) return true;
    }
    return false;
  }

  /// True when no chord exists: the only adjacencies among path nodes are
  /// the consecutive ones (and the closing edge).
  bool PathIsChordless() const {
    const size_t n = path.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;  // closing edge
        if (view->HasEdge(path[i], path[j])) return false;
      }
    }
    return true;
  }

  void Emit() {
    if (!PathTouchesSeed()) return;
    if (options->chordless_only && path.size() >= 4 && !PathIsChordless()) {
      return;
    }
    if (!sink(path)) aborted = true;
  }

  /// Length-2 cycles starting at `u`: adjacent pairs (u, v > u) with >= 2
  /// parallel edges, read straight off the multiplicity row.
  void Length2ForStart(uint32_t u) {
    std::span<const uint32_t> neighbors = view->Neighbors(u);
    std::span<const uint32_t> mults = view->Multiplicities(u);
    size_t first = std::upper_bound(neighbors.begin(), neighbors.end(), u) -
                   neighbors.begin();
    for (size_t i = first; i < neighbors.size() && !aborted; ++i) {
      if (mults[i] >= 2 && Alive(neighbors[i])) {
        path = {u, neighbors[i]};
        Emit();
      }
    }
    path.clear();
  }

  /// Canonical DFS rooted at `s` (cycles of length >= 3 whose minimum
  /// node is `s`).
  void DfsForStart(uint32_t s) {
    path.assign(1, s);
    on_path[s] = true;
    Extend(s, s);
    on_path[s] = false;
    path.clear();
  }

  /// Extends the path (whose last node is `u`); `start` is path[0].
  ///
  /// Rows are sorted ascending, so one binary search splits `u`'s row at
  /// `start`: everything before it is excluded by canonicality (the start
  /// is the path minimum), equality is the closing edge, and only the
  /// suffix can extend the path.  At maximum depth the suffix is skipped
  /// entirely — the closure test is the whole visit.
  void Extend(uint32_t start, uint32_t u) {
    if (aborted) return;
    if (CheckInterrupt()) {
      aborted = true;
      return;
    }
    std::span<const uint32_t> neighbors = view->Neighbors(u);
    auto suffix = std::upper_bound(neighbors.begin(), neighbors.end(), start);
    // Close the cycle when we are back at the start with enough nodes.
    // The orientation constraint path[1] < path.back() ensures each cycle
    // is emitted in only one of its two traversal directions.
    if (suffix != neighbors.begin() && *(suffix - 1) == start &&
        path.size() >= 3 && path.size() >= options->min_length &&
        path[1] < path.back()) {
      Emit();
      if (aborted) return;
    }
    if (path.size() >= options->max_length) return;
    for (auto it = suffix; it != neighbors.end(); ++it) {
      uint32_t v = *it;
      if (on_path[v] || !Alive(v)) continue;
      path.push_back(v);
      on_path[v] = true;
      Extend(start, v);
      on_path[v] = false;
      path.pop_back();
      if (aborted) return;
    }
  }
};

/// Builds the shared local-id seed mask; empty optional-equivalent is a
/// null pointer at the call sites.
std::vector<bool> BuildSeedMask(const UndirectedView& view,
                                const CycleEnumerationOptions& options) {
  std::vector<bool> is_seed(view.num_nodes(), false);
  for (NodeId g : options.seeds) {
    uint32_t local = view.ToLocal(g);
    if (local != UINT32_MAX) is_seed[local] = true;
  }
  return is_seed;
}

/// Runs ball pruning when the options ask for it; `bits` backs the
/// returned pointer.  Null when pruning is off, the view is empty, or
/// nothing was removed — the null fast path keeps fully-alive scans free
/// of bitset loads.
const uint64_t* MaybePrune(const UndirectedView& view,
                           const CycleEnumerationOptions& options,
                           std::vector<uint64_t>* bits) {
  if (!options.prune_ball || view.num_nodes() == 0) return nullptr;
  BallPruneStats stats =
      PruneBall(view, options.seeds, options.max_length, bits);
  return stats.pruned_any() ? bits->data() : nullptr;
}

/// One chunk's output.  Cycles are stored flattened (lengths + node data)
/// to keep the collection allocation-light; the two phases are kept in
/// separate streams because the sequential enumerator emits *all*
/// length-2 cycles (by start) before *any* DFS cycle.
struct ChunkBuffer {
  std::vector<uint32_t> len2_lengths;  // always 2; kept for uniform replay
  std::vector<uint32_t> len2_nodes;
  std::vector<uint32_t> dfs_lengths;
  std::vector<uint32_t> dfs_nodes;
  /// Cleared when a deadline/cancel interruption truncated the stream:
  /// the stored cycles are then a *prefix* of what the chunk would have
  /// produced, and the merge must stop after replaying them so the
  /// overall emission stays a prefix of the sequential order.  (Budget-
  /// capped chunks keep these set — their tails are past the
  /// `max_cycles` truncation point and unreachable in the merge.)
  bool len2_complete = true;
  bool dfs_complete = true;

  size_t num_len2() const { return len2_lengths.size(); }
};

/// Degree-balanced [begin, end) start ranges.  Weight of a start ~ its
/// degree (drives both the length-2 row scan and the DFS fan-out); more
/// chunks than threads so the atomic-cursor steal loop can rebalance
/// skewed high-degree chunks.
std::vector<std::pair<uint32_t, uint32_t>> BuildChunks(
    const UndirectedView& view, uint32_t threads, uint32_t max_starts) {
  const uint32_t n = view.num_nodes();
  uint64_t total_weight = 0;
  for (uint32_t s = 0; s < n; ++s) total_weight += 1 + view.Degree(s);
  const uint64_t target = std::max<uint64_t>(
      1, total_weight / (static_cast<uint64_t>(threads) * 8));

  std::vector<std::pair<uint32_t, uint32_t>> chunks;
  uint32_t begin = 0;
  uint64_t weight = 0;
  for (uint32_t s = 0; s < n; ++s) {
    weight += 1 + view.Degree(s);
    const uint32_t count = s + 1 - begin;
    if (weight >= target || (max_starts != 0 && count >= max_starts)) {
      chunks.emplace_back(begin, s + 1);
      begin = s + 1;
      weight = 0;
    }
  }
  if (begin < n) chunks.emplace_back(begin, n);
  return chunks;
}

/// Tracks which prefix of the chunk sequence is fully enumerated and how
/// many *first-stream* cycles it produced (the length-2 stream when one
/// exists, else the DFS stream — whichever merges first).  Used as the
/// shared `max_cycles` budget: once the *completed prefix* alone holds
/// `max_cycles` first-stream cycles, every not-yet-started chunk's
/// entire output falls past the truncation point — chunks are claimed in
/// ascending order, so any chunk a worker is about to claim can be
/// skipped outright.  Conservative (in-flight chunks keep running), but
/// sound: the merge step still truncates at exactly `max_cycles`.
struct PrefixBudget {
  common::Mutex mu;
  std::vector<uint8_t> done WQE_GUARDED_BY(mu);
  size_t next_prefix WQE_GUARDED_BY(mu) = 0;
  bool count_len2;  ///< which stream merges first; immutable after ctor
  std::atomic<size_t> prefix_count{0};

  PrefixBudget(size_t num_chunks, bool want_len2)
      : done(num_chunks, 0), count_len2(want_len2) {}

  void MarkDone(size_t chunk, const std::vector<ChunkBuffer>& buffers) {
    common::MutexLock lock(mu);
    done[chunk] = 1;
    size_t count = prefix_count.load(std::memory_order_relaxed);
    while (next_prefix < done.size() && done[next_prefix]) {
      const ChunkBuffer& b = buffers[next_prefix];
      count += count_len2 ? b.num_len2() : b.dfs_lengths.size();
      ++next_prefix;
    }
    prefix_count.store(count, std::memory_order_release);
  }

  bool Exhausted(size_t max_cycles) const {
    return max_cycles != 0 &&
           prefix_count.load(std::memory_order_acquire) >= max_cycles;
  }
};

/// Appends `path` to `lengths`/`nodes`, honoring the per-chunk cap: one
/// chunk never needs to contribute more than `max_cycles` cycles to
/// either merged stream, because the final output holds at most that many
/// in total.  Returns false once the cap is hit (stops that phase's
/// enumeration for the chunk).
bool AppendCapped(const std::vector<uint32_t>& path, size_t max_cycles,
                  std::vector<uint32_t>* lengths,
                  std::vector<uint32_t>* nodes) {
  lengths->push_back(static_cast<uint32_t>(path.size()));
  nodes->insert(nodes->end(), path.begin(), path.end());
  return max_cycles == 0 || lengths->size() < max_cycles;
}

}  // namespace

size_t CycleEnumerator::SequentialVisit(const CycleEnumerationOptions& options,
                                        const CycleVisitor& visitor) const {
  const uint32_t n = view_->num_nodes();
  std::vector<bool> seed_mask;
  if (!options.seeds.empty()) seed_mask = BuildSeedMask(*view_, options);
  std::vector<uint64_t> alive_bits;
  const uint64_t* alive = MaybePrune(*view_, options, &alive_bits);

  DfsContext ctx;
  ctx.Init(*view_, options, options.seeds.empty() ? nullptr : &seed_mask,
           alive);
  size_t emitted = 0;
  ctx.sink = [&](const std::vector<uint32_t>& path) {
    ++emitted;
    if (!visitor(path)) return false;
    return options.max_cycles == 0 || emitted < options.max_cycles;
  };

  if (options.min_length <= 2 && options.max_length >= 2) {
    for (uint32_t u = 0; u < n && !ctx.aborted; ++u) {
      if (ctx.CheckInterrupt()) break;
      if (ctx.Alive(u)) ctx.Length2ForStart(u);
    }
  }
  if (options.max_length >= 3 && !ctx.interrupted) {
    for (uint32_t s = 0; s < n && !ctx.aborted; ++s) {
      if (ctx.CheckInterrupt()) break;
      if (ctx.Alive(s)) ctx.DfsForStart(s);
    }
  }
  return emitted;
}

size_t CycleEnumerator::ParallelVisit(const CycleEnumerationOptions& options,
                                      const CycleVisitor& visitor) const {
  const uint32_t threads =
      serve::EffectiveParallelism(options.num_threads, options.pool);
  const uint32_t n = view_->num_nodes();
  if (threads <= 1 || n < 2) return SequentialVisit(options, visitor);

  std::vector<std::pair<uint32_t, uint32_t>> chunks =
      BuildChunks(*view_, threads, options.parallel_chunk_starts);
  if (chunks.size() <= 1) return SequentialVisit(options, visitor);

  std::vector<bool> seed_mask;
  const std::vector<bool>* seeds = nullptr;
  if (!options.seeds.empty()) {
    seed_mask = BuildSeedMask(*view_, options);
    seeds = &seed_mask;
  }
  // One shared prune for all workers (read-only after this point); runs
  // after the sequential fallbacks above so it is never computed twice.
  std::vector<uint64_t> alive_bits;
  const uint64_t* alive = MaybePrune(*view_, options, &alive_bits);
  const bool want_len2 = options.min_length <= 2 && options.max_length >= 2;
  const bool want_dfs = options.max_length >= 3;

  std::vector<ChunkBuffer> buffers(chunks.size());
  std::atomic<size_t> cursor{0};
  PrefixBudget budget(chunks.size(), want_len2);

  auto worker = [&] {
    DfsContext ctx;
    ctx.Init(*view_, options, seeds, alive);
    for (;;) {
      const size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks.size()) return;
      ChunkBuffer& out = buffers[c];
      WQE_FAULT_DELAY("graph.enumeration_chunk");
      // Coarse cooperative check per chunk claim: an interrupted worker
      // keeps draining the cursor, marking each untouched chunk
      // incomplete so the merge stops at the truncation point.
      if (ctx.CheckInterruptNow()) {
        out.len2_complete = false;
        out.dfs_complete = false;
        budget.MarkDone(c, buffers);
        continue;
      }
      if (!budget.Exhausted(options.max_cycles)) {
        const auto [begin, end] = chunks[c];
        if (want_len2) {
          ctx.aborted = false;
          ctx.sink = [&](const std::vector<uint32_t>& path) {
            return AppendCapped(path, options.max_cycles, &out.len2_lengths,
                                &out.len2_nodes);
          };
          for (uint32_t u = begin; u < end && !ctx.aborted; ++u) {
            if (ctx.CheckInterrupt()) break;
            if (ctx.Alive(u)) ctx.Length2ForStart(u);
          }
          if (ctx.interrupted) out.len2_complete = false;
        }
        if (ctx.interrupted) {
          // Whatever the DFS phase would have produced is lost to the
          // interruption; the chunk's DFS stream is (possibly empty and)
          // truncated.
          out.dfs_complete = false;
        } else if (want_dfs) {
          ctx.aborted = false;
          ctx.sink = [&](const std::vector<uint32_t>& path) {
            return AppendCapped(path, options.max_cycles, &out.dfs_lengths,
                                &out.dfs_nodes);
          };
          for (uint32_t s = begin; s < end && !ctx.aborted; ++s) {
            if (budget.Exhausted(options.max_cycles)) break;
            if (ctx.CheckInterrupt()) break;
            if (ctx.Alive(s)) ctx.DfsForStart(s);
          }
          if (ctx.interrupted) out.dfs_complete = false;
        }
      }
      budget.MarkDone(c, buffers);
    }
  };

  // The calling thread enumerates too; extra workers come from the
  // caller's pool or a transient one (EffectiveParallelism has already
  // guaranteed this thread is not a pool worker, so blocking on the
  // join cannot deadlock the pool).
  serve::RunParallel(options.pool,
                     std::min<size_t>(threads - 1, chunks.size() - 1), worker);

  // Deterministic merge + replay: all length-2 streams in chunk (= start)
  // order, then all DFS streams — exactly the sequential emission order —
  // with the visitor/max_cycles contract applied on this thread.
  obs::Span merge_span("merge");
  size_t emitted = 0;
  std::vector<uint32_t> scratch;
  auto feed = [&](const std::vector<uint32_t>& lengths,
                  const std::vector<uint32_t>& nodes) {
    size_t offset = 0;
    for (uint32_t len : lengths) {
      scratch.assign(nodes.begin() + static_cast<ptrdiff_t>(offset),
                     nodes.begin() + static_cast<ptrdiff_t>(offset + len));
      offset += len;
      ++emitted;
      if (!visitor(scratch)) return false;
      if (options.max_cycles != 0 && emitted >= options.max_cycles) {
        return false;
      }
    }
    return true;
  };
  // A chunk whose stream was truncated by a deadline/cancel interruption
  // still holds a *prefix* of its sequential output; replaying it and
  // then stopping keeps the overall emission a prefix of the sequential
  // order (the abort-prefix identity guarantee).
  for (const ChunkBuffer& b : buffers) {
    if (!feed(b.len2_lengths, b.len2_nodes)) return emitted;
    if (!b.len2_complete) return emitted;
  }
  for (const ChunkBuffer& b : buffers) {
    if (!feed(b.dfs_lengths, b.dfs_nodes)) return emitted;
    if (!b.dfs_complete) return emitted;
  }
  return emitted;
}

namespace {

/// Visitor that materializes each local-id path as a global-id Cycle.
CycleVisitor CollectInto(const UndirectedView& view, std::vector<Cycle>* out) {
  return [&view, out](const std::vector<uint32_t>& local_cycle) {
    Cycle c;
    c.nodes.reserve(local_cycle.size());
    for (uint32_t local : local_cycle) {
      c.nodes.push_back(view.ToGlobal(local));
    }
    out->push_back(std::move(c));
    return true;
  };
}

}  // namespace

size_t CycleEnumerator::Visit(const CycleEnumerationOptions& options,
                              const CycleVisitor& visitor) const {
  obs::Span span("enumeration", EnumerationHistogram());
  if (serve::EffectiveParallelism(options.num_threads, options.pool) > 1) {
    return ParallelVisit(options, visitor);
  }
  return SequentialVisit(options, visitor);
}

std::vector<Cycle> CycleEnumerator::Enumerate(
    const CycleEnumerationOptions& options) const {
  std::vector<Cycle> out;
  Visit(options, CollectInto(*view_, &out));
  return out;
}

std::vector<Cycle> CycleEnumerator::ParallelEnumerate(
    const CycleEnumerationOptions& options) const {
  std::vector<Cycle> out;
  ParallelVisit(options, CollectInto(*view_, &out));
  return out;
}

std::vector<Cycle> EnumerateCycles(const CsrGraph& csr,
                                   const std::vector<NodeId>& nodes,
                                   const CycleEnumerationOptions& options) {
  UndirectedView view(csr, nodes);
  CycleEnumerator enumerator(view);
  return enumerator.Enumerate(options);
}

}  // namespace wqe::graph
