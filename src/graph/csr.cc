#include "graph/csr.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace wqe::graph {

namespace {

/// Sort key for one directed CSR row entry.
struct RowEntry {
  NodeId node;
  EdgeKind kind;

  bool operator<(const RowEntry& other) const {
    if (node != other.node) return node < other.node;
    return static_cast<uint8_t>(kind) < static_cast<uint8_t>(other.kind);
  }
};

/// Appends `row` (sorted by (node, kind)) to the flat arrays.
void AppendRow(std::vector<RowEntry>* row, std::vector<NodeId>* nodes,
               std::vector<EdgeKind>* kinds, std::vector<uint64_t>* offsets) {
  std::sort(row->begin(), row->end());
  for (const RowEntry& e : *row) {
    nodes->push_back(e.node);
    kinds->push_back(e.kind);
  }
  offsets->push_back(nodes->size());
  row->clear();
}

/// Row view over not-yet-bound vectors (Freeze reads the directed arrays
/// back while building the undirected CSR, before any span is bound).
template <typename T>
std::span<const T> VectorRow(const std::vector<T>& data,
                             const std::vector<uint64_t>& offsets, NodeId n) {
  return std::span<const T>(data.data() + offsets[n],
                            data.data() + offsets[n + 1]);
}

}  // namespace

void CsrGraph::BindSpans(const CsrArrays& arrays) {
  kinds_ = arrays.kinds;
  redirect_target_ = arrays.redirect_target;
  out_offsets_ = arrays.out_offsets;
  out_targets_ = arrays.out_targets;
  out_kinds_ = arrays.out_kinds;
  in_offsets_ = arrays.in_offsets;
  in_sources_ = arrays.in_sources;
  in_kinds_ = arrays.in_kinds;
  und_offsets_ = arrays.und_offsets;
  und_neighbors_ = arrays.und_neighbors;
  und_mult_ = arrays.und_mult;
}

CsrGraph CsrGraph::Freeze(const PropertyGraph& builder) {
  CsrGraph g;
  CsrArrays a;
  const uint32_t n = static_cast<uint32_t>(builder.num_nodes());

  a.kinds.reserve(n);
  a.redirect_target.assign(n, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    NodeKind kind = builder.kind(u);
    a.kinds.push_back(kind);
    ++g.node_kind_counts_[static_cast<size_t>(kind)];
  }
  for (int k = 0; k < 4; ++k) {
    g.edge_kind_counts_[k] = builder.CountEdges(static_cast<EdgeKind>(k));
  }

  // --- Directed CSR, each row sorted by (target, kind). ---
  a.out_offsets.reserve(n + 1);
  a.in_offsets.reserve(n + 1);
  a.out_offsets.push_back(0);
  a.in_offsets.push_back(0);
  a.out_targets.reserve(builder.num_edges());
  a.out_kinds.reserve(builder.num_edges());
  a.in_sources.reserve(builder.num_edges());
  a.in_kinds.reserve(builder.num_edges());
  std::vector<RowEntry> row;
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : builder.OutEdges(u)) {
      row.push_back({e.dst, e.kind});
      if (e.kind == EdgeKind::kRedirect &&
          a.redirect_target[u] == kInvalidNode) {
        a.redirect_target[u] = e.dst;
      }
    }
    AppendRow(&row, &a.out_targets, &a.out_kinds, &a.out_offsets);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : builder.InEdges(u)) {
      row.push_back({e.dst, e.kind});  // e.dst is the *source* in in-lists
    }
    AppendRow(&row, &a.in_sources, &a.in_kinds, &a.in_offsets);
  }

  // --- Undirected CSR (redirects excluded): merge the two sorted rows of
  // every node, counting parallel edges per distinct neighbor. ---
  a.und_offsets.reserve(n + 1);
  a.und_offsets.push_back(0);
  for (NodeId u = 0; u < n; ++u) {
    std::span<const NodeId> out = VectorRow(a.out_targets, a.out_offsets, u);
    std::span<const EdgeKind> out_kinds =
        VectorRow(a.out_kinds, a.out_offsets, u);
    std::span<const NodeId> in = VectorRow(a.in_sources, a.in_offsets, u);
    std::span<const EdgeKind> in_kinds =
        VectorRow(a.in_kinds, a.in_offsets, u);
    size_t i = 0, j = 0;
    auto skip_redirects = [&] {
      while (i < out.size() && out_kinds[i] == EdgeKind::kRedirect) ++i;
      while (j < in.size() && in_kinds[j] == EdgeKind::kRedirect) ++j;
    };
    skip_redirects();
    while (i < out.size() || j < in.size()) {
      NodeId next;
      if (j >= in.size() || (i < out.size() && out[i] <= in[j])) {
        next = out[i];
      } else {
        next = in[j];
      }
      uint32_t mult = 0;
      while (i < out.size() && out[i] == next) {
        if (out_kinds[i] != EdgeKind::kRedirect) ++mult;
        ++i;
      }
      while (j < in.size() && in[j] == next) {
        if (in_kinds[j] != EdgeKind::kRedirect) ++mult;
        ++j;
      }
      if (mult > 0) {
        a.und_neighbors.push_back(next);
        a.und_mult.push_back(mult);
      }
      skip_redirects();
    }
    a.und_offsets.push_back(a.und_neighbors.size());
  }
  g.owned_ = std::make_shared<CsrArrays>(std::move(a));
  g.BindSpans(*g.owned_);
  // Debug builds verify the snapshot before anything can run on it; a
  // violation here is a Freeze bug, not bad input.
  g.DCheckInvariants();
  return g;
}

Result<CsrGraph> CsrGraph::FromSections(const CsrSections& sections,
                                        std::shared_ptr<const void> storage,
                                        bool check_invariants) {
  CsrGraph g;
  g.external_ = std::move(storage);
  g.kinds_ = sections.kinds;
  g.redirect_target_ = sections.redirect_target;
  g.out_offsets_ = sections.out_offsets;
  g.out_targets_ = sections.out_targets;
  g.out_kinds_ = sections.out_kinds;
  g.in_offsets_ = sections.in_offsets;
  g.in_sources_ = sections.in_sources;
  g.in_kinds_ = sections.in_kinds;
  g.und_offsets_ = sections.und_offsets;
  g.und_neighbors_ = sections.und_neighbors;
  g.und_mult_ = sections.und_mult;
  for (size_t k = 0; k < 4; ++k) {
    g.edge_kind_counts_[k] = static_cast<size_t>(sections.edge_kind_counts[k]);
  }
  for (size_t k = 0; k < 2; ++k) {
    g.node_kind_counts_[k] = static_cast<size_t>(sections.node_kind_counts[k]);
  }
  if (check_invariants) {
    WQE_RETURN_NOT_OK(g.CheckInvariants());
  }
  return g;
}

CsrSections CsrGraph::Sections() const {
  CsrSections s;
  s.kinds = kinds_;
  s.redirect_target = redirect_target_;
  s.out_offsets = out_offsets_;
  s.out_targets = out_targets_;
  s.out_kinds = out_kinds_;
  s.in_offsets = in_offsets_;
  s.in_sources = in_sources_;
  s.in_kinds = in_kinds_;
  s.und_offsets = und_offsets_;
  s.und_neighbors = und_neighbors_;
  s.und_mult = und_mult_;
  for (size_t k = 0; k < 4; ++k) {
    s.edge_kind_counts[k] = static_cast<uint64_t>(edge_kind_counts_[k]);
  }
  for (size_t k = 0; k < 2; ++k) {
    s.node_kind_counts[k] = static_cast<uint64_t>(node_kind_counts_[k]);
  }
  return s;
}

namespace {

/// Shared shape checks for one CSR direction: zero-based monotone
/// offsets ending at the data size, a kind array parallel to the node
/// array, in-range endpoints, rows sorted by (node, kind).
Status CheckDirectedCsr(const char* what, uint32_t n,
                        std::span<const uint64_t> offsets,
                        std::span<const NodeId> nodes,
                        std::span<const EdgeKind> kinds) {
  if (offsets.size() != static_cast<size_t>(n) + 1) {
    return Status::Internal(what, ": offsets size ", offsets.size(),
                            " != num_nodes + 1 = ", n + 1);
  }
  if (offsets.front() != 0) {
    return Status::Internal(what, ": offsets[0] != 0");
  }
  if (offsets.back() != nodes.size()) {
    return Status::Internal(what, ": offsets end at ", offsets.back(),
                            " but row data holds ", nodes.size());
  }
  if (kinds.size() != nodes.size()) {
    return Status::Internal(what, ": kind array size ", kinds.size(),
                            " != node array size ", nodes.size());
  }
  // Monotonicity first: with offsets[0] == 0 and offsets[n] == size
  // already verified, a fully monotone array keeps every row index in
  // bounds — only then is it safe to dereference row data below.
  for (NodeId u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::Internal(what, ": offsets not monotone at node ", u);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (nodes[i] >= n) {
        return Status::Internal(what, ": node ", u, " row entry ", nodes[i],
                                " out of range");
      }
      if (i > offsets[u] &&
          RowEntry{nodes[i], kinds[i]} < RowEntry{nodes[i - 1], kinds[i - 1]}) {
        return Status::Internal(what, ": node ", u,
                                " row not sorted by (target, kind)");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status CsrGraph::CheckInvariants() const {
  const uint32_t n = num_nodes();
  if (n == 0 && out_offsets_.empty()) {
    return Status::OK();  // default-constructed, never frozen
  }
  if (redirect_target_.size() != n) {
    return Status::Internal("redirect table size ", redirect_target_.size(),
                            " != num_nodes ", n);
  }
  // Kind bytes must name a real NodeKind before they are used as count
  // indices (snapshot-loaded sections are raw file bytes).
  for (NodeKind kind : kinds_) {
    if (static_cast<uint8_t>(kind) >= 2) {
      return Status::Internal("node kind byte ",
                              static_cast<uint32_t>(kind), " out of range");
    }
  }
  std::array<size_t, 2> node_counts{};
  for (NodeKind kind : kinds_) ++node_counts[static_cast<size_t>(kind)];
  if (node_counts != node_kind_counts_) {
    return Status::Internal("node kind counts out of sync with kinds array");
  }

  WQE_RETURN_NOT_OK(
      CheckDirectedCsr("out CSR", n, out_offsets_, out_targets_, out_kinds_));
  WQE_RETURN_NOT_OK(
      CheckDirectedCsr("in CSR", n, in_offsets_, in_sources_, in_kinds_));
  if (in_sources_.size() != out_targets_.size()) {
    return Status::Internal("in CSR holds ", in_sources_.size(),
                            " edges, out CSR holds ", out_targets_.size());
  }
  for (EdgeKind kind : out_kinds_) {
    if (static_cast<uint8_t>(kind) >= 4) {
      return Status::Internal("edge kind byte ",
                              static_cast<uint32_t>(kind), " out of range");
    }
  }
  std::array<size_t, 4> edge_counts{};
  for (EdgeKind kind : out_kinds_) ++edge_counts[static_cast<size_t>(kind)];
  if (edge_counts != edge_kind_counts_) {
    return Status::Internal("edge kind counts out of sync with out CSR");
  }

  // Redirect table ↔ redirect out-edges: a node with no redirect edge
  // maps to kInvalidNode; otherwise the table holds one of its redirect
  // targets (Freeze keeps the first in insertion order, which need not
  // be first in the sorted row).
  for (NodeId u = 0; u < n; ++u) {
    bool has_redirect = false;
    bool table_matches = false;
    std::span<const NodeId> targets = OutTargets(u);
    std::span<const EdgeKind> kinds = OutKinds(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (kinds[i] == EdgeKind::kRedirect) {
        has_redirect = true;
        if (redirect_target_[u] == targets[i]) table_matches = true;
      }
    }
    const bool table_ok = has_redirect
                              ? table_matches
                              : redirect_target_[u] == kInvalidNode;
    if (!table_ok) {
      return Status::Internal("redirect table disagrees with out edges at ",
                              "node ", u);
    }
  }

  // Undirected CSR: shape, strict ascending distinct neighbors, positive
  // multiplicities, (u,v) ↔ (v,u) symmetry, and total mass — every
  // non-redirect directed edge contributes one multiplicity unit at each
  // endpoint.
  if (und_offsets_.size() != static_cast<size_t>(n) + 1 ||
      und_offsets_.front() != 0 ||
      und_offsets_.back() != und_neighbors_.size() ||
      und_mult_.size() != und_neighbors_.size()) {
    return Status::Internal("undirected CSR arrays misshapen");
  }
  for (NodeId u = 0; u < n; ++u) {
    if (und_offsets_[u] > und_offsets_[u + 1]) {
      return Status::Internal("undirected offsets not monotone at node ", u);
    }
  }
  uint64_t total_mult = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::span<const NodeId> neighbors = UndNeighbors(u);
    std::span<const uint32_t> mults = UndMultiplicities(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] >= n) {
        return Status::Internal("undirected neighbor out of range at node ",
                                u);
      }
      if (i > 0 && neighbors[i] <= neighbors[i - 1]) {
        return Status::Internal("undirected row not strictly ascending at ",
                                "node ", u);
      }
      if (mults[i] == 0) {
        return Status::Internal("zero multiplicity stored at node ", u);
      }
      if (UndMultiplicity(neighbors[i], u) != mults[i]) {
        return Status::Internal("undirected multiplicity asymmetric for (", u,
                                ", ", neighbors[i], ")");
      }
      total_mult += mults[i];
    }
  }
  const uint64_t non_redirect_edges =
      num_edges() -
      edge_kind_counts_[static_cast<size_t>(EdgeKind::kRedirect)];
  if (total_mult != 2 * non_redirect_edges) {
    return Status::Internal("undirected multiplicity mass ", total_mult,
                            " != 2 * non-redirect edges ",
                            2 * non_redirect_edges);
  }
  return Status::OK();
}

void CsrGraph::DCheckInvariants() const { WQE_DCHECK_OK(CheckInvariants()); }

bool CsrGraph::HasEdge(NodeId src, NodeId dst, EdgeKind kind) const {
  if (src >= num_nodes() || dst >= num_nodes()) return false;
  std::span<const NodeId> targets = OutTargets(src);
  std::span<const EdgeKind> kinds = OutKinds(src);
  auto it = std::lower_bound(targets.begin(), targets.end(), dst);
  for (; it != targets.end() && *it == dst; ++it) {
    if (kinds[static_cast<size_t>(it - targets.begin())] == kind) return true;
  }
  return false;
}

uint32_t CsrGraph::UndMultiplicity(NodeId u, NodeId v) const {
  std::span<const NodeId> neigh = UndNeighbors(u);
  auto it = std::lower_bound(neigh.begin(), neigh.end(), v);
  if (it == neigh.end() || *it != v) return 0;
  return UndMultiplicities(u)[static_cast<size_t>(it - neigh.begin())];
}

}  // namespace wqe::graph
