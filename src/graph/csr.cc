#include "graph/csr.h"

#include <algorithm>

namespace wqe::graph {

namespace {

/// Sort key for one directed CSR row entry.
struct RowEntry {
  NodeId node;
  EdgeKind kind;

  bool operator<(const RowEntry& other) const {
    if (node != other.node) return node < other.node;
    return static_cast<uint8_t>(kind) < static_cast<uint8_t>(other.kind);
  }
};

/// Appends `row` (sorted by (node, kind)) to the flat arrays.
void AppendRow(std::vector<RowEntry>* row, std::vector<NodeId>* nodes,
               std::vector<EdgeKind>* kinds, std::vector<uint64_t>* offsets) {
  std::sort(row->begin(), row->end());
  for (const RowEntry& e : *row) {
    nodes->push_back(e.node);
    kinds->push_back(e.kind);
  }
  offsets->push_back(nodes->size());
  row->clear();
}

}  // namespace

CsrGraph CsrGraph::Freeze(const PropertyGraph& builder) {
  CsrGraph g;
  const uint32_t n = static_cast<uint32_t>(builder.num_nodes());

  g.kinds_.reserve(n);
  g.redirect_target_.assign(n, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    NodeKind kind = builder.kind(u);
    g.kinds_.push_back(kind);
    ++g.node_kind_counts_[static_cast<size_t>(kind)];
  }
  for (int k = 0; k < 4; ++k) {
    g.edge_kind_counts_[k] = builder.CountEdges(static_cast<EdgeKind>(k));
  }

  // --- Directed CSR, each row sorted by (target, kind). ---
  g.out_offsets_.reserve(n + 1);
  g.in_offsets_.reserve(n + 1);
  g.out_offsets_.push_back(0);
  g.in_offsets_.push_back(0);
  g.out_targets_.reserve(builder.num_edges());
  g.out_kinds_.reserve(builder.num_edges());
  g.in_sources_.reserve(builder.num_edges());
  g.in_kinds_.reserve(builder.num_edges());
  std::vector<RowEntry> row;
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : builder.OutEdges(u)) {
      row.push_back({e.dst, e.kind});
      if (e.kind == EdgeKind::kRedirect &&
          g.redirect_target_[u] == kInvalidNode) {
        g.redirect_target_[u] = e.dst;
      }
    }
    AppendRow(&row, &g.out_targets_, &g.out_kinds_, &g.out_offsets_);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : builder.InEdges(u)) {
      row.push_back({e.dst, e.kind});  // e.dst is the *source* in in-lists
    }
    AppendRow(&row, &g.in_sources_, &g.in_kinds_, &g.in_offsets_);
  }

  // --- Undirected CSR (redirects excluded): merge the two sorted rows of
  // every node, counting parallel edges per distinct neighbor. ---
  g.und_offsets_.reserve(n + 1);
  g.und_offsets_.push_back(0);
  for (NodeId u = 0; u < n; ++u) {
    std::span<const NodeId> out = g.OutTargets(u);
    std::span<const EdgeKind> out_kinds = g.OutKinds(u);
    std::span<const NodeId> in = g.InSources(u);
    std::span<const EdgeKind> in_kinds = g.InKinds(u);
    size_t i = 0, j = 0;
    auto skip_redirects = [&] {
      while (i < out.size() && out_kinds[i] == EdgeKind::kRedirect) ++i;
      while (j < in.size() && in_kinds[j] == EdgeKind::kRedirect) ++j;
    };
    skip_redirects();
    while (i < out.size() || j < in.size()) {
      NodeId next;
      if (j >= in.size() || (i < out.size() && out[i] <= in[j])) {
        next = out[i];
      } else {
        next = in[j];
      }
      uint32_t mult = 0;
      while (i < out.size() && out[i] == next) {
        if (out_kinds[i] != EdgeKind::kRedirect) ++mult;
        ++i;
      }
      while (j < in.size() && in[j] == next) {
        if (in_kinds[j] != EdgeKind::kRedirect) ++mult;
        ++j;
      }
      if (mult > 0) {
        g.und_neighbors_.push_back(next);
        g.und_mult_.push_back(mult);
      }
      skip_redirects();
    }
    g.und_offsets_.push_back(g.und_neighbors_.size());
  }
  return g;
}

bool CsrGraph::HasEdge(NodeId src, NodeId dst, EdgeKind kind) const {
  if (src >= num_nodes() || dst >= num_nodes()) return false;
  std::span<const NodeId> targets = OutTargets(src);
  std::span<const EdgeKind> kinds = OutKinds(src);
  auto it = std::lower_bound(targets.begin(), targets.end(), dst);
  for (; it != targets.end() && *it == dst; ++it) {
    if (kinds[static_cast<size_t>(it - targets.begin())] == kind) return true;
  }
  return false;
}

uint32_t CsrGraph::UndMultiplicity(NodeId u, NodeId v) const {
  std::span<const NodeId> neigh = UndNeighbors(u);
  auto it = std::lower_bound(neigh.begin(), neigh.end(), v);
  if (it == neigh.end() || *it != v) return 0;
  return UndMultiplicities(u)[static_cast<size_t>(it - neigh.begin())];
}

}  // namespace wqe::graph
