#include "graph/connected_components.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace wqe::graph {

std::vector<uint32_t> ComponentsResult::LargestComponent() const {
  std::vector<uint32_t> out;
  if (size.empty()) return out;
  out.reserve(size[0]);
  for (uint32_t n = 0; n < label.size(); ++n) {
    if (label[n] == 0) out.push_back(n);
  }
  return out;
}

ComponentsResult ConnectedComponents(const UndirectedView& view) {
  const uint32_t n = view.num_nodes();
  std::vector<uint32_t> raw_label(n, UINT32_MAX);
  std::vector<uint32_t> raw_size;
  std::deque<uint32_t> queue;

  for (uint32_t start = 0; start < n; ++start) {
    if (raw_label[start] != UINT32_MAX) continue;
    uint32_t comp = static_cast<uint32_t>(raw_size.size());
    raw_size.push_back(0);
    raw_label[start] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      ++raw_size[comp];
      for (uint32_t v : view.Neighbors(u)) {
        if (raw_label[v] == UINT32_MAX) {
          raw_label[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }

  // Relabel by decreasing size (stable on first-seen order for ties).
  std::vector<uint32_t> order(raw_size.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return raw_size[a] > raw_size[b];
  });
  std::vector<uint32_t> remap(raw_size.size());
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = rank;
  }

  ComponentsResult result;
  result.label.resize(n);
  result.size.resize(raw_size.size());
  for (uint32_t i = 0; i < n; ++i) result.label[i] = remap[raw_label[i]];
  for (uint32_t c = 0; c < raw_size.size(); ++c) {
    result.size[remap[c]] = raw_size[c];
  }
  return result;
}

}  // namespace wqe::graph
