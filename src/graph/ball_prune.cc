#include "graph/ball_prune.h"

#include <algorithm>
#include <bit>

#include "common/deadline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wqe::graph {

namespace {

obs::Histogram* PruneMsHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "wqe.graph.prune_ms");
  return histogram;
}

obs::Histogram* SurvivorFractionHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "wqe.graph.prune_survivor_fraction");
  return histogram;
}

inline void ClearBit(std::vector<uint64_t>* bits, uint32_t i) {
  (*bits)[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

inline void SetBit(std::vector<uint64_t>* bits, uint32_t i) {
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}

}  // namespace

BallPruneStats PruneBall(const UndirectedView& view,
                         const std::vector<NodeId>& seeds,
                         uint32_t max_cycle_length,
                         std::vector<uint64_t>* alive) {
  obs::Span span("pruning", PruneMsHistogram());
  const uint32_t n = view.num_nodes();
  BallPruneStats stats;
  stats.num_nodes = n;

  alive->assign((n + 63) / 64, ~uint64_t{0});
  if ((n & 63) != 0 && !alive->empty()) {
    alive->back() = (uint64_t{1} << (n & 63)) - 1;
  }
  if (n == 0) {
    SurvivorFractionHistogram()->Record(1.0);
    return stats;
  }

  // Effective cycle-degree per node: Σ min(multiplicity, 2) over alive
  // neighbors.  A parallel-edge pair is a length-2 cycle, so a
  // multiplicity-m edge contributes at most two cycle-usable slots — this
  // is the multigraph generalization of the 2-core, and any node of any
  // cycle keeps effective degree >= 2 within the cycle itself.
  std::vector<uint32_t> deg(n, 0);
  std::vector<uint32_t> worklist;
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t d = 0;
    for (uint32_t m : view.Multiplicities(u)) d += std::min<uint32_t>(m, 2);
    deg[u] = d;
    if (d < 2) worklist.push_back(u);
  }

  // Kills every worklist node (already-dead entries are skipped, so
  // duplicate pushes are harmless), propagating degree loss to alive
  // neighbors and cascading the peel until no sub-2 node remains.
  auto kill_cascade = [&](std::vector<uint32_t>* wl) {
    while (!wl->empty()) {
      const uint32_t u = wl->back();
      wl->pop_back();
      if (!BallPruneAlive(alive->data(), u)) continue;
      ClearBit(alive, u);
      std::span<const uint32_t> neighbors = view.Neighbors(u);
      std::span<const uint32_t> mults = view.Multiplicities(u);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const uint32_t v = neighbors[i];
        if (!BallPruneAlive(alive->data(), v)) continue;
        const uint32_t loss = std::min<uint32_t>(mults[i], 2);
        const bool was_ok = deg[v] >= 2;
        deg[v] -= std::min(loss, deg[v]);
        if (was_ok && deg[v] < 2) wl->push_back(v);
      }
    }
  };
  kill_cascade(&worklist);

  // Distance-to-query filter, iterated with re-peeling to a fixed point.
  // Only alive nodes relay the BFS: a dead node cannot sit on a
  // qualifying cycle, so a cycle's own in-cycle path — which is what
  // bounds every cycle node to distance ⌊L/2⌋ of the seed — consists of
  // alive nodes and is never cut short by the restriction.  Each kill
  // can lengthen surviving nodes' distances and drop degrees, so BFS and
  // peel alternate until a full BFS round kills nothing.
  if (!seeds.empty()) {
    std::vector<uint32_t> seed_locals;
    for (NodeId g : seeds) {
      const uint32_t local = view.ToLocal(g);
      if (local != UINT32_MAX) seed_locals.push_back(local);
    }
    const uint32_t depth = max_cycle_length / 2;
    std::vector<uint64_t> visited(alive->size());
    std::vector<uint32_t> frontier;
    std::vector<uint32_t> next;
    for (;;) {
      // Cooperative deadline/cancel check per BFS round: stopping early
      // leaves `alive` a superset of the exact fixed point, which is
      // still sound (pruning only ever removes provably cycle-free
      // nodes) — the enumerator just does a little more work, and the
      // request's own cooperative checks surface the interruption.
      if (common::ExecInterrupted()) break;
      ++stats.rounds;
      std::fill(visited.begin(), visited.end(), 0);
      frontier.clear();
      for (uint32_t s : seed_locals) {
        if (BallPruneAlive(alive->data(), s) &&
            !BallPruneAlive(visited.data(), s)) {
          SetBit(&visited, s);
          frontier.push_back(s);
        }
      }
      for (uint32_t d = 0; d < depth && !frontier.empty(); ++d) {
        next.clear();
        for (uint32_t u : frontier) {
          for (uint32_t v : view.Neighbors(u)) {
            if (BallPruneAlive(alive->data(), v) &&
                !BallPruneAlive(visited.data(), v)) {
              SetBit(&visited, v);
              next.push_back(v);
            }
          }
        }
        frontier.swap(next);
      }
      worklist.clear();
      for (size_t w = 0; w < alive->size(); ++w) {
        uint64_t dead = (*alive)[w] & ~visited[w];
        while (dead != 0) {
          worklist.push_back(static_cast<uint32_t>(
              w * 64 + static_cast<size_t>(std::countr_zero(dead))));
          dead &= dead - 1;
        }
      }
      if (worklist.empty()) break;
      kill_cascade(&worklist);
    }
  }

  uint32_t num_alive = 0;
  for (uint64_t word : *alive) {
    num_alive += static_cast<uint32_t>(std::popcount(word));
  }
  stats.num_alive = num_alive;
  SurvivorFractionHistogram()->Record(stats.survivor_fraction());
  return stats;
}

}  // namespace wqe::graph
