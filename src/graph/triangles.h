#pragma once

/// \file triangles.h
/// \brief Triangle counting and the triangle participation ratio (TPR).
///
/// §3 of the paper reports an average TPR ≈ 0.3 for the largest connected
/// components — notable because the category graph alone is tree-like and
/// thus triangle-free.  TPR is the fraction of nodes belonging to at least
/// one triangle.

#include <cstdint>
#include <vector>

#include "graph/undirected_view.h"

namespace wqe::graph {

/// \brief Per-view triangle statistics.
struct TriangleStats {
  size_t triangle_count = 0;          ///< distinct triangles
  std::vector<uint32_t> per_node;     ///< triangles incident to each node
  size_t nodes_in_triangles = 0;      ///< nodes with per_node > 0
  double tpr = 0.0;                   ///< nodes_in_triangles / num_nodes
};

/// \brief Counts all triangles via neighbor-intersection on the ordered
/// adjacency (each triangle counted once).
TriangleStats CountTriangles(const UndirectedView& view);

/// \brief TPR restricted to a node subset (e.g. a single component).
double TriangleParticipationRatio(const UndirectedView& view,
                                  const std::vector<uint32_t>& nodes);

}  // namespace wqe::graph
