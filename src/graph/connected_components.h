#pragma once

/// \file connected_components.h
/// \brief Connected components of an undirected view.
///
/// Table 3 of the paper characterizes the *largest connected component* of
/// each query graph; this module computes component labels and sizes.

#include <cstdint>
#include <vector>

#include "graph/undirected_view.h"

namespace wqe::graph {

/// \brief Result of a components computation over a view.
struct ComponentsResult {
  /// Component label per local node, in `[0, num_components)`. Labels are
  /// ordered by decreasing component size (label 0 = largest; ties broken
  /// by smallest member id).
  std::vector<uint32_t> label;
  /// Size of each component.
  std::vector<uint32_t> size;

  uint32_t num_components() const {
    return static_cast<uint32_t>(size.size());
  }

  /// \brief Local node ids of the largest component (label 0); empty for an
  /// empty view.
  std::vector<uint32_t> LargestComponent() const;
};

/// \brief BFS-based connected components.
ComponentsResult ConnectedComponents(const UndirectedView& view);

}  // namespace wqe::graph
