#include "graph/subgraph.h"

#include "common/macros.h"

namespace wqe::graph {

InducedSubgraph Induce(const PropertyGraph& graph,
                       const std::vector<NodeId>& nodes) {
  InducedSubgraph sub;
  for (NodeId parent : nodes) {
    if (sub.to_local.count(parent)) continue;
    NodeId local = sub.graph.AddNode(graph.kind(parent), graph.label(parent));
    sub.to_local.emplace(parent, local);
    sub.to_parent.push_back(parent);
  }
  for (NodeId parent : sub.to_parent) {
    NodeId lsrc = sub.to_local.at(parent);
    for (const Edge& e : graph.OutEdges(parent)) {
      auto it = sub.to_local.find(e.dst);
      if (it == sub.to_local.end()) continue;
      // Parent graph enforces schema and uniqueness, so this cannot fail.
      WQE_CHECK_OK(sub.graph.AddEdge(lsrc, it->second, e.kind));
    }
  }
  return sub;
}

}  // namespace wqe::graph
