#include "graph/subgraph.h"

#include <algorithm>

#include "common/macros.h"

namespace wqe::graph {

InducedSubgraph Induce(const PropertyGraph& graph,
                       const std::vector<NodeId>& nodes) {
  InducedSubgraph sub;
  for (NodeId parent : nodes) {
    if (sub.to_local.count(parent)) continue;
    NodeId local = sub.graph.AddNode(graph.kind(parent), graph.label(parent));
    sub.to_local.emplace(parent, local);
    sub.to_parent.push_back(parent);
  }
  for (NodeId parent : sub.to_parent) {
    NodeId lsrc = sub.to_local.at(parent);
    for (const Edge& e : graph.OutEdges(parent)) {
      auto it = sub.to_local.find(e.dst);
      if (it == sub.to_local.end()) continue;
      // Parent graph enforces schema and uniqueness, so this cannot fail.
      WQE_CHECK_OK(sub.graph.AddEdge(lsrc, it->second, e.kind));
    }
  }
  return sub;
}

NodeId CsrSubgraph::Local(NodeId parent_id) const {
  auto it = std::lower_bound(to_parent.begin(), to_parent.end(), parent_id);
  if (it == to_parent.end() || *it != parent_id) return kInvalidNode;
  return static_cast<NodeId>(it - to_parent.begin());
}

CsrSubgraph InduceCsr(const CsrGraph& csr, const std::vector<NodeId>& nodes) {
  CsrSubgraph sub;
  sub.parent = &csr;
  sub.to_parent = nodes;
  std::sort(sub.to_parent.begin(), sub.to_parent.end());
  sub.to_parent.erase(
      std::unique(sub.to_parent.begin(), sub.to_parent.end()),
      sub.to_parent.end());

  const uint32_t n = sub.num_nodes();
  sub.out_offsets.assign(n + 1, 0);
  for (uint32_t lu = 0; lu < n; ++lu) {
    std::span<const NodeId> targets = csr.OutTargets(sub.to_parent[lu]);
    std::span<const EdgeKind> kinds = csr.OutKinds(sub.to_parent[lu]);
    // Two-pointer merge: both sequences ascend by node id (duplicate
    // targets — parallel edges of different kinds — sit adjacent in the
    // row, so the member pointer holds while they drain).
    size_t i = 0;
    uint32_t j = 0;
    while (i < targets.size() && j < n) {
      if (targets[i] < sub.to_parent[j]) {
        ++i;
      } else if (sub.to_parent[j] < targets[i]) {
        ++j;
      } else {
        sub.out_targets.push_back(j);
        sub.out_kinds.push_back(kinds[i]);
        ++i;
      }
    }
    sub.out_offsets[lu + 1] = sub.out_targets.size();
  }
  return sub;
}

}  // namespace wqe::graph
