#pragma once

/// \file csr.h
/// \brief Immutable CSR (compressed sparse row) snapshot of a
/// `PropertyGraph` — the frozen core every structural algorithm runs on.
///
/// `PropertyGraph` is the mutable *builder*: append-only, schema-checked,
/// backed by one `std::vector<Edge>` per node.  `CsrGraph::Freeze` is the
/// one-way bridge to the serving representation: flat `offsets[]` /
/// `targets[]` arrays per direction with edge kinds in a parallel array,
/// neighbor ranges sorted by (target, kind) so `HasEdge` is a binary
/// search, and a precomputed *undirected* CSR (redirect edges excluded,
/// per the paper's §4 remark that redirects never close a cycle) carrying
/// the parallel-edge multiplicity of every adjacent pair.
///
/// A snapshot is fully self-contained — it copies node kinds and never
/// points back into the builder — so it can be moved freely and shared
/// read-only across any number of serving threads.  Labels stay on the
/// builder (`wiki::KnowledgeBase` keeps both and hands out the snapshot
/// through `csr()`).
///
/// Storage abstraction: the graph reads every flat array through a
/// `std::span`, and the bytes behind those spans are interchangeable —
/// either vectors built by `Freeze` (owned via a `CsrArrays` block) or an
/// externally-owned region such as a read-only `mmap` of an on-disk
/// snapshot (pinned via a type-erased `shared_ptr`, see
/// `snapshot::Reader`).  `Sections()` / `FromSections()` are the exchange
/// points with the snapshot writer/reader: the exact arrays, zero copies.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace wqe::graph {

/// \brief Owned backing storage of one frozen snapshot: the eleven flat
/// CSR arrays as vectors.  `CsrGraph::Freeze` builds one of these on the
/// heap and keeps it alive behind the graph's spans; the snapshot
/// reader's copy mode does the same from file bytes.
struct CsrArrays {
  std::vector<NodeKind> kinds;
  std::vector<NodeId> redirect_target;
  std::vector<uint64_t> out_offsets;
  std::vector<NodeId> out_targets;
  std::vector<EdgeKind> out_kinds;
  std::vector<uint64_t> in_offsets;
  std::vector<NodeId> in_sources;
  std::vector<EdgeKind> in_kinds;
  std::vector<uint64_t> und_offsets;
  std::vector<NodeId> und_neighbors;
  std::vector<uint32_t> und_mult;
};

/// \brief Read-only view of every flat array plus the precomputed
/// counts — the unit of exchange between a `CsrGraph` and the on-disk
/// snapshot format (`snapshot::Writer` serializes these sections;
/// `snapshot::Reader` reconstitutes a graph from them).
struct CsrSections {
  std::span<const NodeKind> kinds;
  std::span<const NodeId> redirect_target;
  std::span<const uint64_t> out_offsets;
  std::span<const NodeId> out_targets;
  std::span<const EdgeKind> out_kinds;
  std::span<const uint64_t> in_offsets;
  std::span<const NodeId> in_sources;
  std::span<const EdgeKind> in_kinds;
  std::span<const uint64_t> und_offsets;
  std::span<const NodeId> und_neighbors;
  std::span<const uint32_t> und_mult;
  std::array<uint64_t, 4> edge_kind_counts{};
  std::array<uint64_t, 2> node_kind_counts{};
};

/// \brief Frozen flat-adjacency snapshot of a `PropertyGraph`.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// \brief Builds the snapshot.  O(V + E log max_degree); the builder is
  /// left untouched and may keep growing — the snapshot will not see later
  /// mutations (callers that need coherence gate mutation themselves, as
  /// `wiki::KnowledgeBase` does).
  static CsrGraph Freeze(const PropertyGraph& builder);

  /// \brief Reconstitutes a snapshot from raw sections (the snapshot
  /// reader's path).  `storage` is the type-erased owner of the bytes the
  /// spans point into (an mmap region or a copied-arrays block) and is
  /// pinned for the graph's lifetime.  With `check_invariants` the full
  /// `CheckInvariants()` pass runs and corrupt sections come back as a
  /// precise `Status` instead of a snapshot that would misbehave later;
  /// callers that skip it (mmap fast loads) must have bounds-validated
  /// the sections themselves, as `snapshot::Reader` does.
  static Result<CsrGraph> FromSections(const CsrSections& sections,
                                       std::shared_ptr<const void> storage,
                                       bool check_invariants = true);

  /// \brief The exact arrays behind this snapshot, as read-only sections.
  /// Valid while the graph (or a copy sharing its storage) is alive.
  CsrSections Sections() const;

  /// \name Nodes
  /// @{
  uint32_t num_nodes() const { return static_cast<uint32_t>(kinds_.size()); }
  NodeKind kind(NodeId n) const { return kinds_[n]; }
  bool IsArticle(NodeId n) const { return kinds_[n] == NodeKind::kArticle; }
  bool IsCategory(NodeId n) const { return kinds_[n] == NodeKind::kCategory; }
  size_t CountNodes(NodeKind kind) const {
    return node_kind_counts_[static_cast<size_t>(kind)];
  }
  /// @}

  /// \name Directed adjacency (sorted by (target, kind))
  /// @{
  size_t num_edges() const { return out_targets_.size(); }
  size_t CountEdges(EdgeKind kind) const {
    return edge_kind_counts_[static_cast<size_t>(kind)];
  }

  std::span<const NodeId> OutTargets(NodeId n) const {
    return Row(out_targets_, out_offsets_, n);
  }
  std::span<const EdgeKind> OutKinds(NodeId n) const {
    return Row(out_kinds_, out_offsets_, n);
  }
  /// \brief Sources of the edges pointing *at* `n`.
  std::span<const NodeId> InSources(NodeId n) const {
    return Row(in_sources_, in_offsets_, n);
  }
  std::span<const EdgeKind> InKinds(NodeId n) const {
    return Row(in_kinds_, in_offsets_, n);
  }
  size_t OutDegree(NodeId n) const {
    return out_offsets_[n + 1] - out_offsets_[n];
  }
  size_t InDegree(NodeId n) const {
    return in_offsets_[n + 1] - in_offsets_[n];
  }

  /// \brief True when the directed edge (src, dst, kind) exists.  Binary
  /// search over the sorted out-row of `src`.
  bool HasEdge(NodeId src, NodeId dst, EdgeKind kind) const;

  /// \brief Target of `n`'s redirect out-edge, or `kInvalidNode` when `n`
  /// carries none.  Precomputed at freeze time (O(1) lookup).
  NodeId RedirectTarget(NodeId n) const { return redirect_target_[n]; }
  /// @}

  /// \name Undirected structural adjacency (redirects excluded)
  ///
  /// Distinct neighbors in ascending order; `UndMultiplicities` is the
  /// parallel array of per-pair parallel-edge counts (both directions, all
  /// kinds except redirect).  This is the whole-graph replacement for the
  /// per-query `UndirectedView` rebuild — induced subsets slice these rows
  /// (see undirected_view.h).
  /// @{
  std::span<const NodeId> UndNeighbors(NodeId n) const {
    return Row(und_neighbors_, und_offsets_, n);
  }
  std::span<const uint32_t> UndMultiplicities(NodeId n) const {
    return Row(und_mult_, und_offsets_, n);
  }
  size_t UndDegree(NodeId n) const {
    return und_offsets_[n + 1] - und_offsets_[n];
  }
  /// \brief Parallel-edge multiplicity of (u, v); 0 when not adjacent.
  uint32_t UndMultiplicity(NodeId u, NodeId v) const;
  bool HasUndEdge(NodeId u, NodeId v) const { return UndMultiplicity(u, v) > 0; }
  /// \brief Number of adjacent unordered pairs (multiplicity collapsed).
  size_t num_und_pairs() const { return und_neighbors_.size() / 2; }
  /// @}

  /// \name Structural invariant validation
  ///
  /// The dynamic complement of the serve layer's compile-time lock
  /// checking: every algorithm in the tree (binary-search `HasEdge`, the
  /// cycle DFS's canonical-prefix skip, undirected-view slicing) assumes
  /// the snapshot's structural invariants, so Debug builds verify them
  /// once at freeze time and tests can verify them directly.
  /// @{

  /// \brief Checks every snapshot invariant: offset arrays are
  /// zero-based, monotone and end at their data size; parallel
  /// kind/multiplicity arrays match their row arrays; every endpoint is
  /// in range; directed rows are sorted by (node, kind); the redirect
  /// table matches each node's first redirect out-edge; per-kind counts
  /// tally; the undirected CSR has strictly ascending distinct
  /// neighbors, positive multiplicities, symmetric (u,v)/(v,u) entries,
  /// and total multiplicity equal to twice the non-redirect edge count.
  /// O(V + E log max_degree); intended for tests and debug builds.
  Status CheckInvariants() const;

  /// \brief `WQE_DCHECK`s `CheckInvariants()`: aborts with the violation
  /// in builds without NDEBUG, no-op otherwise.  Called by `Freeze`;
  /// exposed so tests exercise the exact freeze-time enforcement path.
  void DCheckInvariants() const;
  /// @}

 private:
  /// Test-only backdoor (defined in tests/csr_test.cc) for corrupting a
  /// snapshot to prove the validator catches it.
  friend struct CsrGraphTestPeer;

  template <typename T>
  static std::span<const T> Row(std::span<const T> data,
                                std::span<const uint64_t> offsets, NodeId n) {
    return data.subspan(offsets[n], offsets[n + 1] - offsets[n]);
  }

  /// Points every span at the vectors of `arrays` (which must already be
  /// final-sized: a later reallocation would dangle the spans).
  void BindSpans(const CsrArrays& arrays);

  /// Every access goes through these spans; the arrays behind them are
  /// pinned by exactly one of `owned_` (Freeze / copy-loaded) or
  /// `external_` (mmap-loaded).  Copies of a CsrGraph share storage —
  /// sound because a frozen snapshot is immutable.
  std::span<const NodeKind> kinds_;
  std::span<const NodeId> redirect_target_;

  std::span<const uint64_t> out_offsets_;  // size num_nodes() + 1
  std::span<const NodeId> out_targets_;
  std::span<const EdgeKind> out_kinds_;
  std::span<const uint64_t> in_offsets_;
  std::span<const NodeId> in_sources_;
  std::span<const EdgeKind> in_kinds_;

  std::span<const uint64_t> und_offsets_;
  std::span<const NodeId> und_neighbors_;
  std::span<const uint32_t> und_mult_;

  std::array<size_t, 4> edge_kind_counts_{};
  std::array<size_t, 2> node_kind_counts_{};

  std::shared_ptr<CsrArrays> owned_;
  std::shared_ptr<const void> external_;
};

}  // namespace wqe::graph
