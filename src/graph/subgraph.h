#pragma once

/// \file subgraph.h
/// \brief Induced-subgraph extraction (query graph assembly, §2.3).
///
/// A query graph G(q) is the subgraph of Wikipedia induced by X(q), the
/// main articles of redirects, and their categories.  The extraction keeps
/// a mapping back to the parent graph so analysis results can be reported
/// in terms of the original ids/labels.

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace wqe::graph {

/// \brief An induced subgraph plus the node-id mapping to its parent.
struct InducedSubgraph {
  PropertyGraph graph;
  /// Local node id → parent node id.
  std::vector<NodeId> to_parent;
  /// Parent node id → local node id.
  std::unordered_map<NodeId, NodeId> to_local;

  /// \brief Maps a parent id, or kInvalidNode when not included.
  NodeId Local(NodeId parent_id) const {
    auto it = to_local.find(parent_id);
    return it == to_local.end() ? kInvalidNode : it->second;
  }
};

/// \brief Builds the subgraph of `graph` induced by `nodes` (duplicates
/// ignored; order of first occurrence preserved). All edges of all kinds
/// between included nodes are copied.
InducedSubgraph Induce(const PropertyGraph& graph,
                       const std::vector<NodeId>& nodes);

}  // namespace wqe::graph
