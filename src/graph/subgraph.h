#pragma once

/// \file subgraph.h
/// \brief Induced-subgraph extraction (query graph assembly, §2.3).
///
/// A query graph G(q) is the subgraph of Wikipedia induced by X(q), the
/// main articles of redirects, and their categories.  The extraction keeps
/// a mapping back to the parent graph so analysis results can be reported
/// in terms of the original ids/labels.

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"

namespace wqe::graph {

/// \brief An induced subgraph plus the node-id mapping to its parent.
struct InducedSubgraph {
  PropertyGraph graph;
  /// Local node id → parent node id.
  std::vector<NodeId> to_parent;
  /// Parent node id → local node id.
  std::unordered_map<NodeId, NodeId> to_local;

  /// \brief Maps a parent id, or kInvalidNode when not included.
  NodeId Local(NodeId parent_id) const {
    auto it = to_local.find(parent_id);
    return it == to_local.end() ? kInvalidNode : it->second;
  }
};

/// \brief Builds the subgraph of `graph` induced by `nodes` (duplicates
/// ignored; order of first occurrence preserved). All edges of all kinds
/// between included nodes are copied.  This is the *labeled* extraction —
/// consumers that only need structure use `InduceCsr` below and skip the
/// `PropertyGraph` copy entirely.
InducedSubgraph Induce(const PropertyGraph& graph,
                       const std::vector<NodeId>& nodes);

/// \brief Label-free CSR-native induced subgraph: local directed rows
/// sliced straight off a frozen snapshot's sorted out-rows by two-pointer
/// intersection with the sorted member list — no `PropertyGraph` copy, no
/// hash maps, no per-edge schema re-checks.  Local ids ascend with parent
/// ids (the same convention as `UndirectedView` subsets), so structural
/// results transfer between the two without translation.
struct CsrSubgraph {
  const CsrGraph* parent = nullptr;
  /// Local node id → parent node id; sorted ascending (the member list).
  std::vector<NodeId> to_parent;
  /// Local directed CSR, rows sorted by (target, kind) like the parent's.
  std::vector<uint64_t> out_offsets;  ///< size num_nodes() + 1
  std::vector<NodeId> out_targets;    ///< local ids
  std::vector<EdgeKind> out_kinds;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(to_parent.size());
  }
  size_t num_edges() const { return out_targets.size(); }

  /// \brief Maps a parent id to a local id, or kInvalidNode when not
  /// included.  Binary search over `to_parent`.
  NodeId Local(NodeId parent_id) const;

  std::span<const NodeId> OutTargets(NodeId local) const {
    return std::span<const NodeId>(out_targets.data() + out_offsets[local],
                                   out_targets.data() + out_offsets[local + 1]);
  }
  std::span<const EdgeKind> OutKinds(NodeId local) const {
    return std::span<const EdgeKind>(out_kinds.data() + out_offsets[local],
                                     out_kinds.data() + out_offsets[local + 1]);
  }
  /// \brief Node kind, read through the parent snapshot.
  NodeKind kind(NodeId local) const { return parent->kind(to_parent[local]); }
};

/// \brief Builds the label-free subgraph of `csr` induced by `nodes`
/// (duplicates ignored).  All edges of all kinds between included nodes
/// are kept.
CsrSubgraph InduceCsr(const CsrGraph& csr, const std::vector<NodeId>& nodes);

}  // namespace wqe::graph
