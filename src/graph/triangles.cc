#include "graph/triangles.h"

#include <algorithm>

namespace wqe::graph {

TriangleStats CountTriangles(const UndirectedView& view) {
  const uint32_t n = view.num_nodes();
  TriangleStats stats;
  stats.per_node.assign(n, 0);

  // For each node u, consider ordered neighbor pairs (v, w) with
  // u < v < w; the triangle u-v-w is counted exactly once.
  for (uint32_t u = 0; u < n; ++u) {
    const auto& nu = view.Neighbors(u);
    // neighbors > u
    auto from = std::upper_bound(nu.begin(), nu.end(), u);
    for (auto itv = from; itv != nu.end(); ++itv) {
      for (auto itw = itv + 1; itw != nu.end(); ++itw) {
        if (view.HasEdge(*itv, *itw)) {
          ++stats.triangle_count;
          ++stats.per_node[u];
          ++stats.per_node[*itv];
          ++stats.per_node[*itw];
        }
      }
    }
  }
  for (uint32_t u = 0; u < n; ++u) {
    if (stats.per_node[u] > 0) ++stats.nodes_in_triangles;
  }
  stats.tpr = n == 0 ? 0.0
                     : static_cast<double>(stats.nodes_in_triangles) /
                           static_cast<double>(n);
  return stats;
}

double TriangleParticipationRatio(const UndirectedView& view,
                                  const std::vector<uint32_t>& nodes) {
  if (nodes.empty()) return 0.0;
  TriangleStats stats = CountTriangles(view);
  size_t in_triangle = 0;
  for (uint32_t u : nodes) {
    if (stats.per_node[u] > 0) ++in_triangle;
  }
  return static_cast<double>(in_triangle) / static_cast<double>(nodes.size());
}

}  // namespace wqe::graph
