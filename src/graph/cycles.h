#pragma once

/// \file cycles.h
/// \brief Bounded-length undirected cycle enumeration (§3 of the paper).
///
/// A cycle is a sequence of |C| distinct nodes, starting and ending at the
/// same node, with at least one edge between each consecutive pair,
/// direction ignored.  Length-2 cycles require two *parallel* edges (e.g.
/// mutual article links).  Cycles need not be chordless.  The paper bounds
/// |C| ≤ 5 because enumeration cost grows exponentially with length — this
/// implementation has the same asymptotics, which the perf bench (E9)
/// demonstrates.
///
/// Canonicalization: every cycle is emitted exactly once, as the rotation
/// starting at its smallest local id, oriented so the second node is
/// smaller than the last.  Subset views assign local ids in ascending
/// global order, so the canonical form is stable across view scopes.
///
/// The enumerator exploits the view's sorted flat rows: the canonical
/// start is the path minimum, so each DFS step binary-searches past the
/// dead `<= start` prefix, and at maximum depth the closing edge is a
/// single binary search instead of a row scan.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/undirected_view.h"

namespace wqe::graph {

/// \brief One enumerated cycle; `nodes` holds global ids in cycle order
/// (first node is the canonical minimum; no repetition of the start).
struct Cycle {
  std::vector<NodeId> nodes;

  uint32_t length() const { return static_cast<uint32_t>(nodes.size()); }
};

/// \brief Enumeration parameters.
struct CycleEnumerationOptions {
  uint32_t min_length = 2;
  uint32_t max_length = 5;
  /// When non-empty, only cycles containing at least one seed are emitted
  /// (the paper keeps cycles touching an article of `L(q.k)`).
  std::vector<NodeId> seeds;
  /// Safety valve: stop after this many cycles (0 = unlimited).
  size_t max_cycles = 0;
  /// Restrict to chordless (induced) cycles: no edge between any pair of
  /// non-consecutive cycle nodes.  The paper deliberately does *not*
  /// enforce this ("we do not enforce the cycles to be cordless"); the
  /// option exists to quantify that choice (every chordless cycle has
  /// extra-edge density 0, so the dense cycles the paper favors are
  /// exactly the chorded ones).  Length-2 cycles are trivially chordless.
  bool chordless_only = false;
};

/// \brief Callback invoked per cycle with *local* view ids; return false to
/// abort enumeration early.
using CycleVisitor = std::function<bool(const std::vector<uint32_t>&)>;

/// \brief DFS cycle enumerator over an undirected view.
class CycleEnumerator {
 public:
  explicit CycleEnumerator(const UndirectedView& view) : view_(&view) {}

  /// \brief Materializes all cycles matching `options`.
  std::vector<Cycle> Enumerate(const CycleEnumerationOptions& options) const;

  /// \brief Streaming enumeration; avoids materializing cycles.
  /// Returns the number of cycles visited.
  size_t Visit(const CycleEnumerationOptions& options,
               const CycleVisitor& visitor) const;

 private:
  const UndirectedView* view_;
};

/// \brief Convenience: enumerates cycles of the subgraph induced by
/// `nodes` (sliced from the frozen snapshot), keeping only those
/// containing a seed, with global-id output.
std::vector<Cycle> EnumerateCycles(const CsrGraph& csr,
                                   const std::vector<NodeId>& nodes,
                                   const CycleEnumerationOptions& options);

}  // namespace wqe::graph
