#pragma once

/// \file cycles.h
/// \brief Bounded-length undirected cycle enumeration (§3 of the paper).
///
/// A cycle is a sequence of |C| distinct nodes, starting and ending at the
/// same node, with at least one edge between each consecutive pair,
/// direction ignored.  Length-2 cycles require two *parallel* edges (e.g.
/// mutual article links).  Cycles need not be chordless.  The paper bounds
/// |C| ≤ 5 because enumeration cost grows exponentially with length — this
/// implementation has the same asymptotics, which the perf bench (E9)
/// demonstrates.
///
/// Canonicalization: every cycle is emitted exactly once, as the rotation
/// starting at its smallest local id, oriented so the second node is
/// smaller than the last.  Subset views assign local ids in ascending
/// global order, so the canonical form is stable across view scopes.
///
/// The enumerator exploits the view's sorted flat rows: the canonical
/// start is the path minimum, so each DFS step binary-searches past the
/// dead `<= start` prefix, and at maximum depth the closing edge is a
/// single binary search instead of a row scan.
///
/// Parallelism: canonical start nodes are independent units of work, so
/// the enumerator can shard them into degree-balanced chunks executed on
/// a `serve::ThreadPool` (work-stealing via an atomic chunk cursor; the
/// calling thread participates).  Per-chunk cycle buffers are merged in
/// start-node order, so parallel output — including `max_cycles`
/// truncation and visitor-abort semantics — is bit-identical to the
/// sequential enumerator at every thread count.  Enumeration requested
/// from a pool worker degrades to sequential instead of deadlocking on
/// pool capacity (see `serve::ThreadPool::CurrentWorkerPool`).

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/undirected_view.h"

// Deliberate graph/ -> serve/ edge (one static library, no build cycle):
// the pool and the degrade-aware fan-out policy live with the serving
// layer that owns process-wide threading, and the enumerator executes on
// them rather than growing a second threading runtime here.
namespace wqe::serve {
class ThreadPool;
}  // namespace wqe::serve

namespace wqe::graph {

/// \brief One enumerated cycle; `nodes` holds global ids in cycle order
/// (first node is the canonical minimum; no repetition of the start).
struct Cycle {
  std::vector<NodeId> nodes;

  uint32_t length() const { return static_cast<uint32_t>(nodes.size()); }
};

/// \brief Enumeration parameters.
struct CycleEnumerationOptions {
  uint32_t min_length = 2;
  uint32_t max_length = 5;
  /// When non-empty, only cycles containing at least one seed are emitted
  /// (the paper keeps cycles touching an article of `L(q.k)`).
  std::vector<NodeId> seeds;
  /// Safety valve: stop after this many cycles (0 = unlimited).
  size_t max_cycles = 0;
  /// Restrict to chordless (induced) cycles: no edge between any pair of
  /// non-consecutive cycle nodes.  The paper deliberately does *not*
  /// enforce this ("we do not enforce the cycles to be cordless"); the
  /// option exists to quantify that choice (every chordless cycle has
  /// extra-edge density 0, so the dense cycles the paper favors are
  /// exactly the chorded ones).  Length-2 cycles are trivially chordless.
  bool chordless_only = false;
  /// Prune the view to nodes that can lie on a qualifying cycle before
  /// enumerating (see graph/ball_prune.h: degree peeling + distance-to-
  /// seed filtering over a bitset).  The surviving subgraph is a superset
  /// of every qualifying cycle, so output — cycle set, order, truncation,
  /// visitor-abort prefix — is bit-identical either way; the knob only
  /// removes wasted DFS work.  Like `num_threads` below, this is an
  /// execution knob and deliberately NOT an `ExpanderOverrides` field:
  /// it must never split serving-cache keys.
  bool prune_ball = true;

  /// \name Parallel execution
  /// Output is bit-identical to sequential enumeration regardless of
  /// these knobs; they only change wall-clock and where the work runs.
  /// @{
  /// Enumerating threads including the caller: 1 = sequential (default),
  /// 0 = auto (the pool's worker count + 1 when `pool` is set, otherwise
  /// one per hardware thread).  Requests from a pool worker thread always
  /// degrade to sequential — nested fan-out would deadlock a bounded
  /// pool (see serve::ThreadPool::CurrentWorkerPool).
  uint32_t num_threads = 1;
  /// Pool to run on (borrowed; e.g. `serve::Server`'s).  When null and
  /// `num_threads > 1`, a transient pool is spawned for the call — fine
  /// for offline analysis, wasteful per-request; serving-path callers
  /// pass their own pool.
  serve::ThreadPool* pool = nullptr;
  /// Cap on start nodes per work chunk (0 = auto degree-balanced
  /// chunking, ~8 chunks per thread).  Mainly a testing knob: chunk size
  /// 1 maximizes interleaving, the adversarial case for merge order.
  uint32_t parallel_chunk_starts = 0;
  /// @}
};

/// \brief Callback invoked per cycle with *local* view ids; return false to
/// abort enumeration early.
using CycleVisitor = std::function<bool(const std::vector<uint32_t>&)>;

/// \brief DFS cycle enumerator over an undirected view.
class CycleEnumerator {
 public:
  explicit CycleEnumerator(const UndirectedView& view) : view_(&view) {}

  /// \brief Materializes all cycles matching `options`.  Dispatches to
  /// `ParallelEnumerate` when the options request parallelism.
  std::vector<Cycle> Enumerate(const CycleEnumerationOptions& options) const;

  /// \brief Streaming enumeration; avoids materializing cycles.
  /// Returns the number of cycles visited.  Dispatches to `ParallelVisit`
  /// when the options request parallelism.
  size_t Visit(const CycleEnumerationOptions& options,
               const CycleVisitor& visitor) const;

  /// \brief Explicit parallel entry points.  Workers collect per-chunk
  /// cycle buffers which are merged in canonical order on the calling
  /// thread; the visitor runs there, sequentially, in the exact order the
  /// sequential enumerator would have produced — so aborting visitors and
  /// `max_cycles` behave identically (enumeration work past an abort is
  /// wasted, not wrong).  Falls back to the sequential path when the
  /// effective thread count is 1, the view is tiny, or the caller is
  /// already a pool worker.
  /// @{
  std::vector<Cycle> ParallelEnumerate(
      const CycleEnumerationOptions& options) const;
  size_t ParallelVisit(const CycleEnumerationOptions& options,
                       const CycleVisitor& visitor) const;
  /// @}

 private:
  size_t SequentialVisit(const CycleEnumerationOptions& options,
                         const CycleVisitor& visitor) const;

  const UndirectedView* view_;
};

/// \brief Convenience: enumerates cycles of the subgraph induced by
/// `nodes` (sliced from the frozen snapshot), keeping only those
/// containing a seed, with global-id output.
std::vector<Cycle> EnumerateCycles(const CsrGraph& csr,
                                   const std::vector<NodeId>& nodes,
                                   const CycleEnumerationOptions& options);

}  // namespace wqe::graph
