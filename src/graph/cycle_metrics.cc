#include "graph/cycle_metrics.h"

#include <algorithm>

#include <unordered_map>
#include <unordered_set>

namespace wqe::graph {

uint32_t CountInducedEdges(const PropertyGraph& graph,
                           const std::vector<NodeId>& nodes) {
  std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());
  // Category-category (`inside`) edges count once per *unordered* pair,
  // matching M(C)'s C·(C−1)/2 term; article links count per direction.
  std::unordered_set<uint64_t> category_pairs;
  uint32_t count = 0;
  for (NodeId u : in_set) {
    for (const Edge& e : graph.OutEdges(u)) {
      if (e.kind == EdgeKind::kRedirect) continue;
      if (!in_set.count(e.dst)) continue;
      if (e.kind == EdgeKind::kInside) {
        NodeId lo = std::min(u, e.dst);
        NodeId hi = std::max(u, e.dst);
        if (!category_pairs.insert((static_cast<uint64_t>(lo) << 32) | hi)
                 .second) {
          continue;
        }
      }
      ++count;
    }
  }
  return count;
}

uint32_t MaxCycleEdges(uint32_t num_articles, uint32_t num_categories) {
  return num_articles * (num_articles - (num_articles > 0 ? 1 : 0)) +
         num_articles * num_categories +
         num_categories * (num_categories - (num_categories > 0 ? 1 : 0)) / 2;
}

CycleMetrics ComputeCycleMetrics(const PropertyGraph& graph,
                                 const Cycle& cycle) {
  CycleMetrics m;
  m.length = cycle.length();
  for (NodeId n : cycle.nodes) {
    if (graph.IsArticle(n)) {
      ++m.num_articles;
    } else {
      ++m.num_categories;
    }
  }
  m.num_edges = CountInducedEdges(graph, cycle.nodes);
  m.max_edges = MaxCycleEdges(m.num_articles, m.num_categories);
  m.category_ratio =
      m.length == 0
          ? 0.0
          : static_cast<double>(m.num_categories) / static_cast<double>(m.length);
  if (m.max_edges > m.length && m.num_edges >= m.length) {
    m.extra_edge_density = static_cast<double>(m.num_edges - m.length) /
                           static_cast<double>(m.max_edges - m.length);
    // Degenerate inputs (e.g. a node sequence that is not actually a
    // minimal cycle) could push E past M; keep the ratio a ratio.
    m.extra_edge_density = std::min(m.extra_edge_density, 1.0);
  } else {
    m.extra_edge_density = 0.0;
  }
  return m;
}

double ReciprocalLinkRate(const PropertyGraph& graph) {
  // Key: unordered article pair packed into 64 bits; value: direction bits.
  std::unordered_map<uint64_t, uint8_t> pairs;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (!graph.IsArticle(u)) continue;
    for (const Edge& e : graph.OutEdges(u)) {
      if (e.kind != EdgeKind::kLink) continue;
      NodeId lo = std::min(u, e.dst);
      NodeId hi = std::max(u, e.dst);
      uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
      pairs[key] |= (u == lo) ? 1 : 2;
    }
  }
  if (pairs.empty()) return 0.0;
  size_t mutual = 0;
  for (const auto& [key, bits] : pairs) {
    (void)key;
    if (bits == 3) ++mutual;
  }
  return static_cast<double>(mutual) / static_cast<double>(pairs.size());
}

}  // namespace wqe::graph
