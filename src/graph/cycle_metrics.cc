#include "graph/cycle_metrics.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "serve/thread_pool.h"

namespace wqe::graph {

uint32_t CountInducedEdges(const CsrGraph& graph,
                           const std::vector<NodeId>& nodes) {
  std::vector<NodeId> members(nodes);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  uint32_t count = 0;
  for (NodeId u : members) {
    std::span<const NodeId> targets = graph.OutTargets(u);
    std::span<const EdgeKind> kinds = graph.OutKinds(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (kinds[i] == EdgeKind::kRedirect) continue;
      NodeId v = targets[i];
      if (!std::binary_search(members.begin(), members.end(), v)) continue;
      // Category-category (`inside`) edges count once per *unordered* pair,
      // matching M(C)'s C·(C−1)/2 term; article links count per direction.
      // When both directions exist, the (u < v) one claims the pair.
      if (kinds[i] == EdgeKind::kInside && u > v &&
          graph.HasEdge(v, u, EdgeKind::kInside)) {
        continue;
      }
      ++count;
    }
  }
  return count;
}

uint32_t MaxCycleEdges(uint32_t num_articles, uint32_t num_categories) {
  return num_articles * (num_articles - (num_articles > 0 ? 1 : 0)) +
         num_articles * num_categories +
         num_categories * (num_categories - (num_categories > 0 ? 1 : 0)) / 2;
}

CycleMetrics ComputeCycleMetrics(const CsrGraph& graph, const Cycle& cycle) {
  CycleMetrics m;
  m.length = cycle.length();
  for (NodeId n : cycle.nodes) {
    if (graph.IsArticle(n)) {
      ++m.num_articles;
    } else {
      ++m.num_categories;
    }
  }
  m.num_edges = CountInducedEdges(graph, cycle.nodes);
  m.max_edges = MaxCycleEdges(m.num_articles, m.num_categories);
  m.category_ratio =
      m.length == 0
          ? 0.0
          : static_cast<double>(m.num_categories) / static_cast<double>(m.length);
  if (m.max_edges > m.length && m.num_edges >= m.length) {
    m.extra_edge_density = static_cast<double>(m.num_edges - m.length) /
                           static_cast<double>(m.max_edges - m.length);
    // Degenerate inputs (e.g. a node sequence that is not actually a
    // minimal cycle) could push E past M; keep the ratio a ratio.
    m.extra_edge_density = std::min(m.extra_edge_density, 1.0);
  } else {
    m.extra_edge_density = 0.0;
  }
  return m;
}

std::vector<CycleMetrics> ComputeCycleMetricsBatch(
    const CsrGraph& graph, const std::vector<Cycle>& cycles,
    uint32_t num_threads, serve::ThreadPool* pool) {
  std::vector<CycleMetrics> out(cycles.size());
  const uint32_t threads = serve::EffectiveParallelism(num_threads, pool);
  // Per-cycle work is microseconds; don't shard tiny batches.
  constexpr size_t kBlock = 64;
  if (threads <= 1 || cycles.size() < 2 * kBlock) {
    for (size_t i = 0; i < cycles.size(); ++i) {
      out[i] = ComputeCycleMetrics(graph, cycles[i]);
    }
    return out;
  }

  std::atomic<size_t> cursor{0};
  serve::RunParallel(
      pool, std::min<size_t>(threads - 1, cycles.size() / kBlock), [&] {
        for (;;) {
          const size_t begin =
              cursor.fetch_add(kBlock, std::memory_order_relaxed);
          if (begin >= cycles.size()) return;
          const size_t end = std::min(begin + kBlock, cycles.size());
          for (size_t i = begin; i < end; ++i) {
            out[i] = ComputeCycleMetrics(graph, cycles[i]);
          }
        }
      });
  return out;
}

double ReciprocalLinkRate(const CsrGraph& graph) {
  size_t pairs = 0;
  size_t mutual = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (!graph.IsArticle(u)) continue;
    std::span<const NodeId> targets = graph.OutTargets(u);
    std::span<const EdgeKind> kinds = graph.OutKinds(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (kinds[i] != EdgeKind::kLink) continue;
      NodeId v = targets[i];
      bool reverse = graph.HasEdge(v, u, EdgeKind::kLink);
      if (v > u) {
        ++pairs;
        if (reverse) ++mutual;
      } else if (!reverse) {
        // Pair not seen from v's (smaller-id) side: count it here.
        ++pairs;
      }
    }
  }
  if (pairs == 0) return 0.0;
  return static_cast<double>(mutual) / static_cast<double>(pairs);
}

}  // namespace wqe::graph
