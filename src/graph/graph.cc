#include "graph/graph.h"

#include <algorithm>

#include "common/macros.h"

namespace wqe::graph {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kArticle:
      return "article";
    case NodeKind::kCategory:
      return "category";
  }
  return "?";
}

const char* EdgeKindToString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kLink:
      return "link";
    case EdgeKind::kBelongs:
      return "belongs";
    case EdgeKind::kInside:
      return "inside";
    case EdgeKind::kRedirect:
      return "redirect";
  }
  return "?";
}

NodeId PropertyGraph::AddNode(NodeKind kind, std::string label) {
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

Status PropertyGraph::CheckNode(NodeId n) const {
  if (n >= kinds_.size()) {
    return Status::OutOfRange("node id ", n, " out of range (", kinds_.size(),
                              " nodes)");
  }
  return Status::OK();
}

Status PropertyGraph::AddEdge(NodeId src, NodeId dst, EdgeKind kind) {
  WQE_RETURN_NOT_OK(CheckNode(src));
  WQE_RETURN_NOT_OK(CheckNode(dst));
  if (src == dst) {
    return Status::InvalidArgument("self-loop on node ", src, " (",
                                   labels_[src], ")");
  }
  // Schema validation per Figure 1.
  auto bad_schema = [&]() {
    return Status::InvalidArgument(
        "edge kind ", EdgeKindToString(kind), " cannot connect ",
        NodeKindToString(kinds_[src]), " -> ", NodeKindToString(kinds_[dst]));
  };
  switch (kind) {
    case EdgeKind::kLink:
    case EdgeKind::kRedirect:
      if (kinds_[src] != NodeKind::kArticle ||
          kinds_[dst] != NodeKind::kArticle) {
        return bad_schema();
      }
      break;
    case EdgeKind::kBelongs:
      if (kinds_[src] != NodeKind::kArticle ||
          kinds_[dst] != NodeKind::kCategory) {
        return bad_schema();
      }
      break;
    case EdgeKind::kInside:
      if (kinds_[src] != NodeKind::kCategory ||
          kinds_[dst] != NodeKind::kCategory) {
        return bad_schema();
      }
      break;
  }
  if (HasEdge(src, dst, kind)) {
    return Status::AlreadyExists("edge ", src, " -> ", dst, " (",
                                 EdgeKindToString(kind), ") already present");
  }
  out_[src].push_back(Edge{dst, kind});
  in_[dst].push_back(Edge{src, kind});
  ++num_edges_;
  ++edge_kind_counts_[static_cast<size_t>(kind)];
  return Status::OK();
}

bool PropertyGraph::HasEdge(NodeId src, NodeId dst, EdgeKind kind) const {
  if (src >= out_.size()) return false;
  const auto& edges = out_[src];
  return std::find(edges.begin(), edges.end(), Edge{dst, kind}) !=
         edges.end();
}

size_t PropertyGraph::CountNodes(NodeKind kind) const {
  size_t n = 0;
  for (NodeKind k : kinds_) {
    if (k == kind) ++n;
  }
  return n;
}

size_t PropertyGraph::CountEdges(EdgeKind kind) const {
  return edge_kind_counts_[static_cast<size_t>(kind)];
}

}  // namespace wqe::graph
