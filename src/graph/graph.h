#pragma once

/// \file graph.h
/// \brief The typed property graph underlying all structural analysis.
///
/// Nodes are Wikipedia entries (Article or Category); edges carry the
/// schema semantics of the paper's Figure 1: article→article `link`,
/// article→category `belongs`, category→category `inside`, and
/// article→article `redirect`.  The graph is a *directed multigraph*:
/// mutual links (a→b and b→a) are two distinct edges, which is exactly what
/// makes the paper's length-2 cycles possible.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace wqe::graph {

/// \brief Dense node identifier.
using NodeId = uint32_t;

/// \brief Sentinel for "no node".
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// \brief Node type per the paper's Figure 1 schema.
enum class NodeKind : uint8_t {
  kArticle = 0,
  kCategory = 1,
};

/// \brief Edge type per the paper's Figure 1 schema.
enum class EdgeKind : uint8_t {
  kLink = 0,      ///< article → article hyperlink
  kBelongs = 1,   ///< article → category membership
  kInside = 2,    ///< category → parent category
  kRedirect = 3,  ///< redirect article → main article
};

const char* NodeKindToString(NodeKind kind);
const char* EdgeKindToString(EdgeKind kind);

/// \brief One directed edge as stored in adjacency lists.
struct Edge {
  NodeId dst = kInvalidNode;
  EdgeKind kind = EdgeKind::kLink;

  bool operator==(const Edge& other) const = default;
};

/// \brief Mutable directed multigraph with typed nodes and edges.
///
/// Building is append-only: `AddNode` then `AddEdge`.  Schema validity
/// (e.g. `belongs` must go article→category) is enforced at insertion so
/// downstream algorithms can rely on it.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// \brief Adds a node and returns its id. `label` is free-form (the wiki
  /// layer stores normalized titles here).
  NodeId AddNode(NodeKind kind, std::string label);

  /// \brief Adds a typed edge; validates endpoint kinds against the schema
  /// and rejects self-loops and duplicate identical edges.
  Status AddEdge(NodeId src, NodeId dst, EdgeKind kind);

  /// \brief True when an edge (src, dst, kind) exists.
  bool HasEdge(NodeId src, NodeId dst, EdgeKind kind) const;

  size_t num_nodes() const { return kinds_.size(); }
  size_t num_edges() const { return num_edges_; }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  const std::string& label(NodeId n) const { return labels_[n]; }
  bool IsArticle(NodeId n) const { return kinds_[n] == NodeKind::kArticle; }
  bool IsCategory(NodeId n) const { return kinds_[n] == NodeKind::kCategory; }

  /// \brief Outgoing edges of `n`.
  const std::vector<Edge>& OutEdges(NodeId n) const { return out_[n]; }

  /// \brief Incoming edges of `n` (edge.dst is the *source* node here).
  const std::vector<Edge>& InEdges(NodeId n) const { return in_[n]; }

  /// \brief Out-degree counting all edge kinds.
  size_t OutDegree(NodeId n) const { return out_[n].size(); }
  size_t InDegree(NodeId n) const { return in_[n].size(); }

  /// \brief Number of nodes of the given kind.
  size_t CountNodes(NodeKind kind) const;

  /// \brief Number of edges of the given kind.
  size_t CountEdges(EdgeKind kind) const;

  /// \brief Validates `n` is a node of this graph.
  Status CheckNode(NodeId n) const;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<std::string> labels_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  size_t num_edges_ = 0;
  std::vector<size_t> edge_kind_counts_ = std::vector<size_t>(4, 0);
};

}  // namespace wqe::graph
