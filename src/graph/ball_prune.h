#pragma once

/// \file ball_prune.h
/// \brief Semijoin-guided query-ball pruning for cycle enumeration.
///
/// Most nodes of a hub-heavy query ball can never lie on a cycle of
/// length ≤ L through the query nodes — they are pure DFS overhead.  The
/// reduction here is the semijoin-algebra observation (Leinders/
/// Tyszkiewicz/Van den Bussche): "within distance d of a query node" and
/// "not peelable" are bounded-quantification reachability checks, i.e.
/// computable by iterated cheap per-node filters over the adjacency —
/// no joins, no graph copies.  Two filters run to a mutual fixed point
/// over one `std::vector<uint64_t>` bitset on the view's CSR rows:
///
///  1. **Degree peeling** (the multigraph 2-core): a node whose alive
///     incident-edge count — Σ min(multiplicity, 2) over alive
///     neighbors — is below 2 can close no cycle of any length.
///     Removing it may expose further peelable nodes; a worklist drains
///     the cascade.
///  2. **Distance-to-query filtering**: every node of a cycle of length
///     ≤ L containing a query node is, along the cycle itself, within
///     undirected distance ⌊L/2⌋ of that query node.  A multi-source
///     BFS from the alive query nodes (over alive nodes only) therefore
///     kills everything beyond that radius.  Skipped when no seeds are
///     given — then every cycle qualifies and only peeling applies.
///
/// Both rules only ever remove nodes that lie on *no* qualifying cycle,
/// and a qualifying cycle's nodes all survive both rules (each has
/// in-cycle multigraph degree 2 and in-cycle distance ≤ ⌊L/2⌋ to the
/// seed), so by induction the surviving subgraph contains every cycle of
/// length ≤ L through a seed — pruned enumeration is provably
/// bit-identical to unpruned (same cycles, same order, same truncation
/// and abort prefixes; see graph/cycles.h, which skips dead nodes).
///
/// The kernel records `wqe.graph.prune_ms` and
/// `wqe.graph.prune_survivor_fraction` histograms in the global obs
/// registry and runs under a `pruning` span stage.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/undirected_view.h"

namespace wqe::graph {

/// \brief Outcome summary of one pruning pass.
struct BallPruneStats {
  uint32_t num_nodes = 0;  ///< view size
  uint32_t num_alive = 0;  ///< survivors (bits set in `alive`)
  /// BFS/peel rounds to the mutual fixed point (0 when no seeds were
  /// given: peeling alone needs no outer iteration).
  uint32_t rounds = 0;

  double survivor_fraction() const {
    return num_nodes == 0
               ? 1.0
               : static_cast<double>(num_alive) / static_cast<double>(num_nodes);
  }
  bool pruned_any() const { return num_alive < num_nodes; }
};

/// \brief Tests local id `i` in a pruning bitset (one bit per view-local
/// node, 64 per word).  Exposed for the enumerator's hot path.
inline bool BallPruneAlive(const uint64_t* alive, uint32_t i) {
  return ((alive[i >> 6] >> (i & 63)) & 1) != 0;
}

/// \brief Reduces `view` to the nodes that can lie on an undirected
/// cycle of length ≤ `max_cycle_length` containing at least one of
/// `seeds` (global ids; an empty set means any cycle qualifies — only
/// peeling applies, as in unseeded enumeration).
///
/// `alive` is resized to ⌈num_nodes/64⌉ words and holds one bit per
/// local id; trailing bits of the last word are zero.  Seeds outside the
/// view are ignored; if seeds were given but none is alive, nothing can
/// qualify and the bitset comes back empty.
BallPruneStats PruneBall(const UndirectedView& view,
                         const std::vector<NodeId>& seeds,
                         uint32_t max_cycle_length,
                         std::vector<uint64_t>* alive);

}  // namespace wqe::graph
