#pragma once

/// \file undirected_view.h
/// \brief Undirected multigraph view used by all structural algorithms.
///
/// The paper analyzes cycles "without taking the edges direction into
/// account": a cycle needs *at least one edge among each pair of
/// consecutive nodes*, and a length-2 cycle needs two parallel edges
/// (e.g. mutual links).  This view materializes, for the whole graph or an
/// induced node subset, sorted unique undirected neighbor lists plus the
/// parallel-edge multiplicity of every adjacent pair.
///
/// Redirect edges are excluded by default: per the paper's §4 remark,
/// redirect articles "can never close a cycle (see Figure 1)".

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace wqe::graph {

/// \brief View construction options.
struct UndirectedViewOptions {
  /// Include redirect edges in the view (off for cycle analysis).
  bool include_redirects = false;
};

/// \brief Compact undirected view with local ids `[0, num_nodes())`.
class UndirectedView {
 public:
  /// \brief View over the whole graph.
  explicit UndirectedView(const PropertyGraph& graph,
                          UndirectedViewOptions options = {});

  /// \brief View over the subgraph induced by `nodes` (global ids,
  /// duplicates ignored).
  UndirectedView(const PropertyGraph& graph, const std::vector<NodeId>& nodes,
                 UndirectedViewOptions options = {});

  /// \brief Number of nodes in the view.
  uint32_t num_nodes() const { return static_cast<uint32_t>(global_.size()); }

  /// \brief Number of undirected adjacent pairs (multiplicity collapsed).
  size_t num_undirected_edges() const { return num_pairs_; }

  /// \brief Maps a local id back to the underlying graph's node id.
  NodeId ToGlobal(uint32_t local) const { return global_[local]; }

  /// \brief Maps a global node id to a local id, or UINT32_MAX if the node
  /// is not part of this view.
  uint32_t ToLocal(NodeId global) const;

  /// \brief Sorted unique undirected neighbors of `local`.
  const std::vector<uint32_t>& Neighbors(uint32_t local) const {
    return adj_[local];
  }

  /// \brief Undirected degree (distinct neighbors).
  uint32_t Degree(uint32_t local) const {
    return static_cast<uint32_t>(adj_[local].size());
  }

  /// \brief True when u and v are adjacent (any direction, any kind).
  bool HasEdge(uint32_t u, uint32_t v) const;

  /// \brief Number of parallel edges between u and v counting both
  /// directions and all included kinds; 0 when not adjacent.
  uint32_t Multiplicity(uint32_t u, uint32_t v) const;

  /// \brief Node kind of a local node.
  NodeKind kind(uint32_t local) const { return graph_->kind(global_[local]); }

  const PropertyGraph& parent() const { return *graph_; }

 private:
  void Build(const std::vector<NodeId>& nodes);
  static uint64_t PairKey(uint32_t u, uint32_t v);

  const PropertyGraph* graph_;
  UndirectedViewOptions options_;
  std::vector<NodeId> global_;
  std::unordered_map<NodeId, uint32_t> local_;
  std::vector<std::vector<uint32_t>> adj_;
  std::unordered_map<uint64_t, uint32_t> multiplicity_;
  size_t num_pairs_ = 0;
};

}  // namespace wqe::graph
