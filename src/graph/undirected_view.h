#pragma once

/// \file undirected_view.h
/// \brief Undirected multigraph view used by all structural algorithms.
///
/// The paper analyzes cycles "without taking the edges direction into
/// account": a cycle needs *at least one edge among each pair of
/// consecutive nodes*, and a length-2 cycle needs two parallel edges
/// (e.g. mutual links).  Redirect edges are excluded by default: per the
/// paper's §4 remark, redirect articles "can never close a cycle (see
/// Figure 1)".
///
/// The view is backed by a frozen `CsrGraph` snapshot:
///
///  - the **whole-graph** default view is zero-copy — it is nothing but
///    offset slices into the snapshot's precomputed undirected CSR, so
///    constructing one costs O(1) and local ids equal global node ids;
///  - an **induced-subset** view (the per-query case) materializes its
///    local rows by slicing the parent's sorted undirected rows against
///    the sorted member list — flat two-pointer intersections, no hash
///    maps, no re-walk of the directed builder adjacency.  Local ids are
///    assigned in ascending global-id order, so canonical cycle output is
///    identical whether enumerated on a subset view or on a whole-graph
///    view restricted to the same nodes.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"

namespace wqe::graph {

/// \brief View construction options.
struct UndirectedViewOptions {
  /// Include redirect edges in the view (off for cycle analysis).  This is
  /// the slow path — it bypasses the snapshot's precomputed undirected CSR
  /// and re-merges the directed rows.
  bool include_redirects = false;
};

/// \brief Compact undirected view with local ids `[0, num_nodes())`.
class UndirectedView {
 public:
  /// \brief Zero-copy view over the whole snapshot.
  explicit UndirectedView(const CsrGraph& csr,
                          UndirectedViewOptions options = {});

  /// \brief View over the subgraph induced by `nodes` (global ids,
  /// duplicates ignored).  Local ids ascend with global ids.
  UndirectedView(const CsrGraph& csr, const std::vector<NodeId>& nodes,
                 UndirectedViewOptions options = {});

  /// \brief Number of nodes in the view.
  uint32_t num_nodes() const { return num_nodes_; }

  /// \brief Number of undirected adjacent pairs (multiplicity collapsed).
  size_t num_undirected_edges() const { return num_pairs_; }

  /// \brief Maps a local id back to the underlying graph's node id.
  NodeId ToGlobal(uint32_t local) const {
    return subset_ ? global_[local] : local;
  }

  /// \brief Maps a global node id to a local id, or UINT32_MAX if the node
  /// is not part of this view.  Binary search on subset views.
  uint32_t ToLocal(NodeId global) const;

  /// \brief Sorted unique undirected neighbors of `local`, as local ids.
  std::span<const uint32_t> Neighbors(uint32_t local) const {
    return owned_ ? RowSpan(neighbors_, local) : csr_->UndNeighbors(local);
  }

  /// \brief Parallel-edge multiplicities aligned with `Neighbors(local)`.
  std::span<const uint32_t> Multiplicities(uint32_t local) const {
    return owned_ ? RowSpan(mult_, local) : csr_->UndMultiplicities(local);
  }

  /// \brief Undirected degree (distinct neighbors).
  uint32_t Degree(uint32_t local) const {
    return static_cast<uint32_t>(Neighbors(local).size());
  }

  /// \brief True when u and v are adjacent (any direction, any kind).
  bool HasEdge(uint32_t u, uint32_t v) const;

  /// \brief Number of parallel edges between u and v counting both
  /// directions and all included kinds; 0 when not adjacent.
  uint32_t Multiplicity(uint32_t u, uint32_t v) const;

  /// \brief Node kind of a local node.
  NodeKind kind(uint32_t local) const { return csr_->kind(ToGlobal(local)); }

  /// \brief The shared snapshot this view slices.
  const CsrGraph& parent() const { return *csr_; }

 private:
  void BuildSubsetFromUndCsr(std::vector<NodeId> nodes);
  void BuildFromDirectedRows(std::vector<NodeId> nodes, bool whole_graph);

  std::span<const uint32_t> RowSpan(const std::vector<uint32_t>& data,
                                    uint32_t local) const {
    return std::span<const uint32_t>(data.data() + offsets_[local],
                                     data.data() + offsets_[local + 1]);
  }

  const CsrGraph* csr_;
  UndirectedViewOptions options_;
  bool subset_ = false;  ///< local ids differ from global ids
  bool owned_ = false;   ///< adjacency materialized below (vs snapshot rows)
  uint32_t num_nodes_ = 0;
  size_t num_pairs_ = 0;
  std::vector<NodeId> global_;  ///< subset mode: sorted member globals
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> neighbors_;  ///< local ids
  std::vector<uint32_t> mult_;
};

}  // namespace wqe::graph
