#pragma once

/// \file hash.h
/// \brief Deterministic 64-bit hashing utilities.
///
/// The serving layer's sharded expansion cache keys entries by a canonical
/// hash of `(keywords, strategy, overrides)`; those hashes must be stable
/// across runs and platforms (no `std::hash`, whose values are unspecified
/// and may be identity).  Bytes are hashed with FNV-1a 64 and values are
/// combined through a splitmix64-style finalizer, which is cheap and mixes
/// well enough that the low bits are usable for shard selection.
///
/// Hashes here are for bucketing only: callers that need "distinct keys
/// never alias" (the cache does) must pair the hash with full-key equality.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace wqe {

/// \brief FNV-1a 64-bit offset basis; the default accumulator seed.
inline constexpr uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/// \brief splitmix64 finalizer: bijective, avalanche-complete mixing.
constexpr uint64_t MixHash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// \brief Folds `value` into `seed` (order-dependent).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return MixHash(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

/// \brief FNV-1a 64 over a byte range, continuing from `seed`.
uint64_t HashBytes(const void* data, size_t size, uint64_t seed = kHashSeed);

/// \brief Order-dependent accumulator over heterogeneous fields.
///
/// Optional fields should be added behind a distinct tag (see
/// `api::ExpanderOverrides::Hash`) so that "field A absent, field B = 3"
/// and "field A = 3, field B absent" hash differently.
class Hasher {
 public:
  Hasher& Add(uint64_t value) {
    state_ = HashCombine(state_, value);
    return *this;
  }
  Hasher& Add(bool value) { return Add(static_cast<uint64_t>(value)); }
  Hasher& Add(double value) {
    // Bit pattern, not numeric value: any two distinct doubles (including
    // -0.0 vs +0.0) must be distinguishable, exactly as in ToKey().
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return Add(bits);
  }
  Hasher& Add(std::string_view bytes) {
    // Length first: Add("ab").Add("c") must differ from Add("a").Add("bc").
    Add(static_cast<uint64_t>(bytes.size()));
    state_ = HashBytes(bytes.data(), bytes.size(), state_);
    return *this;
  }

  uint64_t hash() const { return MixHash(state_); }

 private:
  uint64_t state_ = kHashSeed;
};

}  // namespace wqe
