#include "common/string_util.h"

#include <cctype>
#include <sstream>

namespace wqe {

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsAsciiSpace(s[b])) ++b;
  while (e > b && IsAsciiSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char x = a[i], y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string NormalizeTitle(std::string_view s) {
  // Punctuation becomes a separator so "Grand Canal (Venice)" and the
  // token sequence "grand canal venice" produce the same key — entity
  // linking matches tokenized text against these keys.  Inner hyphens and
  // apostrophes survive (mirroring the tokenizer), as do UTF-8 bytes.
  std::string collapsed;
  collapsed.reserve(s.size());
  bool in_space = true;  // drop leading separators
  auto is_word = [](unsigned char c) {
    return c >= 0x80 || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9');
  };
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    bool keep = is_word(c);
    if (!keep && (c == '-' || c == '\'') && i > 0 && i + 1 < s.size()) {
      // Inner punctuation flanked by word bytes stays part of the word.
      keep = is_word(static_cast<unsigned char>(s[i - 1])) &&
             is_word(static_cast<unsigned char>(s[i + 1]));
    }
    if (keep) {
      char lc = (c >= 'A' && c <= 'Z')
                    ? static_cast<char>(c - 'A' + 'a')
                    : static_cast<char>(c);
      collapsed.push_back(lc);
      in_space = false;
    } else {
      if (!in_space) collapsed.push_back(' ');
      in_space = true;
    }
  }
  while (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
  return collapsed;
}

}  // namespace wqe
