#pragma once

/// \file table_printer.h
/// \brief Aligned console tables for the bench harnesses.
///
/// Every bench binary that regenerates a paper table/figure prints its rows
/// through this printer so output is uniform and diffable, and can also emit
/// CSV for plotting.

#include <string>
#include <vector>

namespace wqe {

/// \brief Collects rows of string cells and renders them aligned.
class TablePrinter {
 public:
  /// \param title caption printed above the table.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// \brief Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// \brief Appends one data row; cell count should match the header (short
  /// rows are padded with empty cells).
  void AddRow(std::vector<std::string> row);

  /// \brief Convenience: formats doubles to `precision` and appends.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// \brief Renders the aligned table.
  std::string Render() const;

  /// \brief Renders the table as CSV (header + rows).
  std::string RenderCsv() const;

  /// \brief Renders to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wqe
