#pragma once

/// \file trace.h
/// \brief Thread-local trace-context carrier.
///
/// The minimal request-tracing state — (trace id, current span id) — lives
/// here at the bottom of the layering so that `common/logging.cc` can tag
/// log lines with the active trace without depending on the observability
/// subsystem above it.  Everything that *manages* this state (span
/// lifecycle, timing, the finished-span log) is in `obs/trace.h`;
/// `serve::ThreadPool` captures the caller's context at submit time and
/// reinstalls it inside the task, so traces follow requests across pool
/// hops.

#include <cstdint>

namespace wqe::common {

/// \brief The ambient trace position of the calling thread.  A zero
/// trace id means "no trace in scope".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< innermost open span (0 at a trace root)
  /// Head-sampling decision, made once at the trace root and inherited
  /// by every child span (Dapper-style consistent sampling): only
  /// sampled traces append `SpanRecord`s to the trace log.  Latency
  /// histograms are unaffected — they record every request.
  bool sampled = false;

  bool active() const { return trace_id != 0; }
};

/// \brief The calling thread's current context ({0,0} when none).
const TraceContext& CurrentTraceContext();

/// \brief Installs `ctx` as the calling thread's context and returns the
/// previous one.  Callers restore the returned value when their scope
/// ends (`obs::Span` and `obs::ScopedTraceContext` do this via RAII).
TraceContext ExchangeCurrentTraceContext(TraceContext ctx);

}  // namespace wqe::common
