#include "common/trace.h"

namespace wqe::common {

namespace {
thread_local TraceContext t_current;
}  // namespace

const TraceContext& CurrentTraceContext() { return t_current; }

TraceContext ExchangeCurrentTraceContext(TraceContext ctx) {
  TraceContext previous = t_current;
  t_current = ctx;
  return previous;
}

}  // namespace wqe::common
