#pragma once

/// \file fault_injection.h
/// \brief Deterministic, seeded fault injection for chaos testing.
///
/// Production code marks interesting failure surfaces with named sites:
///
///     WQE_FAULT_POINT("serve.cache_lookup");   // may return a Status
///     WQE_FAULT_DELAY("serve.pool_dispatch");  // may sleep, never fails
///
/// With the injector disabled (the default, and the only state outside
/// tests) a site costs a single relaxed atomic load — no lock, no map
/// lookup, no clock.  Tests enable it with a seed and a per-site
/// `FaultSpec` plan; every injection decision is a pure function of
/// (seed, site name, per-site draw counter), so a given schedule is
/// reproducible run-to-run regardless of wall-clock time or thread
/// identity.  (Thread interleaving still decides which *request* hits
/// the Nth draw at a site — chaos tests assert invariants, not exact
/// schedules.)
///
/// The catalog of sites in the tree is documented in README
/// "Robustness".

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace wqe::common {

/// \brief What may be injected at one site.
struct FaultSpec {
  /// Probability in [0, 1] that a draw at this site fails with
  /// `fail_code`.  Only consulted by `WQE_FAULT_POINT` sites.
  double fail_probability = 0.0;
  StatusCode fail_code = StatusCode::kInternal;
  /// Probability in [0, 1] that a draw at this site sleeps `delay_ms`
  /// before continuing.  Consulted by both site kinds; delay draws are
  /// independent of failure draws.
  double delay_probability = 0.0;
  double delay_ms = 0.0;
};

/// \brief Process-wide registry of fault sites and the active plan.
///
/// Thread-safe: `enabled()` is wait-free; `Evaluate`/`MaybeDelay` take a
/// mutex only while enabled (decision + counters under the lock, sleeps
/// outside it, so a delayed thread never blocks other sites).
class FaultInjector {
 public:
  /// \brief The process-wide injector every `WQE_FAULT_*` site consults.
  static FaultInjector& Global();

  /// \brief Installs `plan` keyed by site name and enables injection.
  /// Replaces any previous plan and resets the draw counters, so two
  /// `Configure(seed, plan)` calls bracket identical schedules.
  void Configure(uint64_t seed, std::map<std::string, FaultSpec> plan);

  /// \brief Disables injection and clears the plan.  Sites revert to
  /// their single-load fast path.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// \brief One draw at a failure-capable site: returns the injected
  /// Status (and/or sleeps) per the plan, OK when the site is unlisted
  /// or the draw passes.
  Status Evaluate(const char* site);

  /// \brief One draw at a delay-only site.
  void MaybeDelay(const char* site);

  /// \brief Total failures injected since the last `Configure`.
  uint64_t injected_failures() const;
  /// \brief Total delays injected since the last `Configure`.
  uint64_t injected_delays() const;

 private:
  struct SiteState {
    FaultSpec spec;
    uint64_t draws = 0;
  };

  /// Deterministic draw in [0, 1): splitmix64 over
  /// (seed ^ site-name hash ^ draw index).
  static double Uniform(uint64_t seed, uint64_t site_hash, uint64_t draw);

  /// Returns the sleep to perform (0 = none) and, for `Evaluate`, the
  /// injected status; shared decision path under `mu_`.
  Status Decide(const char* site, bool can_fail, double* delay_ms);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  uint64_t seed_ WQE_GUARDED_BY(mu_) = 0;
  std::map<std::string, SiteState> plan_ WQE_GUARDED_BY(mu_);
  uint64_t injected_failures_ WQE_GUARDED_BY(mu_) = 0;
  uint64_t injected_delays_ WQE_GUARDED_BY(mu_) = 0;
};

}  // namespace wqe::common

/// \brief Marks a failure surface inside a function returning `Status`
/// or `Result<T>`: when the active plan injects a fault here, the
/// enclosing function returns it.  Free when injection is disabled.
#define WQE_FAULT_POINT(site)                                         \
  do {                                                                \
    if (::wqe::common::FaultInjector::Global().enabled()) {           \
      ::wqe::Status wqe_injected =                                    \
          ::wqe::common::FaultInjector::Global().Evaluate(site);      \
      if (!wqe_injected.ok()) return wqe_injected;                    \
    }                                                                 \
  } while (0)

/// \brief Marks a delay-only surface (e.g. dispatch paths that cannot
/// fail): when the active plan injects a delay here, the calling thread
/// sleeps.  Free when injection is disabled.
#define WQE_FAULT_DELAY(site)                                         \
  do {                                                                \
    if (::wqe::common::FaultInjector::Global().enabled()) {           \
      ::wqe::common::FaultInjector::Global().MaybeDelay(site);        \
    }                                                                 \
  } while (0)
