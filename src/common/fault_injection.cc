#include "common/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>

namespace wqe::common {

namespace {

/// FNV-1a over the site name: stable across runs and platforms, so a
/// plan's schedule does not depend on pointer values or hash seeding.
uint64_t HashSiteName(const char* site) {
  uint64_t h = 1469598103934665603ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
    h *= 1099511628211ULL;
  }
  return h;
}

/// splitmix64 finalizer: avalanche the combined (seed, site, draw) word.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Configure(uint64_t seed,
                              std::map<std::string, FaultSpec> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  plan_.clear();
  for (auto& entry : plan) {
    plan_[entry.first] = SiteState{entry.second, /*draws=*/0};
  }
  injected_failures_ = 0;
  injected_delays_ = 0;
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_release);
  plan_.clear();
}

double FaultInjector::Uniform(uint64_t seed, uint64_t site_hash,
                              uint64_t draw) {
  const uint64_t word = Mix(seed ^ Mix(site_hash ^ Mix(draw)));
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

Status FaultInjector::Decide(const char* site, bool can_fail,
                             double* delay_ms) {
  *delay_ms = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return Status::OK();
  auto it = plan_.find(site);
  if (it == plan_.end()) return Status::OK();
  SiteState& state = it->second;
  const uint64_t site_hash = HashSiteName(site);
  // Failure and delay decisions consume independent draws so enabling
  // one never perturbs the other's schedule.
  const double fail_draw = Uniform(seed_, site_hash, state.draws++);
  const double delay_draw = Uniform(seed_, site_hash, state.draws++);
  if (state.spec.delay_probability > 0.0 &&
      delay_draw < state.spec.delay_probability) {
    *delay_ms = state.spec.delay_ms;
    ++injected_delays_;
  }
  if (can_fail && state.spec.fail_probability > 0.0 &&
      fail_draw < state.spec.fail_probability) {
    ++injected_failures_;
    return Status(state.spec.fail_code,
                  std::string("injected fault at ") + site);
  }
  return Status::OK();
}

Status FaultInjector::Evaluate(const char* site) {
  double delay_ms = 0.0;
  Status status = Decide(site, /*can_fail=*/true, &delay_ms);
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return status;
}

void FaultInjector::MaybeDelay(const char* site) {
  double delay_ms = 0.0;
  Decide(site, /*can_fail=*/false, &delay_ms);
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
}

uint64_t FaultInjector::injected_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_failures_;
}

uint64_t FaultInjector::injected_delays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_delays_;
}

}  // namespace wqe::common
