#pragma once

/// \file stats.h
/// \brief Descriptive statistics used throughout the paper's tables.
///
/// The paper reports min / Q1 / median / Q3 / max summaries (Tables 2 and 3)
/// and simple averages (Figures 5–9); this header centralizes those
/// computations so every table is produced by the same code path.

#include <cstddef>
#include <string>
#include <vector>

namespace wqe {

/// \brief Five-number summary (min, quartiles, max), as in Tables 2 and 3.
struct FiveNumberSummary {
  double min = 0.0;
  double q1 = 0.0;     ///< 25th percentile
  double median = 0.0; ///< 50th percentile
  double q3 = 0.0;     ///< 75th percentile
  double max = 0.0;
  size_t n = 0;

  /// Renders "min q1 median q3 max" with the given precision.
  std::string ToString(int precision = 3) const;
};

/// \brief Computes the five-number summary of `values` (copied and sorted).
/// Empty input yields an all-zero summary with n == 0.
FiveNumberSummary Summarize(std::vector<double> values);

/// \brief Linear-interpolation percentile (R-7, the spreadsheet default) of
/// sorted data. `p` in [0, 1]. Requires non-empty `sorted`.
double PercentileSorted(const std::vector<double>& sorted, double p);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// \brief Sample standard deviation (n-1 denominator); 0 when n < 2.
double StdDev(const std::vector<double>& values);

/// \brief Pearson correlation of paired samples; 0 when undefined.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// \brief Least-squares line fit `y = slope * x + intercept`.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// \brief Fits a least-squares line through the paired samples; used for the
/// trend lines of Figures 7a and 9. Requires sizes equal and >= 2.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace wqe
