#pragma once

/// \file logging.h
/// \brief Minimal leveled logger with a process-wide threshold.
///
/// Usage: `WQE_LOG(INFO) << "indexed " << n << " docs";`
/// Output goes to stderr so bench/table output on stdout stays clean.
///
/// The threshold comes from the `WQE_LOG_LEVEL` environment variable at
/// first use (`debug`/`info`/`warning`/`error`, case-insensitive, or
/// 0–3); an explicit `SetLogLevel` call wins over the environment
/// regardless of ordering.  When a trace is in scope (see
/// common/trace.h and obs/trace.h), log lines carry its id:
///
///   [INFO server.cc:42 trace=1b2e9d0c4f5a6b7c] served request

#include <sstream>
#include <string>

namespace wqe {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Returns the current process-wide minimum level (default kInfo).
LogLevel GetLogLevel();

/// \brief Sets the process-wide minimum level.
void SetLogLevel(LogLevel level);

namespace internal {

/// One log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wqe

#define WQE_LOG(severity)                                              \
  ::wqe::internal::LogMessage(::wqe::LogLevel::k##severity, __FILE__,  \
                              __LINE__)
