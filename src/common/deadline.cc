#include "common/deadline.h"

#include <cmath>

namespace wqe::common {

namespace {

thread_local ExecContext g_exec_context;

}  // namespace

Deadline Deadline::AfterMillis(double ms) {
  Deadline d;
  const auto now = std::chrono::steady_clock::now();
  if (ms <= 0.0) {
    d.when_ = now;
    return d;
  }
  // Saturate absurd budgets at infinite instead of overflowing the
  // duration arithmetic.
  const double max_ms = 1e15;
  if (ms >= max_ms) return d;
  d.when_ = now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(ms));
  return d;
}

double Deadline::remaining_ms() const {
  if (is_infinite()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(
             when_ - std::chrono::steady_clock::now())
      .count();
}

const ExecContext& CurrentExecContext() { return g_exec_context; }

ExecContext ExchangeCurrentExecContext(ExecContext ctx) {
  ExecContext previous = std::move(g_exec_context);
  g_exec_context = std::move(ctx);
  return previous;
}

bool ExecInterrupted() {
  const ExecContext& ctx = g_exec_context;
  // Cheap checks first: a relaxed flag load beats a clock read.
  if (ctx.cancel.cancelled()) return true;
  return ctx.deadline.expired();
}

Status ExecStatus() {
  const ExecContext& ctx = g_exec_context;
  if (ctx.cancel.cancelled()) return Status::Cancelled("request cancelled");
  if (ctx.deadline.expired()) {
    return Status::DeadlineExceeded("request deadline exceeded");
  }
  return Status::OK();
}

}  // namespace wqe::common
