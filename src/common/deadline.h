#pragma once

/// \file deadline.h
/// \brief Deadlines, cooperative cancellation, and the thread-local
/// execution context that carries them.
///
/// Mirrors the layering of `common/trace.h`: the minimal request-budget
/// state — (deadline, cancel token) — lives at the bottom of the tree so
/// the graph kernels can poll it without depending on the serving layer
/// above them.  `serve::ThreadPool` captures the caller's `ExecContext`
/// at submit time and reinstalls it inside the task (exactly as it does
/// for `TraceContext`), so budgets follow requests across pool hops and
/// the parallel enumeration workers see the deadline of the request that
/// spawned them.
///
/// Cooperative checks are deliberately cheap: when no deadline is set and
/// no cancel token is attached, `ExecInterrupted()` is a thread-local
/// load plus two predictable branches — no clock read, no atomics.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/status.h"

namespace wqe::common {

/// \brief A point in time after which a request's work should stop.
///
/// Default-constructed deadlines are infinite (never expire) and cost
/// nothing to check.  Deadlines are values: copying one shares the same
/// instant, and the tighter of two deadlines wins under `Tighten`.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  /// \brief A deadline `ms` milliseconds from now ("now" on the steady
  /// clock, so wall-clock adjustments can't fire or starve it).  A
  /// non-positive `ms` yields an already-expired deadline.
  static Deadline AfterMillis(double ms);

  /// \brief The tighter (earlier) of the two deadlines.
  static Deadline Tighten(const Deadline& a, const Deadline& b) {
    return a.when_ < b.when_ ? a : b;
  }

  bool is_infinite() const {
    return when_ == std::chrono::steady_clock::time_point::max();
  }

  /// \brief True iff the deadline has passed.  Infinite deadlines never
  /// expire (and skip the clock read).
  bool expired() const {
    return !is_infinite() && std::chrono::steady_clock::now() >= when_;
  }

  /// \brief Milliseconds until expiry: negative once expired, +infinity
  /// for an infinite deadline.
  double remaining_ms() const;

 private:
  std::chrono::steady_clock::time_point when_ =
      std::chrono::steady_clock::time_point::max();
};

class CancelSource;

/// \brief A read-only view of a cancellation flag.
///
/// Default-constructed tokens are null: `valid()` is false and they can
/// never report cancellation.  Real tokens come from a `CancelSource` and
/// share its flag; copying a token is a shared_ptr copy.
class CancelToken {
 public:
  CancelToken() = default;

  /// \brief True iff this token is attached to a `CancelSource`.
  bool valid() const { return flag_ != nullptr; }

  /// \brief True iff the owning source has requested cancellation.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// \brief The writable end of a cancellation flag.
///
/// The caller that owns the request keeps the source and hands tokens to
/// the work; `RequestCancel()` is sticky (there is no un-cancel) and safe
/// to call from any thread, including concurrently with token reads.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief The ambient execution budget of the calling thread: how long
/// the current request may keep running, and whether its caller has
/// asked it to stop.
struct ExecContext {
  Deadline deadline;
  CancelToken cancel;

  /// \brief True iff there is anything to check (finite deadline or an
  /// attached cancel token).  The inactive fast path is branch-only.
  bool active() const { return !deadline.is_infinite() || cancel.valid(); }

  /// \brief Combines an inherited (ambient) context with a per-request
  /// one: the tighter deadline wins, and the request's cancel token
  /// takes precedence when it has one.
  static ExecContext Merge(const ExecContext& ambient,
                           const ExecContext& request) {
    ExecContext out;
    out.deadline = Deadline::Tighten(ambient.deadline, request.deadline);
    out.cancel = request.cancel.valid() ? request.cancel : ambient.cancel;
    return out;
  }
};

/// \brief The calling thread's current execution context (infinite /
/// no-token when none has been installed).
const ExecContext& CurrentExecContext();

/// \brief Installs `ctx` as the calling thread's context and returns the
/// previous one.  Callers restore the returned value when their scope
/// ends (`ScopedExecContext` does this via RAII).
ExecContext ExchangeCurrentExecContext(ExecContext ctx);

/// \brief RAII installer for an `ExecContext`, restoring the previous
/// context on destruction.  Mirrors `obs::ScopedTraceContext`.
class ScopedExecContext {
 public:
  explicit ScopedExecContext(ExecContext ctx)
      : previous_(ExchangeCurrentExecContext(std::move(ctx))) {}
  ~ScopedExecContext() { ExchangeCurrentExecContext(std::move(previous_)); }

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext previous_;
};

/// \brief True iff the ambient context wants the current work to stop
/// (cancel requested, or deadline expired).  This is the cooperative
/// check the long-running kernels poll; the no-context fast path does
/// not touch the clock.
bool ExecInterrupted();

/// \brief OK while the ambient context allows work to continue;
/// `Status::Cancelled` / `Status::DeadlineExceeded` otherwise.  Cancel
/// wins over deadline when both fired (the caller explicitly asked).
Status ExecStatus();

}  // namespace wqe::common
