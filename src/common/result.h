#pragma once

/// \file result.h
/// \brief `Result<T>`: a value-or-Status union for fallible producers.
///
/// Mirrors `arrow::Result`.  A `Result<T>` holds either a `T` or a non-OK
/// `Status`.  Accessing the value of an errored result aborts (programming
/// error); use `ok()` or the `WQE_ASSIGN_OR_RETURN` macro (macros.h).

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace wqe {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      Fail("constructed Result<T> from an OK Status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Borrows the value; aborts if this result holds an error.
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(repr_);
  }
  /// \brief Moves the value out; aborts if this result holds an error.
  T ValueOrDie() && {
    EnsureOk();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void EnsureOk() const {
    if (!ok()) Fail(std::get<Status>(repr_).ToString().c_str());
  }
  [[noreturn]] static void Fail(const char* what) {
    std::cerr << "Result<T>: value access on error: " << what << std::endl;
    std::abort();
  }

  std::variant<T, Status> repr_;
};

}  // namespace wqe
