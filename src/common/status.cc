#include "common/status.h"

namespace wqe {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kCapacityError:
      return "Capacity error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

Status Status::WithContext(const std::string& detail) const {
  if (ok()) return *this;
  return Status(code_, msg_.empty() ? detail : msg_ + "; " + detail);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace wqe
