#pragma once

/// \file status.h
/// \brief Error propagation without exceptions.
///
/// Follows the Status idiom used by Arrow/RocksDB: fallible operations
/// return a `wqe::Status` (or `wqe::Result<T>`, see result.h) instead of
/// throwing.  A Status is cheap to copy in the OK case (single enum) and
/// carries a code plus message otherwise.

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace wqe {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kParseError = 6,
  kCapacityError = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
  kResourceExhausted = 12,
};

/// \brief Human-readable name of a status code, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// The OK state stores no heap data.  Error states carry a message built by
/// the factory functions below.  Statuses must be checked by the caller;
/// helper macros in macros.h (`WQE_RETURN_NOT_OK`, `WQE_CHECK_OK`) make the
/// common propagation patterns terse.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \brief Factory for the OK status.
  static Status OK() { return Status(); }

  /// \name Error factories
  /// Each accepts a stream of `<<`-able message pieces.
  /// @{
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status CapacityError(Args&&... args) {
    return Make(StatusCode::kCapacityError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return Make(StatusCode::kCancelled, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  /// @}

  /// \brief True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCapacityError() const { return code_ == StatusCode::kCapacityError; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }

  /// \brief The error message; empty for OK.
  const std::string& message() const { return msg_; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Appends `detail` to this status' message, preserving the code.
  ///
  /// No-op on OK statuses. Useful when adding call-site context while
  /// propagating an error upward.
  Status WithContext(const std::string& detail) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream ss;
    (ss << ... << std::forward<Args>(args));
    return Status(code, ss.str());
  }

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace wqe
