#include "common/table_printer.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/string_util.h"

namespace wqe {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::Render() const {
  // Column widths over header + all rows.
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << "  ";
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(width[i] - row[i].size(), ' ');
      }
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < ncols; ++i) total += width[i] + (i > 0 ? 2 : 0);
    out << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string TablePrinter::RenderCsv() const {
  std::ostringstream out;
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q.push_back(c);
    }
    q += "\"";
    return q;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << quote(row[i]);
    }
    out << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TablePrinter::Print() const { std::cout << Render() << std::flush; }

}  // namespace wqe
