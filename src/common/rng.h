#pragma once

/// \file rng.h
/// \brief Deterministic pseudo-random number generation (PCG32).
///
/// All stochastic components of the library (the synthetic Wikipedia
/// generator, the CLEF track generator, the ground-truth optimizer's
/// restarts) draw from this generator so that a single 64-bit seed fully
/// determines every experiment.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wqe {

/// \brief PCG32 (XSH-RR 64/32) generator: small state, good statistical
/// quality, fully deterministic across platforms.
class Rng {
 public:
  /// Constructs a generator from a seed and an optional stream id.  Two
  /// generators with the same seed but different streams are independent.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// \brief Next 32 uniform random bits.
  uint32_t NextU32();

  /// \brief Next 64 uniform random bits.
  uint64_t NextU64();

  /// \brief Uniform integer in `[0, bound)`; `bound` must be > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  uint32_t Uniform(uint32_t bound);

  /// \brief Uniform integer in `[lo, hi]` (inclusive). Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in `[0, 1)`.
  double NextDouble();

  /// \brief Bernoulli trial with probability `p` of true.
  bool Bernoulli(double p);

  /// \brief Zipf-distributed integer in `[0, n)` with exponent `s`:
  /// p(rank r) ∝ 1/(r+1)^s.  Rejection-inversion sampling (Hormann &
  /// Derflinger), O(1) per draw independent of `n`.
  ///
  /// Used to give the synthetic Wikipedia its heavy-tailed degree
  /// distribution.
  uint32_t Zipf(uint32_t n, double s);

  /// \brief Gaussian sample via Box–Muller.
  double Gaussian(double mean, double stddev);

  /// \brief Samples `k` distinct indices from `[0, n)` (reservoir when
  /// k << n). Result order is unspecified but deterministic.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// \brief Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (uint32_t i = static_cast<uint32_t>(v->size()) - 1; i > 0; --i) {
      uint32_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Picks an index in `[0, weights.size())` with probability
  /// proportional to `weights[i]`. Requires a positive total weight.
  size_t WeightedChoice(const std::vector<double>& weights);

  /// \brief Derives an independent child generator; used to give each
  /// module / query its own deterministic stream.
  Rng Fork(uint64_t stream_tag);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace wqe
