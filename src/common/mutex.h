#pragma once

/// \file mutex.h
/// \brief Annotated mutex primitives for compile-time lock checking.
///
/// `std::mutex` carries no thread-safety attributes, so Clang's
/// `-Wthread-safety` analysis cannot see which fields it guards or which
/// functions hold it.  These thin wrappers — same layout, same cost, no
/// extra state — carry the `capability` / `scoped_lockable` attributes
/// (via the `WQE_*` macros in common/macros.h) that make locking
/// contracts compile errors under Clang instead of header comments.
/// Everything concurrency-bearing (`serve::ThreadPool`,
/// `serve::ExpansionCache`, `serve::Server`, the parallel enumerator's
/// shared state) locks through these.
///
/// On non-Clang toolchains the attributes expand to nothing and the
/// wrappers behave exactly like the std types they hold.

#include <condition_variable>
#include <mutex>

#include "common/macros.h"

namespace wqe::common {

class CondVar;

/// \brief `std::mutex` with capability annotations.  Prefer the RAII
/// `MutexLock` over calling `Lock`/`Unlock` directly.
class WQE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WQE_ACQUIRE() { mu_.lock(); }
  void Unlock() WQE_RELEASE() { mu_.unlock(); }
  bool TryLock() WQE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // waits on the wrapped std::mutex directly
  std::mutex mu_;
};

/// \brief RAII lock for `Mutex`, equivalent to `std::lock_guard`.  Scoped
/// acquisition is what the analysis tracks across early returns.
class WQE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WQE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WQE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` requires the mutex held and returns with it held — the interior
/// release/reacquire is invisible to (and irrelevant for) the analysis,
/// which only cares that the capability state is unchanged across the
/// call.  There is no predicate overload on purpose: the analysis cannot
/// see a lambda's guarded-field reads, so callers write the standard
///   while (!condition) cv.Wait(mu);
/// loop, which is checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Atomically releases `mu`, blocks until notified, reacquires.
  void Wait(Mutex& mu) WQE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands it back still locked, so the annotated capability
    // state stays truthful.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wqe::common
