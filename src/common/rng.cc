#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace wqe {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

uint64_t Rng::NextU64() {
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  return (hi << 32) | lo;
}

uint32_t Rng::Uniform(uint32_t bound) {
  WQE_CHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t l = static_cast<uint32_t>(m);
  if (l < bound) {
    uint32_t t = -bound % bound;
    while (l < t) {
      m = static_cast<uint64_t>(NextU32()) * bound;
      l = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  WQE_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // 64-bit rejection sampling.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % span);
}

double Rng::NextDouble() {
  return (NextU64() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint32_t Rng::Zipf(uint32_t n, double s) {
  WQE_CHECK(n > 0);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hormann & Derflinger 1996) for a Zipf
  // law p(k) ∝ k^-s on ranks 1..n; returned 0-based.
  //
  // H(x) = ∫ t^-s dt = (x^(1-s) − 1)/(1−s)  (log x at s = 1) dominates the
  // rank probabilities: u is drawn uniformly from (H(n+0.5), H(1.5) − 1],
  // x = H⁻¹(u) is rounded to the candidate rank k, and the candidate is
  // *accepted* when u ≥ H(k+0.5) − k^-s — the sub-interval of measure
  // exactly k^-s — which yields p(k) ∝ k^-s with no clamping bias.  The
  // H(1.5) − 1 lower bound extends rank 1's interval so its accepted
  // measure is exactly 1 = 1^-s.  (The seed implementation sampled from
  // H(0.5) − 1 and *rejected* on the ≥ test, which inverted the law and
  // put ~99% of the mass on rank 0.)
  const double sm1 = 1.0 - s;
  const bool log_form = std::abs(sm1) < 1e-12;
  auto h_integral = [&](double x) {
    double lx = std::log(x);
    if (log_form) return lx;
    return std::expm1(sm1 * lx) / sm1;
  };
  auto h_integral_inv = [&](double x) {
    if (log_form) return std::exp(x);
    return std::exp(std::log1p(sm1 * x) / sm1);
  };
  const double lo = h_integral(1.5) - 1.0;
  const double hi = h_integral(n + 0.5);
  for (;;) {
    double u = lo + NextDouble() * (hi - lo);
    double x = h_integral_inv(u);
    uint32_t k = static_cast<uint32_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    if (u >= h_integral(k + 0.5) - std::pow(k, -s)) return k - 1;
  }
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  WQE_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Reservoir sampling ("Algorithm R"): O(n) but allocation-free beyond the
  // reservoir; fine for the sizes used here.
  for (uint32_t i = 0; i < n; ++i) {
    if (out.size() < k) {
      out.push_back(i);
    } else {
      uint32_t j = Uniform(i + 1);
      if (j < k) out[j] = i;
    }
  }
  return out;
}

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  WQE_CHECK(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_tag) {
  uint64_t child_seed = NextU64();
  return Rng(child_seed, stream_tag * 2654435761ULL + 0x9e3779b97f4a7c15ULL);
}

}  // namespace wqe
