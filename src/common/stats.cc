#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace wqe {

std::string FiveNumberSummary::ToString(int precision) const {
  std::ostringstream ss;
  ss << FormatDouble(min, precision) << " " << FormatDouble(q1, precision)
     << " " << FormatDouble(median, precision) << " "
     << FormatDouble(q3, precision) << " " << FormatDouble(max, precision);
  return ss.str();
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  WQE_CHECK(!sorted.empty());
  if (sorted.size() == 1) return sorted[0];
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

FiveNumberSummary Summarize(std::vector<double> values) {
  FiveNumberSummary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.q1 = PercentileSorted(values, 0.25);
  s.median = PercentileSorted(values, 0.50);
  s.q3 = PercentileSorted(values, 0.75);
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  WQE_CHECK(x.size() == y.size());
  WQE_CHECK(x.size() >= 2);
  LinearFit fit;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy <= 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace wqe
