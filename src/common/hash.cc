#include "common/hash.h"

namespace wqe {

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint64_t>(bytes[i]);
    hash *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
  return hash;
}

}  // namespace wqe
