#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/trace.h"

namespace wqe {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
/// An explicit SetLogLevel wins over WQE_LOG_LEVEL even when the first
/// log statement runs later.
std::atomic<bool> g_level_explicit{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

bool ParseLevel(const char* text, LogLevel* out) {
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug" || lower == "0") *out = LogLevel::kDebug;
  else if (lower == "info" || lower == "1") *out = LogLevel::kInfo;
  else if (lower == "warning" || lower == "warn" || lower == "2")
    *out = LogLevel::kWarning;
  else if (lower == "error" || lower == "3") *out = LogLevel::kError;
  else return false;
  return true;
}

/// Applies WQE_LOG_LEVEL once, on the first threshold read.
void EnsureEnvApplied() {
  static const bool applied = [] {
    const char* env = std::getenv("WQE_LOG_LEVEL");
    if (env == nullptr || *env == '\0') return true;
    LogLevel level;
    if (!ParseLevel(env, &level)) {
      std::fprintf(stderr,
                   "[WARN logging.cc] unrecognized WQE_LOG_LEVEL '%s' "
                   "(want debug|info|warning|error or 0-3); keeping "
                   "default\n",
                   env);
      return true;
    }
    if (!g_level_explicit.load()) {
      g_log_level.store(static_cast<int>(level));
    }
    return true;
  }();
  (void)applied;
}
}  // namespace

LogLevel GetLogLevel() {
  EnsureEnvApplied();
  return static_cast<LogLevel>(g_log_level.load());
}

void SetLogLevel(LogLevel level) {
  g_level_explicit.store(true);
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  EnsureEnvApplied();
  enabled_ = static_cast<int>(level) >= g_log_level.load();
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line;
    // Tag with the active trace so one request's lines correlate across
    // threads (the serve pool re-installs the submitter's context).
    const common::TraceContext& ctx = common::CurrentTraceContext();
    if (ctx.active()) {
      char trace[32];
      std::snprintf(trace, sizeof(trace), " trace=%016llx",
                    static_cast<unsigned long long>(ctx.trace_id));
      stream_ << trace;
    }
    stream_ << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace wqe
