#pragma once

/// \file stopwatch.h
/// \brief Wall-clock timing for the performance experiments (E9).

#include <chrono>

namespace wqe {

/// \brief Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wqe
