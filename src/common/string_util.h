#pragma once

/// \file string_util.h
/// \brief Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace wqe {

/// \brief ASCII lowercase (non-ASCII bytes pass through unchanged).
std::string ToLower(std::string_view s);

/// \brief ASCII uppercase (non-ASCII bytes pass through unchanged).
std::string ToUpper(std::string_view s);

/// \brief Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits on any run of ASCII whitespace; empty fields dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief True when `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// \brief Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief 64-bit FNV-1a hash; stable across platforms, used for
/// deterministic bucketing and title fingerprints.
uint64_t Fnv1a64(std::string_view s);

/// \brief Formats a double with fixed precision (no locale surprises).
std::string FormatDouble(double v, int precision);

/// \brief Wikipedia-style title normalization: trim, collapse internal
/// whitespace/underscores to single spaces, lowercase.
///
/// Real Wikipedia capitalizes the first letter and is case-sensitive beyond
/// it; for entity linking the paper matches titles against free text, so we
/// normalize fully to lowercase on both sides.
std::string NormalizeTitle(std::string_view s);

}  // namespace wqe
