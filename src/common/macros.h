#pragma once

/// \file macros.h
/// \brief Control-flow helpers for Status/Result propagation, plus the
/// Clang thread-safety annotation macros used by `common/mutex.h`.

#include <cstdlib>
#include <iostream>

#include "common/status.h"

/// \name Thread-safety annotations
///
/// Wrappers over Clang's `-Wthread-safety` attributes (see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).  Under Clang
/// with the `WQE_THREAD_SAFETY` CMake option (on by default) the locking
/// contracts written with these — which mutex guards which field, which
/// functions must (or must not) hold which lock — become compile errors
/// when violated.  On GCC and other toolchains they expand to nothing,
/// so annotated code builds everywhere.
///
/// Usage: guard fields with `WQE_GUARDED_BY(mu_)`, annotate members that
/// are called with a lock held with `WQE_REQUIRES(mu_)`, and members
/// that take the lock themselves with `WQE_EXCLUDES(mu_)`.  See
/// `serve::ThreadPool` for a worked example and README "Correctness
/// tooling" for the how-to.
/// @{

#if defined(__clang__)
#define WQE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WQE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define WQE_CAPABILITY(x) WQE_THREAD_ANNOTATION(capability(x))
/// Declares an RAII class that acquires in its ctor, releases in its dtor.
#define WQE_SCOPED_CAPABILITY WQE_THREAD_ANNOTATION(scoped_lockable)
/// A field that may only be touched while `x` is held.
#define WQE_GUARDED_BY(x) WQE_THREAD_ANNOTATION(guarded_by(x))
/// A pointer field whose *pointee* may only be touched while `x` is held.
#define WQE_PT_GUARDED_BY(x) WQE_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function acquires the given capabilities (and does not release).
#define WQE_ACQUIRE(...) WQE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the given capabilities.
#define WQE_RELEASE(...) WQE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns `ret`.
#define WQE_TRY_ACQUIRE(ret, ...) \
  WQE_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Callers must hold the given capabilities (held before and after).
#define WQE_REQUIRES(...) WQE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Callers must NOT hold the given capabilities (the function locks them).
#define WQE_EXCLUDES(...) WQE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// The function returns a reference to the given capability.
#define WQE_RETURN_CAPABILITY(x) WQE_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: the function body is exempt from analysis.  Every use
/// must carry a comment justifying why the analysis cannot see the
/// invariant (see the acceptance bar in README "Correctness tooling").
#define WQE_NO_THREAD_SAFETY_ANALYSIS \
  WQE_THREAD_ANNOTATION(no_thread_safety_analysis)

/// @}

#define WQE_CONCAT_IMPL(x, y) x##y
#define WQE_CONCAT(x, y) WQE_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define WQE_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::wqe::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on success assigns the value
/// to `lhs`, otherwise returns the error status from the enclosing function.
#define WQE_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  WQE_ASSIGN_OR_RETURN_IMPL(WQE_CONCAT(_wqe_result_, __LINE__), lhs, rexpr)

#define WQE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueOrDie()

/// Aborts the process when `expr` is not OK.  For use in main()s, benches
/// and tests where an error is unrecoverable.
#define WQE_CHECK_OK(expr)                                            \
  do {                                                                \
    ::wqe::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                  \
      std::cerr << __FILE__ << ":" << __LINE__                        \
                << " WQE_CHECK_OK failed: " << _st << std::endl;      \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

/// Aborts the process when `cond` is false.
#define WQE_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::cerr << __FILE__ << ":" << __LINE__                         \
                << " WQE_CHECK failed: " #cond << std::endl;           \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

/// Debug-only WQE_CHECK: enforced when NDEBUG is not defined, a no-op
/// otherwise.  For contract checks that are too hot (or too disruptive)
/// for release builds, e.g. "the expander registry must not be mutated
/// once serving has started".
#ifdef NDEBUG
#define WQE_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define WQE_DCHECK(cond) WQE_CHECK(cond)
#endif

/// Debug-only WQE_CHECK_OK: evaluates and enforces the Status expression
/// when NDEBUG is not defined, does not evaluate it at all otherwise.
/// For structural validators that are too expensive for release builds,
/// e.g. `CsrGraph::CheckInvariants()` at freeze time.
#ifdef NDEBUG
#define WQE_DCHECK_OK(expr) \
  do {                      \
  } while (false)
#else
#define WQE_DCHECK_OK(expr) WQE_CHECK_OK(expr)
#endif
