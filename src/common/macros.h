#pragma once

/// \file macros.h
/// \brief Control-flow helpers for Status/Result propagation.

#include <cstdlib>
#include <iostream>

#include "common/status.h"

#define WQE_CONCAT_IMPL(x, y) x##y
#define WQE_CONCAT(x, y) WQE_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define WQE_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::wqe::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on success assigns the value
/// to `lhs`, otherwise returns the error status from the enclosing function.
#define WQE_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  WQE_ASSIGN_OR_RETURN_IMPL(WQE_CONCAT(_wqe_result_, __LINE__), lhs, rexpr)

#define WQE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueOrDie()

/// Aborts the process when `expr` is not OK.  For use in main()s, benches
/// and tests where an error is unrecoverable.
#define WQE_CHECK_OK(expr)                                            \
  do {                                                                \
    ::wqe::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                  \
      std::cerr << __FILE__ << ":" << __LINE__                        \
                << " WQE_CHECK_OK failed: " << _st << std::endl;      \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

/// Aborts the process when `cond` is false.
#define WQE_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::cerr << __FILE__ << ":" << __LINE__                         \
                << " WQE_CHECK failed: " #cond << std::endl;           \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

/// Debug-only WQE_CHECK: enforced when NDEBUG is not defined, a no-op
/// otherwise.  For contract checks that are too hot (or too disruptive)
/// for release builds, e.g. "the expander registry must not be mutated
/// once serving has started".
#ifdef NDEBUG
#define WQE_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define WQE_DCHECK(cond) WQE_CHECK(cond)
#endif
