#pragma once

/// \file synthetic.h
/// \brief Seeded generator of a Wikipedia-shaped knowledge base.
///
/// Substitute for the real English Wikipedia dump (see DESIGN.md §2).
/// The generator produces *topic domains* — clusters of articles sharing a
/// small category subtree and dense intra-domain linking — connected by a
/// sparse cross-domain background.  The structural knobs are calibrated to
/// the scalars the paper reports on real Wikipedia:
///
///  - `reciprocal_link_prob` ≈ 0.115 reproduces "11.47% of connected
///    article pairs form a cycle of length 2";
///  - tree-like categories (each category has one parent) keep the pure
///    category graph triangle-free, so triangles only arise through
///    articles — matching the paper's TPR discussion;
///  - redirect articles carry only their redirect edge and thus can never
///    close cycles (§4).

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "wiki/knowledge_base.h"

namespace wqe::wiki {

/// \brief Generator parameters. Defaults give a laptop-scale KB
/// (~3k articles) that exhibits all the paper's structural trends.
struct SyntheticWikipediaOptions {
  uint64_t seed = 42;

  /// Number of topic domains (each gets a disjoint 8-word vocabulary).
  uint32_t num_domains = 64;

  /// Articles per domain: uniform in [min, max].
  uint32_t min_articles_per_domain = 28;
  uint32_t max_articles_per_domain = 56;

  /// Categories per domain: uniform in [min, max]; arranged as a tree.
  /// Generous counts keep query graphs category-dominated, as the paper
  /// observes on real Wikipedia (Table 3: ~78% categories).
  uint32_t min_categories_per_domain = 16;
  uint32_t max_categories_per_domain = 28;

  /// Top-level categories shared by all domains.
  uint32_t num_root_categories = 5;

  /// Out-links per article: 2 + Zipf(link_zipf_n, link_zipf_s).  The
  /// exponent is calibrated against the *corrected* rejection-inversion
  /// sampler (p(k) ∝ 1/(k+1)^s): s = 2.4 keeps the mean extra fanout ~0.6
  /// so tail articles stay link-sparse and the planted hub structure —
  /// not background link noise — dominates short cycles, as on real
  /// Wikipedia.
  uint32_t link_zipf_n = 9;
  double link_zipf_s = 2.4;

  /// Popularity-bias exponent for link targets: half of all links aim at
  /// a Zipf(num_articles, link_target_s) rank, concentrating in-links on
  /// the domain hubs.
  double link_target_s = 1.6;

  /// Probability that an ordinary link is reciprocated (creates a
  /// length-2 cycle).  Together with the planted hub partnerships below
  /// this calibrates the global reciprocal-pair rate to the paper's
  /// measured 11.47%.
  double reciprocal_link_prob = 0.02;

  /// Mutual-link partners planted per hub article (hubs are the first
  /// `hub_count` articles of a domain).  Real Wikipedia's reciprocal pairs
  /// concentrate among related prominent articles ("Venice" ↔ "Grand
  /// Canal"), which is what makes length-2 cycles informative.
  uint32_t hub_mutual_partners = 1;
  uint32_t hub_count = 8;

  /// Probability an article gets one extra cross-domain link.
  double cross_domain_link_prob = 0.08;

  /// Probability an article belongs to a category of another domain.
  double cross_domain_category_prob = 0.04;

  /// Extra categories per article beyond the mandatory one:
  /// article belongs to 1 + Binomial(4, extra_category_prob) categories.
  double extra_category_prob = 0.5;

  /// Probability an article has ≥1 redirect alias (then 1–2 aliases).
  double redirect_prob = 0.30;
};

/// \brief A generated knowledge base plus domain bookkeeping (used by the
/// CLEF track generator to plant queries inside domains).
struct SyntheticWikipedia {
  KnowledgeBase kb;
  /// Main articles of each domain, in popularity order (index 0 = hub).
  std::vector<std::vector<NodeId>> domain_articles;
  /// Categories of each domain (index 0 = domain root category).
  std::vector<std::vector<NodeId>> domain_categories;
  /// Domain of each article node (by node id; UINT32_MAX for non-domain
  /// nodes such as root categories and redirects).
  std::vector<uint32_t> domain_of;

  SyntheticWikipediaOptions options;
};

/// \brief Generates the knowledge base. Fails only on inconsistent options
/// (e.g. zero domains).
Result<SyntheticWikipedia> GenerateSyntheticWikipedia(
    const SyntheticWikipediaOptions& options);

}  // namespace wqe::wiki
