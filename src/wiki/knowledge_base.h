#pragma once

/// \file knowledge_base.h
/// \brief The Wikipedia knowledge base: typed graph + title index.
///
/// Wraps a `graph::PropertyGraph` with the Wikipedia-specific services the
/// paper's pipeline needs: title lookup for entity linking (§2.1), redirect
/// resolution and redirect-derived synonyms, and category/link
/// neighborhoods for query-graph assembly (§2.3).
///
/// Titles are stored normalized (lowercase, collapsed whitespace — see
/// `NormalizeTitle`); the display title is kept separately for output.
///
/// Lifecycle: the KB is a *builder* until `Freeze()` is called, which
/// compiles the property graph into an immutable `graph::CsrGraph`
/// snapshot (see graph/csr.h).  Freezing is the one-way bridge — any
/// mutation afterwards fails — so the snapshot can be shared read-only
/// across every serving thread.  All structural reads (redirect
/// resolution, neighborhoods, link/category scans) take the flat CSR fast
/// path once frozen.
///
/// A KB can also come up *loaded*: `FromSnapshot` reconstitutes a frozen
/// KB from an on-disk snapshot (see snapshot/reader.h) without ever
/// running the builder.  A loaded KB serves identically to a frozen one —
/// same CSR, same titles, same index — but its `graph()` is empty (the
/// builder edge lists are not serialized; nothing on the serving path
/// reads them once frozen).

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/csr.h"
#include "graph/graph.h"

namespace wqe::wiki {

using graph::NodeId;
using graph::kInvalidNode;

/// \brief Mutable Wikipedia knowledge base.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// \name Construction
  /// @{

  /// \brief Adds a (main) article. Fails with AlreadyExists when the
  /// normalized title is taken.
  Result<NodeId> AddArticle(std::string_view title);

  /// \brief Adds a category. Category names share the title namespace with
  /// a "category:" prefix, mirroring MediaWiki.
  Result<NodeId> AddCategory(std::string_view name);

  /// \brief Adds a redirect article `alias_title` pointing at `main`.
  /// Redirect articles carry only their redirect edge (they never close
  /// cycles, per the paper's §4 observation).
  Result<NodeId> AddRedirect(std::string_view alias_title, NodeId main);

  /// \brief Adds an article→article hyperlink.
  Status AddLink(NodeId from, NodeId to);

  /// \brief Adds article→category membership.
  Status AddBelongs(NodeId article, NodeId category);

  /// \brief Adds category→parent-category nesting.
  Status AddInside(NodeId category, NodeId parent);

  /// \brief Reconstitutes a frozen KB from snapshot sections (the
  /// `snapshot::Reader` path).  `labels`/`display_titles` are per-node,
  /// parallel to `csr`'s node ids; the counts are the KB-level entity
  /// tallies from the snapshot's meta section.  Rebuilds the title index
  /// (O(V)) and cross-checks the counts against the graph's node-kind
  /// tallies — inconsistencies (duplicate titles, count drift) come back
  /// as a `Status`, since they indicate a corrupt or hand-rolled file.
  static Result<KnowledgeBase> FromSnapshot(
      graph::CsrGraph csr, std::vector<std::string> labels,
      std::vector<std::string> display_titles, size_t num_articles,
      size_t num_redirects, size_t num_categories);
  /// @}

  /// \name Lookup
  ///
  /// Order contract for the list-valued accessors (`RedirectsOf`,
  /// `CategoriesOf`, `LinkedFrom`, `LinkingTo`): the *set* of results is
  /// representation-independent, but the order is not — before `Freeze()`
  /// they follow edge-insertion order, after it the snapshot's sorted
  /// rows (ascending node id).  Serving code always runs frozen, so
  /// anything order-sensitive (e.g. candidate tie-breaks) sees the
  /// deterministic ascending order.
  /// @{

  /// \brief Finds any entry (article, redirect or category) by normalized
  /// title; `std::nullopt` when absent.
  std::optional<NodeId> FindByTitle(std::string_view normalized_title) const;

  /// \brief Finds an article (main or redirect) by normalized title.
  std::optional<NodeId> FindArticle(std::string_view normalized_title) const;

  /// \brief True when `node` is a redirect article.
  bool IsRedirect(NodeId node) const;

  /// \brief Follows the redirect edge if `node` is a redirect; identity
  /// otherwise.
  NodeId ResolveRedirect(NodeId node) const;

  /// \brief All redirect articles pointing at `main` (the paper's synonym
  /// source: "the synonyms of t are the titles of the redirects of a").
  std::vector<NodeId> RedirectsOf(NodeId main) const;

  /// \brief Normalized title of a node.
  const std::string& title(NodeId node) const {
    return loaded_ ? loaded_labels_[node] : graph_.label(node);
  }

  /// \brief Display title (original casing/punctuation).
  const std::string& display_title(NodeId node) const {
    return display_titles_[node];
  }

  /// \brief Categories an article belongs to.
  std::vector<NodeId> CategoriesOf(NodeId article) const;

  /// \brief Articles directly linked *from* `article`.
  std::vector<NodeId> LinkedFrom(NodeId article) const;

  /// \brief Articles directly linking *to* `article`.
  std::vector<NodeId> LinkingTo(NodeId article) const;
  /// @}

  /// \name Graph access
  /// @{

  /// \brief The builder graph.  Empty when the KB was loaded from a
  /// snapshot (`loaded()`) — serving reads go through `csr()` instead.
  const graph::PropertyGraph& graph() const { return graph_; }
  size_t num_articles() const { return num_articles_; }
  size_t num_redirects() const { return num_redirects_; }
  size_t num_categories() const { return num_categories_; }

  /// \brief One-way bridge from builder to serving: compiles the frozen
  /// `CsrGraph` snapshot.  Idempotent; after the first call every `Add*`
  /// mutator fails with InvalidArgument.  Called by `api::Engine::Build`
  /// (and `groundtruth::Pipeline::Build`); call it yourself before using
  /// structural components (expanders, views) on a hand-built KB.
  const graph::CsrGraph& Freeze();

  /// \brief The frozen snapshot; `Freeze()` must have been called.
  /// Safe to read from any number of threads concurrently.
  const graph::CsrGraph& csr() const;

  bool frozen() const { return frozen_; }

  /// \brief True when this KB was reconstituted via `FromSnapshot`
  /// (implies `frozen()`; the builder graph is empty).
  bool loaded() const { return loaded_; }
  /// @}

  /// \brief Undirected BFS ball of radius `radius` around `sources`,
  /// traversing link/belongs/inside edges both ways (never redirects).
  /// `max_nodes` truncates the frontier expansion (0 = unlimited).
  std::vector<NodeId> Neighborhood(const std::vector<NodeId>& sources,
                                   uint32_t radius, size_t max_nodes) const;

  /// \brief Schema integrity check: every non-redirect article belongs to
  /// at least one category; every redirect has exactly one out-edge (its
  /// redirect) and no other edges.
  Status Validate() const;

 private:
  Result<NodeId> AddEntry(graph::NodeKind kind, std::string_view title,
                          std::string_view index_key);

  /// Fails when the KB is frozen (mutators call this first).
  Status CheckMutable() const;

  /// Kind probe that works in every lifecycle state (builder, frozen,
  /// loaded — the builder graph is empty in the last).
  bool IsArticleNode(NodeId node) const {
    return frozen_ ? csr_.IsArticle(node) : graph_.IsArticle(node);
  }

  graph::PropertyGraph graph_;
  graph::CsrGraph csr_;
  bool frozen_ = false;
  bool loaded_ = false;
  /// Per-node normalized labels in loaded mode (the builder keeps them
  /// in `graph_` otherwise).
  std::vector<std::string> loaded_labels_;
  std::vector<std::string> display_titles_;
  std::unordered_map<std::string, NodeId> title_index_;
  size_t num_articles_ = 0;
  size_t num_redirects_ = 0;
  size_t num_categories_ = 0;
};

}  // namespace wqe::wiki
