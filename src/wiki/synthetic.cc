#include "wiki/synthetic.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/macros.h"
#include "wiki/wordlist.h"

namespace wqe::wiki {

namespace {

/// Words per domain vocabulary chunk.
constexpr size_t kWordsPerDomain = 8;

/// Composes an article title; `rank` steers hubs (low ranks) to short,
/// iconic theme-word titles.  Tail articles draw mostly from the domain's
/// *extra* vocabulary (pseudo-words disjoint from every theme word), so
/// that tail titles do not flood documents with hub-title tokens — hub
/// words in free text should mean the hub was actually mentioned.
std::string ComposeTitle(const std::vector<std::string>& theme,
                         const std::vector<std::string>& extra, uint32_t rank,
                         Rng& rng) {
  if (rank < theme.size()) {
    return theme[rank];  // hubs get the bare theme words
  }
  // Tail articles: 2–3 word compounds drawn purely from the extra
  // vocabulary — a theme word appearing in free text must mean the hub
  // itself was mentioned, never a tail title that happens to contain it.
  uint32_t n = 2 + (rng.Bernoulli(0.35) ? 1 : 0);
  std::string title;
  std::string prev;
  for (uint32_t i = 0; i < n; ++i) {
    const std::string& w =
        extra[rng.Uniform(static_cast<uint32_t>(extra.size()))];
    if (w == prev) continue;
    prev = w;
    if (!title.empty()) title += " ";
    title += w;
  }
  if (title.empty()) {
    title = extra[rng.Uniform(static_cast<uint32_t>(extra.size()))];
  }
  return title;
}

std::string ComposeCategoryName(const std::vector<std::string>& words,
                                uint32_t index, Rng& rng) {
  static const char* const kPatterns[] = {"history of", "geography of",
                                          "culture of", "people of",
                                          "types of", "landmarks of"};
  if (index == 0) return words[0];  // domain root category = theme word
  std::string pattern = kPatterns[rng.Uniform(6)];
  return pattern + " " + words[index % words.size()];
}

}  // namespace

Result<SyntheticWikipedia> GenerateSyntheticWikipedia(
    const SyntheticWikipediaOptions& options) {
  if (options.num_domains == 0) {
    return Status::InvalidArgument("num_domains must be positive");
  }
  if (options.min_articles_per_domain < 3 ||
      options.min_articles_per_domain > options.max_articles_per_domain) {
    return Status::InvalidArgument(
        "articles per domain must satisfy 3 <= min <= max");
  }
  if (options.min_categories_per_domain < 1 ||
      options.min_categories_per_domain > options.max_categories_per_domain) {
    return Status::InvalidArgument(
        "categories per domain must satisfy 1 <= min <= max");
  }

  SyntheticWikipedia wiki;
  wiki.options = options;
  Rng rng(options.seed);

  // --- Top-level categories shared across domains. ---
  std::vector<NodeId> roots;
  for (uint32_t r = 0; r < options.num_root_categories; ++r) {
    WQE_ASSIGN_OR_RETURN(
        NodeId c, wiki.kb.AddCategory("main topic " + std::to_string(r + 1)));
    roots.push_back(c);
  }

  wiki.domain_articles.resize(options.num_domains);
  wiki.domain_categories.resize(options.num_domains);

  for (uint32_t d = 0; d < options.num_domains; ++d) {
    Rng domain_rng = rng.Fork(d + 1);
    std::vector<std::string> words =
        VocabularySlice(static_cast<size_t>(d) * kWordsPerDomain,
                        kWordsPerDomain);
    // Extra vocabulary: allocated after every domain's theme chunk so the
    // two pools never overlap.
    std::vector<std::string> extra = VocabularySlice(
        (static_cast<size_t>(options.num_domains) + d) * kWordsPerDomain,
        kWordsPerDomain);

    // --- Categories: a tree rooted at the domain root category. ---
    uint32_t num_cats = static_cast<uint32_t>(domain_rng.UniformRange(
        options.min_categories_per_domain, options.max_categories_per_domain));
    std::vector<NodeId>& cats = wiki.domain_categories[d];
    for (uint32_t c = 0; c < num_cats; ++c) {
      std::string name = ComposeCategoryName(words, c, domain_rng);
      auto added = wiki.kb.AddCategory(name);
      if (!added.ok()) {
        // Name collision across domains (patterns reuse words): qualify it.
        added = wiki.kb.AddCategory(name + " (" + words[0] + ")");
      }
      if (!added.ok()) continue;  // give up on this category slot
      cats.push_back(*added);
    }
    if (cats.empty()) {
      return Status::Internal("domain ", d, " ended up with no categories");
    }
    // Tree edges: category c hangs under a previous category (tree-like,
    // exactly one parent, no cycles in the pure category graph).
    WQE_RETURN_NOT_OK(wiki.kb.AddInside(
        cats[0], roots[domain_rng.Uniform(
                      static_cast<uint32_t>(roots.size()))]));
    for (uint32_t c = 1; c < cats.size(); ++c) {
      uint32_t parent = domain_rng.Uniform(c);  // any earlier category
      WQE_RETURN_NOT_OK(wiki.kb.AddInside(cats[c], cats[parent]));
    }

    // --- Articles. ---
    uint32_t num_articles = static_cast<uint32_t>(domain_rng.UniformRange(
        options.min_articles_per_domain, options.max_articles_per_domain));
    std::vector<NodeId>& articles = wiki.domain_articles[d];
    for (uint32_t a = 0; a < num_articles; ++a) {
      std::string title = ComposeTitle(words, extra, a, domain_rng);
      auto added = wiki.kb.AddArticle(title);
      for (int attempt = 2; !added.ok() && attempt <= 6; ++attempt) {
        added = wiki.kb.AddArticle(title + " " +
                                   std::to_string(1700 + domain_rng.Uniform(300)));
      }
      if (!added.ok()) continue;
      articles.push_back(*added);
    }
    if (articles.size() < 3) {
      return Status::Internal("domain ", d, " has fewer than 3 articles");
    }

    // --- Category memberships: 1 + Binomial(2, p) categories each. ---
    for (NodeId a : articles) {
      uint32_t primary = domain_rng.Zipf(
          static_cast<uint32_t>(cats.size()), 1.1);
      WQE_RETURN_NOT_OK(wiki.kb.AddBelongs(a, cats[primary]));
      for (int extra = 0; extra < 4; ++extra) {
        if (!domain_rng.Bernoulli(options.extra_category_prob)) continue;
        uint32_t c = domain_rng.Uniform(static_cast<uint32_t>(cats.size()));
        if (c != primary) {
          Status st = wiki.kb.AddBelongs(a, cats[c]);
          if (!st.ok() && !st.IsAlreadyExists()) return st;
        }
      }
    }
  }

  // Record domain of every node created so far (articles + categories).
  wiki.domain_of.assign(wiki.kb.graph().num_nodes(), UINT32_MAX);
  for (uint32_t d = 0; d < options.num_domains; ++d) {
    for (NodeId a : wiki.domain_articles[d]) wiki.domain_of[a] = d;
    for (NodeId c : wiki.domain_categories[d]) wiki.domain_of[c] = d;
  }

  // --- Links (second pass so cross-domain targets exist). ---
  Rng link_rng = rng.Fork(0x11111);
  for (uint32_t d = 0; d < options.num_domains; ++d) {
    const auto& articles = wiki.domain_articles[d];

    // Planted hub partnerships.  The first three hubs form a mutual-link
    // *triad* — the kind of tightly reciprocal cluster ("Venice" ↔ "Grand
    // Canal" ↔ "Gondola") whose members are each other's strongest
    // expansion features and whose pairs close length-2 cycles.  Remaining
    // hubs get one mutual partner each.
    uint32_t hubs = std::min<uint32_t>(
        options.hub_count, static_cast<uint32_t>(articles.size()));
    auto add_mutual = [&](NodeId a, NodeId b) -> Status {
      Status fwd = wiki.kb.AddLink(a, b);
      if (!fwd.ok() && !fwd.IsAlreadyExists()) return fwd;
      Status bwd = wiki.kb.AddLink(b, a);
      if (!bwd.ok() && !bwd.IsAlreadyExists()) return bwd;
      return Status::OK();
    };
    if (hubs >= 3) {
      WQE_RETURN_NOT_OK(add_mutual(articles[0], articles[1]));
      WQE_RETURN_NOT_OK(add_mutual(articles[1], articles[2]));
      WQE_RETURN_NOT_OK(add_mutual(articles[0], articles[2]));
    }
    if (hubs >= 2) {
      for (uint32_t h = 3; h < hubs; ++h) {
        for (uint32_t p = 0; p < options.hub_mutual_partners; ++p) {
          uint32_t other = link_rng.Uniform(hubs);
          if (other == h) continue;
          WQE_RETURN_NOT_OK(add_mutual(articles[h], articles[other]));
        }
      }
    }
    for (size_t idx = 0; idx < articles.size(); ++idx) {
      NodeId src = articles[idx];
      // Hubs are long, link-rich articles (dozens of outgoing links on
      // real Wikipedia) — which is precisely why naive per-link expansion
      // drowns in weakly related neighbors.
      uint32_t base_fanout = idx < hubs ? 8 : 2;
      uint32_t fanout = base_fanout + link_rng.Zipf(options.link_zipf_n,
                                                    options.link_zipf_s);
      for (uint32_t l = 0; l < fanout; ++l) {
        // Half the links are popularity-biased (hubs attract most links);
        // the rest land anywhere — article link lists mix prominent
        // subjects with loosely related mentions.
        uint32_t target_rank =
            link_rng.Bernoulli(0.5)
                ? link_rng.Zipf(static_cast<uint32_t>(articles.size()),
                                options.link_target_s)
                : link_rng.Uniform(static_cast<uint32_t>(articles.size()));
        NodeId dst = articles[target_rank];
        if (dst == src) continue;
        Status st = wiki.kb.AddLink(src, dst);
        if (!st.ok() && !st.IsAlreadyExists()) return st;
        if (st.ok() && link_rng.Bernoulli(options.reciprocal_link_prob)) {
          Status back = wiki.kb.AddLink(dst, src);
          if (!back.ok() && !back.IsAlreadyExists()) return back;
        }
      }
      if (link_rng.Bernoulli(options.cross_domain_link_prob) &&
          options.num_domains > 1) {
        uint32_t other;
        do {
          other = link_rng.Uniform(options.num_domains);
        } while (other == d);
        const auto& others = wiki.domain_articles[other];
        NodeId dst = others[link_rng.Zipf(
            static_cast<uint32_t>(others.size()), options.link_target_s)];
        Status st = wiki.kb.AddLink(src, dst);
        if (!st.ok() && !st.IsAlreadyExists()) return st;
      }
      // Rare cross-domain category membership.
      if (link_rng.Bernoulli(options.cross_domain_category_prob) &&
          options.num_domains > 1) {
        uint32_t other;
        do {
          other = link_rng.Uniform(options.num_domains);
        } while (other == d);
        const auto& cats = wiki.domain_categories[other];
        Status st = wiki.kb.AddBelongs(
            src, cats[link_rng.Uniform(static_cast<uint32_t>(cats.size()))]);
        if (!st.ok() && !st.IsAlreadyExists()) return st;
      }
    }
  }

  // --- Redirects (aliases). ---
  Rng redirect_rng = rng.Fork(0x22222);
  for (uint32_t d = 0; d < options.num_domains; ++d) {
    std::vector<std::string> words =
        VocabularySlice(static_cast<size_t>(d) * kWordsPerDomain,
                        kWordsPerDomain);
    for (NodeId a : wiki.domain_articles[d]) {
      if (!redirect_rng.Bernoulli(options.redirect_prob)) continue;
      uint32_t aliases = 1 + (redirect_rng.Bernoulli(0.25) ? 1 : 0);
      for (uint32_t k = 0; k < aliases; ++k) {
        // Alias styles: "old <title>", "<title> the <word>", "<w> <title>".
        const std::string& main_title = wiki.kb.display_title(a);
        std::string alias;
        switch (redirect_rng.Uniform(3)) {
          case 0:
            alias = "old " + main_title;
            break;
          case 1:
            alias = main_title + " the " +
                    words[redirect_rng.Uniform(kWordsPerDomain)];
            break;
          default:
            alias = words[redirect_rng.Uniform(kWordsPerDomain)] + " " +
                    main_title;
            break;
        }
        auto added = wiki.kb.AddRedirect(alias, a);
        if (!added.ok()) continue;  // alias collides with an existing title
      }
    }
  }

  // Resize domain_of for redirect nodes added after the first sizing.
  wiki.domain_of.resize(wiki.kb.graph().num_nodes(), UINT32_MAX);

  WQE_RETURN_NOT_OK(wiki.kb.Validate());
  WQE_LOG(Debug) << "synthetic wikipedia: " << wiki.kb.num_articles()
                 << " articles, " << wiki.kb.num_categories()
                 << " categories, " << wiki.kb.num_redirects()
                 << " redirects, " << wiki.kb.graph().num_edges() << " edges";
  return wiki;
}

}  // namespace wqe::wiki
