#include "wiki/dump.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace wqe::wiki {

namespace {
constexpr int kArticleNamespace = 0;
constexpr int kCategoryNamespace = 14;
constexpr std::string_view kCategoryColon = "category:";

/// Strips an optional "Category:" prefix (case-insensitive) and a
/// "#fragment" suffix, then normalizes.
std::string CleanTarget(std::string_view raw, bool* is_category) {
  std::string_view t = Trim(raw);
  *is_category = false;
  if (t.size() > kCategoryColon.size()) {
    std::string_view head = t.substr(0, kCategoryColon.size());
    if (EqualsIgnoreCase(head, kCategoryColon)) {
      *is_category = true;
      t = t.substr(kCategoryColon.size());
    }
  }
  size_t hash = t.find('#');
  if (hash != std::string_view::npos) t = t.substr(0, hash);
  return NormalizeTitle(t);
}
}  // namespace

std::vector<WikiLink> ExtractWikiLinks(std::string_view wikitext) {
  std::vector<WikiLink> out;
  size_t pos = 0;
  while (pos + 1 < wikitext.size()) {
    size_t open = wikitext.find("[[", pos);
    if (open == std::string_view::npos) break;
    size_t close = wikitext.find("]]", open + 2);
    if (close == std::string_view::npos) break;
    // Nested "[[a [[b]]" — restart from the inner open bracket.
    size_t inner = wikitext.find("[[", open + 2);
    if (inner != std::string_view::npos && inner < close) {
      pos = inner;
      continue;
    }
    std::string_view body = wikitext.substr(open + 2, close - open - 2);
    // Keep only the target part before '|'.
    size_t pipe = body.find('|');
    if (pipe != std::string_view::npos) body = body.substr(0, pipe);
    WikiLink link;
    link.target = CleanTarget(body, &link.is_category);
    if (!link.target.empty()) out.push_back(std::move(link));
    pos = close + 2;
  }
  return out;
}

Result<std::vector<DumpPage>> ParseDumpPages(std::string_view xml_text) {
  xml::PullParser parser(xml_text);
  std::vector<DumpPage> pages;
  bool in_mediawiki = false;

  for (;;) {
    WQE_ASSIGN_OR_RETURN(xml::Event ev, parser.Next());
    if (ev.type == xml::EventType::kEndDocument) break;
    if (ev.type == xml::EventType::kStartElement) {
      if (ev.name == "mediawiki") {
        in_mediawiki = true;
        continue;
      }
      if (!in_mediawiki) {
        return Status::ParseError("root element must be <mediawiki>, got <",
                                  ev.name, ">");
      }
      if (ev.name != "page") {
        WQE_RETURN_NOT_OK(parser.SkipElement());
        continue;
      }
      // Inside <page>.
      DumpPage page;
      for (;;) {
        WQE_ASSIGN_OR_RETURN(xml::Event pev, parser.Next());
        if (pev.type == xml::EventType::kEndElement && pev.name == "page") {
          break;
        }
        if (pev.type == xml::EventType::kEndDocument) {
          return Status::ParseError("dump ended inside <page>");
        }
        if (pev.type != xml::EventType::kStartElement) continue;
        if (pev.name == "title") {
          WQE_ASSIGN_OR_RETURN(page.title, parser.ReadElementText());
        } else if (pev.name == "ns") {
          WQE_ASSIGN_OR_RETURN(std::string ns_text, parser.ReadElementText());
          std::string trimmed(Trim(ns_text));
          if (trimmed.empty()) {
            return Status::ParseError("empty <ns> for page '", page.title,
                                      "'");
          }
          page.ns = std::atoi(trimmed.c_str());
        } else if (pev.name == "redirect") {
          page.redirect_title = std::string(pev.Attr("title"));
          if (!pev.self_closing) {
            WQE_RETURN_NOT_OK(parser.SkipElement());
          } else {
            WQE_ASSIGN_OR_RETURN(xml::Event end_ev, parser.Next());
            (void)end_ev;  // synthesized end element
          }
        } else if (pev.name == "revision") {
          // Find <text> inside the revision.
          for (;;) {
            WQE_ASSIGN_OR_RETURN(xml::Event rev, parser.Next());
            if (rev.type == xml::EventType::kEndElement &&
                rev.name == "revision") {
              break;
            }
            if (rev.type == xml::EventType::kEndDocument) {
              return Status::ParseError("dump ended inside <revision>");
            }
            if (rev.type == xml::EventType::kStartElement) {
              if (rev.name == "text") {
                WQE_ASSIGN_OR_RETURN(page.text, parser.ReadElementText());
              } else {
                WQE_RETURN_NOT_OK(parser.SkipElement());
              }
            }
          }
        } else {
          WQE_RETURN_NOT_OK(parser.SkipElement());
        }
      }
      pages.push_back(std::move(page));
    }
  }
  if (!in_mediawiki) {
    return Status::ParseError("no <mediawiki> root element found");
  }
  return pages;
}

Result<KnowledgeBase> ParseDump(std::string_view xml_text,
                                DumpImportStats* stats_out) {
  WQE_ASSIGN_OR_RETURN(std::vector<DumpPage> pages, ParseDumpPages(xml_text));

  DumpImportStats stats;
  stats.pages = pages.size();
  KnowledgeBase kb;

  // Pass 1a: create article and category nodes (redirects need their
  // targets to exist, so they go in pass 1b).
  for (const DumpPage& page : pages) {
    if (page.ns == kArticleNamespace) {
      if (!page.redirect_title.empty()) continue;  // pass 1b
      auto added = kb.AddArticle(page.title);
      if (added.ok()) {
        ++stats.articles;
      } else if (!added.status().IsAlreadyExists()) {
        return added.status().WithContext("adding article '" + page.title +
                                          "'");
      }
    } else if (page.ns == kCategoryNamespace) {
      // Dump category titles carry the "Category:" prefix; strip it.
      bool is_cat = false;
      std::string name = CleanTarget(page.title, &is_cat);
      auto added = kb.AddCategory(name);
      if (added.ok()) {
        ++stats.categories;
      } else if (!added.status().IsAlreadyExists()) {
        return added.status().WithContext("adding category '" + page.title +
                                          "'");
      }
    } else {
      ++stats.skipped_pages;
    }
  }

  // Pass 1b: redirects.
  for (const DumpPage& page : pages) {
    if (page.ns != kArticleNamespace || page.redirect_title.empty()) continue;
    std::string target = NormalizeTitle(page.redirect_title);
    auto main = kb.FindArticle(target);
    if (!main.has_value()) {
      ++stats.dangling_links;
      continue;
    }
    auto added = kb.AddRedirect(page.title, *main);
    if (added.ok()) {
      ++stats.redirects;
    }  // duplicate alias or redirect-to-redirect: drop silently
  }

  // Pass 2: edges from wikitext.
  for (const DumpPage& page : pages) {
    if (!page.redirect_title.empty()) continue;
    bool page_is_category = page.ns == kCategoryNamespace;
    if (page.ns != kArticleNamespace && !page_is_category) continue;

    bool dummy = false;
    std::string src_title = page_is_category
                                ? CleanTarget(page.title, &dummy)
                                : NormalizeTitle(page.title);
    std::optional<NodeId> src =
        page_is_category ? kb.FindByTitle("category:" + src_title)
                         : kb.FindArticle(src_title);
    if (!src.has_value()) continue;

    for (const WikiLink& link : ExtractWikiLinks(page.text)) {
      if (link.is_category) {
        auto cat = kb.FindByTitle(std::string(kCategoryColon) + link.target);
        if (!cat.has_value()) {
          ++stats.dangling_links;
          continue;
        }
        Status st = page_is_category ? kb.AddInside(*src, *cat)
                                     : kb.AddBelongs(*src, *cat);
        if (st.ok()) {
          page_is_category ? ++stats.inside : ++stats.belongs;
        } else if (!st.IsAlreadyExists() && !st.IsInvalidArgument()) {
          return st;
        }
      } else if (!page_is_category) {
        auto dst = kb.FindArticle(link.target);
        if (!dst.has_value()) {
          ++stats.dangling_links;
          continue;
        }
        NodeId resolved = kb.ResolveRedirect(*dst);
        if (resolved == *src) continue;  // self-link via redirect
        Status st = kb.AddLink(*src, resolved);
        if (st.ok()) {
          ++stats.links;
        } else if (!st.IsAlreadyExists()) {
          return st;
        }
      }
    }
  }

  if (stats_out != nullptr) *stats_out = stats;
  WQE_LOG(Debug) << "dump import: " << stats.articles << " articles, "
                 << stats.categories << " categories, " << stats.redirects
                 << " redirects, " << stats.links << " links";
  return kb;
}

std::string WriteDump(const KnowledgeBase& kb) {
  xml::XmlWriter w(2);
  w.WriteDeclaration();
  w.StartElement("mediawiki");
  w.WriteAttribute("version", "0.10");

  const graph::PropertyGraph& g = kb.graph();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    bool is_category = g.IsCategory(n);
    bool is_redirect = kb.IsRedirect(n);

    w.StartElement("page");
    w.WriteElement("title", is_category
                                ? "Category:" + kb.display_title(n)
                                : kb.display_title(n));
    w.WriteElement("ns", is_category ? "14" : "0");
    w.WriteElement("id", std::to_string(n + 1));
    if (is_redirect) {
      NodeId main = kb.ResolveRedirect(n);
      w.StartElement("redirect");
      w.WriteAttribute("title", kb.display_title(main));
      w.EndElement();
    }
    // Synthesize wikitext from out-edges.
    std::string text;
    if (is_redirect) {
      text = "#REDIRECT [[" +
             kb.display_title(kb.ResolveRedirect(n)) + "]]";
    } else {
      for (const graph::Edge& e : g.OutEdges(n)) {
        switch (e.kind) {
          case graph::EdgeKind::kLink:
            text += "[[" + kb.display_title(e.dst) + "]] ";
            break;
          case graph::EdgeKind::kBelongs:
          case graph::EdgeKind::kInside:
            text += "[[Category:" + kb.display_title(e.dst) + "]] ";
            break;
          case graph::EdgeKind::kRedirect:
            break;
        }
      }
    }
    w.StartElement("revision");
    w.WriteElement("text", text);
    w.EndElement();
    w.EndElement();  // page
  }
  w.EndElement();  // mediawiki
  return w.TakeString();
}

}  // namespace wqe::wiki
