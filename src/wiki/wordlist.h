#pragma once

/// \file wordlist.h
/// \brief Deterministic vocabulary for the synthetic Wikipedia.
///
/// The generator composes article titles, category names and document text
/// from this vocabulary.  A fixed base list of English nouns/adjectives
/// keeps examples readable; when a configuration needs more words than the
/// base list provides, deterministic syllabic pseudo-words extend it
/// indefinitely (word i is always the same string).

#include <cstdint>
#include <string>
#include <vector>

namespace wqe::wiki {

/// \brief Number of words in the curated base list.
size_t BaseWordCount();

/// \brief The i-th vocabulary word: base list first, then deterministic
/// pseudo-words ("soridan", "velkamo", ...) for i >= BaseWordCount().
std::string VocabularyWord(size_t i);

/// \brief Convenience: words [begin, begin+count).
std::vector<std::string> VocabularySlice(size_t begin, size_t count);

}  // namespace wqe::wiki
