#include "wiki/knowledge_base.h"

#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace wqe::wiki {

namespace {
constexpr std::string_view kCategoryPrefix = "category:";
}  // namespace

Status KnowledgeBase::CheckMutable() const {
  if (frozen_) {
    return Status::InvalidArgument(
        "knowledge base is frozen (Freeze() is one-way); finish building "
        "before freezing");
  }
  return Status::OK();
}

const graph::CsrGraph& KnowledgeBase::Freeze() {
  if (!frozen_) {
    csr_ = graph::CsrGraph::Freeze(graph_);
    frozen_ = true;
  }
  return csr_;
}

const graph::CsrGraph& KnowledgeBase::csr() const {
  WQE_CHECK(frozen_);  // Freeze() is the builder→serving bridge
  return csr_;
}

Result<KnowledgeBase> KnowledgeBase::FromSnapshot(
    graph::CsrGraph csr, std::vector<std::string> labels,
    std::vector<std::string> display_titles, size_t num_articles,
    size_t num_redirects, size_t num_categories) {
  const size_t n = csr.num_nodes();
  if (labels.size() != n || display_titles.size() != n) {
    return Status::InvalidArgument(
        "snapshot carries ", labels.size(), " labels and ",
        display_titles.size(), " display titles for ", n, " nodes");
  }
  const graph::CsrSections sections = csr.Sections();
  if (num_articles + num_redirects != sections.node_kind_counts[0] ||
      num_categories != sections.node_kind_counts[1]) {
    return Status::InvalidArgument(
        "snapshot entity counts (", num_articles, " articles + ",
        num_redirects, " redirects, ", num_categories,
        " categories) disagree with the graph's node kinds (",
        sections.node_kind_counts[0], " articles, ",
        sections.node_kind_counts[1], " categories)");
  }
  KnowledgeBase kb;
  kb.csr_ = std::move(csr);
  kb.frozen_ = true;
  kb.loaded_ = true;
  kb.num_articles_ = num_articles;
  kb.num_redirects_ = num_redirects;
  kb.num_categories_ = num_categories;
  kb.display_titles_ = std::move(display_titles);
  kb.loaded_labels_ = std::move(labels);
  // Rebuild the title index exactly as the builder populated it: the raw
  // label for articles, "category:"-prefixed for categories.
  kb.title_index_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    std::string key =
        kb.csr_.IsCategory(u)
            ? std::string(kCategoryPrefix) + kb.loaded_labels_[u]
            : kb.loaded_labels_[u];
    auto [it, inserted] = kb.title_index_.emplace(std::move(key), u);
    if (!inserted) {
      return Status::InvalidArgument("snapshot title '", it->first,
                                     "' appears on nodes ", it->second,
                                     " and ", u);
    }
  }
  return kb;
}

Result<NodeId> KnowledgeBase::AddEntry(graph::NodeKind kind,
                                       std::string_view title,
                                       std::string_view index_key) {
  WQE_RETURN_NOT_OK(CheckMutable());
  std::string key(index_key);
  if (key.empty() ||
      (kind == graph::NodeKind::kCategory &&
       key.size() == kCategoryPrefix.size())) {
    return Status::InvalidArgument("empty title");
  }
  auto it = title_index_.find(key);
  if (it != title_index_.end()) {
    return Status::AlreadyExists("title '", key, "' already exists as node ",
                                 it->second);
  }
  NodeId id = graph_.AddNode(kind, std::string(
                                        kind == graph::NodeKind::kCategory
                                            ? index_key.substr(
                                                  kCategoryPrefix.size())
                                            : index_key));
  display_titles_.emplace_back(title);
  title_index_.emplace(std::move(key), id);
  return id;
}

Result<NodeId> KnowledgeBase::AddArticle(std::string_view title) {
  std::string norm = NormalizeTitle(title);
  WQE_ASSIGN_OR_RETURN(NodeId id,
                       AddEntry(graph::NodeKind::kArticle, title, norm));
  ++num_articles_;
  return id;
}

Result<NodeId> KnowledgeBase::AddCategory(std::string_view name) {
  std::string norm = std::string(kCategoryPrefix) + NormalizeTitle(name);
  WQE_ASSIGN_OR_RETURN(NodeId id,
                       AddEntry(graph::NodeKind::kCategory, name, norm));
  ++num_categories_;
  return id;
}

Result<NodeId> KnowledgeBase::AddRedirect(std::string_view alias_title,
                                          NodeId main) {
  WQE_RETURN_NOT_OK(CheckMutable());
  WQE_RETURN_NOT_OK(graph_.CheckNode(main));
  if (!graph_.IsArticle(main)) {
    return Status::InvalidArgument("redirect target must be an article");
  }
  if (IsRedirect(main)) {
    return Status::InvalidArgument(
        "redirect target '", title(main),
        "' is itself a redirect; chains are not allowed");
  }
  std::string norm = NormalizeTitle(alias_title);
  WQE_ASSIGN_OR_RETURN(NodeId id,
                       AddEntry(graph::NodeKind::kArticle, alias_title, norm));
  WQE_RETURN_NOT_OK(graph_.AddEdge(id, main, graph::EdgeKind::kRedirect));
  ++num_redirects_;
  return id;
}

Status KnowledgeBase::AddLink(NodeId from, NodeId to) {
  WQE_RETURN_NOT_OK(CheckMutable());
  if (IsRedirect(from) || IsRedirect(to)) {
    return Status::InvalidArgument(
        "links must connect main articles, not redirects");
  }
  return graph_.AddEdge(from, to, graph::EdgeKind::kLink);
}

Status KnowledgeBase::AddBelongs(NodeId article, NodeId category) {
  WQE_RETURN_NOT_OK(CheckMutable());
  if (IsRedirect(article)) {
    return Status::InvalidArgument("redirects do not belong to categories");
  }
  return graph_.AddEdge(article, category, graph::EdgeKind::kBelongs);
}

Status KnowledgeBase::AddInside(NodeId category, NodeId parent) {
  WQE_RETURN_NOT_OK(CheckMutable());
  return graph_.AddEdge(category, parent, graph::EdgeKind::kInside);
}

std::optional<NodeId> KnowledgeBase::FindByTitle(
    std::string_view normalized_title) const {
  auto it = title_index_.find(std::string(normalized_title));
  if (it != title_index_.end()) return it->second;
  it = title_index_.find(std::string(kCategoryPrefix) +
                         std::string(normalized_title));
  if (it != title_index_.end()) return it->second;
  return std::nullopt;
}

std::optional<NodeId> KnowledgeBase::FindArticle(
    std::string_view normalized_title) const {
  auto it = title_index_.find(std::string(normalized_title));
  if (it == title_index_.end()) return std::nullopt;
  if (!IsArticleNode(it->second)) return std::nullopt;
  return it->second;
}

bool KnowledgeBase::IsRedirect(NodeId node) const {
  if (frozen_) {
    return csr_.IsArticle(node) &&
           csr_.RedirectTarget(node) != graph::kInvalidNode;
  }
  if (!graph_.IsArticle(node)) return false;
  for (const graph::Edge& e : graph_.OutEdges(node)) {
    if (e.kind == graph::EdgeKind::kRedirect) return true;
  }
  return false;
}

NodeId KnowledgeBase::ResolveRedirect(NodeId node) const {
  if (frozen_) {
    NodeId target = csr_.RedirectTarget(node);
    return target == graph::kInvalidNode ? node : target;
  }
  for (const graph::Edge& e : graph_.OutEdges(node)) {
    if (e.kind == graph::EdgeKind::kRedirect) return e.dst;
  }
  return node;
}

std::vector<NodeId> KnowledgeBase::RedirectsOf(NodeId main) const {
  std::vector<NodeId> out;
  if (frozen_) {
    std::span<const NodeId> sources = csr_.InSources(main);
    std::span<const graph::EdgeKind> kinds = csr_.InKinds(main);
    for (size_t i = 0; i < sources.size(); ++i) {
      if (kinds[i] == graph::EdgeKind::kRedirect) out.push_back(sources[i]);
    }
    return out;
  }
  for (const graph::Edge& e : graph_.InEdges(main)) {
    if (e.kind == graph::EdgeKind::kRedirect) out.push_back(e.dst);
  }
  return out;
}

std::vector<NodeId> KnowledgeBase::CategoriesOf(NodeId article) const {
  std::vector<NodeId> out;
  if (frozen_) {
    std::span<const NodeId> targets = csr_.OutTargets(article);
    std::span<const graph::EdgeKind> kinds = csr_.OutKinds(article);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (kinds[i] == graph::EdgeKind::kBelongs) out.push_back(targets[i]);
    }
    return out;
  }
  for (const graph::Edge& e : graph_.OutEdges(article)) {
    if (e.kind == graph::EdgeKind::kBelongs) out.push_back(e.dst);
  }
  return out;
}

std::vector<NodeId> KnowledgeBase::LinkedFrom(NodeId article) const {
  std::vector<NodeId> out;
  if (frozen_) {
    std::span<const NodeId> targets = csr_.OutTargets(article);
    std::span<const graph::EdgeKind> kinds = csr_.OutKinds(article);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (kinds[i] == graph::EdgeKind::kLink) out.push_back(targets[i]);
    }
    return out;
  }
  for (const graph::Edge& e : graph_.OutEdges(article)) {
    if (e.kind == graph::EdgeKind::kLink) out.push_back(e.dst);
  }
  return out;
}

std::vector<NodeId> KnowledgeBase::LinkingTo(NodeId article) const {
  std::vector<NodeId> out;
  if (frozen_) {
    std::span<const NodeId> sources = csr_.InSources(article);
    std::span<const graph::EdgeKind> kinds = csr_.InKinds(article);
    for (size_t i = 0; i < sources.size(); ++i) {
      if (kinds[i] == graph::EdgeKind::kLink) out.push_back(sources[i]);
    }
    return out;
  }
  for (const graph::Edge& e : graph_.InEdges(article)) {
    if (e.kind == graph::EdgeKind::kLink) out.push_back(e.dst);
  }
  return out;
}

namespace {

/// BFS ball shared by the frozen/unfrozen Neighborhood paths; memory is
/// proportional to the ball, never to the whole graph (this runs on the
/// serving cache-miss hot path).  `for_each_neighbor(u, visit)` must call
/// `visit(v)` for every non-redirect neighbor of `u`, both directions.
template <typename ForEachNeighbor>
std::vector<NodeId> BfsBall(const std::vector<NodeId>& sources,
                            uint32_t radius, size_t max_nodes,
                            size_t num_nodes,
                            ForEachNeighbor&& for_each_neighbor) {
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> out;  // doubles as the BFS queue (visit order)
  std::vector<uint32_t> depth;
  for (NodeId s : sources) {
    if (s < num_nodes && seen.insert(s).second) {
      out.push_back(s);
      depth.push_back(0);
    }
  }
  for (size_t head = 0; head < out.size(); ++head) {
    NodeId u = out[head];
    uint32_t d = depth[head];
    if (d >= radius) continue;
    if (max_nodes != 0 && out.size() >= max_nodes) break;
    for_each_neighbor(u, [&](NodeId next) {
      if (max_nodes != 0 && out.size() >= max_nodes) return;
      if (seen.insert(next).second) {
        out.push_back(next);
        depth.push_back(d + 1);
      }
    });
  }
  return out;
}

}  // namespace

std::vector<NodeId> KnowledgeBase::Neighborhood(
    const std::vector<NodeId>& sources, uint32_t radius,
    size_t max_nodes) const {
  if (frozen_) {
    // Frozen fast path: flat CSR row scans.
    return BfsBall(
        sources, radius, max_nodes, csr_.num_nodes(),
        [&](NodeId u, auto&& visit) {
          std::span<const NodeId> targets = csr_.OutTargets(u);
          std::span<const graph::EdgeKind> out_kinds = csr_.OutKinds(u);
          for (size_t i = 0; i < targets.size(); ++i) {
            if (out_kinds[i] != graph::EdgeKind::kRedirect) visit(targets[i]);
          }
          std::span<const NodeId> in = csr_.InSources(u);
          std::span<const graph::EdgeKind> in_kinds = csr_.InKinds(u);
          for (size_t i = 0; i < in.size(); ++i) {
            if (in_kinds[i] != graph::EdgeKind::kRedirect) visit(in[i]);
          }
        });
  }
  return BfsBall(sources, radius, max_nodes, graph_.num_nodes(),
                 [&](NodeId u, auto&& visit) {
                   for (const graph::Edge& e : graph_.OutEdges(u)) {
                     if (e.kind != graph::EdgeKind::kRedirect) visit(e.dst);
                   }
                   for (const graph::Edge& e : graph_.InEdges(u)) {
                     if (e.kind != graph::EdgeKind::kRedirect) visit(e.dst);
                   }
                 });
}

Status KnowledgeBase::Validate() const {
  if (frozen_) {
    // CSR path: the only one available in loaded mode, and equivalent to
    // the builder path once frozen (Freeze preserves all edges).
    for (NodeId n = 0; n < csr_.num_nodes(); ++n) {
      if (!csr_.IsArticle(n)) continue;
      if (csr_.RedirectTarget(n) != graph::kInvalidNode) {
        if (csr_.OutDegree(n) != 1) {
          return Status::Internal("redirect '", title(n),
                                  "' has extra out-edges");
        }
        continue;
      }
      bool has_category = false;
      for (graph::EdgeKind kind : csr_.OutKinds(n)) {
        if (kind == graph::EdgeKind::kBelongs) {
          has_category = true;
          break;
        }
      }
      if (!has_category) {
        return Status::Internal("article '", title(n),
                                "' belongs to no category");
      }
    }
    return Status::OK();
  }
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    if (!graph_.IsArticle(n)) continue;
    if (IsRedirect(n)) {
      if (graph_.OutDegree(n) != 1) {
        return Status::Internal("redirect '", title(n),
                                "' has extra out-edges");
      }
      continue;
    }
    bool has_category = false;
    for (const graph::Edge& e : graph_.OutEdges(n)) {
      if (e.kind == graph::EdgeKind::kBelongs) {
        has_category = true;
        break;
      }
    }
    if (!has_category) {
      return Status::Internal("article '", title(n),
                              "' belongs to no category");
    }
  }
  return Status::OK();
}

}  // namespace wqe::wiki
