#include "wiki/wordlist.h"

namespace wqe::wiki {

namespace {

// Loosely themed so consecutive 8-word chunks (one chunk per synthetic
// domain) read like a coherent topic.
const char* const kBaseWords[] = {
    // waterways / venice-like
    "venice", "canal", "gondola", "lagoon", "regatta", "bridge", "palace",
    "pier",
    // mountains
    "mountain", "summit", "glacier", "ridge", "avalanche", "alpine", "peak",
    "valley",
    // desert
    "desert", "dune", "oasis", "caravan", "nomad", "mirage", "sandstone",
    "scorpion",
    // ocean
    "ocean", "reef", "coral", "tide", "harbor", "lighthouse", "sailor",
    "shipwreck",
    // forest
    "forest", "timber", "canopy", "fern", "moss", "lumber", "grove", "thicket",
    // painting
    "painting", "fresco", "canvas", "pigment", "portrait", "easel", "mural",
    "gallery",
    // music
    "music", "symphony", "violin", "opera", "concerto", "chorus", "sonata",
    "orchestra",
    // architecture
    "architecture", "cathedral", "arch", "column", "facade", "vault", "spire",
    "basilica",
    // astronomy
    "astronomy", "telescope", "nebula", "comet", "eclipse", "orbit", "quasar",
    "galaxy",
    // chemistry
    "chemistry", "molecule", "crystal", "reagent", "solvent", "catalyst",
    "isotope", "polymer",
    // railways
    "railway", "locomotive", "station", "viaduct", "signal", "carriage",
    "tunnel", "platform",
    // aviation
    "aviation", "glider", "propeller", "runway", "cockpit", "altimeter",
    "biplane", "hangar",
    // cuisine
    "cuisine", "saffron", "pastry", "vineyard", "olive", "truffle", "spice",
    "orchard",
    // textiles
    "textile", "loom", "silk", "tapestry", "dye", "weave", "linen", "garment",
    // medicine
    "medicine", "surgeon", "anatomy", "vaccine", "clinic", "remedy", "plague",
    "quarantine",
    // law
    "law", "tribunal", "statute", "verdict", "charter", "decree", "jury",
    "magistrate",
    // printing
    "printing", "typeface", "folio", "manuscript", "parchment", "engraving",
    "lithograph", "binding",
    // photography
    "photography", "daguerreotype", "shutter", "negative", "darkroom",
    "tripod", "lens", "exposure",
    // cartography
    "cartography", "atlas", "meridian", "compass", "longitude", "surveyor",
    "globe", "projection",
    // archaeology
    "archaeology", "excavation", "artifact", "pottery", "tomb", "relic",
    "obelisk", "hieroglyph",
    // botany
    "botany", "orchid", "pollen", "seedling", "herbarium", "stamen", "lichen",
    "arboretum",
    // zoology
    "zoology", "falcon", "otter", "heron", "badger", "lynx", "marmot",
    "kingfisher",
    // fishing
    "fishing", "trawler", "herring", "net", "wharf", "angler", "bait",
    "salmon",
    // mining
    "mining", "quarry", "ore", "shaft", "prospector", "smelter", "vein",
    "colliery",
    // astronomy2 / navigation
    "navigation", "sextant", "astrolabe", "chronometer", "voyage", "helm",
    "mast", "rudder",
    // theatre
    "theatre", "tragedy", "playwright", "stagecraft", "costume", "rehearsal",
    "curtain", "matinee",
    // sculpture
    "sculpture", "marble", "bronze", "chisel", "pedestal", "statue", "relief",
    "foundry",
    // monastery
    "monastery", "abbey", "cloister", "monk", "scriptorium", "pilgrim",
    "chapel", "hermitage",
    // festivals
    "festival", "carnival", "parade", "lantern", "masquerade", "bonfire",
    "pageant", "jubilee",
    // clockmaking
    "clockmaking", "pendulum", "escapement", "mainspring", "horology",
    "sundial", "gearwheel", "winder",
    // glasswork
    "glasswork", "furnace", "blower", "stained", "prism", "goblet", "kiln",
    "enamel",
    // agriculture
    "agriculture", "harvest", "plough", "granary", "meadow", "irrigation",
    "fallow", "scythe",
    // winemaking
    "winemaking", "cellar", "barrel", "vintage", "cork", "press", "tannin",
    "decanter",
    // beekeeping
    "beekeeping", "apiary", "hive", "honeycomb", "swarm", "nectar", "drone",
    "propolis",
    // falconry
    "falconry", "gauntlet", "jess", "mews", "perch", "tiercel", "lure",
    "austringer",
    // libraries
    "library", "archive", "catalogue", "codex", "lectern", "index", "vellum",
    "repository",
    // bridges (civil engineering)
    "engineering", "truss", "girder", "abutment", "cantilever", "caisson",
    "span", "pylon",
    // weather
    "weather", "barometer", "monsoon", "cyclone", "frost", "drizzle",
    "thunder", "humidity",
    // volcanoes
    "volcano", "caldera", "magma", "basalt", "eruption", "fumarole", "lava",
    "pumice",
    // rivers
    "river", "delta", "estuary", "rapids", "floodplain", "tributary", "weir",
    "confluence",
};

constexpr size_t kNumBaseWords = sizeof(kBaseWords) / sizeof(kBaseWords[0]);

// Syllables for pseudo-words beyond the base list.
const char* const kOnsets[] = {"b", "d", "f", "g", "k", "l", "m",
                               "n", "p", "r", "s", "t", "v", "z"};
const char* const kNuclei[] = {"a", "e", "i", "o", "u", "ai", "or"};
const char* const kCodas[] = {"", "n", "l", "r", "s", "k"};

}  // namespace

size_t BaseWordCount() { return kNumBaseWords; }

std::string VocabularyWord(size_t i) {
  if (i < kNumBaseWords) return kBaseWords[i];
  // Deterministic 3-syllable pseudo-word derived from the index.
  size_t x = i - kNumBaseWords;
  std::string w;
  for (int syll = 0; syll < 3; ++syll) {
    w += kOnsets[x % 14];
    x /= 14;
    w += kNuclei[x % 7];
    x /= 7;
    if (syll == 2) {
      w += kCodas[x % 6];
      x /= 6;
    }
  }
  if (x > 0) w += std::to_string(x);
  return w;
}

std::vector<std::string> VocabularySlice(size_t begin, size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(VocabularyWord(begin + i));
  return out;
}

}  // namespace wqe::wiki
