#pragma once

/// \file dump.h
/// \brief MediaWiki XML dump import/export.
///
/// The paper works on a real English Wikipedia dump; this module provides
/// that ingestion path.  `ParseDump` reads the standard
/// `<mediawiki><page>…` export format (title, namespace, optional
/// `<redirect>`, revision wikitext), extracts `[[links]]` and
/// `[[Category:…]]` memberships from the wikitext, and materializes a
/// `KnowledgeBase`.  `WriteDump` serializes a knowledge base back to the
/// same format, which round-trips through the parser (tested) and lets the
/// synthetic KB be stored and exchanged like a genuine dump.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wiki/knowledge_base.h"

namespace wqe::wiki {

/// \brief One `<page>` element of a dump.
struct DumpPage {
  std::string title;
  int ns = 0;                  ///< 0 = article, 14 = category
  std::string redirect_title;  ///< non-empty for redirect pages
  std::string text;            ///< revision wikitext
};

/// \brief One wikitext link occurrence.
struct WikiLink {
  std::string target;   ///< normalized target title (no fragment)
  bool is_category = false;  ///< [[Category:…]] membership
};

/// \brief Extracts `[[target|anchor]]` links from wikitext.  Fragments
/// (`#section`) are stripped; nested/unbalanced brackets are skipped
/// gracefully.
std::vector<WikiLink> ExtractWikiLinks(std::string_view wikitext);

/// \brief Parses dump XML into page records (no graph work).
Result<std::vector<DumpPage>> ParseDumpPages(std::string_view xml);

/// \brief Statistics of a dump import.
struct DumpImportStats {
  size_t pages = 0;
  size_t articles = 0;
  size_t categories = 0;
  size_t redirects = 0;
  size_t links = 0;
  size_t belongs = 0;
  size_t inside = 0;
  size_t dangling_links = 0;   ///< links to titles not in the dump
  size_t skipped_pages = 0;    ///< unsupported namespaces
};

/// \brief Parses a dump and builds the knowledge base.
///
/// Two passes: pages become nodes first (so forward references resolve),
/// then wikitext links become edges. Links to missing titles are counted
/// in `stats.dangling_links` and dropped, as are duplicate edges.
Result<KnowledgeBase> ParseDump(std::string_view xml,
                                DumpImportStats* stats = nullptr);

/// \brief Serializes `kb` as MediaWiki dump XML.  Article wikitext is
/// synthesized from the out-edges (`[[link]]`, `[[Category:…]]`,
/// `#REDIRECT [[…]]`), so ParseDump(WriteDump(kb)) reconstructs the graph.
std::string WriteDump(const KnowledgeBase& kb);

}  // namespace wqe::wiki
