#pragma once

/// \file eval.h
/// \brief Retrieval evaluation metrics.
///
/// Centerpiece is the paper's Equation 1:
///
///   O(A, D) = (1/|R|) · Σ_{r∈R} P(A, r, D),   R = {1, 5, 10, 15}
///
/// where P(A, r, D) = |T(A,r) ∩ D| / r is top-r precision of the results
/// obtained by querying with the titles of A against expected set D.
/// MAP and nDCG are provided for the extended benchmarks.

#include <unordered_set>
#include <vector>

#include "ir/document_store.h"
#include "ir/scorer.h"

namespace wqe::ir {

/// \brief The paper's rank cutoffs R = {1, 5, 10, 15}.
const std::vector<size_t>& PaperRankCutoffs();

/// \brief Relevance judgments: the set D of correct documents for a query.
using RelevantSet = std::unordered_set<DocId>;

/// \brief P(A, r, D): precision of the top-r ranked results.
/// When fewer than `r` results were retrieved, the missing slots count as
/// non-relevant (denominator stays r, per the paper's definition).
double PrecisionAtR(const std::vector<ScoredDoc>& results,
                    const RelevantSet& relevant, size_t r);

/// \brief O(A, D): mean of P over the paper's cutoffs (Equation 1).
double AverageTopRPrecision(const std::vector<ScoredDoc>& results,
                            const RelevantSet& relevant);

/// \brief O over custom cutoffs.
double AverageTopRPrecision(const std::vector<ScoredDoc>& results,
                            const RelevantSet& relevant,
                            const std::vector<size_t>& cutoffs);

/// \brief Recall at rank r.
double RecallAtR(const std::vector<ScoredDoc>& results,
                 const RelevantSet& relevant, size_t r);

/// \brief Average precision (area under the P-R curve, standard MAP
/// component). 0 when `relevant` is empty.
double AveragePrecision(const std::vector<ScoredDoc>& results,
                        const RelevantSet& relevant);

/// \brief Binary nDCG at rank r (log2 discounting).
double NdcgAtR(const std::vector<ScoredDoc>& results,
               const RelevantSet& relevant, size_t r);

}  // namespace wqe::ir
