#include "ir/search_engine.h"

#include "common/macros.h"

namespace wqe::ir {

SearchEngine::SearchEngine(SearchEngineOptions options)
    : options_(options), analyzer_(options.analyzer) {}

Result<DocId> SearchEngine::AddDocument(std::string_view name,
                                        std::string_view text) {
  if (finalized_) {
    return Status::InvalidArgument(
        "cannot add documents after Finalize()");
  }
  return store_.Add(name, text);
}

Status SearchEngine::Finalize() {
  if (finalized_) return Status::InvalidArgument("already finalized");
  if (store_.empty()) {
    return Status::InvalidArgument("no documents to index");
  }
  index_ = std::make_unique<InvertedIndex>(&analyzer_);
  WQE_RETURN_NOT_OK(index_->AddAll(store_));
  evaluator_ = std::make_unique<QueryEvaluator>(index_.get(), options_.scorer);
  finalized_ = true;
  return Status::OK();
}

Result<std::vector<ScoredDoc>> SearchEngine::Search(const QueryNode& query,
                                                    size_t k) const {
  if (!finalized_) {
    return Status::InvalidArgument("engine not finalized");
  }
  return evaluator_->Evaluate(query, k);
}

Result<std::vector<ScoredDoc>> SearchEngine::SearchText(
    std::string_view query, size_t k) const {
  WQE_ASSIGN_OR_RETURN(QueryNode node, ParseQuery(query));
  return Search(node, k);
}

Result<std::vector<ScoredDoc>> SearchEngine::SearchTitles(
    const std::vector<std::string>& titles, size_t k) const {
  QueryNode node = QueryNode::CombinePhrases(titles);
  if (node.children.empty()) {
    return Status::InvalidArgument("no non-empty titles to search");
  }
  return Search(node, k);
}

}  // namespace wqe::ir
