#pragma once

/// \file scorer.h
/// \brief Query-likelihood scoring with Dirichlet smoothing.
///
/// INDRI's retrieval model: a document's belief for a term is
///
///   P(t|d) = (tf(t,d) + μ·P(t|C)) / (|d| + μ)
///
/// and `#combine` averages the children's log-beliefs.  Exact phrases
/// (`#1`) are scored the same way with phrase occurrence counts and a
/// collection phrase frequency computed on the fly (cached per query).

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ir/inverted_index.h"
#include "ir/query.h"

namespace wqe::ir {

/// \brief One ranked result.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  bool operator==(const ScoredDoc& other) const = default;
};

/// \brief Scoring parameters.
struct ScorerOptions {
  /// Dirichlet μ. The classic default is 2500; the ImageCLEF-style
  /// metadata documents are short (tens of tokens), so the engine default
  /// is smaller.
  double mu = 300.0;
};

/// \brief Evaluates query ASTs against an index.
class QueryEvaluator {
 public:
  QueryEvaluator(const InvertedIndex* index, ScorerOptions options = {})
      : index_(index), options_(options) {}

  /// \brief Scores and ranks the top `k` documents for `query`.
  ///
  /// Only documents matching at least one leaf are ranked (unmatched
  /// documents would all tie on pure background probability).
  ///
  /// Determinism contract: equal scores tie-break by ascending DocId, so
  /// the ranking is a pure function of (index, query, k) regardless of
  /// internal iteration order.  The serving layer
  /// (`serve::Server`) relies on this to guarantee parallel execution
  /// returns bit-identical rankings to sequential execution — do not
  /// weaken it (regression-tested in ir_test.cc).
  Result<std::vector<ScoredDoc>> Evaluate(const QueryNode& query,
                                          size_t k) const;

 private:
  /// Analyzed leaf: either one term or a phrase, plus its per-document
  /// match counts and collection statistics.
  struct Leaf {
    std::vector<std::string> terms;             ///< analyzed
    std::unordered_map<DocId, uint32_t> tf;     ///< per-doc occurrences
    double collection_prob = 0.0;               ///< P(leaf|C), smoothed
  };

  Status CollectLeaves(const QueryNode& node, std::vector<Leaf>* leaves) const;
  double LeafLogBelief(const Leaf& leaf, DocId doc) const;

  const InvertedIndex* index_;
  ScorerOptions options_;
};

}  // namespace wqe::ir
