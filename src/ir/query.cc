#include "ir/query.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace wqe::ir {

QueryNode QueryNode::Term(std::string_view term) {
  QueryNode n;
  n.kind = Kind::kTerm;
  n.term = std::string(term);
  return n;
}

QueryNode QueryNode::Phrase(std::vector<std::string> terms) {
  QueryNode n;
  n.kind = Kind::kPhrase;
  n.phrase = std::move(terms);
  return n;
}

QueryNode QueryNode::Combine(std::vector<QueryNode> children) {
  QueryNode n;
  n.kind = Kind::kCombine;
  n.children = std::move(children);
  return n;
}

QueryNode QueryNode::PhraseFromText(std::string_view text) {
  std::vector<std::string> words = SplitWhitespace(ToLower(text));
  if (words.size() == 1) return Term(words[0]);
  return Phrase(std::move(words));
}

QueryNode QueryNode::CombinePhrases(const std::vector<std::string>& texts) {
  std::vector<QueryNode> children;
  for (const std::string& t : texts) {
    std::vector<std::string> words = SplitWhitespace(ToLower(t));
    if (words.empty()) continue;
    if (words.size() == 1) {
      children.push_back(Term(words[0]));
    } else {
      children.push_back(Phrase(std::move(words)));
    }
  }
  return Combine(std::move(children));
}

std::string QueryNode::ToString() const {
  switch (kind) {
    case Kind::kTerm:
      return term;
    case Kind::kPhrase: {
      std::string out = "#1(";
      for (size_t i = 0; i < phrase.size(); ++i) {
        if (i > 0) out += " ";
        out += phrase[i];
      }
      return out + ")";
    }
    case Kind::kCombine: {
      std::string out = "#combine(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " ";
        out += children[i].ToString();
      }
      return out + ")";
    }
  }
  return "";
}

namespace {

/// Recursive-descent parser over a token cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<QueryNode> Parse() {
    SkipSpace();
    WQE_ASSIGN_OR_RETURN(QueryNode root, ParseNode());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing input at offset ", pos_, ": '",
                                input_.substr(pos_), "'");
    }
    return root;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (input_.size() - pos_ < lit.size()) return false;
    if (input_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<std::string> ParseWord() {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' ||
          c == ')' || c == '#') {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected a term at offset ", start);
    }
    return ToLower(input_.substr(start, pos_ - start));
  }

  Result<QueryNode> ParseNode() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return Status::ParseError("unexpected end of query");
    }
    if (input_[pos_] == '#') {
      if (ConsumeLiteral("#combine(")) {
        std::vector<QueryNode> children;
        for (;;) {
          SkipSpace();
          if (pos_ < input_.size() && input_[pos_] == ')') {
            ++pos_;
            break;
          }
          WQE_ASSIGN_OR_RETURN(QueryNode child, ParseNode());
          children.push_back(std::move(child));
        }
        if (children.empty()) {
          return Status::ParseError("#combine requires at least one child");
        }
        return QueryNode::Combine(std::move(children));
      }
      if (ConsumeLiteral("#1(")) {
        std::vector<std::string> terms;
        for (;;) {
          SkipSpace();
          if (pos_ < input_.size() && input_[pos_] == ')') {
            ++pos_;
            break;
          }
          WQE_ASSIGN_OR_RETURN(std::string word, ParseWord());
          terms.push_back(std::move(word));
        }
        if (terms.empty()) {
          return Status::ParseError("#1 requires at least one term");
        }
        if (terms.size() == 1) return QueryNode::Term(terms[0]);
        return QueryNode::Phrase(std::move(terms));
      }
      return Status::ParseError("unknown operator at offset ", pos_, ": '",
                                input_.substr(pos_, 12), "'");
    }
    WQE_ASSIGN_OR_RETURN(std::string word, ParseWord());
    return QueryNode::Term(word);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryNode> ParseQuery(std::string_view input) {
  // Bare multi-term queries ("graffiti street art") are implicitly wrapped
  // in #combine, matching INDRI's behaviour.
  Parser single(input);
  auto direct = single.Parse();
  if (direct.ok()) return direct;

  // Try: sequence of nodes → #combine.
  std::string wrapped = "#combine(" + std::string(input) + ")";
  Parser multi(wrapped);
  auto combined = multi.Parse();
  if (combined.ok()) return combined;
  return direct.status();  // report the original error
}

}  // namespace wqe::ir
