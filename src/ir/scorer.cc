#include "ir/scorer.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/macros.h"

namespace wqe::ir {

Status QueryEvaluator::CollectLeaves(const QueryNode& node,
                                     std::vector<Leaf>* leaves) const {
  const text::Analyzer& analyzer = index_->analyzer();
  switch (node.kind) {
    case QueryNode::Kind::kTerm:
    case QueryNode::Kind::kPhrase: {
      std::vector<std::string> raw =
          node.kind == QueryNode::Kind::kTerm
              ? std::vector<std::string>{node.term}
              : node.phrase;
      Leaf leaf;
      for (const std::string& word : raw) {
        // Queries pass through the same pipeline as documents; stopwords
        // inside phrases are dropped consistently with indexing.
        std::vector<std::string> analyzed = analyzer.AnalyzeToStrings(word);
        for (std::string& t : analyzed) leaf.terms.push_back(std::move(t));
      }
      if (leaf.terms.empty()) {
        // A pure-stopword leaf ("the") matches nothing; drop it silently.
        return Status::OK();
      }
      // Per-document counts + collection statistics.
      uint64_t ctf = 0;
      if (leaf.terms.size() == 1) {
        const PostingsList* list = index_->Find(leaf.terms[0]);
        if (list != nullptr) {
          ctf = list->collection_tf;
          for (const Posting& p : list->postings) {
            leaf.tf.emplace(p.doc, p.tf());
          }
        }
      } else {
        std::vector<Posting> phrase = index_->PhrasePostings(leaf.terms);
        for (const Posting& p : phrase) {
          leaf.tf.emplace(p.doc, p.tf());
          ctf += p.tf();
        }
      }
      // Smoothed collection probability; 0.5 pseudo-count keeps OOV and
      // zero-occurrence phrases finite (INDRI treats these similarly).
      double total = static_cast<double>(index_->total_tokens());
      leaf.collection_prob =
          (static_cast<double>(ctf) + 0.5) / std::max(total + 1.0, 1.0);
      leaves->push_back(std::move(leaf));
      return Status::OK();
    }
    case QueryNode::Kind::kCombine: {
      for (const QueryNode& child : node.children) {
        WQE_RETURN_NOT_OK(CollectLeaves(child, leaves));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable query node kind");
}

double QueryEvaluator::LeafLogBelief(const Leaf& leaf, DocId doc) const {
  double tf = 0.0;
  auto it = leaf.tf.find(doc);
  if (it != leaf.tf.end()) tf = static_cast<double>(it->second);
  double len = static_cast<double>(index_->doc_length(doc));
  double mu = options_.mu;
  double p = (tf + mu * leaf.collection_prob) / (len + mu);
  return std::log(std::max(p, 1e-300));
}

Result<std::vector<ScoredDoc>> QueryEvaluator::Evaluate(const QueryNode& query,
                                                        size_t k) const {
  std::vector<Leaf> leaves;
  WQE_RETURN_NOT_OK(CollectLeaves(query, &leaves));
  if (leaves.empty()) {
    return Status::InvalidArgument(
        "query has no scoreable leaves (all stopwords or empty)");
  }
  // Candidates: documents matching at least one leaf.
  std::unordered_set<DocId> candidates;
  for (const Leaf& leaf : leaves) {
    for (const auto& [doc, tf] : leaf.tf) {
      (void)tf;
      candidates.insert(doc);
    }
  }
  std::vector<ScoredDoc> scored;
  scored.reserve(candidates.size());
  for (DocId doc : candidates) {
    double total = 0.0;
    for (const Leaf& leaf : leaves) {
      total += LeafLogBelief(leaf, doc);
    }
    scored.push_back(
        ScoredDoc{doc, total / static_cast<double>(leaves.size())});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace wqe::ir
