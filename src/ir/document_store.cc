#include "ir/document_store.h"

namespace wqe::ir {

Result<DocId> DocumentStore::Add(std::string_view name,
                                 std::string_view text) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  std::string key(name);
  if (by_name_.count(key)) {
    return Status::AlreadyExists("document '", key, "' already stored");
  }
  DocId id = static_cast<DocId>(docs_.size());
  Document doc;
  doc.id = id;
  doc.name = key;
  doc.text = std::string(text);
  docs_.push_back(std::move(doc));
  by_name_.emplace(std::move(key), id);
  return id;
}

std::optional<DocId> DocumentStore::FindByName(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace wqe::ir
