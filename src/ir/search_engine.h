#pragma once

/// \file search_engine.h
/// \brief The INDRI-substitute retrieval facade.
///
/// Owns the analyzer, document store, positional index and evaluator, and
/// exposes the two operations the paper's pipeline needs: index a
/// collection, then rank documents for a structured (or free-text) query.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ir/document_store.h"
#include "ir/inverted_index.h"
#include "ir/query.h"
#include "ir/scorer.h"
#include "text/analyzer.h"

namespace wqe::ir {

/// \brief Engine configuration.
struct SearchEngineOptions {
  text::AnalyzerOptions analyzer;
  ScorerOptions scorer;
};

/// \brief Index + search facade.
class SearchEngine {
 public:
  explicit SearchEngine(SearchEngineOptions options = {});

  /// \brief Adds a document (before `Finalize`).
  Result<DocId> AddDocument(std::string_view name, std::string_view text);

  /// \brief Builds the index; call once after all documents are added.
  Status Finalize();

  /// \brief Ranks the top `k` documents for a query AST.
  Result<std::vector<ScoredDoc>> Search(const QueryNode& query,
                                        size_t k) const;

  /// \brief Parses INDRI-subset text and ranks.
  Result<std::vector<ScoredDoc>> SearchText(std::string_view query,
                                            size_t k) const;

  /// \brief The paper's §2.2 query construction: `#combine` of exact-phrase
  /// subqueries, one per title in `titles`.
  Result<std::vector<ScoredDoc>> SearchTitles(
      const std::vector<std::string>& titles, size_t k) const;

  const DocumentStore& store() const { return store_; }
  const InvertedIndex& index() const { return *index_; }
  const text::Analyzer& analyzer() const { return analyzer_; }
  bool finalized() const { return finalized_; }

 private:
  SearchEngineOptions options_;
  text::Analyzer analyzer_;
  DocumentStore store_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<QueryEvaluator> evaluator_;
  bool finalized_ = false;
};

}  // namespace wqe::ir
