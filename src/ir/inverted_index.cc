#include "ir/inverted_index.h"

#include <algorithm>

#include "common/macros.h"

namespace wqe::ir {

Status InvertedIndex::Add(DocId doc, std::string_view doc_text) {
  if (doc != doc_lengths_.size()) {
    return Status::InvalidArgument("documents must be added in id order: got ",
                                   doc, ", expected ", doc_lengths_.size());
  }
  std::vector<text::AnalyzedTerm> terms = analyzer_->Analyze(doc_text);
  doc_lengths_.push_back(static_cast<uint32_t>(terms.size()));
  total_tokens_ += terms.size();
  for (const text::AnalyzedTerm& t : terms) {
    PostingsList& list = postings_[t.term];
    if (list.postings.empty() || list.postings.back().doc != doc) {
      list.postings.push_back(Posting{doc, {}});
    }
    list.postings.back().positions.push_back(t.position);
    ++list.collection_tf;
  }
  return Status::OK();
}

Status InvertedIndex::AddAll(const DocumentStore& store) {
  for (const Document& doc : store.documents()) {
    WQE_RETURN_NOT_OK(Add(doc.id, doc.text));
  }
  return Status::OK();
}

const PostingsList* InvertedIndex::Find(std::string_view analyzed_term) const {
  auto it = postings_.find(std::string(analyzed_term));
  return it == postings_.end() ? nullptr : &it->second;
}

namespace {

/// Counts positions in `next` that are exactly one past a position in
/// `current`; returns the surviving positions (for chained extension).
std::vector<uint32_t> AdjacentPositions(const std::vector<uint32_t>& current,
                                        const std::vector<uint32_t>& next) {
  std::vector<uint32_t> out;
  size_t i = 0, j = 0;
  while (i < current.size() && j < next.size()) {
    uint32_t want = current[i] + 1;
    if (next[j] == want) {
      out.push_back(next[j]);
      ++i;
      ++j;
    } else if (next[j] < want) {
      ++j;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace

uint32_t InvertedIndex::PhraseTf(const std::vector<std::string>& terms,
                                 DocId doc) const {
  if (terms.empty()) return 0;
  const PostingsList* first = Find(terms[0]);
  if (first == nullptr) return 0;
  auto it = std::lower_bound(
      first->postings.begin(), first->postings.end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (it == first->postings.end() || it->doc != doc) return 0;
  std::vector<uint32_t> current = it->positions;
  for (size_t k = 1; k < terms.size() && !current.empty(); ++k) {
    const PostingsList* list = Find(terms[k]);
    if (list == nullptr) return 0;
    auto pit = std::lower_bound(
        list->postings.begin(), list->postings.end(), doc,
        [](const Posting& p, DocId d) { return p.doc < d; });
    if (pit == list->postings.end() || pit->doc != doc) return 0;
    current = AdjacentPositions(current, pit->positions);
  }
  return static_cast<uint32_t>(current.size());
}

std::vector<Posting> InvertedIndex::PhrasePostings(
    const std::vector<std::string>& terms) const {
  std::vector<Posting> out;
  if (terms.empty()) return out;
  const PostingsList* first = Find(terms[0]);
  if (first == nullptr) return out;
  if (terms.size() == 1) return first->postings;

  for (const Posting& p : first->postings) {
    std::vector<uint32_t> current = p.positions;
    bool alive = true;
    for (size_t k = 1; k < terms.size(); ++k) {
      const PostingsList* list = Find(terms[k]);
      if (list == nullptr) return {};
      auto pit = std::lower_bound(
          list->postings.begin(), list->postings.end(), p.doc,
          [](const Posting& q, DocId d) { return q.doc < d; });
      if (pit == list->postings.end() || pit->doc != p.doc) {
        alive = false;
        break;
      }
      current = AdjacentPositions(current, pit->positions);
      if (current.empty()) {
        alive = false;
        break;
      }
    }
    if (alive && !current.empty()) {
      out.push_back(Posting{p.doc, std::move(current)});
    }
  }
  return out;
}

}  // namespace wqe::ir
