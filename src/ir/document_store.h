#pragma once

/// \file document_store.h
/// \brief In-memory document collection.
///
/// Documents are the retrieval units of the benchmark: in the ImageCLEF
/// track each document is the extracted text of one image-metadata XML file
/// (paper §2.1 / Figure 2).  `name` carries the external identifier (file
/// name / image id) used by the relevance judgments.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace wqe::ir {

/// \brief Dense document identifier.
using DocId = uint32_t;

inline constexpr DocId kInvalidDoc = UINT32_MAX;

/// \brief One stored document.
struct Document {
  DocId id = kInvalidDoc;
  std::string name;  ///< external id, unique
  std::string text;  ///< raw text (pre-analysis)
};

/// \brief Append-only store with name lookup.
class DocumentStore {
 public:
  /// \brief Adds a document; fails when `name` is already used.
  Result<DocId> Add(std::string_view name, std::string_view text);

  /// \brief Lookup by id; must be valid.
  const Document& Get(DocId id) const { return docs_[id]; }

  /// \brief Lookup by external name.
  std::optional<DocId> FindByName(std::string_view name) const;

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// \brief Iteration support.
  const std::vector<Document>& documents() const { return docs_; }

 private:
  std::vector<Document> docs_;
  std::unordered_map<std::string, DocId> by_name_;
};

}  // namespace wqe::ir
