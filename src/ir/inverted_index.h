#pragma once

/// \file inverted_index.h
/// \brief Positional inverted index.
///
/// Terms map to postings lists of (document, sorted positions).  Positions
/// are the pre-stopword token positions produced by `text::Analyzer`, so
/// exact-phrase evaluation (`#1(...)`, the operator the paper's ground
/// truth relies on) respects original word adjacency.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/document_store.h"
#include "text/analyzer.h"

namespace wqe::ir {

/// \brief Postings of one term in one document.
struct Posting {
  DocId doc = kInvalidDoc;
  std::vector<uint32_t> positions;  ///< ascending

  uint32_t tf() const { return static_cast<uint32_t>(positions.size()); }
};

/// \brief Postings list plus collection statistics of a term.
struct PostingsList {
  std::vector<Posting> postings;  ///< ascending DocId
  uint64_t collection_tf = 0;     ///< total occurrences across collection

  uint32_t df() const { return static_cast<uint32_t>(postings.size()); }
};

/// \brief The index. Build by `Add`ing analyzed documents in id order.
class InvertedIndex {
 public:
  explicit InvertedIndex(const text::Analyzer* analyzer)
      : analyzer_(analyzer) {}

  /// \brief Analyzes and indexes one document.  Documents must be added in
  /// strictly increasing id order (enforced).
  Status Add(DocId doc, std::string_view doc_text);

  /// \brief Indexes an entire store.
  Status AddAll(const DocumentStore& store);

  /// \brief Postings of an *analyzed* term; nullptr when absent.
  const PostingsList* Find(std::string_view analyzed_term) const;

  /// \brief Number of indexed documents.
  size_t num_docs() const { return doc_lengths_.size(); }

  /// \brief Vocabulary size.
  size_t num_terms() const { return postings_.size(); }

  /// \brief Length (analyzed token count) of one document.
  uint32_t doc_length(DocId doc) const { return doc_lengths_[doc]; }

  /// \brief Total analyzed tokens in the collection.
  uint64_t total_tokens() const { return total_tokens_; }

  /// \brief The analyzer used to build this index (queries must use it).
  const text::Analyzer& analyzer() const { return *analyzer_; }

  /// \brief Counts exact-phrase occurrences of the analyzed term sequence
  /// in one document (consecutive source positions).
  uint32_t PhraseTf(const std::vector<std::string>& terms, DocId doc) const;

  /// \brief Documents containing the exact phrase, with occurrence counts;
  /// ascending DocId. A single-term phrase degenerates to its postings.
  std::vector<Posting> PhrasePostings(
      const std::vector<std::string>& terms) const;

 private:
  const text::Analyzer* analyzer_;
  std::unordered_map<std::string, PostingsList> postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_tokens_ = 0;
};

}  // namespace wqe::ir
