#include "ir/eval.h"

#include <algorithm>
#include <cmath>

namespace wqe::ir {

const std::vector<size_t>& PaperRankCutoffs() {
  static const std::vector<size_t>* kCutoffs =
      new std::vector<size_t>{1, 5, 10, 15};
  return *kCutoffs;
}

double PrecisionAtR(const std::vector<ScoredDoc>& results,
                    const RelevantSet& relevant, size_t r) {
  if (r == 0) return 0.0;
  size_t hits = 0;
  size_t upto = std::min(r, results.size());
  for (size_t i = 0; i < upto; ++i) {
    if (relevant.count(results[i].doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(r);
}

double AverageTopRPrecision(const std::vector<ScoredDoc>& results,
                            const RelevantSet& relevant,
                            const std::vector<size_t>& cutoffs) {
  if (cutoffs.empty()) return 0.0;
  double sum = 0.0;
  for (size_t r : cutoffs) sum += PrecisionAtR(results, relevant, r);
  return sum / static_cast<double>(cutoffs.size());
}

double AverageTopRPrecision(const std::vector<ScoredDoc>& results,
                            const RelevantSet& relevant) {
  return AverageTopRPrecision(results, relevant, PaperRankCutoffs());
}

double RecallAtR(const std::vector<ScoredDoc>& results,
                 const RelevantSet& relevant, size_t r) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  size_t upto = std::min(r, results.size());
  for (size_t i = 0; i < upto; ++i) {
    if (relevant.count(results[i].doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double AveragePrecision(const std::vector<ScoredDoc>& results,
                        const RelevantSet& relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (relevant.count(results[i].doc)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

double NdcgAtR(const std::vector<ScoredDoc>& results,
               const RelevantSet& relevant, size_t r) {
  if (relevant.empty() || r == 0) return 0.0;
  double dcg = 0.0;
  size_t upto = std::min(r, results.size());
  for (size_t i = 0; i < upto; ++i) {
    if (relevant.count(results[i].doc)) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double idcg = 0.0;
  size_t ideal = std::min(r, relevant.size());
  for (size_t i = 0; i < ideal; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg == 0.0 ? 0.0 : dcg / idcg;
}

}  // namespace wqe::ir
