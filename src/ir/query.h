#pragma once

/// \file query.h
/// \brief INDRI-subset structured query language.
///
/// The paper evaluates expansion-feature sets by writing INDRI queries
/// "based on exact phrase matching" from article titles (§2.2).  The subset
/// implemented here is what that needs:
///
///   query    := node
///   node     := term | '#1(' term+ ')' | '#combine(' node+ ')'
///
/// `#1(...)` is INDRI's ordered-window-1 operator (exact phrase);
/// `#combine(...)` averages the log-beliefs of its children.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace wqe::ir {

/// \brief Query AST node.
struct QueryNode {
  enum class Kind {
    kTerm,     ///< single term
    kPhrase,   ///< #1(...) exact phrase
    kCombine,  ///< #combine(...)
  };

  Kind kind = Kind::kTerm;
  std::string term;                      ///< kTerm: raw (unanalyzed) term
  std::vector<std::string> phrase;       ///< kPhrase: raw terms in order
  std::vector<QueryNode> children;       ///< kCombine

  /// \brief Renders the node back to INDRI syntax.
  std::string ToString() const;

  /// \name Factories
  /// @{
  static QueryNode Term(std::string_view term);
  static QueryNode Phrase(std::vector<std::string> terms);
  static QueryNode Combine(std::vector<QueryNode> children);

  /// \brief Phrase node from free text (tokenized on whitespace); a single
  /// word becomes a plain term.  This is how article titles are turned into
  /// exact-phrase subqueries.
  static QueryNode PhraseFromText(std::string_view text);

  /// \brief `#combine` over `PhraseFromText` of every string: the paper's
  /// query construction for a set of titles (keywords + expansion
  /// features).  Empty inputs are skipped.
  static QueryNode CombinePhrases(const std::vector<std::string>& texts);
  /// @}
};

/// \brief Parses INDRI-subset syntax into an AST.
Result<QueryNode> ParseQuery(std::string_view input);

}  // namespace wqe::ir
