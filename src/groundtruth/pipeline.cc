#include "groundtruth/pipeline.h"

#include <algorithm>
#include <thread>

#include "clef/image_metadata.h"
#include "common/logging.h"
#include "common/macros.h"
#include "serve/thread_pool.h"

namespace wqe::groundtruth {

Pipeline::~Pipeline() = default;

Result<std::unique_ptr<Pipeline>> Pipeline::Build(
    const PipelineOptions& options) {
  std::unique_ptr<Pipeline> p(new Pipeline());

  WQE_ASSIGN_OR_RETURN(p->wiki_, wiki::GenerateSyntheticWikipedia(options.wiki));
  WQE_ASSIGN_OR_RETURN(p->track_,
                       clef::GenerateTrack(p->wiki_, options.track));
  // Build time is over: freeze the structural snapshot the analyzers and
  // expanders read (the one-way builder→CSR bridge, see graph/csr.h).
  p->wiki_.kb.Freeze();

  // Index the §2.1-extracted text of every metadata file.
  p->engine_ = std::make_unique<ir::SearchEngine>(options.engine);
  for (const clef::TrackDocument& doc : p->track_.documents) {
    WQE_ASSIGN_OR_RETURN(clef::ImageMetadata meta,
                         clef::ParseImageMetadata(doc.xml));
    std::string text = clef::ExtractLinkedText(meta);
    WQE_ASSIGN_OR_RETURN(ir::DocId id,
                         p->engine_->AddDocument(doc.name, text));
    (void)id;
  }
  WQE_RETURN_NOT_OK(p->engine_->Finalize());

  p->linker_ = std::make_unique<linking::EntityLinker>(&p->wiki_.kb,
                                                       options.linker);

  // Resolve qrels to document ids.
  p->relevant_.resize(p->track_.topics.size());
  for (size_t t = 0; t < p->track_.topics.size(); ++t) {
    for (const std::string& name : p->track_.topics[t].relevant) {
      auto id = p->engine_->store().FindByName(name);
      if (!id.has_value()) {
        return Status::Internal("qrel document '", name,
                                "' missing from the collection");
      }
      p->relevant_[t].insert(*id);
    }
  }

  // Analysis parallelism: one experiment-shared pool.  Sized one short of
  // the knob because enumeration/analysis callers participate in their
  // own fan-out (caller + workers = num_threads enumerating threads).
  p->num_threads_ = options.num_threads != 0
                        ? options.num_threads
                        : std::max(1u, std::thread::hardware_concurrency());
  if (p->num_threads_ > 1) {
    p->pool_ = std::make_unique<serve::ThreadPool>(p->num_threads_ - 1);
  }
  p->prune_ball_ = options.prune_ball;

  WQE_LOG(Info) << "pipeline: " << p->wiki_.kb.num_articles() << " articles, "
                << p->track_.documents.size() << " documents, "
                << p->track_.topics.size() << " topics";
  return p;
}

}  // namespace wqe::groundtruth
