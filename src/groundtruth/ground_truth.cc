#include "groundtruth/ground_truth.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace wqe::groundtruth {

std::vector<NodeId> GroundTruthBuilder::LinkRelevantDocuments(
    size_t topic_index) const {
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen;
  for (ir::DocId doc : pipeline_->relevant(topic_index)) {
    for (NodeId a : pipeline_->linker().LinkToArticles(
             pipeline_->doc_text(doc))) {
      if (seen.insert(a).second) out.push_back(a);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<GroundTruthEntry> GroundTruthBuilder::BuildEntry(
    size_t topic_index) const {
  if (topic_index >= pipeline_->num_topics()) {
    return Status::OutOfRange("topic index ", topic_index, " out of range");
  }
  const clef::Topic& topic = pipeline_->topic(topic_index);
  GroundTruthEntry entry;
  entry.topic_index = topic_index;
  entry.topic_id = topic.id;
  entry.keywords = topic.keywords;

  // §2.1 — entity linking.
  entry.query_articles =
      pipeline_->linker().LinkToArticles(topic.keywords);
  entry.doc_articles = LinkRelevantDocuments(topic_index);

  // Candidates A' ⊆ L(q.D) \ L(q.k).
  std::unordered_set<NodeId> query_set(entry.query_articles.begin(),
                                       entry.query_articles.end());
  std::vector<NodeId> candidates;
  for (NodeId a : entry.doc_articles) {
    if (!query_set.count(a)) candidates.push_back(a);
  }

  // §2.2 — hill climb for X(q).
  XqOptimizer optimizer(&pipeline_->engine(), &pipeline_->kb(), xq_options_);
  WQE_ASSIGN_OR_RETURN(
      entry.xq, optimizer.Optimize(entry.query_articles, candidates,
                                   pipeline_->relevant(topic_index)));

  // Final per-cutoff precisions (Table 2 rows).
  {
    std::vector<std::string> titles;
    for (NodeId a : entry.query_articles) {
      titles.push_back(pipeline_->kb().display_title(a));
    }
    for (NodeId a : entry.xq.selected) {
      titles.push_back(pipeline_->kb().display_title(a));
    }
    if (!titles.empty()) {
      WQE_ASSIGN_OR_RETURN(std::vector<ir::ScoredDoc> results,
                           pipeline_->engine().SearchTitles(titles, 15));
      for (size_t r : ir::PaperRankCutoffs()) {
        entry.precision_at.push_back(ir::PrecisionAtR(
            results, pipeline_->relevant(topic_index), r));
      }
    } else {
      entry.precision_at.assign(ir::PaperRankCutoffs().size(), 0.0);
    }
  }

  // §2.3 — query graph.
  entry.graph = BuildQueryGraph(pipeline_->kb(), entry.query_articles,
                                entry.xq.selected);
  return entry;
}

Result<GroundTruth> GroundTruthBuilder::Build() const {
  GroundTruth gt;
  gt.entries.reserve(pipeline_->num_topics());
  for (size_t t = 0; t < pipeline_->num_topics(); ++t) {
    WQE_ASSIGN_OR_RETURN(GroundTruthEntry entry, BuildEntry(t));
    WQE_LOG(Debug) << "topic " << entry.topic_id << " '" << entry.keywords
                   << "': |L(q.k)|=" << entry.query_articles.size()
                   << " |L(q.D)|=" << entry.doc_articles.size()
                   << " |A'|=" << entry.xq.selected.size()
                   << " O=" << entry.xq.quality
                   << " (baseline " << entry.xq.baseline_quality << ")";
    gt.entries.push_back(std::move(entry));
  }
  return gt;
}

std::string WriteGroundTruth(const GroundTruth& gt,
                             const wiki::KnowledgeBase& kb) {
  std::string out;
  for (const GroundTruthEntry& e : gt.entries) {
    std::vector<std::string> titles;
    for (NodeId a : e.xq.selected) titles.push_back(kb.display_title(a));
    out += std::to_string(e.topic_id);
    out += "\t";
    out += e.keywords;
    out += "\t";
    out += Join(titles, ";");
    out += "\t";
    out += FormatDouble(e.xq.quality, 4);
    out += "\t";
    out += FormatDouble(e.xq.baseline_quality, 4);
    out += "\n";
  }
  return out;
}

}  // namespace wqe::groundtruth
