#include "groundtruth/xq_optimizer.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace wqe::groundtruth {

namespace {

/// Order-insensitive fingerprint of an article set (for memoizing O).
uint64_t SetFingerprint(const std::vector<NodeId>& base,
                        const std::vector<NodeId>& extra) {
  // Commutative hash: sum + xor of mixed ids is stable under ordering and
  // collision-safe enough for a per-query memo table.
  uint64_t sum = 0, xr = 0;
  auto mix = [](NodeId n) {
    uint64_t x = n + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  for (NodeId n : base) {
    uint64_t m = mix(n);
    sum += m;
    xr ^= m * 31;
  }
  for (NodeId n : extra) {
    uint64_t m = mix(n);
    sum += m;
    xr ^= m * 31;
  }
  return sum ^ (xr << 1);
}

}  // namespace

Result<double> XqOptimizer::EvaluateArticles(
    const std::vector<NodeId>& articles,
    const ir::RelevantSet& relevant) const {
  std::vector<std::string> titles;
  titles.reserve(articles.size());
  for (NodeId a : articles) {
    titles.push_back(kb_->display_title(a));
  }
  auto results = engine_->SearchTitles(titles, options_.top_k);
  if (!results.ok()) {
    if (results.status().IsInvalidArgument()) return 0.0;  // empty query
    return results.status();
  }
  return ir::AverageTopRPrecision(*results, relevant);
}

Result<XqResult> XqOptimizer::Optimize(
    const std::vector<NodeId>& query_articles,
    const std::vector<NodeId>& candidates,
    const ir::RelevantSet& relevant) const {
  XqResult best_run;
  best_run.quality = -1.0;

  // Memo table shared across restarts.
  std::unordered_map<uint64_t, double> memo;
  uint64_t evaluations = 0;

  auto evaluate = [&](const std::vector<NodeId>& selected) -> Result<double> {
    ++evaluations;
    uint64_t key = SetFingerprint(query_articles, selected);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    std::vector<NodeId> all = query_articles;
    all.insert(all.end(), selected.begin(), selected.end());
    WQE_ASSIGN_OR_RETURN(double q, EvaluateArticles(all, relevant));
    memo.emplace(key, q);
    return q;
  };

  WQE_ASSIGN_OR_RETURN(double baseline,
                       EvaluateArticles(query_articles, relevant));

  if (candidates.empty()) {
    best_run.quality = baseline;
    best_run.baseline_quality = baseline;
    return best_run;
  }

  Rng rng(options_.seed);
  uint32_t restarts = std::max<uint32_t>(1, options_.restarts);
  uint32_t total_iterations = 0;

  for (uint32_t restart = 0; restart < restarts; ++restart) {
    std::vector<NodeId> selected;
    selected.push_back(
        candidates[rng.Uniform(static_cast<uint32_t>(candidates.size()))]);
    WQE_ASSIGN_OR_RETURN(double current, evaluate(selected));

    for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
      // Best single operation this round.  REMOVE accepts ties (minimal
      // set); ADD and SWAP require strict improvement.
      enum class Op { kNone, kAdd, kRemove, kSwap };
      Op best_op = Op::kNone;
      double best_quality = current;
      size_t best_i = 0;   // index into selected (REMOVE/SWAP)
      NodeId best_c = graph::kInvalidNode;  // candidate (ADD/SWAP)
      bool best_is_tie_remove = false;

      // ADD
      for (NodeId c : candidates) {
        if (std::find(selected.begin(), selected.end(), c) !=
            selected.end()) {
          continue;
        }
        selected.push_back(c);
        WQE_ASSIGN_OR_RETURN(double q, evaluate(selected));
        selected.pop_back();
        if (q > best_quality + 1e-12) {
          best_quality = q;
          best_op = Op::kAdd;
          best_c = c;
        }
      }
      // REMOVE (tie-accepting)
      if (selected.size() > 1) {
        for (size_t i = 0; i < selected.size(); ++i) {
          std::vector<NodeId> trial = selected;
          trial.erase(trial.begin() + static_cast<ptrdiff_t>(i));
          WQE_ASSIGN_OR_RETURN(double q, evaluate(trial));
          bool strictly_better = q > best_quality + 1e-12;
          bool tie_with_current =
              best_op == Op::kNone && q >= current - 1e-12;
          if (strictly_better || (tie_with_current && !best_is_tie_remove)) {
            best_quality = q;
            best_op = Op::kRemove;
            best_i = i;
            best_is_tie_remove = !strictly_better;
          }
        }
      }
      // SWAP
      if (options_.enable_swap) {
        for (size_t i = 0; i < selected.size(); ++i) {
          for (NodeId c : candidates) {
            if (std::find(selected.begin(), selected.end(), c) !=
                selected.end()) {
              continue;
            }
            NodeId saved = selected[i];
            selected[i] = c;
            WQE_ASSIGN_OR_RETURN(double q, evaluate(selected));
            selected[i] = saved;
            if (q > best_quality + 1e-12) {
              best_quality = q;
              best_op = Op::kSwap;
              best_i = i;
              best_c = c;
            }
          }
        }
      }

      if (best_op == Op::kNone) break;
      ++total_iterations;
      switch (best_op) {
        case Op::kAdd:
          selected.push_back(best_c);
          break;
        case Op::kRemove:
          selected.erase(selected.begin() + static_cast<ptrdiff_t>(best_i));
          break;
        case Op::kSwap:
          selected[best_i] = best_c;
          break;
        case Op::kNone:
          break;
      }
      current = best_quality;
    }

    if (current > best_run.quality + 1e-12 ||
        (std::abs(current - best_run.quality) <= 1e-12 &&
         selected.size() < best_run.selected.size())) {
      best_run.selected = selected;
      best_run.quality = current;
    }
  }

  best_run.baseline_quality = baseline;
  best_run.iterations = total_iterations;
  best_run.evaluations = evaluations;
  std::sort(best_run.selected.begin(), best_run.selected.end());
  return best_run;
}

}  // namespace wqe::groundtruth
