#include "groundtruth/query_graph.h"

#include <unordered_set>

namespace wqe::groundtruth {

std::vector<NodeId> QueryGraph::LocalQueryArticles() const {
  std::vector<NodeId> out;
  for (NodeId q : query_articles) {
    NodeId local = sub.Local(q);
    if (local != graph::kInvalidNode) out.push_back(local);
  }
  return out;
}

QueryGraph BuildQueryGraph(const wiki::KnowledgeBase& kb,
                           const std::vector<NodeId>& query_articles,
                           const std::vector<NodeId>& expansion_articles) {
  QueryGraph qg;
  std::vector<NodeId> nodes;
  std::unordered_set<NodeId> seen;

  auto add_node = [&](NodeId n) {
    if (seen.insert(n).second) nodes.push_back(n);
  };
  auto add_article_with_context = [&](NodeId article) {
    add_node(article);
    // Main article of a redirect (the paper includes both).
    NodeId main = kb.ResolveRedirect(article);
    if (main != article) add_node(main);
    // Categories (redirects have none).
    for (NodeId cat : kb.CategoriesOf(main)) add_node(cat);
  };

  for (NodeId q : query_articles) {
    add_article_with_context(q);
    qg.query_articles.push_back(q);
  }
  for (NodeId a : expansion_articles) {
    add_article_with_context(a);
    qg.expansion_articles.push_back(a);
  }

  qg.sub = graph::InduceCsr(kb.csr(), nodes);
  return qg;
}

}  // namespace wqe::groundtruth
