#pragma once

/// \file xq_optimizer.h
/// \brief The paper's §2.2 search for X(q), the best expansion set.
///
/// X(q) = argmax over A' ⊆ L(q.D) of O(L(q.k) ∪ A', q.D), where O is the
/// mean of top-{1,5,10,15} precision (Equation 1).  Exhaustive search is
/// infeasible (2^|L(q.D)| subsets), so the paper hill-climbs: start from a
/// random article of L(q.D) and repeatedly apply the best of
/// ADD / REMOVE / SWAP while it improves O — with the twist that a REMOVE
/// that *keeps O equal* is also taken, so the final set is minimal.

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ir/eval.h"
#include "ir/search_engine.h"
#include "wiki/knowledge_base.h"

namespace wqe::groundtruth {

using graph::NodeId;

/// \brief Optimizer parameters.
struct XqOptimizerOptions {
  uint64_t seed = 13;
  /// Hard cap on hill-climb iterations (each applies one operation).
  uint32_t max_iterations = 60;
  /// Retrieval depth; must cover the largest rank cutoff.
  size_t top_k = 15;
  /// Enable the SWAP move (ADD and REMOVE are always on). SWAP costs
  /// |A'|·|candidates| evaluations per iteration.
  bool enable_swap = true;
  /// Independent random restarts; the best run wins.
  uint32_t restarts = 2;
};

/// \brief Optimization outcome for one query.
struct XqResult {
  std::vector<NodeId> selected;    ///< A' ⊆ L(q.D)
  double quality = 0.0;            ///< O(L(q.k) ∪ A', D)
  double baseline_quality = 0.0;   ///< O(L(q.k), D), unexpanded
  uint32_t iterations = 0;         ///< operations applied (all restarts)
  uint64_t evaluations = 0;        ///< O() computations (incl. cache hits)
};

/// \brief Hill-climbing optimizer over expansion-feature sets.
class XqOptimizer {
 public:
  XqOptimizer(const ir::SearchEngine* engine, const wiki::KnowledgeBase* kb,
              XqOptimizerOptions options = {})
      : engine_(engine), kb_(kb), options_(options) {}

  /// \brief Runs the search.
  /// \param query_articles L(q.k): articles linked from the query keywords.
  /// \param candidates L(q.D): articles linked from the relevant documents.
  /// \param relevant the judged set D.
  Result<XqResult> Optimize(const std::vector<NodeId>& query_articles,
                            const std::vector<NodeId>& candidates,
                            const ir::RelevantSet& relevant) const;

  /// \brief O(A, D) for an arbitrary article set (titles are used to build
  /// the exact-phrase query). Exposed for analysis code (Table 4, Fig 5).
  Result<double> EvaluateArticles(const std::vector<NodeId>& articles,
                                  const ir::RelevantSet& relevant) const;

 private:
  const ir::SearchEngine* engine_;
  const wiki::KnowledgeBase* kb_;
  XqOptimizerOptions options_;
};

}  // namespace wqe::groundtruth
