#pragma once

/// \file ground_truth.h
/// \brief The full §2 ground-truth construction, per topic and batched.
///
/// For each topic q: link L(q.k) and L(q.D) (§2.1), hill-climb X(q)
/// (§2.2), assemble G(q) (§2.3), and record the final top-r precisions
/// (the rows of Table 2).

#include <string>
#include <vector>

#include "common/result.h"
#include "groundtruth/pipeline.h"
#include "groundtruth/query_graph.h"
#include "groundtruth/xq_optimizer.h"

namespace wqe::groundtruth {

/// \brief Ground truth for one topic.
struct GroundTruthEntry {
  /// Index of the topic within the pipeline's track (qrels lookup).
  size_t topic_index = 0;
  uint32_t topic_id = 0;
  std::string keywords;
  std::vector<NodeId> query_articles;  ///< L(q.k)
  std::vector<NodeId> doc_articles;    ///< L(q.D)
  XqResult xq;                         ///< A' and qualities
  QueryGraph graph;                    ///< G(q)
  /// P(X(q), r, D) for r in {1, 5, 10, 15}.
  std::vector<double> precision_at;
};

/// \brief Ground truth for the whole track.
struct GroundTruth {
  std::vector<GroundTruthEntry> entries;
};

/// \brief Builder running §2 end to end against a pipeline.
class GroundTruthBuilder {
 public:
  GroundTruthBuilder(const Pipeline* pipeline,
                     XqOptimizerOptions xq_options = {})
      : pipeline_(pipeline), xq_options_(xq_options) {}

  /// \brief Ground truth for one topic (by index into the track).
  Result<GroundTruthEntry> BuildEntry(size_t topic_index) const;

  /// \brief Ground truth for all topics.
  Result<GroundTruth> Build() const;

  /// \brief L(q.D): articles linked from the topic's relevant documents.
  std::vector<NodeId> LinkRelevantDocuments(size_t topic_index) const;

 private:
  const Pipeline* pipeline_;
  XqOptimizerOptions xq_options_;
};

/// \brief Serializes ground truth as text: one line per topic,
/// `id <TAB> keywords <TAB> title;title;... <TAB> quality <TAB> baseline`.
/// (The paper published its ground truth in a similar flat format.)
std::string WriteGroundTruth(const GroundTruth& gt,
                             const wiki::KnowledgeBase& kb);

}  // namespace wqe::groundtruth
