#pragma once

/// \file pipeline.h
/// \brief Internal experiment fixture for the §2/§3 machinery.
///
/// Wires together everything the ground-truth construction and the
/// query-graph analysis need: the (synthetic) Wikipedia, the (synthetic)
/// ImageCLEF-style track, the retrieval engine indexed over the extracted
/// document text, the entity linker, and the per-topic relevance
/// judgments.
///
/// This is NOT the public entry point.  Serving-style callers — examples,
/// benches, expansion tests — build an `api::Engine` (via `api::Testbed`
/// for synthetic experiments) and select expansion strategies through its
/// registry; the Pipeline remains as the fixture that
/// `groundtruth::GroundTruthBuilder` and `analysis::QueryGraphAnalyzer`
/// consume.

#include <memory>
#include <vector>

#include "clef/track.h"
#include "clef/track_generator.h"
#include "common/result.h"
#include "ir/eval.h"
#include "ir/search_engine.h"
#include "linking/entity_linker.h"
#include "wiki/synthetic.h"

namespace wqe::serve {
class ThreadPool;  // fwd: the fixture only owns and hands down a pool
}  // namespace wqe::serve

namespace wqe::groundtruth {

/// \brief Aggregated configuration.
struct PipelineOptions {
  wiki::SyntheticWikipediaOptions wiki;
  clef::TrackGeneratorOptions track;
  ir::SearchEngineOptions engine;
  linking::EntityLinkerOptions linker;
  /// Worker threads for the §3 analysis consumers (cycle enumeration,
  /// per-topic fan-out): 1 = sequential (default), 0 = one per hardware
  /// thread.  When != 1 the pipeline owns a `serve::ThreadPool` that
  /// `analysis::QueryGraphAnalyzer` inherits — one pool per experiment
  /// instead of one per call.
  uint32_t num_threads = 1;
  /// Ball-prune topic views before cycle enumeration (graph/ball_prune.h;
  /// analysis output is bit-identical either way).  Inherited by
  /// `analysis::QueryGraphAnalyzer` with AND semantics — disabling at
  /// either layer disables.
  bool prune_ball = true;
};

/// \brief Built experiment context (immutable after Build).
class Pipeline {
 public:
  /// \brief Generates the knowledge base and track, extracts and indexes
  /// the document text, and resolves the relevance judgments.
  static Result<std::unique_ptr<Pipeline>> Build(
      const PipelineOptions& options);

  /// Out of line: owns a forward-declared `serve::ThreadPool`.
  ~Pipeline();

  const wiki::SyntheticWikipedia& wiki() const { return wiki_; }
  const wiki::KnowledgeBase& kb() const { return wiki_.kb; }
  const clef::Track& track() const { return track_; }
  const ir::SearchEngine& engine() const { return *engine_; }
  const linking::EntityLinker& linker() const { return *linker_; }

  size_t num_topics() const { return track_.topics.size(); }
  const clef::Topic& topic(size_t i) const { return track_.topics[i]; }

  /// \brief The judged set D of topic `i` (document ids).
  const ir::RelevantSet& relevant(size_t i) const { return relevant_[i]; }

  /// \brief Extracted (indexable/linkable) text of a document.
  const std::string& doc_text(ir::DocId doc) const {
    return engine_->store().Get(doc).text;
  }

  /// \brief The configured analysis thread count (resolved: never 0).
  uint32_t num_threads() const { return num_threads_; }

  /// \brief The experiment-shared analysis pool; null when sequential.
  serve::ThreadPool* pool() const { return pool_.get(); }

  /// \brief Whether analysis consumers should ball-prune before
  /// enumeration (see PipelineOptions::prune_ball).
  bool prune_ball() const { return prune_ball_; }

 private:
  Pipeline() = default;

  wiki::SyntheticWikipedia wiki_;
  clef::Track track_;
  std::unique_ptr<ir::SearchEngine> engine_;
  std::unique_ptr<linking::EntityLinker> linker_;
  std::vector<ir::RelevantSet> relevant_;
  uint32_t num_threads_ = 1;
  bool prune_ball_ = true;
  std::unique_ptr<serve::ThreadPool> pool_;  ///< null when num_threads_ == 1
};

}  // namespace wqe::groundtruth
