#pragma once

/// \file pipeline.h
/// \brief Internal experiment fixture for the §2/§3 machinery.
///
/// Wires together everything the ground-truth construction and the
/// query-graph analysis need: the (synthetic) Wikipedia, the (synthetic)
/// ImageCLEF-style track, the retrieval engine indexed over the extracted
/// document text, the entity linker, and the per-topic relevance
/// judgments.
///
/// This is NOT the public entry point.  Serving-style callers — examples,
/// benches, expansion tests — build an `api::Engine` (via `api::Testbed`
/// for synthetic experiments) and select expansion strategies through its
/// registry; the Pipeline remains as the fixture that
/// `groundtruth::GroundTruthBuilder` and `analysis::QueryGraphAnalyzer`
/// consume.

#include <memory>
#include <vector>

#include "clef/track.h"
#include "clef/track_generator.h"
#include "common/result.h"
#include "ir/eval.h"
#include "ir/search_engine.h"
#include "linking/entity_linker.h"
#include "wiki/synthetic.h"

namespace wqe::groundtruth {

/// \brief Aggregated configuration.
struct PipelineOptions {
  wiki::SyntheticWikipediaOptions wiki;
  clef::TrackGeneratorOptions track;
  ir::SearchEngineOptions engine;
  linking::EntityLinkerOptions linker;
};

/// \brief Built experiment context (immutable after Build).
class Pipeline {
 public:
  /// \brief Generates the knowledge base and track, extracts and indexes
  /// the document text, and resolves the relevance judgments.
  static Result<std::unique_ptr<Pipeline>> Build(
      const PipelineOptions& options);

  const wiki::SyntheticWikipedia& wiki() const { return wiki_; }
  const wiki::KnowledgeBase& kb() const { return wiki_.kb; }
  const clef::Track& track() const { return track_; }
  const ir::SearchEngine& engine() const { return *engine_; }
  const linking::EntityLinker& linker() const { return *linker_; }

  size_t num_topics() const { return track_.topics.size(); }
  const clef::Topic& topic(size_t i) const { return track_.topics[i]; }

  /// \brief The judged set D of topic `i` (document ids).
  const ir::RelevantSet& relevant(size_t i) const { return relevant_[i]; }

  /// \brief Extracted (indexable/linkable) text of a document.
  const std::string& doc_text(ir::DocId doc) const {
    return engine_->store().Get(doc).text;
  }

 private:
  Pipeline() = default;

  wiki::SyntheticWikipedia wiki_;
  clef::Track track_;
  std::unique_ptr<ir::SearchEngine> engine_;
  std::unique_ptr<linking::EntityLinker> linker_;
  std::vector<ir::RelevantSet> relevant_;
};

}  // namespace wqe::groundtruth
